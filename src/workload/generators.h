#ifndef HRDM_WORKLOAD_GENERATORS_H_
#define HRDM_WORKLOAD_GENERATORS_H_

/// \file generators.h
/// \brief Synthetic workload generators for tests, benchmarks and examples.
///
/// Three domain workloads mirror the paper's motivating scenarios, plus a
/// family of random-relation generators for property tests:
///
///  * **Personnel** (Section 1): employees are hired, fired and re-hired —
///    non-contiguous tuple lifespans (reincarnation), stepwise Salary and
///    Dept histories.
///  * **Stock market** (Section 2, Figure 6): per-ticker price series with
///    an evolving scheme — the DailyVolume attribute's lifespan has a gap
///    where collection was dropped and later resumed.
///  * **Enrollment** (Section 1): students, courses and an enrollment
///    relation with temporal referential integrity ("a student can only
///    take a course at time t if both ... exist ... at time t").
///
/// All generators are deterministic given the Rng seed.

#include <string>
#include <vector>

#include "core/relation.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/status.h"

namespace hrdm::workload {

// --- Personnel ---------------------------------------------------------------

struct PersonnelConfig {
  size_t num_employees = 100;
  /// Chronons 0 .. horizon-1.
  TimePoint horizon = 100;
  /// Probability that a fired employee is later re-hired (reincarnation).
  double rehire_probability = 0.3;
  /// Expected chronons between salary changes.
  TimePoint salary_change_period = 10;
  size_t num_departments = 5;
};

/// \brief Builds `emp(Name*: string, Salary: int, Dept: string)` with
/// stepwise Salary/Dept and hire/fire/rehire lifespans.
Result<Relation> MakePersonnel(Rng* rng, const PersonnelConfig& config);

// --- Stock market -------------------------------------------------------------

struct StockMarketConfig {
  size_t num_tickers = 50;
  TimePoint horizon = 200;
  /// The Figure 6 story: DailyVolume is collected over
  /// [0, drop_at-1] and again over [resume_at, horizon-1].
  TimePoint volume_drop_at = 80;
  TimePoint volume_resume_at = 140;
  /// Chronons between stored price samples (linear interpolation fills in).
  TimePoint price_sample_period = 5;
};

/// \brief Builds `stocks(Ticker*: string, Price: double linear,
/// DailyVolume: int)` where DailyVolume's attribute lifespan has the
/// Figure 6 gap.
Result<Relation> MakeStockMarket(Rng* rng, const StockMarketConfig& config);

// --- Enrollment -----------------------------------------------------------------

struct EnrollmentConfig {
  size_t num_students = 60;
  size_t num_courses = 12;
  size_t num_enrollments = 150;
  TimePoint horizon = 100;
};

/// \brief Builds a database with `student`, `course` and `enroll` relations
/// and registered temporal foreign keys; every generated enrollment
/// respects temporal RI by construction.
Result<storage::Database> MakeEnrollment(Rng* rng,
                                         const EnrollmentConfig& config);

// --- Random relations (property tests / benches) --------------------------------

struct RandomRelationConfig {
  std::string name = "r";
  size_t num_tuples = 20;
  size_t num_value_attrs = 2;
  TimePoint horizon = 60;
  /// Maximum number of lifespan fragments per tuple.
  size_t max_fragments = 3;
  /// Expected chronons between value changes within a tuple.
  TimePoint value_change_period = 8;
  /// Include a time-valued (TT) attribute "Ref" for dynamic TIME-SLICE /
  /// TIME-JOIN exercises.
  bool with_time_attribute = false;
  /// Give every attribute a full-horizon lifespan when false; carve random
  /// ALS gaps when true (heterogeneous tuples, Figure 8).
  bool random_attribute_lifespans = false;
  /// Prefix for key values (distinct prefixes keep key spaces disjoint or
  /// overlapping across generated relations).
  std::string key_prefix = "k";
  /// Number of distinct key values to draw from (overlap control for
  /// set-op and join workloads). 0 means num_tuples (all distinct).
  size_t key_space = 0;
};

/// \brief A random historical relation
/// `name(Id*: string, A0..An: int [, Ref: time])`.
Result<Relation> MakeRandomRelation(Rng* rng,
                                    const RandomRelationConfig& config);

/// \brief A pair of merge-compatible random relations whose key spaces
/// overlap by roughly `overlap` (0..1) and whose shared objects have
/// consistent values on common chronons (so they are mergeable) — the
/// Figure 11 workload.
Result<std::pair<Relation, Relation>> MakeMergeablePair(
    Rng* rng, const RandomRelationConfig& config, double overlap);

}  // namespace hrdm::workload

#endif  // HRDM_WORKLOAD_GENERATORS_H_
