#include "workload/generators.h"

#include <algorithm>

#include "util/format.h"

namespace hrdm::workload {

namespace {

/// A random lifespan of up to `max_fragments` fragments within [0, horizon).
Lifespan RandomFragments(Rng* rng, TimePoint horizon, size_t max_fragments) {
  const size_t n = 1 + static_cast<size_t>(rng->Uniform(
                           0, static_cast<int64_t>(max_fragments) - 1));
  std::vector<Interval> ivs;
  for (size_t i = 0; i < n; ++i) {
    const TimePoint b = rng->Uniform(0, horizon - 1);
    const TimePoint e = std::min<TimePoint>(horizon - 1,
                                            b + rng->Uniform(0, horizon / 3));
    ivs.push_back(Interval(b, e));
  }
  return Lifespan::FromIntervals(std::move(ivs));
}

/// A stepwise stored history over `domain`: stored change-points roughly
/// every `period` chronons, values drawn by `next_value`.
template <typename NextValue>
Result<TemporalValue> StepHistory(Rng* rng, const Lifespan& domain,
                                  TimePoint period, NextValue next_value) {
  std::vector<Segment> segs;
  for (const Interval& iv : domain.intervals()) {
    TimePoint t = iv.begin;
    while (t <= iv.end) {
      TimePoint seg_end =
          std::min(iv.end, t + std::max<TimePoint>(0, period - 1 +
                                                          rng->Uniform(
                                                              -period / 2,
                                                              period / 2)));
      segs.push_back(Segment{Interval(t, seg_end), next_value()});
      t = seg_end + 1;
    }
  }
  return TemporalValue::FromSegments(std::move(segs));
}

}  // namespace

Result<Relation> MakePersonnel(Rng* rng, const PersonnelConfig& config) {
  const TimePoint h = config.horizon;
  const Lifespan full = Span(0, h - 1);
  std::vector<AttributeDef> attrs = {
      {"Name", DomainType::kString, full, InterpolationKind::kDiscrete},
      {"Salary", DomainType::kInt, full, InterpolationKind::kStepwise},
      {"Dept", DomainType::kString, full, InterpolationKind::kStepwise},
  };
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make("emp", std::move(attrs),
                                             {"Name"}));
  Relation rel(scheme);
  for (size_t e = 0; e < config.num_employees; ++e) {
    // Hire, fire, maybe re-hire: a non-contiguous lifespan.
    const TimePoint hire = rng->Uniform(0, h / 2);
    const TimePoint fire = rng->Uniform(hire, h - 1);
    std::vector<Interval> spans = {Interval(hire, fire)};
    if (fire + 2 < h - 1 && rng->Chance(config.rehire_probability)) {
      const TimePoint rehire = rng->Uniform(fire + 2, h - 1);
      const TimePoint end = rng->Uniform(rehire, h - 1);
      spans.push_back(Interval(rehire, end));
    }
    const Lifespan life = Lifespan::FromIntervals(std::move(spans));

    int64_t salary = rng->Uniform(30, 200) * 1000;
    HRDM_ASSIGN_OR_RETURN(
        TemporalValue salary_tv,
        StepHistory(rng, life, config.salary_change_period, [&]() {
          salary += rng->Uniform(0, 10) * 1000;  // salaries never decrease
          return Value::Int(salary);
        }));
    HRDM_ASSIGN_OR_RETURN(
        TemporalValue dept_tv,
        StepHistory(rng, life, config.salary_change_period * 3, [&]() {
          return Value::String(
              "dept" + std::to_string(rng->Uniform(
                           0, static_cast<int64_t>(config.num_departments) -
                                  1)));
        }));

    Tuple::Builder b(scheme, life);
    b.SetConstant("Name", Value::String("emp" + std::to_string(e)));
    b.Set("Salary", std::move(salary_tv));
    b.Set("Dept", std::move(dept_tv));
    HRDM_ASSIGN_OR_RETURN(Tuple t, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(rel.Insert(std::move(t)));
  }
  return rel;
}

Result<Relation> MakeStockMarket(Rng* rng, const StockMarketConfig& config) {
  const TimePoint h = config.horizon;
  const Lifespan full = Span(0, h - 1);
  // The Figure 6 attribute lifespan: collected, dropped, re-adopted.
  const Lifespan volume_ls = Lifespan::FromIntervals(
      {Interval(0, config.volume_drop_at - 1),
       Interval(config.volume_resume_at, h - 1)});
  std::vector<AttributeDef> attrs = {
      {"Ticker", DomainType::kString, full, InterpolationKind::kDiscrete},
      {"Price", DomainType::kDouble, full, InterpolationKind::kLinear},
      {"DailyVolume", DomainType::kInt, volume_ls,
       InterpolationKind::kStepwise},
  };
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make("stocks", std::move(attrs),
                                             {"Ticker"}));
  Relation rel(scheme);
  for (size_t s = 0; s < config.num_tickers; ++s) {
    const Lifespan life = full;
    // Sparse price samples; linear interpolation recovers the rest.
    double price = 10.0 + rng->NextDouble() * 200.0;
    std::vector<Segment> price_segs;
    for (TimePoint t = 0; t < h; t += config.price_sample_period) {
      price = std::max(1.0, price * (0.95 + 0.1 * rng->NextDouble()));
      price_segs.push_back(
          Segment{Interval::At(t), Value::Double(price)});
    }
    HRDM_ASSIGN_OR_RETURN(TemporalValue price_tv,
                          TemporalValue::FromSegments(std::move(price_segs)));

    HRDM_ASSIGN_OR_RETURN(
        TemporalValue volume_tv,
        StepHistory(rng, volume_ls, 4, [&]() {
          return Value::Int(rng->Uniform(1000, 1000000));
        }));

    Tuple::Builder b(scheme, life);
    b.SetConstant("Ticker", Value::String("TCK" + std::to_string(s)));
    b.Set("Price", std::move(price_tv));
    b.Set("DailyVolume", std::move(volume_tv));
    HRDM_ASSIGN_OR_RETURN(Tuple t, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(rel.Insert(std::move(t)));
  }
  return rel;
}

Result<storage::Database> MakeEnrollment(Rng* rng,
                                         const EnrollmentConfig& config) {
  const TimePoint h = config.horizon;
  const Lifespan full = Span(0, h - 1);
  storage::Database db;

  HRDM_RETURN_IF_ERROR(db.CreateRelation(
      "student",
      {{"SId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"SName", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"SId"}));
  HRDM_RETURN_IF_ERROR(db.CreateRelation(
      "course",
      {{"CId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"Title", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"CId"}));
  HRDM_RETURN_IF_ERROR(db.CreateRelation(
      "enroll",
      {{"EId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"SId", DomainType::kString, full, InterpolationKind::kStepwise},
       {"CId", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"EId"}));

  // Students and courses with (possibly fragmented) lifespans.
  std::vector<Lifespan> student_life(config.num_students);
  std::vector<Lifespan> course_life(config.num_courses);
  HRDM_ASSIGN_OR_RETURN(const Relation* students, db.Get("student"));
  HRDM_ASSIGN_OR_RETURN(const Relation* courses, db.Get("course"));
  for (size_t s = 0; s < config.num_students; ++s) {
    student_life[s] = RandomFragments(rng, h, 2);
    Tuple::Builder b(students->scheme(), student_life[s]);
    b.SetConstant("SId", Value::String("s" + std::to_string(s)));
    b.SetConstant("SName", Value::String(rng->Identifier(8)));
    HRDM_ASSIGN_OR_RETURN(Tuple t, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(db.Insert("student", std::move(t)));
  }
  for (size_t c = 0; c < config.num_courses; ++c) {
    course_life[c] = RandomFragments(rng, h, 2);
    Tuple::Builder b(courses->scheme(), course_life[c]);
    b.SetConstant("CId", Value::String("c" + std::to_string(c)));
    b.SetConstant("Title", Value::String(rng->Identifier(10)));
    HRDM_ASSIGN_OR_RETURN(Tuple t, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(db.Insert("course", std::move(t)));
  }

  // Enrollments: lifespan inside student.l ∩ course.l (temporal RI by
  // construction).
  HRDM_ASSIGN_OR_RETURN(const Relation* enroll, db.Get("enroll"));
  size_t made = 0;
  for (size_t attempt = 0;
       attempt < config.num_enrollments * 10 && made < config.num_enrollments;
       ++attempt) {
    const size_t s = rng->Index(config.num_students);
    const size_t c = rng->Index(config.num_courses);
    const Lifespan both = student_life[s].Intersect(course_life[c]);
    if (both.empty()) continue;
    // Pick one sub-interval of the common lifespan.
    const Interval& iv = both.intervals()[rng->Index(both.IntervalCount())];
    const TimePoint b0 = rng->Uniform(iv.begin, iv.end);
    const TimePoint e0 = rng->Uniform(b0, iv.end);
    const Lifespan span = Span(b0, e0);
    Tuple::Builder b(enroll->scheme(), span);
    b.SetConstant("EId", Value::String("e" + std::to_string(made)));
    b.SetConstant("SId", Value::String("s" + std::to_string(s)));
    b.SetConstant("CId", Value::String("c" + std::to_string(c)));
    HRDM_ASSIGN_OR_RETURN(Tuple t, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(db.Insert("enroll", std::move(t)));
    ++made;
  }

  HRDM_RETURN_IF_ERROR(db.RegisterForeignKey("enroll", {"SId"}, "student"));
  HRDM_RETURN_IF_ERROR(db.RegisterForeignKey("enroll", {"CId"}, "course"));
  return db;
}

namespace {

Result<SchemePtr> RandomScheme(Rng* rng, const RandomRelationConfig& config) {
  const Lifespan full = Span(0, config.horizon - 1);
  std::vector<AttributeDef> attrs;
  attrs.push_back({"Id", DomainType::kString, full,
                   InterpolationKind::kDiscrete});
  for (size_t a = 0; a < config.num_value_attrs; ++a) {
    Lifespan als = full;
    if (config.random_attribute_lifespans && rng->Chance(0.5)) {
      // Carve a random gap into the attribute lifespan (Figure 8).
      const TimePoint g0 = rng->Uniform(0, config.horizon - 1);
      const TimePoint g1 =
          std::min(config.horizon - 1, g0 + rng->Uniform(0, config.horizon / 4));
      als = full.Difference(Span(g0, g1));
      if (als.empty()) als = full;
    }
    attrs.push_back({"A" + std::to_string(a), DomainType::kInt, als,
                     InterpolationKind::kStepwise});
  }
  if (config.with_time_attribute) {
    attrs.push_back({"Ref", DomainType::kTime, full,
                     InterpolationKind::kDiscrete});
  }
  return RelationScheme::Make(config.name, std::move(attrs), {"Id"});
}

Result<Tuple> RandomTupleForKey(Rng* rng, const RandomRelationConfig& config,
                                const SchemePtr& scheme,
                                const std::string& key_value,
                                const Lifespan& life) {
  Tuple::Builder b(scheme, life);
  b.SetConstant("Id", Value::String(key_value));
  for (size_t a = 0; a < config.num_value_attrs; ++a) {
    const std::string name = "A" + std::to_string(a);
    const size_t idx = *scheme->IndexOf(name);
    const Lifespan vls = life.Intersect(scheme->AttributeLifespan(idx));
    HRDM_ASSIGN_OR_RETURN(
        TemporalValue tv,
        StepHistory(rng, vls, config.value_change_period,
                    [&]() { return Value::Int(rng->Uniform(0, 100)); }));
    b.Set(name, std::move(tv));
  }
  if (config.with_time_attribute) {
    const size_t idx = *scheme->IndexOf("Ref");
    const Lifespan vls = life.Intersect(scheme->AttributeLifespan(idx));
    HRDM_ASSIGN_OR_RETURN(
        TemporalValue tv,
        StepHistory(rng, vls, config.value_change_period, [&]() {
          return Value::Time(rng->Uniform(0, config.horizon - 1));
        }));
    b.Set("Ref", std::move(tv));
  }
  return std::move(b).Build();
}

}  // namespace

Result<Relation> MakeRandomRelation(Rng* rng,
                                    const RandomRelationConfig& config) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, RandomScheme(rng, config));
  Relation rel(scheme);
  const size_t key_space =
      config.key_space == 0 ? config.num_tuples : config.key_space;
  std::vector<size_t> keys(key_space);
  for (size_t i = 0; i < key_space; ++i) keys[i] = i;
  rng->Shuffle(&keys);
  const size_t n = std::min(config.num_tuples, key_space);
  for (size_t i = 0; i < n; ++i) {
    const std::string key =
        config.key_prefix + std::to_string(keys[i]);
    const Lifespan life =
        RandomFragments(rng, config.horizon, config.max_fragments);
    HRDM_ASSIGN_OR_RETURN(
        Tuple t, RandomTupleForKey(rng, config, scheme, key, life));
    HRDM_RETURN_IF_ERROR(rel.Insert(std::move(t)));
  }
  return rel;
}

Result<std::pair<Relation, Relation>> MakeMergeablePair(
    Rng* rng, const RandomRelationConfig& config, double overlap) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, RandomScheme(rng, config));
  Relation r1(scheme), r2(scheme);
  for (size_t i = 0; i < config.num_tuples; ++i) {
    const std::string key = config.key_prefix + std::to_string(i);
    // Master history spanning the horizon; both sides are restrictions of
    // it, so shared objects never contradict (mergeable by construction).
    HRDM_ASSIGN_OR_RETURN(
        Tuple master,
        RandomTupleForKey(rng, config, scheme, key,
                          Span(0, config.horizon - 1)));
    const bool in_both = rng->NextDouble() < overlap;
    const Lifespan l1 =
        RandomFragments(rng, config.horizon, config.max_fragments);
    const Lifespan l2 =
        RandomFragments(rng, config.horizon, config.max_fragments);
    if (in_both) {
      HRDM_RETURN_IF_ERROR(r1.InsertOrDrop(master.Restrict(l1, scheme)));
      HRDM_RETURN_IF_ERROR(r2.InsertOrDrop(master.Restrict(l2, scheme)));
    } else if (rng->Chance(0.5)) {
      HRDM_RETURN_IF_ERROR(r1.InsertOrDrop(master.Restrict(l1, scheme)));
    } else {
      HRDM_RETURN_IF_ERROR(r2.InsertOrDrop(master.Restrict(l2, scheme)));
    }
  }
  return std::make_pair(std::move(r1), std::move(r2));
}

}  // namespace hrdm::workload
