#ifndef HRDM_SESSION_SESSION_H_
#define HRDM_SESSION_SESSION_H_

/// \file session.h
/// \brief Reader sessions with snapshot isolation over one HRDM engine.
///
/// A `Session` pins one `storage::DatabaseVersion` at open and answers
/// every read — name resolution, HRQL queries, integrity checks,
/// serialization, rendering — from that version alone, for the session's
/// whole lifetime. Opening is O(1) (one shared_ptr copy under a brief
/// mutex), and everything after it is lock-free: the pinned version is
/// immutable by construction (util/version_cell.h never mutates a version
/// someone has pinned), so any number of sessions on any threads read
/// concurrently while writers keep committing through the storage engine's
/// logged mutators.
///
/// The isolation guarantee, stated operationally: for any session `s`,
/// `s.ToString()` is byte-identical at every point of the session's life,
/// and every query evaluated through `s` returns exactly what it would
/// return against a private copy of the database frozen at open time.
/// That statement is what tests/session_isolation_test.cc asserts
/// directly, and what tests/concurrency_fuzz_test.cc re-proves with N
/// reader × M writer threads under ThreadSanitizer.
///
/// Sessions are read-only by design: writes go through
/// `storage::StorageEngine`'s mutators (serialized, WAL-logged) and become
/// visible to *new* sessions — or to an existing one that explicitly calls
/// `Refresh`, trading its snapshot for the current one. This is snapshot
/// isolation for readers with serialized writers, not full multi-writer
/// transactions; ROADMAP item 2 tracks the remaining distance.

#include <cstdint>
#include <string>
#include <string_view>

#include "query/executor.h"
#include "storage/database_version.h"
#include "storage/storage_engine.h"

namespace hrdm::session {

/// \brief A read-only view of the database, frozen at open time.
class Session {
 public:
  /// \brief Pins the engine's current version. O(1); never blocks on
  /// in-flight queries (only on the cell's pointer swap).
  static Session Open(const storage::StorageEngine& engine) {
    return Session(engine.PinVersion());
  }

  /// \brief Pins a bare (non-durable) database's current version.
  static Session Open(const storage::Database& db) {
    return Session(db.CurrentVersion());
  }

  /// \brief Adopts an already-pinned version (must be non-null).
  explicit Session(storage::DatabaseVersionPtr version)
      : version_(std::move(version)) {}

  /// \brief The pinned version's monotonic id: total order of commits, so
  /// `a.version_id() <= b.version_id()` iff `a` sees a prefix of what `b`
  /// sees.
  uint64_t version_id() const { return version_->id; }

  /// \brief The pinned version itself (immutable; lives at least as long
  /// as this session).
  const storage::DatabaseVersion& version() const { return *version_; }

  /// \brief Shares the pin (e.g. to hand the same snapshot to a worker).
  storage::DatabaseVersionPtr pin() const { return version_; }

  /// \brief Read access to a stored relation as of the snapshot.
  Result<const Relation*> Get(std::string_view name) const {
    return version_->Get(name);
  }

  /// \brief Parses and evaluates a relation-sorted HRQL query against the
  /// snapshot.
  Result<Relation> Run(std::string_view hrql) const {
    return query::Run(hrql, *version_);
  }

  /// \brief Evaluates a relation-sorted expression against the snapshot.
  Result<Relation> Eval(const query::ExprPtr& expr) const {
    return query::Eval(expr, *version_);
  }

  /// \brief Evaluates a lifespan-sorted expression against the snapshot.
  Result<Lifespan> EvalLifespan(const query::LsExprPtr& expr) const {
    return query::EvalLifespan(expr, *version_);
  }

  /// \brief Planning hooks bound to the snapshot (for callers driving
  /// query::Plan directly with custom knobs). The session must outlive
  /// the returned options.
  query::PlanOptions MakePlanOptions() const {
    return query::VersionPlanOptions(*version_);
  }

  /// \brief Integrity checks as of the snapshot.
  Result<std::vector<Violation>> CheckIntegrity() const {
    return version_->CheckIntegrity();
  }

  /// \brief Serializes the snapshot (same format as Database::Save — a
  /// consistent online backup that never blocks writers).
  std::string EncodeSnapshot() const { return version_->EncodeSnapshot(); }

  /// \brief Canonical rendering of the snapshot; byte-stable for the whole
  /// session (the isolation oracle).
  std::string ToString() const { return version_->ToString(); }

  /// \brief Trades this session's snapshot for the source's current one
  /// (the one explicit way a session observes later commits).
  void Refresh(const storage::StorageEngine& engine) {
    version_ = engine.PinVersion();
  }
  void Refresh(const storage::Database& db) {
    version_ = db.CurrentVersion();
  }

 private:
  storage::DatabaseVersionPtr version_;
};

}  // namespace hrdm::session

#endif  // HRDM_SESSION_SESSION_H_
