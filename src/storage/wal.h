#ifndef HRDM_STORAGE_WAL_H_
#define HRDM_STORAGE_WAL_H_

/// \file wal.h
/// \brief The write-ahead log file format: CRC-framed records on disk.
///
/// Layout of a WAL file:
///
///     +--------------------------+
///     | header: "HRDMWAL" 0x01   |   8 bytes, magic + format version
///     +--------------------------+
///     | frame 0                  |
///     | frame 1                  |
///     | ...                      |
///     +--------------------------+
///
/// and each frame is
///
///     +-----------+-----------+------------------+
///     | len (u32) | crc (u32) | payload (len B)  |
///     +-----------+-----------+------------------+
///
/// with both fixed-width words little-endian and `crc` the CRC-32C of the
/// payload bytes (util/crc32.h). Payloads are the logical change-log
/// records of storage/changelog.h, but this layer is content-agnostic.
///
/// Crash semantics: a crash can leave a *torn tail* — a final frame whose
/// bytes are incomplete, or whose payload never fully hit disk. `ReadWal`
/// therefore accepts any prefix of a valid file: it stops at the first
/// frame that is incomplete or fails its CRC and returns every record
/// before it (the longest durable prefix), flagging the stop via `clean`.
/// It never returns a partially-read or CRC-invalid record (no phantoms)
/// and never errors on torn tails; only a non-WAL header is Corruption.
/// `WalWriter::Open` on an existing file truncates the torn tail before
/// resuming appends, so the file on disk is always a valid prefix plus the
/// new records.
///
/// Durability is policy-driven (`FsyncPolicy`): every append (`kAlways`),
/// once the batch budget fills or `Sync` is called (`kBatched`), or left
/// to the OS page cache (`kOff`, for tests/bulk loads).
///
/// Layer contract: bytes and fsyncs only — no knowledge of Database. The
/// recovery sequence (snapshot + WAL tail) lives in
/// storage/storage_engine.h.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/file.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief When the WAL fsyncs.
enum class FsyncPolicy : uint8_t {
  /// Never fsync from the engine; the OS decides (fastest, weakest).
  kOff = 0,
  /// fsync when `batch_bytes` of unsynced frames accumulate (and on
  /// explicit `Sync`/checkpoint). Bounded data loss, amortized cost.
  kBatched = 1,
  /// fsync after every appended record (classic commit durability).
  kAlways = 2,
};

std::string_view FsyncPolicyName(FsyncPolicy policy);

/// \brief Parses "off" / "batched" / "always" (as used by the
/// HRDM_CRASH_FSYNC env knob and bench_storage).
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

/// \brief The 8-byte WAL file header: magic + format version.
inline constexpr char kWalHeader[8] = {'H', 'R', 'D', 'M',
                                       'W', 'A', 'L', '\x01'};
inline constexpr size_t kWalHeaderSize = sizeof(kWalHeader);
/// \brief Bytes of frame overhead per record (length word + CRC word).
inline constexpr size_t kWalFrameOverhead = 8;

/// \brief Frames one record: [len u32][crc u32][payload]. Exposed so the
/// torn-write tests can compute exact frame boundaries.
std::string FrameWalRecord(std::string_view record);

/// \brief What `ReadWal` recovered from a WAL file.
struct WalContents {
  /// The payloads of every complete, CRC-valid frame, in file order.
  std::vector<std::string> records;
  /// False when reading stopped at a torn/invalid frame before the end of
  /// the file (the bytes from `valid_bytes` on are a torn tail).
  bool clean = true;
  /// File offset just past the last valid frame (>= kWalHeaderSize); the
  /// length a writer should truncate to before appending.
  uint64_t valid_bytes = kWalHeaderSize;
};

/// \brief Reads a WAL file, tolerating a torn tail (see file comment). A
/// missing or shorter-than-header file yields zero records (a crash can
/// tear even the header of a just-created log); a full-length header that
/// is not the WAL magic is Corruption.
Result<WalContents> ReadWal(const std::string& path);

/// \brief An open WAL file accepting appends.
class WalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kAlways;
    /// kBatched: fsync once this many unsynced payload+frame bytes pile up.
    size_t batch_bytes = 1 << 16;
  };

  /// \brief Opens `path` for appending, creating it (with header) if
  /// missing and truncating any torn tail of an existing file.
  static Result<WalWriter> Open(const std::string& path, Options options);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// \brief Frames and appends one record, fsyncing per policy. On return
  /// with kAlways the record is durable.
  Status Append(std::string_view record);

  /// \brief Flushes to disk regardless of policy (kOff included): the
  /// checkpoint barrier.
  Status Sync();

  /// \brief Records appended through this writer (not counting records
  /// already in the file when it was opened).
  uint64_t appended_records() const { return appended_records_; }

  const std::string& path() const { return file_.path(); }

 private:
  WalWriter(util::AppendFile file, Options options)
      : file_(std::move(file)), options_(options) {}

  util::AppendFile file_;
  Options options_;
  uint64_t appended_records_ = 0;
  size_t unsynced_bytes_ = 0;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_WAL_H_
