#ifndef HRDM_STORAGE_SERIALIZER_H_
#define HRDM_STORAGE_SERIALIZER_H_

/// \file serializer.h
/// \brief Binary (de)serialization of HRDM objects — the physical level of
/// Figure 9.
///
/// Format: little-endian varints (LEB128) with zigzag for signed numbers,
/// length-prefixed strings, and type tags where payloads are polymorphic.
/// Every `Decode*` validates its input and returns Corruption on truncated
/// or malformed bytes, so snapshot files cannot crash the process.
///
/// The format is versioned by a leading magic + version word in
/// `EncodeDatabaseHeader`; readers reject unknown versions.
///
/// Layer contract: the bottom of the storage engine — pure functions from
/// core objects to bytes and back, no engine state. Snapshots carry the
/// *representation level* of Figure 9 (stored segments, not interpolated
/// model values) and only primary data: access-path indexes and catalog
/// statistics are derived and rebuilt after a load.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/lifespan.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/temporal_value.h"
#include "core/tuple.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief Magic bytes identifying an HRDM snapshot ("HRDM").
inline constexpr uint32_t kSnapshotMagic = 0x4d445248u;
/// \brief Current snapshot format version.
inline constexpr uint32_t kSnapshotVersion = 1;

// --- primitive encoders ----------------------------------------------------

void PutVarint(std::string* out, uint64_t v);
void PutSignedVarint(std::string* out, int64_t v);
void PutString(std::string* out, std::string_view s);

/// \brief Sequential reader over an encoded buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint64_t> GetVarint();
  Result<int64_t> GetSignedVarint();
  Result<std::string> GetString();
  /// \brief Reads exactly `n` raw bytes (no length prefix).
  Result<std::string> GetBytes(uint64_t n);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- model objects ----------------------------------------------------------

void EncodeLifespan(std::string* out, const Lifespan& l);
Result<Lifespan> DecodeLifespan(Reader* r);

void EncodeValue(std::string* out, const Value& v);
Result<Value> DecodeValue(Reader* r);

void EncodeTemporalValue(std::string* out, const TemporalValue& v);
Result<TemporalValue> DecodeTemporalValue(Reader* r);

void EncodeScheme(std::string* out, const RelationScheme& s);
Result<SchemePtr> DecodeScheme(Reader* r);

/// Tuples are encoded without their scheme; decoding takes it as context.
void EncodeTuple(std::string* out, const Tuple& t);
Result<Tuple> DecodeTuple(Reader* r, const SchemePtr& scheme);

void EncodeRelation(std::string* out, const Relation& rel);
Result<Relation> DecodeRelation(Reader* r);

// --- files -------------------------------------------------------------------

/// \brief Writes `data` to `path` atomically (temp file + rename).
Status WriteFile(const std::string& path, std::string_view data);

/// \brief Reads the whole file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_SERIALIZER_H_
