#include "storage/index.h"

#include <algorithm>
#include <unordered_set>

#include "algebra/join.h"

namespace hrdm::storage {

// --- LifespanIndex -----------------------------------------------------------

void LifespanIndex::Add(const TuplePtr& t) {
  for (const Interval& iv : t->lifespan().intervals()) {
    Entry e{iv.begin, iv.end, t};
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), e,
        [](const Entry& a, const Entry& b) { return a.begin < b.begin; });
    entries_.insert(pos, std::move(e));
  }
  RebuildTree();
}

void LifespanIndex::Remove(const TuplePtr& t) {
  std::erase_if(entries_, [&](const Entry& e) { return e.tuple == t; });
  RebuildTree();
}

void LifespanIndex::Rebuild(const Relation& rel) {
  entries_.clear();
  for (const TuplePtr& t : rel.tuple_ptrs()) {
    for (const Interval& iv : t->lifespan().intervals()) {
      entries_.push_back(Entry{iv.begin, iv.end, t});
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.begin < b.begin; });
  RebuildTree();
}

void LifespanIndex::RebuildTree() {
  max_end_.assign(entries_.empty() ? 0 : 4 * entries_.size(), kTimeMin);
  if (entries_.empty()) return;
  // Recursive build of the implicit segment tree: node covers [lo, hi) of
  // the begin-sorted entry array; depth is log2(n).
  auto build = [&](auto&& self, size_t node, size_t lo, size_t hi) -> TimePoint {
    if (hi - lo == 1) {
      max_end_[node] = entries_[lo].end;
      return max_end_[node];
    }
    const size_t mid = lo + (hi - lo) / 2;
    const TimePoint l = self(self, 2 * node + 1, lo, mid);
    const TimePoint r = self(self, 2 * node + 2, mid, hi);
    max_end_[node] = std::max(l, r);
    return max_end_[node];
  };
  build(build, 0, 0, entries_.size());
}

void LifespanIndex::Collect(size_t node, size_t lo, size_t hi, TimePoint qb,
                            TimePoint qe,
                            std::vector<const Entry*>* out) const {
  // Subtree prune 1: every interval in [lo, hi) ends before the window.
  if (max_end_[node] < qb) return;
  // Subtree prune 2: entries are sorted by begin, so if the first entry of
  // this subtree begins after the window ends, all of them do.
  if (entries_[lo].begin > qe) return;
  if (hi - lo == 1) {
    // Leaf: overlap test `begin <= qe && end >= qb` (both pruned above).
    out->push_back(&entries_[lo]);
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  Collect(2 * node + 1, lo, mid, qb, qe, out);
  Collect(2 * node + 2, mid, hi, qb, qe, out);
}

std::vector<TuplePtr> LifespanIndex::Probe(const Lifespan& window) const {
  std::vector<TuplePtr> out;
  if (entries_.empty() || window.empty()) return out;
  std::vector<const Entry*> hits;
  for (const Interval& iv : window.intervals()) {
    Collect(0, 0, entries_.size(), iv.begin, iv.end, &hits);
  }
  // A tuple can hit several times: multiple lifespan intervals, or several
  // window intervals touching one entry. Deduplicate by tuple identity.
  std::unordered_set<const Tuple*> seen;
  out.reserve(hits.size());
  for (const Entry* e : hits) {
    if (seen.insert(e->tuple.get()).second) out.push_back(e->tuple);
  }
  return out;
}

// --- ValueIndex --------------------------------------------------------------

void ValueIndex::Add(const TuplePtr& t) {
  if (attr_ >= t->arity()) {
    // Scheme drift (the attribute column is not where we were built to
    // look): degrade to the varying list, which every probe returns, so
    // the superset contract holds until Rebuild re-points the index.
    varying_.push_back(t);
    return;
  }
  const TemporalValue& v = t->value(attr_);
  if (v.IsConstant()) {
    buckets_[JoinKeyDigest(v.ConstantValue())].push_back(t);
    ++constant_count_;
  } else {
    varying_.push_back(t);
  }
}

void ValueIndex::Remove(const TuplePtr& t) {
  if (attr_ >= t->arity()) {
    std::erase(varying_, t);  // where drifted tuples were Add-ed
    return;
  }
  const TemporalValue& v = t->value(attr_);
  if (v.IsConstant()) {
    auto it = buckets_.find(JoinKeyDigest(v.ConstantValue()));
    if (it == buckets_.end()) return;
    const size_t before = it->second.size();
    std::erase(it->second, t);
    constant_count_ -= before - it->second.size();
    if (it->second.empty()) buckets_.erase(it);
  } else {
    std::erase(varying_, t);
  }
}

void ValueIndex::Rebuild(const Relation& rel) {
  buckets_.clear();
  varying_.clear();
  constant_count_ = 0;
  for (const TuplePtr& t : rel.tuple_ptrs()) Add(t);
}

std::vector<TuplePtr> ValueIndex::Probe(const Value& key) const {
  std::vector<TuplePtr> out;
  auto it = buckets_.find(JoinKeyDigest(key));
  if (it != buckets_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  out.insert(out.end(), varying_.begin(), varying_.end());
  return out;
}

// --- RelationIndexes ---------------------------------------------------------

void RelationIndexes::EnableLifespan(const Relation& rel) {
  lifespan_.emplace();
  lifespan_->Rebuild(rel);
}

void RelationIndexes::EnableValue(const Relation& rel, std::string attr,
                                  size_t attr_index) {
  for (auto& [name, index] : values_) {
    if (name == attr) {
      index.set_attr_index(attr_index);
      index.Rebuild(rel);
      return;
    }
  }
  values_.emplace_back(std::move(attr), ValueIndex(attr_index));
  values_.back().second.Rebuild(rel);
}

const ValueIndex* RelationIndexes::value(std::string_view attr) const {
  for (const auto& [name, index] : values_) {
    if (name == attr) return &index;
  }
  return nullptr;
}

std::vector<std::string> RelationIndexes::value_attrs() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, index] : values_) out.push_back(name);
  return out;
}

void RelationIndexes::OnInsert(const TuplePtr& t) {
  if (lifespan_) lifespan_->Add(t);
  for (auto& [name, index] : values_) index.Add(t);
}

void RelationIndexes::OnRemove(const TuplePtr& t) {
  if (lifespan_) lifespan_->Remove(t);
  for (auto& [name, index] : values_) index.Remove(t);
}

void RelationIndexes::OnReplace(const TuplePtr& old_tuple,
                                const TuplePtr& new_tuple) {
  OnRemove(old_tuple);
  OnInsert(new_tuple);
}

Status RelationIndexes::Rebuild(const Relation& rel) {
  if (lifespan_) lifespan_->Rebuild(rel);
  for (auto& [name, index] : values_) {
    HRDM_ASSIGN_OR_RETURN(size_t idx, rel.scheme()->RequireIndex(name));
    index.set_attr_index(idx);
    index.Rebuild(rel);
  }
  return Status::OK();
}

}  // namespace hrdm::storage
