#include "storage/wal.h"

#include <cstring>

#include "util/crc32.h"

namespace hrdm::storage {

namespace {

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOff:
      return "off";
    case FsyncPolicy::kBatched:
      return "batched";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "off") return FsyncPolicy::kOff;
  if (name == "batched") return FsyncPolicy::kBatched;
  if (name == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy: " + std::string(name) +
                                 " (expected off|batched|always)");
}

std::string FrameWalRecord(std::string_view record) {
  std::string frame;
  frame.reserve(kWalFrameOverhead + record.size());
  PutFixed32(&frame, static_cast<uint32_t>(record.size()));
  PutFixed32(&frame, util::Crc32c(record));
  frame.append(record);
  return frame;
}

Result<WalContents> ReadWal(const std::string& path) {
  WalContents out;
  if (!util::FileExists(path)) {
    // A log that was never created is an empty log.
    return out;
  }
  HRDM_ASSIGN_OR_RETURN(std::string data, util::ReadFileToString(path));
  if (data.size() < kWalHeaderSize) {
    // Torn header: the file was created but the 8 header bytes never all
    // reached disk. Treat as empty iff what is there is a header prefix —
    // anything else is not (a prefix of) a WAL file.
    if (std::memcmp(data.data(), kWalHeader, data.size()) != 0) {
      return Status::Corruption(path + " is not an HRDM WAL file");
    }
    out.clean = data.empty();  // a torn header is still a torn tail
    out.valid_bytes = 0;
    return out;
  }
  if (std::memcmp(data.data(), kWalHeader, kWalHeaderSize) != 0) {
    return Status::Corruption(path + " is not an HRDM WAL file (bad magic)");
  }
  size_t pos = kWalHeaderSize;
  out.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kWalFrameOverhead) break;  // torn frame header
    const uint32_t len = GetFixed32(data.data() + pos);
    const uint32_t crc = GetFixed32(data.data() + pos + 4);
    if (data.size() - pos - kWalFrameOverhead < len) break;  // torn payload
    const std::string_view payload(data.data() + pos + kWalFrameOverhead, len);
    if (util::Crc32c(payload) != crc) break;  // torn or corrupt payload
    out.records.emplace_back(payload);
    pos += kWalFrameOverhead + len;
    out.valid_bytes = pos;
  }
  out.clean = (out.valid_bytes == data.size());
  return out;
}

Result<WalWriter> WalWriter::Open(const std::string& path, Options options) {
  uint64_t valid_bytes = 0;
  bool fresh = true;
  if (util::FileExists(path)) {
    HRDM_ASSIGN_OR_RETURN(WalContents contents, ReadWal(path));
    valid_bytes = contents.valid_bytes;
    // valid_bytes == 0 means even the header was torn: rewrite it.
    fresh = (valid_bytes == 0);
  }
  HRDM_ASSIGN_OR_RETURN(util::AppendFile file, util::AppendFile::Open(path));
  HRDM_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  if (!fresh && size > valid_bytes) {
    HRDM_RETURN_IF_ERROR(file.TruncateTo(valid_bytes));
  }
  if (fresh) {
    if (size > 0) HRDM_RETURN_IF_ERROR(file.TruncateTo(0));
    HRDM_RETURN_IF_ERROR(
        file.Append(std::string_view(kWalHeader, kWalHeaderSize)));
    if (options.fsync != FsyncPolicy::kOff) {
      HRDM_RETURN_IF_ERROR(file.Sync());
    }
  }
  return WalWriter(std::move(file), options);
}

Status WalWriter::Append(std::string_view record) {
  const std::string frame = FrameWalRecord(record);
  HRDM_RETURN_IF_ERROR(file_.Append(frame));
  ++appended_records_;
  switch (options_.fsync) {
    case FsyncPolicy::kOff:
      break;
    case FsyncPolicy::kBatched:
      unsynced_bytes_ += frame.size();
      if (unsynced_bytes_ >= options_.batch_bytes) {
        HRDM_RETURN_IF_ERROR(file_.Sync());
        unsynced_bytes_ = 0;
      }
      break;
    case FsyncPolicy::kAlways:
      HRDM_RETURN_IF_ERROR(file_.Sync());
      break;
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  HRDM_RETURN_IF_ERROR(file_.Sync());
  unsynced_bytes_ = 0;
  return Status::OK();
}

}  // namespace hrdm::storage
