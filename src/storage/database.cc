#include "storage/database.h"

#include "storage/serializer.h"

namespace hrdm::storage {
namespace {

// --- clone-on-shared mutation helpers ----------------------------------------
//
// Inside an Update the DatabaseVersion itself is private to the writer, but
// its relation/index roots may still be shared with older pinned versions.
// These helpers hand out mutable pointers, cloning a root first iff someone
// else still holds it (`use_count() > 1`) — so pinned snapshots are never
// written, and the unshared fast path mutates in place at original cost.

Result<Relation*> MutableRelation(DatabaseVersion& v, std::string_view name) {
  auto it = v.relations.find(name);
  if (it == v.relations.end()) {
    return Status::NotFound("relation " + std::string(name) + " not found");
  }
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<Relation>(*it->second);
  }
  return it->second.get();
}

RelationIndexes* MutableIndexesIfAny(DatabaseVersion& v,
                                     std::string_view name) {
  auto it = v.indexes.find(name);
  if (it == v.indexes.end()) return nullptr;
  if (it->second.use_count() > 1) {
    it->second = std::make_shared<RelationIndexes>(*it->second);
  }
  return it->second.get();
}

RelationIndexes* MutableIndexesEntry(DatabaseVersion& v,
                                     std::string_view name) {
  auto it = v.indexes.find(name);
  if (it == v.indexes.end()) {
    it = v.indexes
             .emplace(std::string(name), std::make_shared<RelationIndexes>())
             .first;
  } else if (it->second.use_count() > 1) {
    it->second = std::make_shared<RelationIndexes>(*it->second);
  }
  return it->second.get();
}

Status RebindLocked(DatabaseVersion& v, std::string_view relation) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, v.catalog.Get(relation));
  HRDM_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(v, relation));
  Relation rebound(scheme);
  for (const Tuple& t : *rel) {
    HRDM_RETURN_IF_ERROR(rebound.Insert(t.Rebind(scheme)));
  }
  *rel = std::move(rebound);
  // Every tuple object was replaced, so incremental index maintenance
  // cannot apply: rebuild against the evolved scheme.
  if (RelationIndexes* idx = MutableIndexesIfAny(v, relation)) {
    HRDM_RETURN_IF_ERROR(idx->Rebuild(*rel));
  }
  return Status::OK();
}

Result<size_t> RequireTuple(const Relation& rel,
                            const std::vector<Value>& key) {
  auto idx = rel.FindByKey(key);
  if (!idx.has_value()) {
    std::string key_str;
    for (const Value& v : key) {
      if (!key_str.empty()) key_str += ",";
      key_str += v.ToString();
    }
    return Status::NotFound("no tuple with key (" + key_str + ") in " +
                            rel.scheme()->name());
  }
  return *idx;
}

}  // namespace

Database::Database()
    : versions_(std::make_unique<util::VersionCell<DatabaseVersion>>(
          std::make_shared<DatabaseVersion>())) {}

template <typename Fn>
Status Database::Mutate(Fn&& fn) {
  return versions_->Update([&](DatabaseVersion& v) -> Status {
    Status s = fn(v);
    if (s.ok()) ++v.id;
    return s;
  });
}

Status Database::CreateRelation(std::string name,
                                std::vector<AttributeDef> attributes,
                                std::vector<std::string> key) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  return CreateRelation(std::move(scheme));
}

Status Database::CreateRelation(SchemePtr scheme) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_RETURN_IF_ERROR(v.catalog.Register(scheme));
    v.catalog.SetTupleCount(scheme->name(), 0);
    v.relations.emplace(scheme->name(), std::make_shared<Relation>(scheme));
    return Status::OK();
  });
}

Status Database::DropRelation(std::string_view name) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_RETURN_IF_ERROR(v.catalog.Drop(name));
    v.relations.erase(v.relations.find(name));
    if (auto it = v.indexes.find(name); it != v.indexes.end()) {
      v.indexes.erase(it);
    }
    // Drop dependent FK declarations silently; integrity of the rest is
    // unaffected.
    std::erase_if(v.fks, [&](const ForeignKey& fk) {
      return fk.child == name || fk.parent == name;
    });
    return Status::OK();
  });
}

std::vector<std::string> Database::RelationNames() const {
  return versions_->Peek().catalog.Names();
}

// --- access-path indexes -----------------------------------------------------

Status Database::CreateLifespanIndex(std::string_view relation) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(const Relation* rel, v.Get(relation));
    HRDM_RETURN_IF_ERROR(v.catalog.RegisterLifespanIndex(relation));
    MutableIndexesEntry(v, relation)->EnableLifespan(*rel);
    return Status::OK();
  });
}

Status Database::CreateValueIndex(std::string_view relation,
                                  std::string_view attr) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(const Relation* rel, v.Get(relation));
    HRDM_ASSIGN_OR_RETURN(size_t attr_index,
                          rel->scheme()->RequireIndex(attr));
    HRDM_RETURN_IF_ERROR(v.catalog.RegisterValueIndex(relation, attr));
    MutableIndexesEntry(v, relation)
        ->EnableValue(*rel, std::string(attr), attr_index);
    return Status::OK();
  });
}

Status Database::AddAttribute(std::string_view relation, AttributeDef def) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_RETURN_IF_ERROR(v.catalog.AddAttribute(relation, std::move(def)));
    return RebindLocked(v, relation);
  });
}

Status Database::CloseAttribute(std::string_view relation,
                                std::string_view attr, TimePoint at) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_RETURN_IF_ERROR(v.catalog.CloseAttribute(relation, attr, at));
    return RebindLocked(v, relation);
  });
}

Status Database::ReopenAttribute(std::string_view relation,
                                 std::string_view attr,
                                 const Lifespan& span) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_RETURN_IF_ERROR(v.catalog.ReopenAttribute(relation, attr, span));
    return RebindLocked(v, relation);
  });
}

Status Database::Insert(std::string_view relation, Tuple t) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(v, relation));
    HRDM_RETURN_IF_ERROR(rel->Insert(std::move(t)));
    v.catalog.SetTupleCount(relation, rel->size());
    if (RelationIndexes* idx = MutableIndexesIfAny(v, relation)) {
      idx->OnInsert(rel->tuple_ptr(rel->size() - 1));
    }
    return Status::OK();
  });
}

Status Database::Assign(std::string_view relation,
                        const std::vector<Value>& key, std::string_view attr,
                        const Lifespan& span, const Value& value) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(v, relation));
    HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
    const Tuple& t = rel->tuple(idx);
    HRDM_ASSIGN_OR_RETURN(size_t ai, rel->scheme()->RequireIndex(attr));
    if (rel->scheme()->IsKey(ai)) {
      return Status::ConstraintViolation(
          "cannot Assign to key attribute " + std::string(attr) +
          " (keys are constant-valued)");
    }
    if (value.absent() || value.type() != rel->scheme()->attribute(ai).type) {
      return Status::TypeError(
          "Assign to " + std::string(attr) + " expects " +
          std::string(DomainTypeName(rel->scheme()->attribute(ai).type)) +
          ", got " +
          (value.absent() ? "absent"
                          : std::string(DomainTypeName(value.type()))));
    }
    const Lifespan vls = t.Vls(ai);
    if (!vls.ContainsAll(span)) {
      return Status::ConstraintViolation(
          "Assign span " + span.ToString() + " escapes vls " +
          vls.ToString() + " of " + std::string(attr));
    }
    // Overwrite: keep old values outside `span`, write `value` over `span`.
    const TemporalValue& old = t.value(ai);
    HRDM_ASSIGN_OR_RETURN(TemporalValue fresh,
                          TemporalValue::Constant(span, value));
    std::vector<Segment> segs =
        old.Restrict(old.domain().Difference(span)).segments();
    const auto& fresh_segs = fresh.segments();
    segs.insert(segs.end(), fresh_segs.begin(), fresh_segs.end());
    HRDM_ASSIGN_OR_RETURN(TemporalValue merged,
                          TemporalValue::FromSegments(std::move(segs)));

    std::vector<TemporalValue> values;
    values.reserve(t.arity());
    for (size_t i = 0; i < t.arity(); ++i) {
      values.push_back(i == ai ? merged : t.value(i));
    }
    const TuplePtr old_tuple = rel->tuple_ptr(idx);
    HRDM_RETURN_IF_ERROR(rel->ReplaceAt(
        idx,
        Tuple::FromParts(rel->scheme(), t.lifespan(), std::move(values))));
    if (RelationIndexes* rix = MutableIndexesIfAny(v, relation)) {
      rix->OnReplace(old_tuple, rel->tuple_ptr(idx));
    }
    return Status::OK();
  });
}

Status Database::AssignAt(std::string_view relation,
                          const std::vector<Value>& key,
                          std::string_view attr, TimePoint t,
                          const Value& value) {
  return Assign(relation, key, attr, Lifespan::Point(t), value);
}

Status Database::EndLifespan(std::string_view relation,
                             const std::vector<Value>& key, TimePoint at) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(v, relation));
    HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
    const Tuple& t = rel->tuple(idx);
    const Lifespan& l = t.lifespan();
    const Lifespan remaining =
        l.empty() ? l : l.Intersect(Span(l.Min(), at - 1));
    const TuplePtr old = rel->tuple_ptr(idx);
    if (remaining.empty()) {
      HRDM_RETURN_IF_ERROR(rel->EraseAt(idx));
      v.catalog.SetTupleCount(relation, rel->size());
      if (RelationIndexes* rix = MutableIndexesIfAny(v, relation)) {
        rix->OnRemove(old);
      }
      return Status::OK();
    }
    HRDM_RETURN_IF_ERROR(
        rel->ReplaceAt(idx, t.Restrict(remaining, rel->scheme())));
    if (RelationIndexes* rix = MutableIndexesIfAny(v, relation)) {
      rix->OnReplace(old, rel->tuple_ptr(idx));
    }
    return Status::OK();
  });
}

Status Database::Reincarnate(std::string_view relation,
                             const std::vector<Value>& key,
                             const Lifespan& span) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(v, relation));
    HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
    const Tuple& t = rel->tuple(idx);
    const SchemePtr& scheme = rel->scheme();
    Lifespan extended = t.lifespan().Union(span);
    std::vector<TemporalValue> values;
    values.reserve(t.arity());
    for (size_t i = 0; i < t.arity(); ++i) {
      if (scheme->IsKey(i)) {
        // Keys stay constant and total over the extended vls.
        const Lifespan vls = extended.Intersect(scheme->AttributeLifespan(i));
        HRDM_ASSIGN_OR_RETURN(
            TemporalValue kv,
            TemporalValue::Constant(vls, t.value(i).ConstantValue()));
        values.push_back(std::move(kv));
      } else {
        values.push_back(t.value(i));
      }
    }
    const TuplePtr old = rel->tuple_ptr(idx);
    HRDM_RETURN_IF_ERROR(rel->ReplaceAt(
        idx,
        Tuple::FromParts(scheme, std::move(extended), std::move(values))));
    if (RelationIndexes* rix = MutableIndexesIfAny(v, relation)) {
      rix->OnReplace(old, rel->tuple_ptr(idx));
    }
    return Status::OK();
  });
}

Status Database::RegisterForeignKey(std::string child,
                                    std::vector<std::string> attrs,
                                    std::string parent) {
  return Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(const Relation* c, v.Get(child));
    HRDM_ASSIGN_OR_RETURN(const Relation* p, v.Get(parent));
    // Validate arity/domains now so bad declarations fail early.
    if (p->scheme()->key().empty()) {
      return Status::InvalidArgument("FK parent " + parent + " has no key");
    }
    if (attrs.size() != p->scheme()->key().size()) {
      return Status::InvalidArgument(
          "FK attribute count does not match parent key arity");
    }
    for (size_t k = 0; k < attrs.size(); ++k) {
      HRDM_ASSIGN_OR_RETURN(size_t ci, c->scheme()->RequireIndex(attrs[k]));
      const size_t pi = p->scheme()->key_indices()[k];
      if (c->scheme()->attribute(ci).type !=
          p->scheme()->attribute(pi).type) {
        return Status::TypeError("FK attribute " + attrs[k] +
                                 " domain does not match parent key");
      }
    }
    v.fks.push_back(ForeignKey{std::move(child), std::move(attrs),
                               std::move(parent)});
    return Status::OK();
  });
}

Result<Database> Database::DecodeSnapshot(std::string_view data) {
  Reader r(data);
  HRDM_ASSIGN_OR_RETURN(uint64_t magic, r.GetVarint());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("not an HRDM snapshot (bad magic)");
  }
  HRDM_ASSIGN_OR_RETURN(uint64_t version, r.GetVarint());
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  Database db;
  HRDM_RETURN_IF_ERROR(db.Mutate([&](DatabaseVersion& v) -> Status {
    HRDM_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
    for (uint64_t i = 0; i < n; ++i) {
      HRDM_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(&r));
      HRDM_RETURN_IF_ERROR(v.catalog.Register(rel.scheme()));
      v.catalog.SetTupleCount(rel.scheme()->name(), rel.size());
      std::string name = rel.scheme()->name();
      v.relations.emplace(std::move(name),
                          std::make_shared<Relation>(std::move(rel)));
    }
    HRDM_ASSIGN_OR_RETURN(uint64_t fk_n, r.GetVarint());
    for (uint64_t i = 0; i < fk_n; ++i) {
      ForeignKey fk;
      HRDM_ASSIGN_OR_RETURN(fk.child, r.GetString());
      HRDM_ASSIGN_OR_RETURN(uint64_t attr_n, r.GetVarint());
      for (uint64_t k = 0; k < attr_n; ++k) {
        HRDM_ASSIGN_OR_RETURN(std::string a, r.GetString());
        fk.attrs.push_back(std::move(a));
      }
      HRDM_ASSIGN_OR_RETURN(fk.parent, r.GetString());
      v.fks.push_back(std::move(fk));
    }
    if (!r.AtEnd()) {
      return Status::Corruption("trailing bytes after snapshot");
    }
    return Status::OK();
  }));
  return db;
}

Status Database::Save(const std::string& path) const {
  return WriteFile(path, EncodeSnapshot());
}

Result<Database> Database::Load(const std::string& path) {
  HRDM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DecodeSnapshot(data);
}

}  // namespace hrdm::storage
