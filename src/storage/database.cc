#include "storage/database.h"

#include "storage/serializer.h"

namespace hrdm::storage {

Status Database::CreateRelation(std::string name,
                                std::vector<AttributeDef> attributes,
                                std::vector<std::string> key) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  return CreateRelation(std::move(scheme));
}

Status Database::CreateRelation(SchemePtr scheme) {
  HRDM_RETURN_IF_ERROR(catalog_.Register(scheme));
  catalog_.SetTupleCount(scheme->name(), 0);
  relations_.emplace(scheme->name(), Relation(scheme));
  return Status::OK();
}

Status Database::DropRelation(std::string_view name) {
  HRDM_RETURN_IF_ERROR(catalog_.Drop(name));
  relations_.erase(relations_.find(name));
  if (auto it = indexes_.find(name); it != indexes_.end()) indexes_.erase(it);
  for (const ForeignKey& fk : fks_) {
    if (fk.child == name || fk.parent == name) {
      // Drop dependent FK declarations silently; integrity of the rest is
      // unaffected.
    }
  }
  std::erase_if(fks_, [&](const ForeignKey& fk) {
    return fk.child == name || fk.parent == name;
  });
  return Status::OK();
}

std::vector<std::string> Database::RelationNames() const {
  return catalog_.Names();
}

Result<const Relation*> Database::Get(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + std::string(name) + " not found");
  }
  return &it->second;
}

Result<Relation*> Database::GetMutable(std::string_view name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + std::string(name) + " not found");
  }
  return &it->second;
}

Status Database::Rebind(std::string_view relation) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, catalog_.Get(relation));
  HRDM_ASSIGN_OR_RETURN(Relation * rel, GetMutable(relation));
  Relation rebound(scheme);
  for (const Tuple& t : *rel) {
    HRDM_RETURN_IF_ERROR(rebound.Insert(t.Rebind(scheme)));
  }
  *rel = std::move(rebound);
  // Every tuple object was replaced, so incremental index maintenance
  // cannot apply: rebuild against the evolved scheme.
  if (auto it = indexes_.find(relation); it != indexes_.end()) {
    HRDM_RETURN_IF_ERROR(it->second.Rebuild(*rel));
  }
  return Status::OK();
}

// --- access-path indexes -----------------------------------------------------

Status Database::CreateLifespanIndex(std::string_view relation) {
  HRDM_ASSIGN_OR_RETURN(const Relation* rel, Get(relation));
  HRDM_RETURN_IF_ERROR(catalog_.RegisterLifespanIndex(relation));
  indexes_[std::string(relation)].EnableLifespan(*rel);
  return Status::OK();
}

Status Database::CreateValueIndex(std::string_view relation,
                                  std::string_view attr) {
  HRDM_ASSIGN_OR_RETURN(const Relation* rel, Get(relation));
  HRDM_ASSIGN_OR_RETURN(size_t attr_index,
                        rel->scheme()->RequireIndex(attr));
  HRDM_RETURN_IF_ERROR(catalog_.RegisterValueIndex(relation, attr));
  indexes_[std::string(relation)].EnableValue(*rel, std::string(attr),
                                              attr_index);
  return Status::OK();
}

const RelationIndexes* Database::indexes(std::string_view relation) const {
  auto it = indexes_.find(relation);
  if (it == indexes_.end()) return nullptr;
  return &it->second;
}

Status Database::AddAttribute(std::string_view relation, AttributeDef def) {
  HRDM_RETURN_IF_ERROR(catalog_.AddAttribute(relation, std::move(def)));
  return Rebind(relation);
}

Status Database::CloseAttribute(std::string_view relation,
                                std::string_view attr, TimePoint at) {
  HRDM_RETURN_IF_ERROR(catalog_.CloseAttribute(relation, attr, at));
  return Rebind(relation);
}

Status Database::ReopenAttribute(std::string_view relation,
                                 std::string_view attr,
                                 const Lifespan& span) {
  HRDM_RETURN_IF_ERROR(catalog_.ReopenAttribute(relation, attr, span));
  return Rebind(relation);
}

Status Database::Insert(std::string_view relation, Tuple t) {
  HRDM_ASSIGN_OR_RETURN(Relation * rel, GetMutable(relation));
  HRDM_RETURN_IF_ERROR(rel->Insert(std::move(t)));
  catalog_.SetTupleCount(relation, rel->size());
  if (auto it = indexes_.find(relation); it != indexes_.end()) {
    it->second.OnInsert(rel->tuple_ptr(rel->size() - 1));
  }
  return Status::OK();
}

Result<size_t> Database::RequireTuple(const Relation& rel,
                                      const std::vector<Value>& key) const {
  auto idx = rel.FindByKey(key);
  if (!idx.has_value()) {
    std::string key_str;
    for (const Value& v : key) {
      if (!key_str.empty()) key_str += ",";
      key_str += v.ToString();
    }
    return Status::NotFound("no tuple with key (" + key_str + ") in " +
                            rel.scheme()->name());
  }
  return *idx;
}

Status Database::Assign(std::string_view relation,
                        const std::vector<Value>& key, std::string_view attr,
                        const Lifespan& span, const Value& value) {
  HRDM_ASSIGN_OR_RETURN(Relation * rel, GetMutable(relation));
  HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
  const Tuple& t = rel->tuple(idx);
  HRDM_ASSIGN_OR_RETURN(size_t ai, rel->scheme()->RequireIndex(attr));
  if (rel->scheme()->IsKey(ai)) {
    return Status::ConstraintViolation(
        "cannot Assign to key attribute " + std::string(attr) +
        " (keys are constant-valued)");
  }
  if (value.absent() || value.type() != rel->scheme()->attribute(ai).type) {
    return Status::TypeError(
        "Assign to " + std::string(attr) + " expects " +
        std::string(DomainTypeName(rel->scheme()->attribute(ai).type)) +
        ", got " +
        (value.absent() ? "absent" : std::string(DomainTypeName(value.type()))));
  }
  const Lifespan vls = t.Vls(ai);
  if (!vls.ContainsAll(span)) {
    return Status::ConstraintViolation(
        "Assign span " + span.ToString() + " escapes vls " + vls.ToString() +
        " of " + std::string(attr));
  }
  // Overwrite: keep old values outside `span`, write `value` over `span`.
  const TemporalValue& old = t.value(ai);
  HRDM_ASSIGN_OR_RETURN(TemporalValue fresh,
                        TemporalValue::Constant(span, value));
  std::vector<Segment> segs =
      old.Restrict(old.domain().Difference(span)).segments();
  const auto& fresh_segs = fresh.segments();
  segs.insert(segs.end(), fresh_segs.begin(), fresh_segs.end());
  HRDM_ASSIGN_OR_RETURN(TemporalValue merged,
                        TemporalValue::FromSegments(std::move(segs)));

  std::vector<TemporalValue> values;
  values.reserve(t.arity());
  for (size_t i = 0; i < t.arity(); ++i) {
    values.push_back(i == ai ? merged : t.value(i));
  }
  const TuplePtr old_tuple = rel->tuple_ptr(idx);
  HRDM_RETURN_IF_ERROR(rel->ReplaceAt(
      idx,
      Tuple::FromParts(rel->scheme(), t.lifespan(), std::move(values))));
  if (auto it = indexes_.find(relation); it != indexes_.end()) {
    it->second.OnReplace(old_tuple, rel->tuple_ptr(idx));
  }
  return Status::OK();
}

Status Database::AssignAt(std::string_view relation,
                          const std::vector<Value>& key,
                          std::string_view attr, TimePoint t,
                          const Value& value) {
  return Assign(relation, key, attr, Lifespan::Point(t), value);
}

Status Database::EndLifespan(std::string_view relation,
                             const std::vector<Value>& key, TimePoint at) {
  HRDM_ASSIGN_OR_RETURN(Relation * rel, GetMutable(relation));
  HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
  const Tuple& t = rel->tuple(idx);
  const Lifespan& l = t.lifespan();
  const Lifespan remaining =
      l.empty() ? l : l.Intersect(Span(l.Min(), at - 1));
  const TuplePtr old = rel->tuple_ptr(idx);
  if (remaining.empty()) {
    HRDM_RETURN_IF_ERROR(rel->EraseAt(idx));
    catalog_.SetTupleCount(relation, rel->size());
    if (auto it = indexes_.find(relation); it != indexes_.end()) {
      it->second.OnRemove(old);
    }
    return Status::OK();
  }
  HRDM_RETURN_IF_ERROR(
      rel->ReplaceAt(idx, t.Restrict(remaining, rel->scheme())));
  if (auto it = indexes_.find(relation); it != indexes_.end()) {
    it->second.OnReplace(old, rel->tuple_ptr(idx));
  }
  return Status::OK();
}

Status Database::Reincarnate(std::string_view relation,
                             const std::vector<Value>& key,
                             const Lifespan& span) {
  HRDM_ASSIGN_OR_RETURN(Relation * rel, GetMutable(relation));
  HRDM_ASSIGN_OR_RETURN(size_t idx, RequireTuple(*rel, key));
  const Tuple& t = rel->tuple(idx);
  const SchemePtr& scheme = rel->scheme();
  Lifespan extended = t.lifespan().Union(span);
  std::vector<TemporalValue> values;
  values.reserve(t.arity());
  for (size_t i = 0; i < t.arity(); ++i) {
    if (scheme->IsKey(i)) {
      // Keys stay constant and total over the extended vls.
      const Lifespan vls = extended.Intersect(scheme->AttributeLifespan(i));
      HRDM_ASSIGN_OR_RETURN(
          TemporalValue kv,
          TemporalValue::Constant(vls, t.value(i).ConstantValue()));
      values.push_back(std::move(kv));
    } else {
      values.push_back(t.value(i));
    }
  }
  const TuplePtr old = rel->tuple_ptr(idx);
  HRDM_RETURN_IF_ERROR(rel->ReplaceAt(
      idx,
      Tuple::FromParts(scheme, std::move(extended), std::move(values))));
  if (auto it = indexes_.find(relation); it != indexes_.end()) {
    it->second.OnReplace(old, rel->tuple_ptr(idx));
  }
  return Status::OK();
}

Status Database::RegisterForeignKey(std::string child,
                                    std::vector<std::string> attrs,
                                    std::string parent) {
  HRDM_ASSIGN_OR_RETURN(const Relation* c, Get(child));
  HRDM_ASSIGN_OR_RETURN(const Relation* p, Get(parent));
  // Validate arity/domains now so bad declarations fail early.
  if (p->scheme()->key().empty()) {
    return Status::InvalidArgument("FK parent " + parent + " has no key");
  }
  if (attrs.size() != p->scheme()->key().size()) {
    return Status::InvalidArgument(
        "FK attribute count does not match parent key arity");
  }
  for (size_t k = 0; k < attrs.size(); ++k) {
    HRDM_ASSIGN_OR_RETURN(size_t ci, c->scheme()->RequireIndex(attrs[k]));
    const size_t pi = p->scheme()->key_indices()[k];
    if (c->scheme()->attribute(ci).type != p->scheme()->attribute(pi).type) {
      return Status::TypeError("FK attribute " + attrs[k] +
                               " domain does not match parent key");
    }
  }
  fks_.push_back(ForeignKey{std::move(child), std::move(attrs),
                            std::move(parent)});
  return Status::OK();
}

Result<std::vector<Violation>> Database::CheckIntegrity() const {
  std::vector<Violation> all;
  for (const auto& [name, rel] : relations_) {
    HRDM_ASSIGN_OR_RETURN(std::vector<Violation> v,
                          CheckRelationWellFormed(rel));
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const ForeignKey& fk : fks_) {
    HRDM_ASSIGN_OR_RETURN(const Relation* child, Get(fk.child));
    HRDM_ASSIGN_OR_RETURN(const Relation* parent, Get(fk.parent));
    HRDM_ASSIGN_OR_RETURN(std::vector<Violation> v,
                          CheckTemporalForeignKey(*child, fk.attrs, *parent));
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

std::string Database::EncodeSnapshot() const {
  std::string out;
  PutVarint(&out, kSnapshotMagic);
  PutVarint(&out, kSnapshotVersion);
  PutVarint(&out, relations_.size());
  for (const auto& [name, rel] : relations_) {
    EncodeRelation(&out, rel);
  }
  PutVarint(&out, fks_.size());
  for (const ForeignKey& fk : fks_) {
    PutString(&out, fk.child);
    PutVarint(&out, fk.attrs.size());
    for (const std::string& a : fk.attrs) PutString(&out, a);
    PutString(&out, fk.parent);
  }
  return out;
}

Result<Database> Database::DecodeSnapshot(std::string_view data) {
  Reader r(data);
  HRDM_ASSIGN_OR_RETURN(uint64_t magic, r.GetVarint());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("not an HRDM snapshot (bad magic)");
  }
  HRDM_ASSIGN_OR_RETURN(uint64_t version, r.GetVarint());
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  Database db;
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(&r));
    HRDM_RETURN_IF_ERROR(db.catalog_.Register(rel.scheme()));
    db.catalog_.SetTupleCount(rel.scheme()->name(), rel.size());
    db.relations_.emplace(rel.scheme()->name(), std::move(rel));
  }
  HRDM_ASSIGN_OR_RETURN(uint64_t fk_n, r.GetVarint());
  for (uint64_t i = 0; i < fk_n; ++i) {
    ForeignKey fk;
    HRDM_ASSIGN_OR_RETURN(fk.child, r.GetString());
    HRDM_ASSIGN_OR_RETURN(uint64_t attr_n, r.GetVarint());
    for (uint64_t k = 0; k < attr_n; ++k) {
      HRDM_ASSIGN_OR_RETURN(std::string a, r.GetString());
      fk.attrs.push_back(std::move(a));
    }
    HRDM_ASSIGN_OR_RETURN(fk.parent, r.GetString());
    db.fks_.push_back(std::move(fk));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  return db;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += "== " + name + " ==\n";
    out += rel.scheme()->ToString();
    out += "\n";
    out += rel.ToString();
    if (const std::optional<IndexSpec> spec = catalog_.Indexes(name);
        spec.has_value()) {
      out += "indexes:";
      if (spec->lifespan) out += " lifespan";
      for (const std::string& attr : spec->value_attrs) {
        out += " value(" + attr + ")";
      }
      out += "\n";
    }
  }
  for (const ForeignKey& fk : fks_) {
    out += "fk: " + fk.child + "(";
    for (size_t i = 0; i < fk.attrs.size(); ++i) {
      if (i > 0) out += ",";
      out += fk.attrs[i];
    }
    out += ") -> " + fk.parent + "\n";
  }
  return out;
}

Status Database::Save(const std::string& path) const {
  return WriteFile(path, EncodeSnapshot());
}

Result<Database> Database::Load(const std::string& path) {
  HRDM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DecodeSnapshot(data);
}

}  // namespace hrdm::storage
