#include "storage/storage_engine.h"

#include <algorithm>

#include "storage/snapshot.h"
#include "util/file.h"

namespace hrdm::storage {

std::string StorageEngine::PathOf(const std::string& file_name) const {
  return dir_ + "/" + file_name;
}

std::string StorageEngine::wal_path() const {
  util::MutexLock lock(*mu_);
  return PathOf(WalFileName(generation_));
}

std::string StorageEngine::snapshot_path() const {
  util::MutexLock lock(*mu_);
  return PathOf(SnapshotFileName(generation_));
}

uint64_t StorageEngine::generation() const {
  util::MutexLock lock(*mu_);
  return generation_;
}

uint64_t StorageEngine::wal_records() const {
  util::MutexLock lock(*mu_);
  return wal_records_;
}

Result<StorageEngine> StorageEngine::Open(const std::string& dir,
                                          Options options) {
  HRDM_RETURN_IF_ERROR(util::CreateDirIfMissing(dir));
  StorageEngine engine(dir, options);
  // Nobody else can hold a reference yet; the lock is taken purely so the
  // thread-safety analysis can check the recovery code against the same
  // contracts as the steady-state mutators.
  util::MutexLock lock(*engine.mu_);

  // 1. Newest valid snapshot wins; a corrupt newer one falls back to the
  // previous generation rather than losing the whole database.
  HRDM_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                        util::ListDir(dir));
  std::vector<uint64_t> snapshot_gens;
  for (const std::string& name : entries) {
    auto gen = ParseGeneration(name, "snapshot-", ".hrdm");
    if (gen.ok()) snapshot_gens.push_back(*gen);
  }
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());
  bool loaded = false;
  Status first_failure = Status::OK();
  for (const uint64_t gen : snapshot_gens) {
    auto db = ReadSnapshotFile(engine.PathOf(SnapshotFileName(gen)));
    if (db.ok()) {
      engine.db_ = std::move(db).value();
      engine.generation_ = gen;
      loaded = true;
      break;
    }
    if (first_failure.ok()) first_failure = db.status();
  }
  if (!loaded && !snapshot_gens.empty()) {
    // Every snapshot on disk is damaged: refuse to silently restart from
    // empty — the operator should decide (delete the files to do so).
    return Status::Corruption(
        "no valid snapshot in " + dir +
        " (newest failure: " + first_failure.ToString() + ")");
  }
  if (!loaded) {
    // Fresh directory (possibly with a generation-0 WAL already there).
    engine.generation_ = 0;
  }

  // 2. Replay the matching WAL tail (records after the snapshot). A WAL
  // of a generation newer than the chosen snapshot cannot exist: the
  // snapshot is renamed into place before its WAL is created.
  const std::string wal_path = engine.PathOf(WalFileName(engine.generation_));
  HRDM_ASSIGN_OR_RETURN(WalContents tail, ReadWal(wal_path));
  for (const std::string& record : tail.records) {
    HRDM_RETURN_IF_ERROR(ApplyLogRecord(record, &engine.db_));
  }
  engine.wal_records_ = tail.records.size();

  // 3. Reopen for appending (drops the torn tail, if any).
  WalWriter::Options wal_options;
  wal_options.fsync = options.fsync;
  wal_options.batch_bytes = options.batch_bytes;
  HRDM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(wal_path, wal_options));
  engine.wal_.emplace(std::move(wal));

  // 4. Stale older generations (from a checkpoint that crashed between
  // rename and delete) are garbage.
  HRDM_RETURN_IF_ERROR(engine.GarbageCollect());
  return engine;
}

Status StorageEngine::GarbageCollect() {
  HRDM_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                        util::ListDir(dir_));
  for (const std::string& name : entries) {
    bool stale = false;
    if (auto gen = ParseGeneration(name, "snapshot-", ".hrdm"); gen.ok()) {
      stale = *gen < generation_;
    } else if (auto wgen = ParseGeneration(name, "wal-", ".log"); wgen.ok()) {
      stale = *wgen < generation_;
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;  // a checkpoint that crashed before its rename
    }
    if (stale) {
      HRDM_RETURN_IF_ERROR(util::RemoveFileIfExists(PathOf(name)));
    }
  }
  return Status::OK();
}

Status StorageEngine::Logged(const std::string& record, Status apply_result) {
  HRDM_RETURN_IF_ERROR(apply_result);
  HRDM_RETURN_IF_ERROR(wal_->Append(record));
  ++wal_records_;
  if (options_.checkpoint_every > 0 &&
      wal_records_ >= options_.checkpoint_every) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status StorageEngine::CreateRelation(std::string name,
                                     std::vector<AttributeDef> attributes,
                                     std::vector<std::string> key) {
  util::MutexLock lock(*mu_);
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  return Logged(EncodeCreateRelationRecord(*scheme),
                db_.CreateRelation(scheme));
}

Status StorageEngine::DropRelation(std::string_view name) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeDropRelationRecord(name), db_.DropRelation(name));
}

Status StorageEngine::Insert(std::string_view relation, Tuple t) {
  util::MutexLock lock(*mu_);
  std::string record = EncodeInsertRecord(relation, t);
  return Logged(record, db_.Insert(relation, std::move(t)));
}

Status StorageEngine::Assign(std::string_view relation,
                             const std::vector<Value>& key,
                             std::string_view attr, const Lifespan& span,
                             const Value& value) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeAssignRecord(relation, key, attr, span, value),
                db_.Assign(relation, key, attr, span, value));
}

Status StorageEngine::EndLifespan(std::string_view relation,
                                  const std::vector<Value>& key,
                                  TimePoint at) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeEndLifespanRecord(relation, key, at),
                db_.EndLifespan(relation, key, at));
}

Status StorageEngine::Reincarnate(std::string_view relation,
                                  const std::vector<Value>& key,
                                  const Lifespan& span) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeReincarnateRecord(relation, key, span),
                db_.Reincarnate(relation, key, span));
}

Status StorageEngine::AddAttribute(std::string_view relation,
                                   AttributeDef def) {
  util::MutexLock lock(*mu_);
  std::string record = EncodeAddAttributeRecord(relation, def);
  return Logged(record, db_.AddAttribute(relation, std::move(def)));
}

Status StorageEngine::CloseAttribute(std::string_view relation,
                                     std::string_view attr, TimePoint at) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeCloseAttributeRecord(relation, attr, at),
                db_.CloseAttribute(relation, attr, at));
}

Status StorageEngine::ReopenAttribute(std::string_view relation,
                                      std::string_view attr,
                                      const Lifespan& span) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeReopenAttributeRecord(relation, attr, span),
                db_.ReopenAttribute(relation, attr, span));
}

Status StorageEngine::RegisterForeignKey(std::string child,
                                         std::vector<std::string> attrs,
                                         std::string parent) {
  util::MutexLock lock(*mu_);
  const ForeignKey fk{child, attrs, parent};
  return Logged(EncodeRegisterForeignKeyRecord(fk),
                db_.RegisterForeignKey(std::move(child), std::move(attrs),
                                       std::move(parent)));
}

Status StorageEngine::CreateLifespanIndex(std::string_view relation) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeCreateLifespanIndexRecord(relation),
                db_.CreateLifespanIndex(relation));
}

Status StorageEngine::CreateValueIndex(std::string_view relation,
                                       std::string_view attr) {
  util::MutexLock lock(*mu_);
  return Logged(EncodeCreateValueIndexRecord(relation, attr),
                db_.CreateValueIndex(relation, attr));
}

Status StorageEngine::Checkpoint() {
  util::MutexLock lock(*mu_);
  return CheckpointLocked();
}

Status StorageEngine::CheckpointLocked() {
  // 1. The snapshot must not get ahead of the durable WAL: flush first.
  HRDM_RETURN_IF_ERROR(wal_->Sync());
  const uint64_t next = generation_ + 1;
  // 2. Atomic snapshot publish (temp + fsync + rename + dir fsync).
  HRDM_RETURN_IF_ERROR(
      WriteSnapshotFile(PathOf(SnapshotFileName(next)), db_,
                        /*durable=*/options_.fsync != FsyncPolicy::kOff));
  // 3. Fresh WAL for the new generation. Crash between 2 and 3: recovery
  // loads snapshot `next` and finds no wal-`next` — nothing to replay.
  WalWriter::Options wal_options;
  wal_options.fsync = options_.fsync;
  wal_options.batch_bytes = options_.batch_bytes;
  HRDM_ASSIGN_OR_RETURN(WalWriter wal,
                        WalWriter::Open(PathOf(WalFileName(next)),
                                        wal_options));
  const uint64_t previous = generation_;
  wal_.emplace(std::move(wal));
  generation_ = next;
  wal_records_ = 0;
  // 4. Best-effort cleanup of the superseded generation; Open() would GC
  // it anyway after a crash here.
  HRDM_RETURN_IF_ERROR(
      util::RemoveFileIfExists(PathOf(WalFileName(previous))));
  HRDM_RETURN_IF_ERROR(
      util::RemoveFileIfExists(PathOf(SnapshotFileName(previous))));
  return Status::OK();
}

Status StorageEngine::Sync() {
  util::MutexLock lock(*mu_);
  return wal_->Sync();
}

}  // namespace hrdm::storage
