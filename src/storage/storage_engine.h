#ifndef HRDM_STORAGE_STORAGE_ENGINE_H_
#define HRDM_STORAGE_STORAGE_ENGINE_H_

/// \file storage_engine.h
/// \brief The durable storage engine: Database + WAL + snapshots in one
/// directory, with crash recovery.
///
/// `StorageEngine` owns a directory laid out in *generations*:
///
///     dir/
///       snapshot-0000000003.hrdm    newest checkpoint (generation 3)
///       wal-0000000003.log          records appended since it
///
/// Every mutating operation is applied to the in-memory Database first
/// (mutations that fail are not logged), then its change-log record
/// (storage/changelog.h) is appended to the WAL under the configured fsync
/// policy — write-ahead in the sense that a record is on disk before the
/// operation is acknowledged, which is what makes acknowledged operations
/// durable under `FsyncPolicy::kAlways`.
///
/// `Checkpoint()` rotates generations atomically:
///   1. flush the current WAL (so the snapshot's baseline is durable);
///   2. write `snapshot-(g+1)` via write-temp + fsync + rename + dir fsync
///      (storage/snapshot.h) — crash before/through this step leaves
///      generation g fully intact;
///   3. start the empty `wal-(g+1)` (crash between 2 and 3 is fine: the
///      snapshot already contains everything, and recovery replays no
///      tail because WAL g+1 does not exist yet);
///   4. delete the generation-g files (best effort; stale generations are
///      also garbage-collected on the next Open).
///
/// `Open()` runs recovery:
///   1. pick the newest snapshot that passes its CRC + decode (falling
///      back generation by generation — a valid older pair beats a
///      bit-rotted newer snapshot);
///   2. replay the matching WAL's records in order, ignoring a torn final
///      record (storage/wal.h stops at the first incomplete/CRC-invalid
///      frame: the longest durable prefix);
///   3. truncate the torn tail and reopen the WAL for appending;
///   4. index DDL records / snapshot index registrations re-issue
///      `CreateLifespanIndex` / `CreateValueIndex`, rebuilding index data
///      from the recovered relations (indexes are derived, never stored).
///
/// Concurrency: the engine mutex serializes *writers* (so WAL-append order
/// equals apply order); *readers* never take it — `PinVersion()` hands out
/// an immutable snapshot of the database in O(1) and any number of
/// sessions (src/session/session.h) query their pins lock-free while
/// mutations keep committing. See tests/concurrency_fuzz_test.cc.
///
/// Proven by: tests/crash_recovery_test.cc (fork + SIGKILL mid-workload,
/// truncation at every WAL byte offset), tests/recovery_differential_test.cc
/// (random DML histories × crash-after-record-k ≡ in-memory replay) and
/// tests/storage_engine_test.cc (directed recovery/checkpoint cases).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/changelog.h"
#include "storage/database.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hrdm::storage {

/// \brief A Database whose mutations survive process crashes.
class StorageEngine {
 public:
  struct Options {
    /// WAL durability policy (see storage/wal.h).
    FsyncPolicy fsync = FsyncPolicy::kAlways;
    /// kBatched: fsync once this many unsynced bytes accumulate.
    size_t batch_bytes = 1 << 16;
    /// Auto-checkpoint after this many WAL records (0 = only explicit
    /// Checkpoint() calls).
    uint64_t checkpoint_every = 0;
  };

  /// \brief Opens (creating if needed) the engine directory and runs
  /// recovery (see file comment). The overload without options uses the
  /// defaults above (fsync every record).
  static Result<StorageEngine> Open(const std::string& dir, Options options);
  static Result<StorageEngine> Open(const std::string& dir);

  StorageEngine(StorageEngine&&) = default;
  StorageEngine& operator=(StorageEngine&&) = default;

  /// \brief Read access to the recovered/live database.
  ///
  /// Safe without the engine mutex: `Database`'s const surface is
  /// internally synchronized by its version cell (util/version_cell.h), so
  /// this needs no engine-level serialization. References obtained through
  /// it (`catalog()`, `Get()`) follow Database's owner-thread stability
  /// contract; cross-thread readers should pin a version via
  /// `PinVersion()` (or open a `session::Session`) instead.
  const Database& db() const { return db_; }

  /// \brief Pins the current database version: O(1), lock-free to read
  /// afterwards, and immutable for the pin's whole lifetime while logged
  /// mutations keep publishing new versions. This is the multi-session
  /// read path (src/session/session.h).
  DatabaseVersionPtr PinVersion() const { return db_.CurrentVersion(); }

  // --- logged mutations (mirror Database's DML/DDL surface) ------------------
  //
  // Each mutator acquires mu_, so concurrent callers serialize and the
  // WAL-append order matches the apply order.

  Status CreateRelation(std::string name,
                        std::vector<AttributeDef> attributes,
                        std::vector<std::string> key) EXCLUDES(mu_);
  Status DropRelation(std::string_view name) EXCLUDES(mu_);
  Status Insert(std::string_view relation, Tuple t) EXCLUDES(mu_);
  Status Assign(std::string_view relation, const std::vector<Value>& key,
                std::string_view attr, const Lifespan& span,
                const Value& value) EXCLUDES(mu_);
  Status EndLifespan(std::string_view relation,
                     const std::vector<Value>& key, TimePoint at)
      EXCLUDES(mu_);
  Status Reincarnate(std::string_view relation,
                     const std::vector<Value>& key, const Lifespan& span)
      EXCLUDES(mu_);
  Status AddAttribute(std::string_view relation, AttributeDef def)
      EXCLUDES(mu_);
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at) EXCLUDES(mu_);
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span) EXCLUDES(mu_);
  Status RegisterForeignKey(std::string child,
                            std::vector<std::string> attrs,
                            std::string parent) EXCLUDES(mu_);
  Status CreateLifespanIndex(std::string_view relation) EXCLUDES(mu_);
  Status CreateValueIndex(std::string_view relation, std::string_view attr)
      EXCLUDES(mu_);

  // --- durability controls ---------------------------------------------------

  /// \brief Writes a compacted snapshot and rotates the WAL (see file
  /// comment for the crash-safe ordering).
  Status Checkpoint() EXCLUDES(mu_);

  /// \brief Flushes the WAL to disk regardless of fsync policy.
  Status Sync() EXCLUDES(mu_);

  /// \brief Current checkpoint generation (0 before the first Checkpoint).
  uint64_t generation() const EXCLUDES(mu_);

  /// \brief Records in the current-generation WAL (replayed + appended).
  uint64_t wal_records() const EXCLUDES(mu_);

  /// \brief Paths of the live files (tests use these to injure them).
  std::string wal_path() const EXCLUDES(mu_);
  std::string snapshot_path() const EXCLUDES(mu_);

  const std::string& dir() const { return dir_; }

 private:
  StorageEngine(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  /// Applies `apply` to db_, and iff it succeeds appends `record` to the
  /// WAL (then maybe auto-checkpoints).
  Status Logged(const std::string& record, Status apply_result)
      REQUIRES(mu_);

  /// Checkpoint() body, factored out so Logged's auto-checkpoint can run
  /// it under the already-held lock.
  Status CheckpointLocked() REQUIRES(mu_);

  std::string PathOf(const std::string& file_name) const;
  Status GarbageCollect() REQUIRES(mu_);

  std::string dir_;
  Options options_;
  /// Serializes logged mutations, Checkpoint(), and Sync(): writers queue
  /// here while reader sessions run lock-free against pinned versions.
  /// Heap-allocated to keep the engine movable; `mu_` below is the raw
  /// alias clang's thread-safety analysis uses as the capability handle
  /// (always equal to mu_owner_.get(), including after a move).
  std::unique_ptr<util::Mutex> mu_owner_ = std::make_unique<util::Mutex>();
  util::Mutex* mu_ = mu_owner_.get();
  /// Not GUARDED_BY(mu_): the Database's const surface is internally
  /// synchronized (version cell), so unlocked reads are safe. Mutations
  /// still happen only inside logged mutators holding mu_ — that is what
  /// keeps WAL-append order equal to version-publish order.
  Database db_;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  uint64_t wal_records_ GUARDED_BY(mu_) = 0;
  /// Engaged after Open; optional only so the private ctor can run first.
  std::optional<WalWriter> wal_ GUARDED_BY(mu_);
};

inline Result<StorageEngine> StorageEngine::Open(const std::string& dir) {
  return Open(dir, Options());
}

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_STORAGE_ENGINE_H_
