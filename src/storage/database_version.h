#ifndef HRDM_STORAGE_DATABASE_VERSION_H_
#define HRDM_STORAGE_DATABASE_VERSION_H_

/// \file database_version.h
/// \brief One immutable version of the whole database: the unit of
/// multi-session snapshot isolation.
///
/// A `DatabaseVersion` is the root object a reader session pins: the
/// catalog, the relation roots, the access-path indexes and the foreign-key
/// registrations, frozen at one mutation boundary and tagged with a
/// monotonically increasing `id`. `Database` (storage/database.h) owns the
/// *current* version inside a `util::VersionCell` and publishes a new one
/// after every committed mutation; sessions (src/session/session.h) hold a
/// `DatabaseVersionPtr` and read it lock-free.
///
/// Copying a version is shallow — the maps hold `shared_ptr` roots, so a
/// copy is O(#relations) pointer bumps and the tuples themselves (already
/// shared immutably by the copy-on-write `Relation` design) are never
/// duplicated. Mutations clone only the specific `Relation` /
/// `RelationIndexes` object they touch, and only when an older version
/// still shares it (`use_count() > 1`); a version that has been published
/// while a reader holds a pin is therefore never written again.
///
/// The const read surface here mirrors `Database`'s: `Get`, `IndexesOf`,
/// `CheckIntegrity`, `EncodeSnapshot` and `ToString` all answer from this
/// version alone, which is what makes `ToString()` usable as the
/// isolation oracle — a session's rendering must be byte-identical for the
/// session's whole lifetime, no matter what writers commit meanwhile
/// (tests/session_isolation_test.cc, tests/concurrency_fuzz_test.cc).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "constraints/constraints.h"
#include "core/relation.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief A registered temporal foreign key: child.attrs -> parent key.
struct ForeignKey {
  std::string child;
  std::vector<std::string> attrs;
  std::string parent;
};

/// \brief An immutable snapshot of the whole database state. Fields are
/// public for the owning `Database`'s mutation helpers; everyone else
/// receives the struct as `const` through a `DatabaseVersionPtr` pin.
struct DatabaseVersion {
  /// Monotonically increasing version number (one bump per committed
  /// mutation; 0 = the empty database).
  uint64_t id = 0;
  Catalog catalog;
  /// Relation roots by name. The pointees are immutable once this version
  /// is published; mutation goes through clone-on-shared inside Database.
  std::map<std::string, std::shared_ptr<Relation>, std::less<>> relations;
  /// Access-path indexes per relation (only relations with index DDL have
  /// an entry), same sharing discipline as the relation roots.
  std::map<std::string, std::shared_ptr<RelationIndexes>, std::less<>>
      indexes;
  std::vector<ForeignKey> fks;

  /// \brief Read access to a stored relation in this version.
  Result<const Relation*> Get(std::string_view name) const;

  /// \brief The index set of `relation`; null when the relation has no
  /// indexes (or does not exist) in this version.
  const RelationIndexes* IndexesOf(std::string_view relation) const;

  /// \brief Runs all integrity checks against this version (per-relation
  /// well-formedness plus every registered temporal foreign key).
  Result<std::vector<Violation>> CheckIntegrity() const;

  /// \brief Serializes this version to a snapshot buffer (the same format
  /// as `Database::EncodeSnapshot`; index data is derived, never stored).
  std::string EncodeSnapshot() const;

  /// \brief Canonical human-readable rendering of the whole version:
  /// every relation (scheme + full tuple history, in stored order), the
  /// registered foreign keys and the index registrations. Two versions
  /// with equal ToString() are operationally identical — the oracle both
  /// the crash-recovery and the snapshot-isolation suites assert on.
  std::string ToString() const;
};

/// \brief Shared handle to a pinned, immutable database version.
using DatabaseVersionPtr = std::shared_ptr<const DatabaseVersion>;

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_DATABASE_VERSION_H_
