#include "storage/database_version.h"

#include "storage/serializer.h"

namespace hrdm::storage {

Result<const Relation*> DatabaseVersion::Get(std::string_view name) const {
  auto it = relations.find(name);
  if (it == relations.end()) {
    return Status::NotFound("relation " + std::string(name) + " not found");
  }
  return it->second.get();
}

const RelationIndexes* DatabaseVersion::IndexesOf(
    std::string_view relation) const {
  auto it = indexes.find(relation);
  if (it == indexes.end()) return nullptr;
  return it->second.get();
}

Result<std::vector<Violation>> DatabaseVersion::CheckIntegrity() const {
  std::vector<Violation> all;
  for (const auto& [name, rel] : relations) {
    HRDM_ASSIGN_OR_RETURN(std::vector<Violation> v,
                          CheckRelationWellFormed(*rel));
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const ForeignKey& fk : fks) {
    HRDM_ASSIGN_OR_RETURN(const Relation* child, Get(fk.child));
    HRDM_ASSIGN_OR_RETURN(const Relation* parent, Get(fk.parent));
    HRDM_ASSIGN_OR_RETURN(std::vector<Violation> v,
                          CheckTemporalForeignKey(*child, fk.attrs, *parent));
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

std::string DatabaseVersion::EncodeSnapshot() const {
  std::string out;
  PutVarint(&out, kSnapshotMagic);
  PutVarint(&out, kSnapshotVersion);
  PutVarint(&out, relations.size());
  for (const auto& [name, rel] : relations) {
    EncodeRelation(&out, *rel);
  }
  PutVarint(&out, fks.size());
  for (const ForeignKey& fk : fks) {
    PutString(&out, fk.child);
    PutVarint(&out, fk.attrs.size());
    for (const std::string& a : fk.attrs) PutString(&out, a);
    PutString(&out, fk.parent);
  }
  return out;
}

std::string DatabaseVersion::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations) {
    out += "== " + name + " ==\n";
    out += rel->scheme()->ToString();
    out += "\n";
    out += rel->ToString();
    if (const std::optional<IndexSpec> spec = catalog.Indexes(name);
        spec.has_value()) {
      out += "indexes:";
      if (spec->lifespan) out += " lifespan";
      for (const std::string& attr : spec->value_attrs) {
        out += " value(" + attr + ")";
      }
      out += "\n";
    }
  }
  for (const ForeignKey& fk : fks) {
    out += "fk: " + fk.child + "(";
    for (size_t i = 0; i < fk.attrs.size(); ++i) {
      if (i > 0) out += ",";
      out += fk.attrs[i];
    }
    out += ") -> " + fk.parent + "\n";
  }
  return out;
}

}  // namespace hrdm::storage
