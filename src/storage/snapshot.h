#ifndef HRDM_STORAGE_SNAPSHOT_H_
#define HRDM_STORAGE_SNAPSHOT_H_

/// \file snapshot.h
/// \brief Durable snapshot files: checkpoints of the whole database.
///
/// A snapshot file is a single CRC-framed envelope:
///
///     +--------------------------+
///     | header: "HRDMSNP" 0x01   |   8 bytes, magic + envelope version
///     +-----------+--------------+
///     | len (u32) | crc (u32)    |   frame of the envelope payload
///     +-----------+--------------+
///     | payload:                 |
///     |   varint db_image_len    |
///     |   db image (Database::   |
///     |     EncodeSnapshot)      |
///     |   index registrations    |
///     +--------------------------+
///
/// The payload carries the primary data image *plus* the catalog's index
/// registrations (which indexes exist — not their data), so that loading a
/// snapshot can re-issue the index DDL and rebuild each index from the
/// decoded relations (the same rebuild path schema evolution uses). Index
/// *data* stays derived and is never on disk.
///
/// Atomicity: `WriteSnapshotFile` goes through write-temp + fsync + rename
/// + directory fsync (util::AtomicWriteFile), so a crash during a
/// checkpoint leaves either no new snapshot or a complete one — a reader
/// can trust any snapshot file it can see, modulo the CRC check for bit
/// rot. `ReadSnapshotFile` rejects torn/corrupt envelopes with Corruption,
/// which is what lets StorageEngine::Open fall back to an older
/// generation.
///
/// File naming: checkpoints are generations — `snapshot-NNNNNNNNNN.hrdm`
/// paired with `wal-NNNNNNNNNN.log`. Checkpointing rotates the WAL:
/// snapshot N captures everything up to and including WAL N-1, and WAL N
/// holds exactly the records appended after snapshot N was written.
/// Recovery = newest valid snapshot N + the tail in WAL N (see
/// storage/storage_engine.h).

#include <cstdint>
#include <string>

#include "storage/database.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief The 8-byte snapshot envelope header: magic + version.
inline constexpr char kSnapshotFileHeader[8] = {'H', 'R', 'D', 'M',
                                                'S', 'N', 'P', '\x01'};
inline constexpr size_t kSnapshotFileHeaderSize = sizeof(kSnapshotFileHeader);

/// \brief `snapshot-<gen>.hrdm` (zero-padded, so lexicographic order is
/// generation order).
std::string SnapshotFileName(uint64_t generation);

/// \brief `wal-<gen>.log`.
std::string WalFileName(uint64_t generation);

/// \brief Parses a generation number back out of a file name produced by
/// SnapshotFileName/WalFileName; nullopt-free: returns Corruption for
/// foreign names (callers skip those files).
Result<uint64_t> ParseGeneration(std::string_view file_name,
                                 std::string_view prefix,
                                 std::string_view suffix);

/// \brief Serializes the snapshot envelope to a buffer (exposed for the
/// corruption-injection tests).
std::string EncodeSnapshotFile(const Database& db);

/// \brief Decodes an envelope buffer: CRC check, db image decode, index
/// DDL re-issue (rebuilds index data from the decoded relations).
Result<Database> DecodeSnapshotFile(std::string_view data);

/// \brief Writes the compacted image of `db` to `path` atomically
/// (write-temp + fsync + rename + directory fsync when `durable`).
Status WriteSnapshotFile(const std::string& path, const Database& db,
                         bool durable = true);

/// \brief Loads and validates a snapshot file written by WriteSnapshotFile.
Result<Database> ReadSnapshotFile(const std::string& path);

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_SNAPSHOT_H_
