#include "storage/catalog.h"

#include <algorithm>

namespace hrdm::storage {

Status Catalog::Register(SchemePtr scheme) {
  if (scheme->key().empty()) {
    return Status::InvalidArgument("base relation " + scheme->name() +
                                   " must have a key");
  }
  auto [it, inserted] = schemes_.emplace(scheme->name(), scheme);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("scheme " + scheme->name() +
                                 " already registered");
  }
  return Status::OK();
}

Status Catalog::Create(std::string name, std::vector<AttributeDef> attributes,
                       std::vector<std::string> key) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  return Register(std::move(scheme));
}

Result<SchemePtr> Catalog::Get(std::string_view name) const {
  auto it = schemes_.find(name);
  if (it == schemes_.end()) {
    return Status::NotFound("scheme " + std::string(name) +
                            " not in catalog");
  }
  return it->second;
}

bool Catalog::Contains(std::string_view name) const {
  return schemes_.find(name) != schemes_.end();
}

Status Catalog::Drop(std::string_view name) {
  auto it = schemes_.find(name);
  if (it == schemes_.end()) {
    return Status::NotFound("scheme " + std::string(name) +
                            " not in catalog");
  }
  schemes_.erase(it);
  if (auto st = stats_.find(name); st != stats_.end()) stats_.erase(st);
  if (auto ix = indexes_.find(name); ix != indexes_.end()) indexes_.erase(ix);
  return Status::OK();
}

void Catalog::SetTupleCount(std::string_view relation, size_t n) {
  if (schemes_.find(relation) == schemes_.end()) return;
  stats_[std::string(relation)].tuple_count = n;
}

std::optional<RelationStats> Catalog::Stats(std::string_view relation) const {
  auto it = stats_.find(relation);
  if (it == stats_.end()) return std::nullopt;
  return it->second;
}

Status Catalog::RegisterLifespanIndex(std::string_view relation) {
  if (!Contains(relation)) {
    return Status::NotFound("scheme " + std::string(relation) +
                            " not in catalog");
  }
  indexes_[std::string(relation)].lifespan = true;
  return Status::OK();
}

Status Catalog::RegisterValueIndex(std::string_view relation,
                                   std::string_view attr) {
  if (!Contains(relation)) {
    return Status::NotFound("scheme " + std::string(relation) +
                            " not in catalog");
  }
  IndexSpec& spec = indexes_[std::string(relation)];
  if (std::find(spec.value_attrs.begin(), spec.value_attrs.end(), attr) ==
      spec.value_attrs.end()) {
    spec.value_attrs.emplace_back(attr);
  }
  return Status::OK();
}

std::optional<IndexSpec> Catalog::Indexes(std::string_view relation) const {
  auto it = indexes_.find(relation);
  if (it == indexes_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(schemes_.size());
  for (const auto& [name, scheme] : schemes_) names.push_back(name);
  return names;
}

Status Catalog::Mutate(std::string_view relation, SchemePtr replacement) {
  auto it = schemes_.find(relation);
  if (it == schemes_.end()) {
    return Status::NotFound("scheme " + std::string(relation) +
                            " not in catalog");
  }
  it->second = std::move(replacement);
  return Status::OK();
}

Status Catalog::AddAttribute(std::string_view relation, AttributeDef def) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr old, Get(relation));
  if (old->IndexOf(def.name).has_value()) {
    return Status::AlreadyExists("attribute " + def.name + " already in " +
                                 old->name());
  }
  std::vector<AttributeDef> attrs = old->attributes();
  attrs.push_back(std::move(def));
  // Widen key lifespans to the new scheme lifespan.
  Lifespan scheme_ls;
  for (const AttributeDef& a : attrs) scheme_ls = scheme_ls.Union(a.lifespan);
  for (AttributeDef& a : attrs) {
    if (std::find(old->key().begin(), old->key().end(), a.name) !=
        old->key().end()) {
      a.lifespan = scheme_ls;
    }
  }
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr replacement,
      RelationScheme::Make(old->name(), std::move(attrs), old->key()));
  return Mutate(relation, std::move(replacement));
}

Status Catalog::CloseAttribute(std::string_view relation,
                               std::string_view attr, TimePoint at) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr old, Get(relation));
  HRDM_ASSIGN_OR_RETURN(size_t idx, old->RequireIndex(attr));
  if (old->IsKey(idx)) {
    return Status::ConstraintViolation(
        "cannot close key attribute " + std::string(attr) +
        " (key lifespans must span the scheme)");
  }
  const Lifespan& als = old->AttributeLifespan(idx);
  Lifespan closed = als.empty()
                        ? als
                        : als.Intersect(Span(als.Min(), at - 1));
  HRDM_ASSIGN_OR_RETURN(SchemePtr replacement,
                        old->WithAttributeLifespan(attr, std::move(closed)));
  return Mutate(relation, std::move(replacement));
}

Status Catalog::ReopenAttribute(std::string_view relation,
                                std::string_view attr, const Lifespan& span) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr old, Get(relation));
  HRDM_ASSIGN_OR_RETURN(size_t idx, old->RequireIndex(attr));
  Lifespan reopened = old->AttributeLifespan(idx).Union(span);
  HRDM_ASSIGN_OR_RETURN(SchemePtr replacement,
                        old->WithAttributeLifespan(attr, std::move(reopened)));
  return Mutate(relation, std::move(replacement));
}

Status Catalog::Replace(SchemePtr scheme) {
  return Mutate(scheme->name(), scheme);
}

}  // namespace hrdm::storage
