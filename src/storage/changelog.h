#ifndef HRDM_STORAGE_CHANGELOG_H_
#define HRDM_STORAGE_CHANGELOG_H_

/// \file changelog.h
/// \brief Write-ahead operation log for Database: durability by replay.
///
/// Every mutating Database operation has a corresponding log record. A log
/// replayed onto an empty Database reproduces the database state exactly
/// (verified by tests/changelog_test.cc), which gives crash recovery:
/// persist the log (append-only) and occasionally checkpoint via
/// Database::Save; on restart, load the snapshot and replay the log tail.
///
/// Records are length-prefixed so a torn final record (crash mid-append)
/// is detected and ignored rather than corrupting the replay.
///
/// Layer contract: sits beside Database at the top of the storage engine
/// and records the paper's life-cycle events (§1–2: birth, death,
/// reincarnation, temporal assignment, the Figure 6 schema-evolution
/// operations) — one record per *logical* operation, so a replayed history
/// is readable as the database's biography. Derived state (access-path
/// indexes, catalog statistics) is intentionally not logged: it is
/// advisory and rebuilt by DDL, never part of durability.

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief Kinds of logged operations.
enum class OpKind : uint8_t {
  kCreateRelation = 1,
  kDropRelation = 2,
  kInsert = 3,
  kAssign = 4,
  kEndLifespan = 5,
  kReincarnate = 6,
  kAddAttribute = 7,
  kCloseAttribute = 8,
  kReopenAttribute = 9,
  kRegisterForeignKey = 10,
};

/// \brief An append-only operation log.
class ChangeLog {
 public:
  /// \brief Number of records.
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// \brief Raw encoded bytes of the whole log (length-prefixed records).
  std::string Encode() const;

  /// \brief Decodes a log buffer. A truncated final record is dropped
  /// silently (torn write); any other corruption is an error.
  static Result<ChangeLog> Decode(std::string_view data);

  Status SaveTo(const std::string& path) const;
  static Result<ChangeLog> LoadFrom(const std::string& path);

  /// \brief Applies every record, in order, to `db`.
  Status Replay(Database* db) const;

  // --- record builders (called by LoggedDatabase) ---------------------------

  void LogCreateRelation(const RelationScheme& scheme);
  void LogDropRelation(std::string_view name);
  void LogInsert(std::string_view relation, const Tuple& t);
  void LogAssign(std::string_view relation, const std::vector<Value>& key,
                 std::string_view attr, const Lifespan& span,
                 const Value& value);
  void LogEndLifespan(std::string_view relation,
                      const std::vector<Value>& key, TimePoint at);
  void LogReincarnate(std::string_view relation,
                      const std::vector<Value>& key, const Lifespan& span);
  void LogAddAttribute(std::string_view relation, const AttributeDef& def);
  void LogCloseAttribute(std::string_view relation, std::string_view attr,
                         TimePoint at);
  void LogReopenAttribute(std::string_view relation, std::string_view attr,
                          const Lifespan& span);
  void LogRegisterForeignKey(const ForeignKey& fk);

 private:
  std::vector<std::string> records_;
};

/// \brief A Database facade that logs every successful mutation.
///
/// Usage:
///   LoggedDatabase ldb;
///   ldb.CreateRelation(...); ldb.Insert(...); ...
///   ldb.log().SaveTo("wal.bin");
/// Recovery: `ChangeLog::LoadFrom(...)` then `Replay` onto a fresh
/// Database.
class LoggedDatabase {
 public:
  Database& db() { return db_; }
  const Database& db() const { return db_; }
  const ChangeLog& log() const { return log_; }

  Status CreateRelation(std::string name,
                        std::vector<AttributeDef> attributes,
                        std::vector<std::string> key);
  Status DropRelation(std::string_view name);
  Status Insert(std::string_view relation, Tuple t);
  Status Assign(std::string_view relation, const std::vector<Value>& key,
                std::string_view attr, const Lifespan& span,
                const Value& value);
  Status EndLifespan(std::string_view relation,
                     const std::vector<Value>& key, TimePoint at);
  Status Reincarnate(std::string_view relation,
                     const std::vector<Value>& key, const Lifespan& span);
  Status AddAttribute(std::string_view relation, AttributeDef def);
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at);
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span);
  Status RegisterForeignKey(std::string child,
                            std::vector<std::string> attrs,
                            std::string parent);

 private:
  Database db_;
  ChangeLog log_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_CHANGELOG_H_
