#ifndef HRDM_STORAGE_CHANGELOG_H_
#define HRDM_STORAGE_CHANGELOG_H_

/// \file changelog.h
/// \brief Operation log for Database: durability by replay.
///
/// Every mutating Database operation has a corresponding log record. A log
/// replayed onto an empty Database reproduces the database state exactly
/// (verified by the recovery suites: tests/crash_recovery_test.cc,
/// tests/recovery_differential_test.cc and the replay equivalence check in
/// tests/dml_fuzz_test.cc), which gives crash recovery: persist each
/// record through the write-ahead log (storage/wal.h), occasionally
/// checkpoint via storage/snapshot.h; on restart, load the snapshot and
/// replay the WAL tail. `StorageEngine` (storage/storage_engine.h) is the
/// facade that wires these pieces together.
///
/// This file owns the *logical record format*: `Encode*Record` builds one
/// self-contained byte string per life-cycle operation and
/// `ApplyLogRecord` interprets one against a Database. The in-memory
/// `ChangeLog` (length-prefixed concatenation, torn final record dropped
/// on decode) remains for tests and replay benchmarks; the durable framing
/// (CRC, fsync) lives in storage/wal.h.
///
/// Layer contract: sits beside Database at the top of the storage engine
/// and records the paper's life-cycle events (§1–2: birth, death,
/// reincarnation, temporal assignment, the Figure 6 schema-evolution
/// operations) — one record per *logical* operation, so a replayed history
/// is readable as the database's biography. Index *data* (access-path
/// indexes, catalog statistics) is derived and never logged; index DDL
/// (`kCreateLifespanIndex` / `kCreateValueIndex`) *is* logged so that
/// recovery can re-issue it and rebuild the index from the recovered
/// relation (the schema-evolution rebuild path).

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief Kinds of logged operations.
enum class OpKind : uint8_t {
  kCreateRelation = 1,
  kDropRelation = 2,
  kInsert = 3,
  kAssign = 4,
  kEndLifespan = 5,
  kReincarnate = 6,
  kAddAttribute = 7,
  kCloseAttribute = 8,
  kReopenAttribute = 9,
  kRegisterForeignKey = 10,
  kCreateLifespanIndex = 11,
  kCreateValueIndex = 12,
};

// --- single-record codec -----------------------------------------------------
//
// Each record is [1-byte OpKind][operation payload]. Records are
// self-contained: ApplyLogRecord needs only the record bytes and the
// database to mutate. The WAL appends these verbatim inside its CRC
// frames.

std::string EncodeCreateRelationRecord(const RelationScheme& scheme);
std::string EncodeDropRelationRecord(std::string_view name);
std::string EncodeInsertRecord(std::string_view relation, const Tuple& t);
std::string EncodeAssignRecord(std::string_view relation,
                               const std::vector<Value>& key,
                               std::string_view attr, const Lifespan& span,
                               const Value& value);
std::string EncodeEndLifespanRecord(std::string_view relation,
                                    const std::vector<Value>& key,
                                    TimePoint at);
std::string EncodeReincarnateRecord(std::string_view relation,
                                    const std::vector<Value>& key,
                                    const Lifespan& span);
std::string EncodeAddAttributeRecord(std::string_view relation,
                                     const AttributeDef& def);
std::string EncodeCloseAttributeRecord(std::string_view relation,
                                       std::string_view attr, TimePoint at);
std::string EncodeReopenAttributeRecord(std::string_view relation,
                                        std::string_view attr,
                                        const Lifespan& span);
std::string EncodeRegisterForeignKeyRecord(const ForeignKey& fk);
std::string EncodeCreateLifespanIndexRecord(std::string_view relation);
std::string EncodeCreateValueIndexRecord(std::string_view relation,
                                         std::string_view attr);

/// \brief Decodes one record and applies it to `db`. Returns Corruption on
/// malformed bytes; otherwise whatever the Database operation returns.
Status ApplyLogRecord(std::string_view record, Database* db);

/// \brief An append-only operation log.
class ChangeLog {
 public:
  /// \brief Number of records.
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// \brief The encoded records, in append order.
  const std::vector<std::string>& records() const { return records_; }

  /// \brief Raw encoded bytes of the whole log (length-prefixed records).
  std::string Encode() const;

  /// \brief Decodes a log buffer. A truncated final record is dropped
  /// silently (torn write); any other corruption is an error.
  static Result<ChangeLog> Decode(std::string_view data);

  Status SaveTo(const std::string& path) const;
  static Result<ChangeLog> LoadFrom(const std::string& path);

  /// \brief Applies every record, in order, to `db`.
  Status Replay(Database* db) const;

  // --- record builders (called by LoggedDatabase) ---------------------------

  void LogCreateRelation(const RelationScheme& scheme);
  void LogDropRelation(std::string_view name);
  void LogInsert(std::string_view relation, const Tuple& t);
  void LogAssign(std::string_view relation, const std::vector<Value>& key,
                 std::string_view attr, const Lifespan& span,
                 const Value& value);
  void LogEndLifespan(std::string_view relation,
                      const std::vector<Value>& key, TimePoint at);
  void LogReincarnate(std::string_view relation,
                      const std::vector<Value>& key, const Lifespan& span);
  void LogAddAttribute(std::string_view relation, const AttributeDef& def);
  void LogCloseAttribute(std::string_view relation, std::string_view attr,
                         TimePoint at);
  void LogReopenAttribute(std::string_view relation, std::string_view attr,
                          const Lifespan& span);
  void LogRegisterForeignKey(const ForeignKey& fk);
  void LogCreateLifespanIndex(std::string_view relation);
  void LogCreateValueIndex(std::string_view relation, std::string_view attr);

 private:
  std::vector<std::string> records_;
};

/// \brief A Database facade that logs every successful mutation.
///
/// Usage:
///   LoggedDatabase ldb;
///   ldb.CreateRelation(...); ldb.Insert(...); ...
///   ldb.log().SaveTo("wal.bin");
/// Recovery: `ChangeLog::LoadFrom(...)` then `Replay` onto a fresh
/// Database. For recovery with CRC framing, fsync control and
/// checkpointing, use `StorageEngine` (storage/storage_engine.h) instead.
class LoggedDatabase {
 public:
  Database& db() { return db_; }
  const Database& db() const { return db_; }
  const ChangeLog& log() const { return log_; }

  Status CreateRelation(std::string name,
                        std::vector<AttributeDef> attributes,
                        std::vector<std::string> key);
  Status DropRelation(std::string_view name);
  Status Insert(std::string_view relation, Tuple t);
  Status Assign(std::string_view relation, const std::vector<Value>& key,
                std::string_view attr, const Lifespan& span,
                const Value& value);
  Status EndLifespan(std::string_view relation,
                     const std::vector<Value>& key, TimePoint at);
  Status Reincarnate(std::string_view relation,
                     const std::vector<Value>& key, const Lifespan& span);
  Status AddAttribute(std::string_view relation, AttributeDef def);
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at);
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span);
  Status RegisterForeignKey(std::string child,
                            std::vector<std::string> attrs,
                            std::string parent);
  Status CreateLifespanIndex(std::string_view relation);
  Status CreateValueIndex(std::string_view relation, std::string_view attr);

 private:
  Database db_;
  ChangeLog log_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_CHANGELOG_H_
