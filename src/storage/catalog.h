#ifndef HRDM_STORAGE_CATALOG_H_
#define HRDM_STORAGE_CATALOG_H_

/// \file catalog.h
/// \brief The schema catalog: named relation schemes and schema evolution.
///
/// Attribute lifespans make *schemes* time-varying (Section 2, Figure 6):
/// "assigning a lifespan to each attribute in a relation scheme allows the
/// user to explicitly indicate the period of time over which this
/// attribute is defined in that relation, thereby allowing for the
/// possibility of evolving schemes." The catalog exposes exactly the three
/// evolution events of the paper's Daily-Trading-Volume story:
///
///  * `AddAttribute`     — the attribute enters the scheme with a lifespan;
///  * `CloseAttribute`   — "it became too expensive to collect and so it
///    was dropped from the schema" (the attribute lifespan is truncated at
///    a chronon; history before it is retained);
///  * `ReopenAttribute`  — "the schema was expanded to once again
///    incorporate this attribute" (the lifespan gains a new interval).
///
/// Schemes are immutable; evolution replaces the registered SchemePtr.
/// Database (database.h) rebinds stored tuples after each change.
///
/// Layer contract: the catalog is pure metadata — schemes, advisory
/// per-relation statistics, and access-path index *registrations* (which
/// indexes exist; the index data itself lives in storage/index.h and is
/// owned by Database). The query optimizer reads stats and registrations
/// through function hooks (`query::CardinalityFn`, `query::IndexCatalogFn`)
/// so plans can be chosen without the query layer depending on storage
/// internals. Everything here is advisory: stale or missing entries change
/// plans, never answers.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/schema.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief Per-relation statistics kept alongside the scheme registry. The
/// query optimizer's join-strategy chooser reads these as cardinality
/// estimates (picking hash build sides); they are advisory — stale or
/// missing stats change plans, never answers.
struct RelationStats {
  size_t tuple_count = 0;
};

/// \brief Which access-path indexes are registered on a relation (the
/// optimizer's view; the index data lives in Database). Advisory like
/// RelationStats: a registration without data simply keeps the full-scan
/// path.
struct IndexSpec {
  /// A lifespan interval index over tuple lifespans exists.
  bool lifespan = false;
  /// Attributes carrying a value (equality) index.
  std::vector<std::string> value_attrs;
};

/// \brief A registry of named, keyed relation schemes with evolution
/// support.
class Catalog {
 public:
  /// \brief Registers a scheme under its own name. Errors on duplicates or
  /// keyless schemes (base relations must be keyed).
  Status Register(SchemePtr scheme);

  /// \brief Creates and registers a scheme in one step.
  Status Create(std::string name, std::vector<AttributeDef> attributes,
                std::vector<std::string> key);

  Result<SchemePtr> Get(std::string_view name) const;
  bool Contains(std::string_view name) const;
  Status Drop(std::string_view name);

  std::vector<std::string> Names() const;

  /// \brief Adds attribute `def` to scheme `relation`. Key attributes'
  /// lifespans are widened to keep spanning the scheme lifespan.
  Status AddAttribute(std::string_view relation, AttributeDef def);

  /// \brief Truncates the attribute's lifespan at chronon `at`: its new
  /// lifespan is `ALS ∩ (-inf, at-1]`. Key attributes cannot be closed.
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at);

  /// \brief Re-opens the attribute over `span` (lifespan gains `span`).
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span);

  /// \brief Replaces a registered scheme wholesale (used by Database after
  /// rebinding and by snapshot load).
  Status Replace(SchemePtr scheme);

  // --- statistics ------------------------------------------------------------

  /// \brief Records the stored tuple count of `relation` (maintained by
  /// Database after every cardinality-changing mutation). Unknown relation
  /// names are ignored (stats are advisory).
  void SetTupleCount(std::string_view relation, size_t n);

  /// \brief Stats for `relation`; nullopt when never recorded (or the
  /// relation is not in the catalog).
  std::optional<RelationStats> Stats(std::string_view relation) const;

  // --- index registrations ----------------------------------------------------

  /// \brief Records that a lifespan index exists on `relation`. Errors on
  /// unknown relations (index registrations, unlike stats, are issued by
  /// DDL and should fail loudly).
  Status RegisterLifespanIndex(std::string_view relation);

  /// \brief Records a value index on `relation`.`attr` (idempotent).
  Status RegisterValueIndex(std::string_view relation, std::string_view attr);

  /// \brief The index registrations of `relation`; nullopt when none.
  std::optional<IndexSpec> Indexes(std::string_view relation) const;

 private:
  Status Mutate(std::string_view relation, SchemePtr replacement);

  std::map<std::string, SchemePtr, std::less<>> schemes_;
  std::map<std::string, RelationStats, std::less<>> stats_;
  std::map<std::string, IndexSpec, std::less<>> indexes_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_CATALOG_H_
