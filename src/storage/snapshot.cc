#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>

#include "storage/serializer.h"
#include "util/crc32.h"
#include "util/file.h"

namespace hrdm::storage {

namespace {

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%010llu.hrdm",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string WalFileName(uint64_t generation) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(generation));
  return buf;
}

Result<uint64_t> ParseGeneration(std::string_view file_name,
                                 std::string_view prefix,
                                 std::string_view suffix) {
  if (file_name.size() <= prefix.size() + suffix.size() ||
      file_name.substr(0, prefix.size()) != prefix ||
      file_name.substr(file_name.size() - suffix.size()) != suffix) {
    return Status::Corruption("not a generation file name: " +
                              std::string(file_name));
  }
  const std::string_view digits = file_name.substr(
      prefix.size(), file_name.size() - prefix.size() - suffix.size());
  uint64_t gen = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return Status::Corruption("bad generation digits in " +
                                std::string(file_name));
    }
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  return gen;
}

std::string EncodeSnapshotFile(const Database& db) {
  // Envelope payload: framed db image + index registrations.
  std::string payload;
  {
    const std::string image = db.EncodeSnapshot();
    PutVarint(&payload, image.size());
    payload += image;
  }
  const Catalog& catalog = db.catalog();
  const std::vector<std::string> names = catalog.Names();
  // Count relations that actually carry registrations.
  std::string index_section;
  uint64_t indexed = 0;
  for (const std::string& name : names) {
    const std::optional<IndexSpec> spec = catalog.Indexes(name);
    if (!spec.has_value()) continue;
    ++indexed;
    PutString(&index_section, name);
    PutVarint(&index_section, spec->lifespan ? 1 : 0);
    PutVarint(&index_section, spec->value_attrs.size());
    for (const std::string& attr : spec->value_attrs) {
      PutString(&index_section, attr);
    }
  }
  PutVarint(&payload, indexed);
  payload += index_section;

  std::string out(kSnapshotFileHeader, kSnapshotFileHeaderSize);
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, util::Crc32c(payload));
  out += payload;
  return out;
}

Result<Database> DecodeSnapshotFile(std::string_view data) {
  if (data.size() < kSnapshotFileHeaderSize + 8) {
    return Status::Corruption("snapshot file too short");
  }
  if (std::memcmp(data.data(), kSnapshotFileHeader,
                  kSnapshotFileHeaderSize) != 0) {
    return Status::Corruption("not an HRDM snapshot file (bad magic)");
  }
  const uint32_t len = GetFixed32(data.data() + kSnapshotFileHeaderSize);
  const uint32_t crc = GetFixed32(data.data() + kSnapshotFileHeaderSize + 4);
  const std::string_view payload =
      data.substr(kSnapshotFileHeaderSize + 8);
  if (payload.size() != len) {
    return Status::Corruption("snapshot envelope length mismatch");
  }
  if (util::Crc32c(payload) != crc) {
    return Status::Corruption("snapshot envelope CRC mismatch");
  }
  Reader r(payload);
  HRDM_ASSIGN_OR_RETURN(uint64_t image_len, r.GetVarint());
  HRDM_ASSIGN_OR_RETURN(std::string image, r.GetBytes(image_len));
  HRDM_ASSIGN_OR_RETURN(Database db, Database::DecodeSnapshot(image));
  // Re-issue the index DDL: rebuilds each index from the decoded relations
  // via the same path schema evolution uses.
  HRDM_ASSIGN_OR_RETURN(uint64_t indexed, r.GetVarint());
  if (indexed > r.remaining()) {
    return Status::Corruption("snapshot index count exceeds envelope");
  }
  for (uint64_t i = 0; i < indexed; ++i) {
    HRDM_ASSIGN_OR_RETURN(std::string relation, r.GetString());
    HRDM_ASSIGN_OR_RETURN(uint64_t lifespan, r.GetVarint());
    if (lifespan > 1) return Status::Corruption("bad lifespan index flag");
    if (lifespan == 1) {
      HRDM_RETURN_IF_ERROR(db.CreateLifespanIndex(relation));
    }
    HRDM_ASSIGN_OR_RETURN(uint64_t attrs, r.GetVarint());
    if (attrs > r.remaining()) {
      return Status::Corruption("snapshot index attrs exceed envelope");
    }
    for (uint64_t a = 0; a < attrs; ++a) {
      HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      HRDM_RETURN_IF_ERROR(db.CreateValueIndex(relation, attr));
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot envelope");
  }
  return db;
}

Status WriteSnapshotFile(const std::string& path, const Database& db,
                         bool durable) {
  return util::AtomicWriteFile(path, EncodeSnapshotFile(db), durable);
}

Result<Database> ReadSnapshotFile(const std::string& path) {
  HRDM_ASSIGN_OR_RETURN(std::string data, util::ReadFileToString(path));
  return DecodeSnapshotFile(data);
}

}  // namespace hrdm::storage
