#ifndef HRDM_STORAGE_INDEX_H_
#define HRDM_STORAGE_INDEX_H_

/// \file index.h
/// \brief Storage-level access-path indexes over historical relations.
///
/// Layer contract: sits beside `Relation` inside the storage engine
/// (`Database` owns one `RelationIndexes` per indexed relation and keeps it
/// in sync with every temporal DML operation); the query layer reaches the
/// indexes only through the function hooks of `query::PlanOptions`, so the
/// plan layer never depends on storage types. Indexes are *advisory
/// candidate pruners*: a probe returns a superset of the qualifying tuples
/// and the exact per-tuple algebra kernels (SelectIfMatches,
/// TimeSliceTuple, the join pair kernels) re-check every candidate, so a
/// stale or lossy index can change performance, never answers — the same
/// contract as `Catalog`'s cardinality stats.
///
/// Two index shapes mirror the two entry-point restrictions of the paper's
/// algebra (§4.3–4.4):
///
///  * `LifespanIndex` — an interval index over tuple lifespans, answering
///    "which tuples are alive during window L" for TIME-SLICE windows and
///    windowed SELECT-IF/SELECT-WHEN evaluation. Tuples are coded one entry
///    per maximal lifespan interval, sorted by interval start, with an
///    implicit segment tree of interval ends for O(log n + k) overlap
///    queries.
///
///  * `ValueIndex` — an equality index over one attribute's values, keyed
///    by the time-invariant `JoinKeyDigest` of the value when the attribute
///    is constant over the tuple's lifespan (the paper's CD membership);
///    tuples whose value *varies* over their lifespan live in a per-chronon
///    fallback list that every probe returns (they may match any value at
///    some chronon) — exactly the hash-join design of
///    `query::HashEquiJoinCursor`, so the same index can feed a hash-join
///    build side.
///
/// Index *data* is not persisted: snapshots (`Database::Save`) carry only
/// the primary data. Index *registrations* are durable through the storage
/// engine — WAL-logged as DDL records and carried in checkpoint envelopes
/// (storage/snapshot.h) — and recovery re-issues the DDL to rebuild each
/// index from the recovered relations.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/lifespan.h"
#include "core/relation.h"
#include "core/tuple.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief Sorted interval index over tuple lifespans: answers overlap
/// queries "which tuples are alive at some chronon of L".
///
/// Entries are (interval, tuple) pairs — one per maximal interval of each
/// tuple's lifespan — kept sorted by interval begin. An implicit segment
/// tree over interval ends prunes whole subranges whose intervals all end
/// before the query window, giving O(log n + k) probes. The tree is
/// rebuilt eagerly at the end of every mutation (O(n), dominated by the
/// sorted-insert / re-sort cost already paid there), which keeps `Probe`
/// genuinely const — a published index can be probed from any number of
/// reader sessions concurrently with no hidden writes.
class LifespanIndex {
 public:
  /// \brief Adds every lifespan interval of `t`. O(intervals · n) worst
  /// case (sorted insertion); use Rebuild for bulk loads.
  void Add(const TuplePtr& t);

  /// \brief Removes every entry of the exact tuple object `t` (pointer
  /// identity — the storage engine replaces tuples wholesale). O(n).
  void Remove(const TuplePtr& t);

  /// \brief Drops everything and re-indexes `rel` in one O(n log n) pass.
  void Rebuild(const Relation& rel);

  /// \brief All tuples whose lifespan overlaps `window`, deduplicated.
  /// The result is exact for lifespans (entries are real intervals, not
  /// extents), but callers still re-apply the algebra kernel for the
  /// enclosing operator's semantics.
  std::vector<TuplePtr> Probe(const Lifespan& window) const;

  /// \brief Number of (interval, tuple) entries.
  size_t entry_count() const { return entries_.size(); }

 private:
  struct Entry {
    TimePoint begin;
    TimePoint end;
    TuplePtr tuple;
  };

  void RebuildTree();
  void Collect(size_t node, size_t lo, size_t hi, TimePoint qb, TimePoint qe,
               std::vector<const Entry*>* out) const;

  std::vector<Entry> entries_;  // sorted by begin
  /// Segment tree over entries_ holding the max interval end per subtree;
  /// rebuilt eagerly by every mutation so const probes never write.
  std::vector<TimePoint> max_end_;
};

/// \brief Equality index over one attribute: constant-valued tuples are
/// bucketed by the `JoinKeyDigest` of their value, varying-valued tuples go
/// to a fallback list every probe returns.
class ValueIndex {
 public:
  explicit ValueIndex(size_t attr_index) : attr_(attr_index) {}

  /// \brief Index of the attribute this index covers (into the relation
  /// scheme the index was built against).
  size_t attr_index() const { return attr_; }

  /// \brief Re-points the index at a (possibly shifted) attribute column
  /// after schema evolution; callers follow with Rebuild.
  void set_attr_index(size_t attr_index) { attr_ = attr_index; }

  void Add(const TuplePtr& t);
  void Remove(const TuplePtr& t);
  void Rebuild(const Relation& rel);

  /// \brief Candidate tuples for `attr = key`: the digest bucket of `key`
  /// plus every varying-valued tuple. A superset of the exact answer
  /// (digest collisions and varying tuples are filtered downstream by the
  /// predicate kernel); never misses a qualifying tuple.
  std::vector<TuplePtr> Probe(const Value& key) const;

  /// \brief Read-only view of the constant-digest buckets, keyed by the
  /// raw `JoinKeyDigest` of the bucket's (constant) attribute value — the
  /// zero-copy feed for a hash-join build side.
  const std::unordered_map<uint64_t, std::vector<TuplePtr>>& buckets() const {
    return buckets_;
  }

  /// \brief The varying-valued fallback tuples.
  const std::vector<TuplePtr>& Varying() const { return varying_; }

  size_t entry_count() const { return constant_count_ + varying_.size(); }

 private:
  size_t attr_;
  std::unordered_map<uint64_t, std::vector<TuplePtr>> buckets_;
  std::vector<TuplePtr> varying_;
  size_t constant_count_ = 0;
};

/// \brief The full index set of one stored relation, maintained by
/// `Database` through every DML mutation (birth, death, reincarnation,
/// assignment) and rebuilt after schema evolution.
class RelationIndexes {
 public:
  /// \brief Builds (or rebuilds) the lifespan index from `rel`.
  void EnableLifespan(const Relation& rel);

  /// \brief Builds (or rebuilds) a value index on attribute `attr` (at
  /// column `attr_index` of `rel`'s scheme).
  void EnableValue(const Relation& rel, std::string attr, size_t attr_index);

  bool has_lifespan() const { return lifespan_.has_value(); }
  const LifespanIndex* lifespan() const {
    return lifespan_ ? &*lifespan_ : nullptr;
  }

  /// \brief The value index on `attr`, or null when none exists.
  const ValueIndex* value(std::string_view attr) const;

  /// \brief Names of all value-indexed attributes.
  std::vector<std::string> value_attrs() const;

  // --- incremental maintenance (called by Database) ---------------------------

  void OnInsert(const TuplePtr& t);
  void OnRemove(const TuplePtr& t);
  void OnReplace(const TuplePtr& old_tuple, const TuplePtr& new_tuple);

  /// \brief Full rebuild against `rel`'s current scheme and tuples (schema
  /// evolution rebinds every tuple, so incremental maintenance cannot
  /// apply). Errors if a value-indexed attribute vanished from the scheme.
  Status Rebuild(const Relation& rel);

 private:
  std::optional<LifespanIndex> lifespan_;
  /// attr name -> value index (ordered for deterministic iteration).
  std::vector<std::pair<std::string, ValueIndex>> values_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_INDEX_H_
