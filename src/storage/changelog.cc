#include "storage/changelog.h"

#include "storage/serializer.h"

namespace hrdm::storage {

namespace {

void PutKey(std::string* out, const std::vector<Value>& key) {
  PutVarint(out, key.size());
  for (const Value& v : key) EncodeValue(out, v);
}

Result<std::vector<Value>> GetKey(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) return Status::Corruption("key too large");
  std::vector<Value> key;
  key.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    key.push_back(std::move(v));
  }
  return key;
}

void PutAttributeDef(std::string* out, const AttributeDef& def) {
  PutString(out, def.name);
  PutVarint(out, static_cast<uint64_t>(def.type));
  PutVarint(out, static_cast<uint64_t>(def.interpolation));
  EncodeLifespan(out, def.lifespan);
}

Result<AttributeDef> GetAttributeDef(Reader* r) {
  AttributeDef def;
  HRDM_ASSIGN_OR_RETURN(def.name, r->GetString());
  HRDM_ASSIGN_OR_RETURN(uint64_t type, r->GetVarint());
  if (type > static_cast<uint64_t>(DomainType::kTime)) {
    return Status::Corruption("bad domain type tag");
  }
  def.type = static_cast<DomainType>(type);
  HRDM_ASSIGN_OR_RETURN(uint64_t interp, r->GetVarint());
  if (interp > static_cast<uint64_t>(InterpolationKind::kLinear)) {
    return Status::Corruption("bad interpolation tag");
  }
  def.interpolation = static_cast<InterpolationKind>(interp);
  HRDM_ASSIGN_OR_RETURN(def.lifespan, DecodeLifespan(r));
  return def;
}

}  // namespace

std::string ChangeLog::Encode() const {
  std::string out;
  for (const std::string& rec : records_) {
    PutString(&out, rec);
  }
  return out;
}

Result<ChangeLog> ChangeLog::Decode(std::string_view data) {
  ChangeLog log;
  Reader r(data);
  while (!r.AtEnd()) {
    auto rec = r.GetString();
    if (!rec.ok()) {
      // Torn tail: keep everything decoded so far.
      break;
    }
    log.records_.push_back(std::move(rec).value());
  }
  return log;
}

Status ChangeLog::SaveTo(const std::string& path) const {
  return WriteFile(path, Encode());
}

Result<ChangeLog> ChangeLog::LoadFrom(const std::string& path) {
  HRDM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return Decode(data);
}

void ChangeLog::LogCreateRelation(const RelationScheme& scheme) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kCreateRelation));
  EncodeScheme(&rec, scheme);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogDropRelation(std::string_view name) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kDropRelation));
  PutString(&rec, name);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogInsert(std::string_view relation, const Tuple& t) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kInsert));
  PutString(&rec, relation);
  EncodeTuple(&rec, t);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogAssign(std::string_view relation,
                          const std::vector<Value>& key,
                          std::string_view attr, const Lifespan& span,
                          const Value& value) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kAssign));
  PutString(&rec, relation);
  PutKey(&rec, key);
  PutString(&rec, attr);
  EncodeLifespan(&rec, span);
  EncodeValue(&rec, value);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogEndLifespan(std::string_view relation,
                               const std::vector<Value>& key, TimePoint at) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kEndLifespan));
  PutString(&rec, relation);
  PutKey(&rec, key);
  PutSignedVarint(&rec, at);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogReincarnate(std::string_view relation,
                               const std::vector<Value>& key,
                               const Lifespan& span) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kReincarnate));
  PutString(&rec, relation);
  PutKey(&rec, key);
  EncodeLifespan(&rec, span);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogAddAttribute(std::string_view relation,
                                const AttributeDef& def) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kAddAttribute));
  PutString(&rec, relation);
  PutAttributeDef(&rec, def);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogCloseAttribute(std::string_view relation,
                                  std::string_view attr, TimePoint at) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kCloseAttribute));
  PutString(&rec, relation);
  PutString(&rec, attr);
  PutSignedVarint(&rec, at);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogReopenAttribute(std::string_view relation,
                                   std::string_view attr,
                                   const Lifespan& span) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kReopenAttribute));
  PutString(&rec, relation);
  PutString(&rec, attr);
  EncodeLifespan(&rec, span);
  records_.push_back(std::move(rec));
}

void ChangeLog::LogRegisterForeignKey(const ForeignKey& fk) {
  std::string rec;
  rec.push_back(static_cast<char>(OpKind::kRegisterForeignKey));
  PutString(&rec, fk.child);
  PutVarint(&rec, fk.attrs.size());
  for (const std::string& a : fk.attrs) PutString(&rec, a);
  PutString(&rec, fk.parent);
  records_.push_back(std::move(rec));
}

Status ChangeLog::Replay(Database* db) const {
  for (const std::string& rec : records_) {
    if (rec.empty()) return Status::Corruption("empty log record");
    const OpKind kind = static_cast<OpKind>(rec[0]);
    Reader r(std::string_view(rec).substr(1));
    switch (kind) {
      case OpKind::kCreateRelation: {
        HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, DecodeScheme(&r));
        HRDM_RETURN_IF_ERROR(db->CreateRelation(std::move(scheme)));
        break;
      }
      case OpKind::kDropRelation: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_RETURN_IF_ERROR(db->DropRelation(name));
        break;
      }
      case OpKind::kInsert: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(const Relation* rel, db->Get(name));
        HRDM_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&r, rel->scheme()));
        HRDM_RETURN_IF_ERROR(db->Insert(name, std::move(t)));
        break;
      }
      case OpKind::kAssign: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
        HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
        HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
        HRDM_ASSIGN_OR_RETURN(Value v, DecodeValue(&r));
        HRDM_RETURN_IF_ERROR(db->Assign(name, key, attr, span, v));
        break;
      }
      case OpKind::kEndLifespan: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
        HRDM_ASSIGN_OR_RETURN(int64_t at, r.GetSignedVarint());
        HRDM_RETURN_IF_ERROR(db->EndLifespan(name, key, at));
        break;
      }
      case OpKind::kReincarnate: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
        HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
        HRDM_RETURN_IF_ERROR(db->Reincarnate(name, key, span));
        break;
      }
      case OpKind::kAddAttribute: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(AttributeDef def, GetAttributeDef(&r));
        HRDM_RETURN_IF_ERROR(db->AddAttribute(name, std::move(def)));
        break;
      }
      case OpKind::kCloseAttribute: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
        HRDM_ASSIGN_OR_RETURN(int64_t at, r.GetSignedVarint());
        HRDM_RETURN_IF_ERROR(db->CloseAttribute(name, attr, at));
        break;
      }
      case OpKind::kReopenAttribute: {
        HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
        HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
        HRDM_RETURN_IF_ERROR(db->ReopenAttribute(name, attr, span));
        break;
      }
      case OpKind::kRegisterForeignKey: {
        HRDM_ASSIGN_OR_RETURN(std::string child, r.GetString());
        HRDM_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
        std::vector<std::string> attrs;
        for (uint64_t i = 0; i < n; ++i) {
          HRDM_ASSIGN_OR_RETURN(std::string a, r.GetString());
          attrs.push_back(std::move(a));
        }
        HRDM_ASSIGN_OR_RETURN(std::string parent, r.GetString());
        HRDM_RETURN_IF_ERROR(db->RegisterForeignKey(
            std::move(child), std::move(attrs), std::move(parent)));
        break;
      }
      default:
        return Status::Corruption("unknown log record kind");
    }
  }
  return Status::OK();
}

// --- LoggedDatabase ---------------------------------------------------------

Status LoggedDatabase::CreateRelation(std::string name,
                                      std::vector<AttributeDef> attributes,
                                      std::vector<std::string> key) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  HRDM_RETURN_IF_ERROR(db_.CreateRelation(scheme));
  log_.LogCreateRelation(*scheme);
  return Status::OK();
}

Status LoggedDatabase::DropRelation(std::string_view name) {
  HRDM_RETURN_IF_ERROR(db_.DropRelation(name));
  log_.LogDropRelation(name);
  return Status::OK();
}

Status LoggedDatabase::Insert(std::string_view relation, Tuple t) {
  // Apply first (on a copy), log only successful mutations.
  Tuple copy = t;
  HRDM_RETURN_IF_ERROR(db_.Insert(relation, std::move(copy)));
  log_.LogInsert(relation, t);
  return Status::OK();
}

Status LoggedDatabase::Assign(std::string_view relation,
                              const std::vector<Value>& key,
                              std::string_view attr, const Lifespan& span,
                              const Value& value) {
  HRDM_RETURN_IF_ERROR(db_.Assign(relation, key, attr, span, value));
  log_.LogAssign(relation, key, attr, span, value);
  return Status::OK();
}

Status LoggedDatabase::EndLifespan(std::string_view relation,
                                   const std::vector<Value>& key,
                                   TimePoint at) {
  HRDM_RETURN_IF_ERROR(db_.EndLifespan(relation, key, at));
  log_.LogEndLifespan(relation, key, at);
  return Status::OK();
}

Status LoggedDatabase::Reincarnate(std::string_view relation,
                                   const std::vector<Value>& key,
                                   const Lifespan& span) {
  HRDM_RETURN_IF_ERROR(db_.Reincarnate(relation, key, span));
  log_.LogReincarnate(relation, key, span);
  return Status::OK();
}

Status LoggedDatabase::AddAttribute(std::string_view relation,
                                    AttributeDef def) {
  AttributeDef copy = def;
  HRDM_RETURN_IF_ERROR(db_.AddAttribute(relation, std::move(copy)));
  log_.LogAddAttribute(relation, def);
  return Status::OK();
}

Status LoggedDatabase::CloseAttribute(std::string_view relation,
                                      std::string_view attr, TimePoint at) {
  HRDM_RETURN_IF_ERROR(db_.CloseAttribute(relation, attr, at));
  log_.LogCloseAttribute(relation, attr, at);
  return Status::OK();
}

Status LoggedDatabase::ReopenAttribute(std::string_view relation,
                                       std::string_view attr,
                                       const Lifespan& span) {
  HRDM_RETURN_IF_ERROR(db_.ReopenAttribute(relation, attr, span));
  log_.LogReopenAttribute(relation, attr, span);
  return Status::OK();
}

Status LoggedDatabase::RegisterForeignKey(std::string child,
                                          std::vector<std::string> attrs,
                                          std::string parent) {
  ForeignKey fk{child, attrs, parent};
  HRDM_RETURN_IF_ERROR(db_.RegisterForeignKey(std::move(child),
                                              std::move(attrs),
                                              std::move(parent)));
  log_.LogRegisterForeignKey(fk);
  return Status::OK();
}

}  // namespace hrdm::storage
