#include "storage/changelog.h"

#include "storage/serializer.h"

namespace hrdm::storage {

namespace {

void PutKey(std::string* out, const std::vector<Value>& key) {
  PutVarint(out, key.size());
  for (const Value& v : key) EncodeValue(out, v);
}

Result<std::vector<Value>> GetKey(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) return Status::Corruption("key too large");
  std::vector<Value> key;
  key.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    key.push_back(std::move(v));
  }
  return key;
}

void PutAttributeDef(std::string* out, const AttributeDef& def) {
  PutString(out, def.name);
  PutVarint(out, static_cast<uint64_t>(def.type));
  PutVarint(out, static_cast<uint64_t>(def.interpolation));
  EncodeLifespan(out, def.lifespan);
}

Result<AttributeDef> GetAttributeDef(Reader* r) {
  AttributeDef def;
  HRDM_ASSIGN_OR_RETURN(def.name, r->GetString());
  HRDM_ASSIGN_OR_RETURN(uint64_t type, r->GetVarint());
  if (type > static_cast<uint64_t>(DomainType::kTime)) {
    return Status::Corruption("bad domain type tag");
  }
  def.type = static_cast<DomainType>(type);
  HRDM_ASSIGN_OR_RETURN(uint64_t interp, r->GetVarint());
  if (interp > static_cast<uint64_t>(InterpolationKind::kLinear)) {
    return Status::Corruption("bad interpolation tag");
  }
  def.interpolation = static_cast<InterpolationKind>(interp);
  HRDM_ASSIGN_OR_RETURN(def.lifespan, DecodeLifespan(r));
  return def;
}

std::string RecordWithKind(OpKind kind) {
  std::string rec;
  rec.push_back(static_cast<char>(kind));
  return rec;
}

}  // namespace

// --- single-record encoders --------------------------------------------------

std::string EncodeCreateRelationRecord(const RelationScheme& scheme) {
  std::string rec = RecordWithKind(OpKind::kCreateRelation);
  EncodeScheme(&rec, scheme);
  return rec;
}

std::string EncodeDropRelationRecord(std::string_view name) {
  std::string rec = RecordWithKind(OpKind::kDropRelation);
  PutString(&rec, name);
  return rec;
}

std::string EncodeInsertRecord(std::string_view relation, const Tuple& t) {
  std::string rec = RecordWithKind(OpKind::kInsert);
  PutString(&rec, relation);
  EncodeTuple(&rec, t);
  return rec;
}

std::string EncodeAssignRecord(std::string_view relation,
                               const std::vector<Value>& key,
                               std::string_view attr, const Lifespan& span,
                               const Value& value) {
  std::string rec = RecordWithKind(OpKind::kAssign);
  PutString(&rec, relation);
  PutKey(&rec, key);
  PutString(&rec, attr);
  EncodeLifespan(&rec, span);
  EncodeValue(&rec, value);
  return rec;
}

std::string EncodeEndLifespanRecord(std::string_view relation,
                                    const std::vector<Value>& key,
                                    TimePoint at) {
  std::string rec = RecordWithKind(OpKind::kEndLifespan);
  PutString(&rec, relation);
  PutKey(&rec, key);
  PutSignedVarint(&rec, at);
  return rec;
}

std::string EncodeReincarnateRecord(std::string_view relation,
                                    const std::vector<Value>& key,
                                    const Lifespan& span) {
  std::string rec = RecordWithKind(OpKind::kReincarnate);
  PutString(&rec, relation);
  PutKey(&rec, key);
  EncodeLifespan(&rec, span);
  return rec;
}

std::string EncodeAddAttributeRecord(std::string_view relation,
                                     const AttributeDef& def) {
  std::string rec = RecordWithKind(OpKind::kAddAttribute);
  PutString(&rec, relation);
  PutAttributeDef(&rec, def);
  return rec;
}

std::string EncodeCloseAttributeRecord(std::string_view relation,
                                       std::string_view attr, TimePoint at) {
  std::string rec = RecordWithKind(OpKind::kCloseAttribute);
  PutString(&rec, relation);
  PutString(&rec, attr);
  PutSignedVarint(&rec, at);
  return rec;
}

std::string EncodeReopenAttributeRecord(std::string_view relation,
                                        std::string_view attr,
                                        const Lifespan& span) {
  std::string rec = RecordWithKind(OpKind::kReopenAttribute);
  PutString(&rec, relation);
  PutString(&rec, attr);
  EncodeLifespan(&rec, span);
  return rec;
}

std::string EncodeRegisterForeignKeyRecord(const ForeignKey& fk) {
  std::string rec = RecordWithKind(OpKind::kRegisterForeignKey);
  PutString(&rec, fk.child);
  PutVarint(&rec, fk.attrs.size());
  for (const std::string& a : fk.attrs) PutString(&rec, a);
  PutString(&rec, fk.parent);
  return rec;
}

std::string EncodeCreateLifespanIndexRecord(std::string_view relation) {
  std::string rec = RecordWithKind(OpKind::kCreateLifespanIndex);
  PutString(&rec, relation);
  return rec;
}

std::string EncodeCreateValueIndexRecord(std::string_view relation,
                                         std::string_view attr) {
  std::string rec = RecordWithKind(OpKind::kCreateValueIndex);
  PutString(&rec, relation);
  PutString(&rec, attr);
  return rec;
}

Status ApplyLogRecord(std::string_view record, Database* db) {
  if (record.empty()) return Status::Corruption("empty log record");
  const OpKind kind = static_cast<OpKind>(record[0]);
  Reader r(record.substr(1));
  switch (kind) {
    case OpKind::kCreateRelation: {
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, DecodeScheme(&r));
      return db->CreateRelation(std::move(scheme));
    }
    case OpKind::kDropRelation: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      return db->DropRelation(name);
    }
    case OpKind::kInsert: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(const Relation* rel, db->Get(name));
      HRDM_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&r, rel->scheme()));
      return db->Insert(name, std::move(t));
    }
    case OpKind::kAssign: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
      HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
      HRDM_ASSIGN_OR_RETURN(Value v, DecodeValue(&r));
      return db->Assign(name, key, attr, span, v);
    }
    case OpKind::kEndLifespan: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
      HRDM_ASSIGN_OR_RETURN(int64_t at, r.GetSignedVarint());
      return db->EndLifespan(name, key, at);
    }
    case OpKind::kReincarnate: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::vector<Value> key, GetKey(&r));
      HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
      return db->Reincarnate(name, key, span);
    }
    case OpKind::kAddAttribute: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(AttributeDef def, GetAttributeDef(&r));
      return db->AddAttribute(name, std::move(def));
    }
    case OpKind::kCloseAttribute: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      HRDM_ASSIGN_OR_RETURN(int64_t at, r.GetSignedVarint());
      return db->CloseAttribute(name, attr, at);
    }
    case OpKind::kReopenAttribute: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      HRDM_ASSIGN_OR_RETURN(Lifespan span, DecodeLifespan(&r));
      return db->ReopenAttribute(name, attr, span);
    }
    case OpKind::kRegisterForeignKey: {
      HRDM_ASSIGN_OR_RETURN(std::string child, r.GetString());
      HRDM_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
      if (n > r.remaining()) return Status::Corruption("FK attrs too large");
      std::vector<std::string> attrs;
      for (uint64_t i = 0; i < n; ++i) {
        HRDM_ASSIGN_OR_RETURN(std::string a, r.GetString());
        attrs.push_back(std::move(a));
      }
      HRDM_ASSIGN_OR_RETURN(std::string parent, r.GetString());
      return db->RegisterForeignKey(std::move(child), std::move(attrs),
                                    std::move(parent));
    }
    case OpKind::kCreateLifespanIndex: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      return db->CreateLifespanIndex(name);
    }
    case OpKind::kCreateValueIndex: {
      HRDM_ASSIGN_OR_RETURN(std::string name, r.GetString());
      HRDM_ASSIGN_OR_RETURN(std::string attr, r.GetString());
      return db->CreateValueIndex(name, attr);
    }
  }
  return Status::Corruption("unknown log record kind");
}

// --- ChangeLog ---------------------------------------------------------------

std::string ChangeLog::Encode() const {
  std::string out;
  for (const std::string& rec : records_) {
    PutString(&out, rec);
  }
  return out;
}

Result<ChangeLog> ChangeLog::Decode(std::string_view data) {
  ChangeLog log;
  Reader r(data);
  while (!r.AtEnd()) {
    auto rec = r.GetString();
    if (!rec.ok()) {
      // Torn tail: keep everything decoded so far.
      break;
    }
    log.records_.push_back(std::move(rec).value());
  }
  return log;
}

Status ChangeLog::SaveTo(const std::string& path) const {
  return WriteFile(path, Encode());
}

Result<ChangeLog> ChangeLog::LoadFrom(const std::string& path) {
  HRDM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return Decode(data);
}

void ChangeLog::LogCreateRelation(const RelationScheme& scheme) {
  records_.push_back(EncodeCreateRelationRecord(scheme));
}

void ChangeLog::LogDropRelation(std::string_view name) {
  records_.push_back(EncodeDropRelationRecord(name));
}

void ChangeLog::LogInsert(std::string_view relation, const Tuple& t) {
  records_.push_back(EncodeInsertRecord(relation, t));
}

void ChangeLog::LogAssign(std::string_view relation,
                          const std::vector<Value>& key,
                          std::string_view attr, const Lifespan& span,
                          const Value& value) {
  records_.push_back(EncodeAssignRecord(relation, key, attr, span, value));
}

void ChangeLog::LogEndLifespan(std::string_view relation,
                               const std::vector<Value>& key, TimePoint at) {
  records_.push_back(EncodeEndLifespanRecord(relation, key, at));
}

void ChangeLog::LogReincarnate(std::string_view relation,
                               const std::vector<Value>& key,
                               const Lifespan& span) {
  records_.push_back(EncodeReincarnateRecord(relation, key, span));
}

void ChangeLog::LogAddAttribute(std::string_view relation,
                                const AttributeDef& def) {
  records_.push_back(EncodeAddAttributeRecord(relation, def));
}

void ChangeLog::LogCloseAttribute(std::string_view relation,
                                  std::string_view attr, TimePoint at) {
  records_.push_back(EncodeCloseAttributeRecord(relation, attr, at));
}

void ChangeLog::LogReopenAttribute(std::string_view relation,
                                   std::string_view attr,
                                   const Lifespan& span) {
  records_.push_back(EncodeReopenAttributeRecord(relation, attr, span));
}

void ChangeLog::LogRegisterForeignKey(const ForeignKey& fk) {
  records_.push_back(EncodeRegisterForeignKeyRecord(fk));
}

void ChangeLog::LogCreateLifespanIndex(std::string_view relation) {
  records_.push_back(EncodeCreateLifespanIndexRecord(relation));
}

void ChangeLog::LogCreateValueIndex(std::string_view relation,
                                    std::string_view attr) {
  records_.push_back(EncodeCreateValueIndexRecord(relation, attr));
}

Status ChangeLog::Replay(Database* db) const {
  for (const std::string& rec : records_) {
    HRDM_RETURN_IF_ERROR(ApplyLogRecord(rec, db));
  }
  return Status::OK();
}

// --- LoggedDatabase ---------------------------------------------------------

Status LoggedDatabase::CreateRelation(std::string name,
                                      std::vector<AttributeDef> attributes,
                                      std::vector<std::string> key) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::Make(std::move(name),
                                             std::move(attributes),
                                             std::move(key)));
  HRDM_RETURN_IF_ERROR(db_.CreateRelation(scheme));
  log_.LogCreateRelation(*scheme);
  return Status::OK();
}

Status LoggedDatabase::DropRelation(std::string_view name) {
  HRDM_RETURN_IF_ERROR(db_.DropRelation(name));
  log_.LogDropRelation(name);
  return Status::OK();
}

Status LoggedDatabase::Insert(std::string_view relation, Tuple t) {
  // Apply first (on a copy), log only successful mutations.
  Tuple copy = t;
  HRDM_RETURN_IF_ERROR(db_.Insert(relation, std::move(copy)));
  log_.LogInsert(relation, t);
  return Status::OK();
}

Status LoggedDatabase::Assign(std::string_view relation,
                              const std::vector<Value>& key,
                              std::string_view attr, const Lifespan& span,
                              const Value& value) {
  HRDM_RETURN_IF_ERROR(db_.Assign(relation, key, attr, span, value));
  log_.LogAssign(relation, key, attr, span, value);
  return Status::OK();
}

Status LoggedDatabase::EndLifespan(std::string_view relation,
                                   const std::vector<Value>& key,
                                   TimePoint at) {
  HRDM_RETURN_IF_ERROR(db_.EndLifespan(relation, key, at));
  log_.LogEndLifespan(relation, key, at);
  return Status::OK();
}

Status LoggedDatabase::Reincarnate(std::string_view relation,
                                   const std::vector<Value>& key,
                                   const Lifespan& span) {
  HRDM_RETURN_IF_ERROR(db_.Reincarnate(relation, key, span));
  log_.LogReincarnate(relation, key, span);
  return Status::OK();
}

Status LoggedDatabase::AddAttribute(std::string_view relation,
                                    AttributeDef def) {
  AttributeDef copy = def;
  HRDM_RETURN_IF_ERROR(db_.AddAttribute(relation, std::move(copy)));
  log_.LogAddAttribute(relation, def);
  return Status::OK();
}

Status LoggedDatabase::CloseAttribute(std::string_view relation,
                                      std::string_view attr, TimePoint at) {
  HRDM_RETURN_IF_ERROR(db_.CloseAttribute(relation, attr, at));
  log_.LogCloseAttribute(relation, attr, at);
  return Status::OK();
}

Status LoggedDatabase::ReopenAttribute(std::string_view relation,
                                       std::string_view attr,
                                       const Lifespan& span) {
  HRDM_RETURN_IF_ERROR(db_.ReopenAttribute(relation, attr, span));
  log_.LogReopenAttribute(relation, attr, span);
  return Status::OK();
}

Status LoggedDatabase::RegisterForeignKey(std::string child,
                                          std::vector<std::string> attrs,
                                          std::string parent) {
  ForeignKey fk{child, attrs, parent};
  HRDM_RETURN_IF_ERROR(db_.RegisterForeignKey(std::move(child),
                                              std::move(attrs),
                                              std::move(parent)));
  log_.LogRegisterForeignKey(fk);
  return Status::OK();
}

Status LoggedDatabase::CreateLifespanIndex(std::string_view relation) {
  HRDM_RETURN_IF_ERROR(db_.CreateLifespanIndex(relation));
  log_.LogCreateLifespanIndex(relation);
  return Status::OK();
}

Status LoggedDatabase::CreateValueIndex(std::string_view relation,
                                        std::string_view attr) {
  HRDM_RETURN_IF_ERROR(db_.CreateValueIndex(relation, attr));
  log_.LogCreateValueIndex(relation, attr);
  return Status::OK();
}

}  // namespace hrdm::storage
