#ifndef HRDM_STORAGE_DATABASE_H_
#define HRDM_STORAGE_DATABASE_H_

/// \file database.h
/// \brief The HRDM database engine: named historical relations with
/// temporal DML, schema evolution, integrity checking and persistence.
///
/// This is the Figure 1 instance hierarchy made operational: a database is
/// a set of relations, each a set of tuples, each of which carries its own
/// lifespan. The engine supports the paper's motivating life-cycle events:
///
///  * **birth** — `Insert` records the first information about an object;
///  * **death** — `EndLifespan` stops modelling it from a chronon on;
///  * **reincarnation** — `Reincarnate` extends a lifespan with new
///    intervals ("employees can be hired, fired, and subsequently
///    re-hired");
///  * temporal updates — `Assign` writes an attribute value over a region
///    of time;
///  * schema evolution — `AddAttribute` / `CloseAttribute` /
///    `ReopenAttribute` (Figure 6), with stored tuples rebound to the
///    evolved scheme;
///  * temporal referential integrity — registered foreign keys are checked
///    over the temporal dimension (Section 1's student/course example).
///
/// Access paths: `CreateLifespanIndex`/`CreateValueIndex` build storage
/// indexes (storage/index.h) that the engine keeps in sync through every
/// DML mutation above (and rebuilds wholesale after schema evolution, which
/// rebinds every tuple). Registrations live in the catalog; the query
/// optimizer reaches both through the hooks of
/// `query::DatabasePlanOptions`.
///
/// Persistence: `Save`/`Load` write a versioned binary snapshot (the
/// physical level of Figure 9) through storage/serializer.h. The raw image
/// carries data only — index data is derived and rebuilt, never stored.
/// For crash-safe durability (WAL + checkpoints + recovery, including
/// index registrations) use storage/storage_engine.h, which wraps this
/// class.

#include <map>
#include <string>
#include <vector>

#include "constraints/constraints.h"
#include "core/relation.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "util/status.h"

namespace hrdm::storage {

/// \brief A registered temporal foreign key: child.attrs -> parent key.
struct ForeignKey {
  std::string child;
  std::vector<std::string> attrs;
  std::string parent;
};

/// \brief An in-memory HRDM database with snapshot persistence.
class Database {
 public:
  Database() = default;

  // Movable, not copyable (relations can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- schema ---------------------------------------------------------------

  /// \brief Creates an empty relation on a new keyed scheme.
  Status CreateRelation(std::string name,
                        std::vector<AttributeDef> attributes,
                        std::vector<std::string> key);

  /// \brief Creates an empty relation on an existing scheme object.
  Status CreateRelation(SchemePtr scheme);

  Status DropRelation(std::string_view name);

  const Catalog& catalog() const { return catalog_; }

  std::vector<std::string> RelationNames() const;

  /// \brief Read access to a stored relation.
  Result<const Relation*> Get(std::string_view name) const;

  // --- schema evolution (Figure 6) -------------------------------------------

  Status AddAttribute(std::string_view relation, AttributeDef def);
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at);
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span);

  // --- DML --------------------------------------------------------------------

  /// \brief Inserts a fully-built tuple (use Tuple::Builder against the
  /// relation's current scheme).
  Status Insert(std::string_view relation, Tuple t);

  /// \brief Writes `value` for `attr` of the tuple with key `key` over the
  /// chronons `span` (which must lie within the tuple's vls for that
  /// attribute). Overwrites any previously stored values there.
  Status Assign(std::string_view relation, const std::vector<Value>& key,
                std::string_view attr, const Lifespan& span,
                const Value& value);

  /// \brief Point variant of Assign.
  Status AssignAt(std::string_view relation, const std::vector<Value>& key,
                  std::string_view attr, TimePoint t, const Value& value);

  /// \brief Ends the object's lifespan at chronon `at` (exclusive): the new
  /// lifespan is `l ∩ (-inf, at-1]`. If nothing remains the tuple is
  /// removed entirely.
  Status EndLifespan(std::string_view relation, const std::vector<Value>& key,
                     TimePoint at);

  /// \brief Extends the object's lifespan by `span` (reincarnation). Key
  /// values are extended (constant) over the new chronons.
  Status Reincarnate(std::string_view relation,
                     const std::vector<Value>& key, const Lifespan& span);

  // --- access-path indexes (storage/index.h) ---------------------------------

  /// \brief Builds a lifespan interval index over `relation`'s tuple
  /// lifespans and registers it in the catalog. Idempotent (re-issuing
  /// rebuilds). O(n log n).
  Status CreateLifespanIndex(std::string_view relation);

  /// \brief Builds a value equality index on `relation`.`attr` and
  /// registers it in the catalog. Idempotent. Errors on unknown attributes.
  Status CreateValueIndex(std::string_view relation, std::string_view attr);

  /// \brief The index set of `relation`, kept in sync with every DML
  /// mutation; null when the relation has no indexes (or does not exist).
  const RelationIndexes* indexes(std::string_view relation) const;

  // --- integrity ---------------------------------------------------------------

  /// \brief Declares a temporal foreign key; validated by CheckIntegrity.
  Status RegisterForeignKey(std::string child,
                            std::vector<std::string> attrs,
                            std::string parent);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// \brief Runs all integrity checks: per-relation well-formedness plus
  /// every registered temporal foreign key. Returns the full violation
  /// list (empty == healthy).
  Result<std::vector<Violation>> CheckIntegrity() const;

  // --- persistence ----------------------------------------------------------------

  /// \brief Serializes the whole database to `path` (atomic).
  Status Save(const std::string& path) const;

  /// \brief Loads a database snapshot written by Save.
  static Result<Database> Load(const std::string& path);

  /// \brief Serializes to a buffer (used by Save and tests).
  std::string EncodeSnapshot() const;

  /// \brief Decodes a snapshot buffer.
  static Result<Database> DecodeSnapshot(std::string_view data);

  /// \brief Canonical human-readable rendering of the whole database:
  /// every relation (scheme + full tuple history, in stored order), the
  /// registered foreign keys and the index registrations. Two databases
  /// with equal ToString() are operationally identical, which is what the
  /// crash-recovery suites assert after replaying a durable prefix.
  std::string ToString() const;

 private:
  Result<Relation*> GetMutable(std::string_view name);
  Result<size_t> RequireTuple(const Relation& rel,
                              const std::vector<Value>& key) const;
  /// Rebinds every tuple of `relation` to the catalog's current scheme.
  Status Rebind(std::string_view relation);

  Catalog catalog_;
  std::map<std::string, Relation, std::less<>> relations_;
  /// Access-path indexes per relation (only relations with index DDL have
  /// an entry), maintained by every mutating operation above.
  std::map<std::string, RelationIndexes, std::less<>> indexes_;
  std::vector<ForeignKey> fks_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_DATABASE_H_
