#ifndef HRDM_STORAGE_DATABASE_H_
#define HRDM_STORAGE_DATABASE_H_

/// \file database.h
/// \brief The HRDM database engine: named historical relations with
/// temporal DML, schema evolution, integrity checking and persistence.
///
/// This is the Figure 1 instance hierarchy made operational: a database is
/// a set of relations, each a set of tuples, each of which carries its own
/// lifespan. The engine supports the paper's motivating life-cycle events:
///
///  * **birth** — `Insert` records the first information about an object;
///  * **death** — `EndLifespan` stops modelling it from a chronon on;
///  * **reincarnation** — `Reincarnate` extends a lifespan with new
///    intervals ("employees can be hired, fired, and subsequently
///    re-hired");
///  * temporal updates — `Assign` writes an attribute value over a region
///    of time;
///  * schema evolution — `AddAttribute` / `CloseAttribute` /
///    `ReopenAttribute` (Figure 6), with stored tuples rebound to the
///    evolved scheme;
///  * temporal referential integrity — registered foreign keys are checked
///    over the temporal dimension (Section 1's student/course example).
///
/// Versioning: the whole state — catalog, relation roots, indexes, foreign
/// keys — lives in one immutable `DatabaseVersion`
/// (storage/database_version.h) published through a `util::VersionCell`.
/// Every committed mutation produces the next version; `CurrentVersion()`
/// pins the latest one in O(1) and the pinned snapshot stays readable,
/// lock-free and bit-stable, for as long as the handle lives — the
/// foundation of the multi-session snapshot-isolation layer
/// (src/session/session.h). With no pin outstanding, mutations run in
/// place (the single-session fast path); with pins outstanding they
/// copy-on-write only the relation roots they touch.
///
/// Thread contract: const accessors are internally synchronized (each
/// reads one consistent version). Mutators may be called from several
/// threads (the cell serializes them), but references previously returned
/// by `catalog()` / `Get()` are only stable on the mutating thread until
/// its next mutation — concurrent readers must hold a `CurrentVersion()`
/// pin (or a Session) instead of raw references.
///
/// Access paths: `CreateLifespanIndex`/`CreateValueIndex` build storage
/// indexes (storage/index.h) that the engine keeps in sync through every
/// DML mutation above (and rebuilds wholesale after schema evolution, which
/// rebinds every tuple). Registrations live in the catalog; the query
/// optimizer reaches both through the hooks of
/// `query::DatabasePlanOptions`.
///
/// Persistence: `Save`/`Load` write a versioned binary snapshot (the
/// physical level of Figure 9) through storage/serializer.h. The raw image
/// carries data only — index data is derived and rebuilt, never stored.
/// For crash-safe durability (WAL + checkpoints + recovery, including
/// index registrations) use storage/storage_engine.h, which wraps this
/// class.

#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/database_version.h"
#include "util/status.h"
#include "util/version_cell.h"

namespace hrdm::storage {

/// \brief An in-memory HRDM database with snapshot persistence and an
/// atomically-published version chain.
class Database {
 public:
  Database();

  // Movable, not copyable (relations can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- versioned reads --------------------------------------------------------

  /// \brief Pins the current version: O(1), and the snapshot stays
  /// immutable and lock-free to read for the pin's whole lifetime.
  DatabaseVersionPtr CurrentVersion() const { return versions_->Pin(); }

  /// \brief The publish cell itself (stable address across Database moves;
  /// the storage engine aliases it for its lock-free session read path).
  const util::VersionCell<DatabaseVersion>& version_cell() const {
    return *versions_;
  }

  // --- schema ---------------------------------------------------------------

  /// \brief Creates an empty relation on a new keyed scheme.
  Status CreateRelation(std::string name,
                        std::vector<AttributeDef> attributes,
                        std::vector<std::string> key);

  /// \brief Creates an empty relation on an existing scheme object.
  Status CreateRelation(SchemePtr scheme);

  Status DropRelation(std::string_view name);

  /// \brief The current catalog. The reference is stable on the calling
  /// thread until that thread's next mutation; cross-thread readers pin a
  /// version instead.
  const Catalog& catalog() const { return versions_->Peek().catalog; }

  std::vector<std::string> RelationNames() const;

  /// \brief Read access to a stored relation (same stability contract as
  /// `catalog()`).
  Result<const Relation*> Get(std::string_view name) const {
    return versions_->Peek().Get(name);
  }

  // --- schema evolution (Figure 6) -------------------------------------------

  Status AddAttribute(std::string_view relation, AttributeDef def);
  Status CloseAttribute(std::string_view relation, std::string_view attr,
                        TimePoint at);
  Status ReopenAttribute(std::string_view relation, std::string_view attr,
                         const Lifespan& span);

  // --- DML --------------------------------------------------------------------

  /// \brief Inserts a fully-built tuple (use Tuple::Builder against the
  /// relation's current scheme).
  Status Insert(std::string_view relation, Tuple t);

  /// \brief Writes `value` for `attr` of the tuple with key `key` over the
  /// chronons `span` (which must lie within the tuple's vls for that
  /// attribute). Overwrites any previously stored values there.
  Status Assign(std::string_view relation, const std::vector<Value>& key,
                std::string_view attr, const Lifespan& span,
                const Value& value);

  /// \brief Point variant of Assign.
  Status AssignAt(std::string_view relation, const std::vector<Value>& key,
                  std::string_view attr, TimePoint t, const Value& value);

  /// \brief Ends the object's lifespan at chronon `at` (exclusive): the new
  /// lifespan is `l ∩ (-inf, at-1]`. If nothing remains the tuple is
  /// removed entirely.
  Status EndLifespan(std::string_view relation, const std::vector<Value>& key,
                     TimePoint at);

  /// \brief Extends the object's lifespan by `span` (reincarnation). Key
  /// values are extended (constant) over the new chronons.
  Status Reincarnate(std::string_view relation,
                     const std::vector<Value>& key, const Lifespan& span);

  // --- access-path indexes (storage/index.h) ---------------------------------

  /// \brief Builds a lifespan interval index over `relation`'s tuple
  /// lifespans and registers it in the catalog. Idempotent (re-issuing
  /// rebuilds). O(n log n).
  Status CreateLifespanIndex(std::string_view relation);

  /// \brief Builds a value equality index on `relation`.`attr` and
  /// registers it in the catalog. Idempotent. Errors on unknown attributes.
  Status CreateValueIndex(std::string_view relation, std::string_view attr);

  /// \brief The index set of `relation`, kept in sync with every DML
  /// mutation; null when the relation has no indexes (or does not exist).
  /// Same stability contract as `catalog()`.
  const RelationIndexes* indexes(std::string_view relation) const {
    return versions_->Peek().IndexesOf(relation);
  }

  // --- integrity ---------------------------------------------------------------

  /// \brief Declares a temporal foreign key; validated by CheckIntegrity.
  Status RegisterForeignKey(std::string child,
                            std::vector<std::string> attrs,
                            std::string parent);

  const std::vector<ForeignKey>& foreign_keys() const {
    return versions_->Peek().fks;
  }

  /// \brief Runs all integrity checks: per-relation well-formedness plus
  /// every registered temporal foreign key. Returns the full violation
  /// list (empty == healthy).
  Result<std::vector<Violation>> CheckIntegrity() const {
    return CurrentVersion()->CheckIntegrity();
  }

  // --- persistence ----------------------------------------------------------------

  /// \brief Serializes the whole database to `path` (atomic).
  Status Save(const std::string& path) const;

  /// \brief Loads a database snapshot written by Save.
  static Result<Database> Load(const std::string& path);

  /// \brief Serializes to a buffer (used by Save and tests).
  std::string EncodeSnapshot() const {
    return CurrentVersion()->EncodeSnapshot();
  }

  /// \brief Decodes a snapshot buffer.
  static Result<Database> DecodeSnapshot(std::string_view data);

  /// \brief Canonical human-readable rendering of the whole database (see
  /// DatabaseVersion::ToString — the recovery- and isolation-equality
  /// oracle).
  std::string ToString() const { return CurrentVersion()->ToString(); }

 private:
  /// Runs `fn(DatabaseVersion&)` through the version cell (in place when
  /// unpinned, copy-on-write otherwise) and bumps the version id iff it
  /// succeeds.
  template <typename Fn>
  Status Mutate(Fn&& fn);

  /// The version chain head. Heap-allocated so the cell's address (which
  /// the storage engine aliases) survives Database moves.
  std::unique_ptr<util::VersionCell<DatabaseVersion>> versions_;
};

}  // namespace hrdm::storage

#endif  // HRDM_STORAGE_DATABASE_H_
