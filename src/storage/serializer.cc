#include "storage/serializer.h"

#include "util/file.h"

namespace hrdm::storage {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutSignedVarint(std::string* out, int64_t v) {
  // Zigzag encoding.
  PutVarint(out, (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63));
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s);
}

Result<uint64_t> Reader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 63 && byte > 1) {
      return Status::Corruption("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<int64_t> Reader::GetSignedVarint() {
  HRDM_ASSIGN_OR_RETURN(uint64_t raw, GetVarint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<std::string> Reader::GetString() {
  HRDM_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  return GetBytes(len);
}

Result<std::string> Reader::GetBytes(uint64_t n) {
  if (n > remaining()) {
    return Status::Corruption("truncated string");
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

void EncodeLifespan(std::string* out, const Lifespan& l) {
  PutVarint(out, l.IntervalCount());
  // Delta-encode interval boundaries for compactness.
  TimePoint prev = 0;
  for (const Interval& iv : l.intervals()) {
    PutSignedVarint(out, iv.begin - prev);
    PutSignedVarint(out, iv.end - iv.begin);
    prev = iv.end;
  }
}

Result<Lifespan> DecodeLifespan(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("lifespan interval count exceeds buffer");
  }
  std::vector<Interval> ivs;
  ivs.reserve(n);
  TimePoint prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(int64_t db, r->GetSignedVarint());
    HRDM_ASSIGN_OR_RETURN(int64_t len, r->GetSignedVarint());
    if (len < 0) return Status::Corruption("negative interval length");
    // Fuzzed inputs can carry deltas that overflow the chronon domain;
    // checked arithmetic keeps decode UB-free.
    TimePoint begin;
    TimePoint end;
    if (__builtin_add_overflow(prev, db, &begin) ||
        __builtin_add_overflow(begin, len, &end)) {
      return Status::Corruption("interval boundary overflow");
    }
    ivs.push_back(Interval(begin, end));
    prev = end;
  }
  return Lifespan::FromIntervals(std::move(ivs));
}

void EncodeValue(std::string* out, const Value& v) {
  if (v.absent()) {
    out->push_back(0);
    return;
  }
  switch (v.type()) {
    case DomainType::kBool:
      out->push_back(1);
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case DomainType::kInt:
      out->push_back(2);
      PutSignedVarint(out, v.AsInt());
      break;
    case DomainType::kDouble: {
      out->push_back(3);
      double d = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      PutVarint(out, bits);
      break;
    }
    case DomainType::kString:
      out->push_back(4);
      PutString(out, v.AsString());
      break;
    case DomainType::kTime:
      out->push_back(5);
      PutSignedVarint(out, v.AsTime());
      break;
  }
}

Result<Value> DecodeValue(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(uint64_t tag, r->GetVarint());
  switch (tag) {
    case 0:
      return Value();
    case 1: {
      HRDM_ASSIGN_OR_RETURN(uint64_t b, r->GetVarint());
      if (b > 1) return Status::Corruption("bad bool payload");
      return Value::Bool(b == 1);
    }
    case 2: {
      HRDM_ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value::Int(i);
    }
    case 3: {
      HRDM_ASSIGN_OR_RETURN(uint64_t bits, r->GetVarint());
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case 4: {
      HRDM_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
    case 5: {
      HRDM_ASSIGN_OR_RETURN(int64_t t, r->GetSignedVarint());
      return Value::Time(t);
    }
    default:
      return Status::Corruption("unknown value tag");
  }
}

void EncodeTemporalValue(std::string* out, const TemporalValue& v) {
  PutVarint(out, v.segments().size());
  TimePoint prev = 0;
  for (const Segment& s : v.segments()) {
    PutSignedVarint(out, s.interval.begin - prev);
    PutSignedVarint(out, s.interval.end - s.interval.begin);
    prev = s.interval.end;
    EncodeValue(out, s.value);
  }
}

Result<TemporalValue> DecodeTemporalValue(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > r->remaining()) {
    return Status::Corruption("segment count exceeds buffer");
  }
  std::vector<Segment> segs;
  segs.reserve(n);
  TimePoint prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(int64_t db, r->GetSignedVarint());
    HRDM_ASSIGN_OR_RETURN(int64_t len, r->GetSignedVarint());
    if (len < 0) return Status::Corruption("negative segment length");
    TimePoint begin;
    TimePoint end;
    if (__builtin_add_overflow(prev, db, &begin) ||
        __builtin_add_overflow(begin, len, &end)) {
      return Status::Corruption("segment boundary overflow");
    }
    prev = end;
    HRDM_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    segs.push_back(Segment{Interval(begin, end), std::move(v)});
  }
  return TemporalValue::FromSegments(std::move(segs));
}

void EncodeScheme(std::string* out, const RelationScheme& s) {
  PutString(out, s.name());
  PutVarint(out, s.arity());
  for (const AttributeDef& a : s.attributes()) {
    PutString(out, a.name);
    PutVarint(out, static_cast<uint64_t>(a.type));
    PutVarint(out, static_cast<uint64_t>(a.interpolation));
    EncodeLifespan(out, a.lifespan);
  }
  PutVarint(out, s.key().size());
  for (const std::string& k : s.key()) PutString(out, k);
}

Result<SchemePtr> DecodeScheme(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(std::string name, r->GetString());
  HRDM_ASSIGN_OR_RETURN(uint64_t arity, r->GetVarint());
  if (arity > r->remaining()) {
    return Status::Corruption("scheme arity exceeds buffer");
  }
  std::vector<AttributeDef> attrs;
  attrs.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    AttributeDef a;
    HRDM_ASSIGN_OR_RETURN(a.name, r->GetString());
    HRDM_ASSIGN_OR_RETURN(uint64_t type, r->GetVarint());
    if (type > static_cast<uint64_t>(DomainType::kTime)) {
      return Status::Corruption("bad domain type tag");
    }
    a.type = static_cast<DomainType>(type);
    HRDM_ASSIGN_OR_RETURN(uint64_t interp, r->GetVarint());
    if (interp > static_cast<uint64_t>(InterpolationKind::kLinear)) {
      return Status::Corruption("bad interpolation tag");
    }
    a.interpolation = static_cast<InterpolationKind>(interp);
    HRDM_ASSIGN_OR_RETURN(a.lifespan, DecodeLifespan(r));
    attrs.push_back(std::move(a));
  }
  HRDM_ASSIGN_OR_RETURN(uint64_t key_n, r->GetVarint());
  if (key_n > arity) return Status::Corruption("key larger than scheme");
  std::vector<std::string> key;
  key.reserve(key_n);
  for (uint64_t i = 0; i < key_n; ++i) {
    HRDM_ASSIGN_OR_RETURN(std::string k, r->GetString());
    key.push_back(std::move(k));
  }
  return RelationScheme::Make(std::move(name), std::move(attrs),
                              std::move(key));
}

void EncodeTuple(std::string* out, const Tuple& t) {
  EncodeLifespan(out, t.lifespan());
  for (size_t i = 0; i < t.arity(); ++i) {
    EncodeTemporalValue(out, t.value(i));
  }
}

Result<Tuple> DecodeTuple(Reader* r, const SchemePtr& scheme) {
  HRDM_ASSIGN_OR_RETURN(Lifespan l, DecodeLifespan(r));
  std::vector<TemporalValue> values;
  values.reserve(scheme->arity());
  for (size_t i = 0; i < scheme->arity(); ++i) {
    HRDM_ASSIGN_OR_RETURN(TemporalValue v, DecodeTemporalValue(r));
    values.push_back(std::move(v));
  }
  return Tuple::FromParts(scheme, std::move(l), std::move(values));
}

void EncodeRelation(std::string* out, const Relation& rel) {
  EncodeScheme(out, *rel.scheme());
  PutVarint(out, rel.size());
  for (const Tuple& t : rel) {
    EncodeTuple(out, t);
  }
}

Result<Relation> DecodeRelation(Reader* r) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, DecodeScheme(r));
  HRDM_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  Relation rel(scheme);
  for (uint64_t i = 0; i < n; ++i) {
    HRDM_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(r, scheme));
    HRDM_RETURN_IF_ERROR(rel.Insert(std::move(t)));
  }
  return rel;
}

Status WriteFile(const std::string& path, std::string_view data) {
  // Atomic but not durable: no fsync. The durable variant (snapshots, WAL)
  // goes through util::AtomicWriteFile(durable=true) directly.
  return util::AtomicWriteFile(path, data, /*durable=*/false);
}

Result<std::string> ReadFileToString(const std::string& path) {
  return util::ReadFileToString(path);
}

}  // namespace hrdm::storage
