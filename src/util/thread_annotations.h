#ifndef HRDM_UTIL_THREAD_ANNOTATIONS_H_
#define HRDM_UTIL_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// \brief Clang thread-safety-analysis attribute macros.
///
/// These expand to Clang's `-Wthread-safety` attributes when compiling with
/// clang and to nothing elsewhere, so gcc builds are unaffected. The CI lint
/// job builds with clang and `-Werror=thread-safety`, turning the annotations
/// in util/mutex.h, util/thread_pool.h, and storage/storage_engine.h into
/// machine-checked locking contracts.
///
/// Naming follows the capability-based spelling from the Clang documentation:
///
///  * `GUARDED_BY(mu)`   — field may only be read or written with `mu` held.
///  * `REQUIRES(mu)`     — function must be called with `mu` already held.
///  * `EXCLUDES(mu)`     — function must be called with `mu` NOT held (it
///                         acquires `mu` itself; prevents self-deadlock).
///  * `ACQUIRE`/`RELEASE`/`TRY_ACQUIRE` — lock-primitive transitions.
///  * `CAPABILITY`/`SCOPED_CAPABILITY` — class-level markers for mutexes and
///                         RAII lock holders.

#if defined(__clang__) && !defined(SWIG)
#define HRDM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HRDM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define CAPABILITY(x) HRDM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY HRDM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) HRDM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) HRDM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define REQUIRES(...) \
  HRDM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define EXCLUDES(...) HRDM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ACQUIRE(...) \
  HRDM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define RELEASE(...) \
  HRDM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  HRDM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define RETURN_CAPABILITY(x) HRDM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  HRDM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // HRDM_UTIL_THREAD_ANNOTATIONS_H_
