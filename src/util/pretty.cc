#include "util/pretty.h"

#include <algorithm>
#include <vector>

#include "util/format.h"

namespace hrdm {

namespace {

/// Renders a grid of cells with a header row as an ASCII table.
std::string RenderGrid(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width(header.size());
  for (size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    line.push_back('\n');
    return line;
  };
  std::string sep = "+";
  for (size_t c = 0; c < width.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep.push_back('\n');

  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

std::vector<size_t> KeyOrder(const Relation& r) {
  std::vector<size_t> order(r.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&r](size_t a, size_t b) {
    return r.tuple(a).KeyValues() < r.tuple(b).KeyValues();
  });
  return order;
}

}  // namespace

std::string RenderHistory(const Relation& r) {
  std::vector<std::string> header;
  header.push_back("lifespan");
  for (const AttributeDef& a : r.scheme()->attributes()) {
    header.push_back(a.name);
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t i : KeyOrder(r)) {
    const Tuple& t = r.tuple(i);
    std::vector<std::string> row;
    row.push_back(t.lifespan().ToString());
    for (size_t c = 0; c < t.arity(); ++c) {
      row.push_back(t.value(c).ToString());
    }
    rows.push_back(std::move(row));
  }
  return r.scheme()->name() + "\n" + RenderGrid(header, rows);
}

std::string RenderSnapshot(const Relation& r, TimePoint t) {
  std::vector<std::string> header;
  for (const AttributeDef& a : r.scheme()->attributes()) {
    header.push_back(a.name);
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t i : KeyOrder(r)) {
    const Tuple& tup = r.tuple(i);
    if (!tup.lifespan().Contains(t)) continue;
    std::vector<std::string> row;
    for (size_t c = 0; c < tup.arity(); ++c) {
      Value v;
      if (r.materialized()) {
        v = tup.ValueAt(c, t);
      } else {
        auto mv = tup.ModelValueAt(c, t);
        if (mv.ok()) v = mv.value();
      }
      row.push_back(v.absent() ? "-" : v.ToString());
    }
    rows.push_back(std::move(row));
  }
  std::string title = r.scheme()->name() + " @ t";
  AppendInt(&title, t);
  return title + "\n" + RenderGrid(header, rows);
}

}  // namespace hrdm
