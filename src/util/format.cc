#include "util/format.h"

#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace hrdm {

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf, static_cast<size_t>(n));
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out->append(probe);
      return;
    }
  }
  out->append(buf, static_cast<size_t>(n));
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string QuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string UnescapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[i + 1]);
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  char buf[4096];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) return {};
  return std::string(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace hrdm
