#include "util/random.h"

namespace hrdm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::Identifier(size_t len) {
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlpha[Uniform(0, 25)]);
  }
  return out;
}

}  // namespace hrdm
