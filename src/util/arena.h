#ifndef HRDM_UTIL_ARENA_H_
#define HRDM_UTIL_ARENA_H_

/// \file arena.h
/// \brief A bump allocator for per-query temporaries.
///
/// The streaming executor allocates one small `Tuple` per emitted row; on
/// deep pipelines the per-object `operator new` / shared_ptr control block
/// traffic dominates the kernel cost (ROADMAP item 3). An `Arena` carves
/// objects out of large retained blocks with a pointer bump instead:
///
///  * `Allocate` returns raw aligned storage; `Create<T>` placement-
///    constructs an object and registers its destructor (run in reverse
///    order by `Reset`/the arena destructor, so non-trivial members such as
///    a Tuple's value vectors are still released).
///  * Requests too large for a block get a dedicated block of their own
///    (the large-allocation fallback), so the bump economics of the common
///    path are never poisoned by an outlier.
///  * `Reset` destroys everything and rewinds to the first retained block,
///    making per-query reuse allocation-free in steady state.
///
/// Under AddressSanitizer every block is manually poisoned: only the bytes
/// of live objects are addressable, alignment gaps and redzones between
/// neighbours stay poisoned, and `Reset` re-poisons the retained blocks —
/// so a use-after-Reset or a small overflow faults instead of silently
/// reading recycled memory (tests/arena_test.cc exercises this under the
/// sanitizer CI job).
///
/// Not thread-safe: one arena belongs to one plan's coordinator thread.
/// Morsel-parallel workers allocate through the heap as before.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

// HRDM_ASAN: 1 when compiling under AddressSanitizer (both the gcc
// -fsanitize=address macro and clang's feature test), else 0. Exposed here
// so arena-aware tests can gate their poisoning checks on it.
#if !defined(HRDM_ASAN)
#if defined(__SANITIZE_ADDRESS__)
#define HRDM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HRDM_ASAN 1
#else
#define HRDM_ASAN 0
#endif
#else
#define HRDM_ASAN 0
#endif
#endif

namespace hrdm::util {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief Raw storage of `bytes` bytes at `alignment` (a power of two).
  /// Never returns null; valid until `Reset` or destruction.
  void* Allocate(size_t bytes, size_t alignment);

  /// \brief Constructs a `T` in the arena. Non-trivially-destructible
  /// objects have their destructor registered and run (in reverse creation
  /// order) by `Reset`/`~Arena`.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    void* slot = Allocate(sizeof(T), alignof(T));
    T* obj = new (slot) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          Finalizer{[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    return obj;
  }

  /// \brief Destroys every object, releases the large-allocation blocks,
  /// and rewinds to the first retained block. Previously returned pointers
  /// are dead (and poisoned under ASan).
  void Reset();

  /// Total bytes handed out to callers since construction/Reset (excludes
  /// alignment gaps and redzones).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity currently held from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Allocations served since construction/Reset.
  size_t allocations() const { return allocations_; }
  /// Blocks currently held (retained bump blocks + dedicated large blocks).
  size_t block_count() const { return blocks_.size() + large_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };
  struct Finalizer {
    void (*fn)(void*);
    void* obj;
  };

  /// The out-of-line refill path: advances to the next retained block,
  /// grows a new one, or serves a dedicated large block.
  void* AllocateSlow(size_t bytes, size_t alignment);
  void RunFinalizers();

  size_t block_bytes_;
  std::vector<Block> blocks_;  // retained bump blocks; blocks_[current_]
  std::vector<Block> large_;   // dedicated oversized allocations
  size_t current_ = 0;
  std::byte* cur_ = nullptr;   // bump pointer into blocks_[current_]
  std::byte* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  size_t allocations_ = 0;
  std::vector<Finalizer> finalizers_;
};

}  // namespace hrdm::util

#endif  // HRDM_UTIL_ARENA_H_
