#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace hrdm::util {

ThreadPool::ThreadPool(size_t workers) {
  // Workers started here block on mu_ until construction finishes.
  MutexLock lock(mu_);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

size_t ThreadPool::worker_count() const {
  MutexLock lock(mu_);
  return workers_.size();
}

std::future<void> ThreadPool::Submit(std::function<void(size_t)> fn) {
  std::packaged_task<void(size_t)> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    MutexLock lock(mu_);
    if (!stopping_ && !workers_.empty()) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return future;
    }
  }
  // Inline execution: zero-worker pool, or a pool already shut down. The
  // packaged task still routes exceptions into the future.
  task(0);
  return future;
}

void ThreadPool::WorkerLoop(size_t id) {
  while (true) {
    std::packaged_task<void(size_t)> task;
    {
      MutexLock lock(mu_);
      // condition_variable_any waits on the annotated Mutex directly; mu_ is
      // held again whenever the predicate runs and when the wait returns.
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(id);
  }
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    workers.swap(workers_);
  }
  // Workers see stopping_ and exit only once the queue is drained, so
  // every submitted future completes before the join.
  cv_.notify_all();
  for (std::thread& w : workers) w.join();
}

void ThreadPool::EnsureWorkers(size_t n) {
  MutexLock lock(mu_);
  if (stopping_) return;
  while (workers_.size() < n) {
    const size_t id = workers_.size();
    workers_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool& SharedThreadPool(size_t min_workers) {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives all plans
  pool->EnsureWorkers(min_workers);
  return *pool;
}

Status ParallelMorsels(
    ThreadPool& pool, size_t n, size_t morsel,
    const std::function<Status(size_t begin, size_t end, size_t worker_id)>&
        body,
    size_t* morsels_out) {
  if (morsel == 0) morsel = 1;
  const size_t count = n == 0 ? 0 : (n + morsel - 1) / morsel;
  if (morsels_out != nullptr) *morsels_out = count;
  if (count == 0) return Status::OK();
  if (count == 1) return body(0, n, 0);

  std::vector<Status> statuses(count, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t m = 0; m < count; ++m) {
    const size_t begin = m * morsel;
    const size_t end = std::min(n, begin + morsel);
    futures.push_back(pool.Submit([&body, &statuses, m, begin, end](
                                      size_t worker_id) {
      statuses[m] = body(begin, end, worker_id);
    }));
  }
  for (std::future<void>& f : futures) f.get();  // rethrows task exceptions
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace hrdm::util
