#ifndef HRDM_UTIL_THREAD_POOL_H_
#define HRDM_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief The shared worker pool behind morsel-parallel query execution.
///
/// A fixed set of worker threads drains one FIFO task queue. Tasks are
/// plain callables receiving the id of the worker that runs them (ids are
/// dense in `[0, worker_count())`), so callers can keep per-worker
/// accumulators without any synchronisation beyond the final join. Every
/// `Submit` returns a future; exceptions thrown by a task are captured and
/// rethrown from `future::get()`.
///
/// Design points, in order of importance to the query layer
/// (query/plan.cc):
///
///  * **Coordinator waits, workers never do.** Cursor code runs on the
///    query (coordinator) thread and blocks on task futures; tasks are
///    leaf kernels (interpolation, digesting, pair tests, aggregate folds)
///    that never submit work or take locks, so the pool cannot deadlock on
///    itself and a morsel's cost is the kernel's cost.
///  * **Zero workers = inline execution.** `ThreadPool(0)` runs every task
///    on the submitting thread inside `Submit` (worker id 0). This is the
///    degenerate pool the unit tests pin down, and it makes "parallel"
///    code paths runnable single-threaded without a special case.
///  * **Shutdown drains.** `Shutdown()` (and the destructor) stops
///    accepting new work, runs every already-queued task, and joins — so
///    no future returned by `Submit` is ever abandoned.
///  * **Growth, never shrink.** `EnsureWorkers(n)` adds workers up to `n`;
///    the process-wide `SharedThreadPool(n)` uses it so the pool is sized
///    by the largest parallelism any plan has requested. Worker ids stay
///    stable across growth.
///
/// `ParallelMorsels` is the fan-out helper the physical operators use:
/// split `[0, n)` into fixed-size morsels, run a Status-returning body per
/// morsel on the pool, wait for all of them, and surface the first error
/// in morsel order (deterministic, like the serial loop's first error).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hrdm::util {

/// \brief A fixed-size worker pool over one FIFO task queue.
class ThreadPool {
 public:
  /// \brief Spawns `workers` threads. 0 is valid: tasks then run inline on
  /// the submitting thread (see file comment).
  explicit ThreadPool(size_t workers);

  /// \brief Calls Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of worker threads (0 for the inline pool).
  size_t worker_count() const EXCLUDES(mu_);

  /// \brief Enqueues `fn`; it runs on some worker, receiving that worker's
  /// id. The returned future completes when the task finishes and rethrows
  /// anything the task threw. Submitting after Shutdown() runs the task
  /// inline (the pool is still usable as a degenerate inline executor).
  std::future<void> Submit(std::function<void(size_t worker_id)> fn)
      EXCLUDES(mu_);

  /// \brief Stops accepting queued work, runs every already-queued task,
  /// and joins all workers. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  /// \brief Grows the pool to at least `n` workers (never shrinks; no-op
  /// after Shutdown).
  void EnsureWorkers(size_t n) EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t id) EXCLUDES(mu_);

  mutable Mutex mu_;
  /// `_any` because it waits on the annotated Mutex, not std::mutex.
  std::condition_variable_any cv_;
  std::deque<std::packaged_task<void(size_t)>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

/// \brief The process-wide pool shared by every parallel query operator,
/// grown on demand to at least `min_workers`. Never shrinks; torn down at
/// process exit. Thread-safe.
ThreadPool& SharedThreadPool(size_t min_workers);

/// \brief Splits `[0, n)` into morsels of at most `morsel` items, runs
/// `body(begin, end, worker_id)` for each on `pool`, waits for all, and
/// returns the first non-OK status in morsel order (or OK). `body` must be
/// safe to run concurrently with itself on disjoint ranges. Returns the
/// number of morsels dispatched via `*morsels_out` when non-null.
Status ParallelMorsels(
    ThreadPool& pool, size_t n, size_t morsel,
    const std::function<Status(size_t begin, size_t end, size_t worker_id)>&
        body,
    size_t* morsels_out = nullptr);

}  // namespace hrdm::util

#endif  // HRDM_UTIL_THREAD_POOL_H_
