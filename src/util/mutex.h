#ifndef HRDM_UTIL_MUTEX_H_
#define HRDM_UTIL_MUTEX_H_

/// \file mutex.h
/// \brief An annotated mutex and RAII lock for Clang thread-safety analysis.
///
/// `std::mutex` carries no capability annotations, so `-Wthread-safety`
/// cannot reason about code that uses it directly. `Mutex` wraps it with the
/// `CAPABILITY` attribute and `MutexLock` is the `SCOPED_CAPABILITY` RAII
/// holder; together they let `GUARDED_BY`/`REQUIRES` contracts on fields and
/// functions be checked at compile time (see util/thread_annotations.h).
///
/// `Mutex` satisfies *BasicLockable* (lower-case `lock`/`unlock`), so
/// `std::condition_variable_any` can wait on it directly — the pattern the
/// thread pool's worker loop uses. The condition variable's internal
/// unlock/relock is invisible to the analysis, which is sound here because
/// the capability is held again by the time `wait` returns.

#include <mutex>

#include "util/thread_annotations.h"

namespace hrdm::util {

/// \brief A `std::mutex` with thread-safety capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII holder: acquires `mu` on construction, releases on scope exit.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace hrdm::util

#endif  // HRDM_UTIL_MUTEX_H_
