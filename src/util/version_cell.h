#ifndef HRDM_UTIL_VERSION_CELL_H_
#define HRDM_UTIL_VERSION_CELL_H_

/// \file version_cell.h
/// \brief The version-publish primitive behind multi-session snapshot
/// isolation: a mutex-annotated cell owning the current version of an
/// immutable-once-published value, with O(1) pinning and copy-on-write
/// updates.
///
/// The protocol has two sides:
///
///  * **Readers** call `Pin()` and receive a shared handle to the version
///    current at that instant. A pinned version is never mutated again —
///    every subsequent `Update` either copies it first or runs only when
///    no pin is outstanding — so the reader may use it from any thread,
///    without any lock, for as long as it keeps the handle alive.
///
///  * **Writers** call `Update(mutate)`. When no pin is outstanding
///    (`use_count() == 1`: the cell is the sole owner) the mutation runs
///    against the live value *while holding the cell mutex*, so a
///    concurrent `Pin` can never observe a half-applied mutation — this is
///    the single-session fast path, identical in cost to mutating a plain
///    object plus one uncontended lock. Otherwise the value is copied, the
///    mutation runs against the private copy with no lock held, and the
///    copy is published atomically iff the mutation succeeds — pinned
///    readers keep their old version untouched. For this to be cheap, T's
///    copy constructor should be shallow (shared roots), which is exactly
///    how `storage::DatabaseVersion` is laid out.
///
/// Concurrent `Update` calls are serialized on a dedicated writer mutex
/// (acquired before the publish mutex, never the other way around), so
/// two writers cannot lose each other's updates by copying the same base.
/// `Pin` only ever touches the publish mutex, and only for the duration
/// of one shared_ptr copy — writers stall pins during an *in-place*
/// mutation (which by definition has no concurrent readers to serve) and
/// for a pointer swap otherwise.

#include <memory>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hrdm::util {

/// \brief Holder of the current version of a copy-on-write value `T`.
template <typename T>
class VersionCell {
 public:
  explicit VersionCell(std::shared_ptr<T> initial)
      : head_(std::move(initial)) {}

  VersionCell(const VersionCell&) = delete;
  VersionCell& operator=(const VersionCell&) = delete;

  /// \brief Pins the current version: the returned snapshot is immutable
  /// for its whole lifetime and safe to read from any thread.
  std::shared_ptr<const T> Pin() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return head_;
  }

  /// \brief Borrows the current version without pinning it. The reference
  /// is stable across in-place updates (same object) but dies with the
  /// next copy-on-write publish, so cross-thread readers must use Pin();
  /// this is the owner-thread accessor backing `Database::catalog()` etc.
  const T& Peek() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return *head_;
  }

  /// \brief Applies `mutate` (signature `Status(T&)` or any result with
  /// `.ok()`) to the current version and publishes the outcome: in place
  /// under the cell mutex when nobody has the version pinned, against a
  /// private copy (published only on success) otherwise. Failed copy-path
  /// mutations leave the published version untouched; failed in-place
  /// mutations leave whatever the callback itself left (same contract as
  /// mutating a plain object).
  template <typename Fn>
  auto Update(Fn&& mutate) EXCLUDES(writer_mu_, mu_) {
    MutexLock serialize(writer_mu_);
    std::shared_ptr<T> base;
    {
      MutexLock lock(mu_);
      if (head_.use_count() == 1) {
        // Sole owner: no pin exists and none can be taken while we hold
        // mu_, so mutating in place is invisible to readers.
        return mutate(*head_);
      }
      base = head_;
    }
    auto scratch = std::make_shared<T>(*base);
    base.reset();
    auto result = mutate(*scratch);
    if (result.ok()) {
      MutexLock lock(mu_);
      head_ = std::move(scratch);
    }
    return result;
  }

 private:
  /// Serializes whole Update bodies (copy + mutate + publish) so
  /// concurrent writers cannot copy the same base and lose an update.
  Mutex writer_mu_;
  /// Guards the head pointer itself; held only for pointer copies/swaps
  /// and for the body of in-place (reader-free) mutations.
  mutable Mutex mu_;
  std::shared_ptr<T> head_ GUARDED_BY(mu_);
};

}  // namespace hrdm::util

#endif  // HRDM_UTIL_VERSION_CELL_H_
