#ifndef HRDM_UTIL_PRETTY_H_
#define HRDM_UTIL_PRETTY_H_

/// \file pretty.h
/// \brief Human-oriented table rendering of historical relations.
///
/// Two views are provided, matching the paper's presentation style:
///  * `RenderHistory`  — one row per tuple, attribute cells show the
///    segment-coded temporal function (like Figure 8);
///  * `RenderSnapshot` — the classical flat table of the relation's state
///    at one chronon (a time-slice of the 3-D cube of Figure 10).

#include <string>

#include "core/relation.h"
#include "core/time.h"

namespace hrdm {

/// \brief Renders the full history of `r` as an ASCII table. One row per
/// tuple, first column the tuple lifespan, then one column per attribute
/// showing the stored temporal function.
std::string RenderHistory(const Relation& r);

/// \brief Renders the snapshot of `r` at chronon `t` as a classical table.
/// Tuples whose lifespan does not contain `t` are omitted; attribute values
/// are model-level (interpolated). Undefined values render as `-`.
std::string RenderSnapshot(const Relation& r, TimePoint t);

}  // namespace hrdm

#endif  // HRDM_UTIL_PRETTY_H_
