#include "util/arena.h"

#include <cstdint>

#if HRDM_ASAN
#include <sanitizer/asan_interface.h>
#define HRDM_ARENA_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define HRDM_ARENA_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define HRDM_ARENA_POISON(p, n) ((void)0)
#define HRDM_ARENA_UNPOISON(p, n) ((void)0)
#endif

namespace hrdm::util {

namespace {

/// Poisoned padding kept between neighbouring allocations under ASan, so a
/// small overflow off the end of one object faults instead of silently
/// corrupting the next.
constexpr size_t kRedzone = HRDM_ASAN ? 8 : 0;

std::byte* AlignUp(std::byte* p, size_t alignment) {
  const auto v = reinterpret_cast<std::uintptr_t>(p);
  const auto aligned = (v + alignment - 1) & ~static_cast<std::uintptr_t>(alignment - 1);
  return p + (aligned - v);
}

}  // namespace

Arena::Arena(size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

Arena::~Arena() {
  RunFinalizers();
  // Hand the shadow back clean: the heap may recycle these bytes for
  // ordinary allocations immediately.
  for (Block& b : blocks_) HRDM_ARENA_UNPOISON(b.data.get(), b.size);
  for (Block& b : large_) HRDM_ARENA_UNPOISON(b.data.get(), b.size);
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  if (alignment == 0) alignment = 1;
  if (cur_ != nullptr) {
    std::byte* out = AlignUp(cur_, alignment);
    // Compare in size_t space so a near-end bump never forms a pointer past
    // the block (UB the sanitizers would rightly flag).
    if (out <= end_ &&
        static_cast<size_t>(end_ - out) >= bytes + kRedzone) {
      cur_ = out + bytes + kRedzone;
      bytes_allocated_ += bytes;
      ++allocations_;
      HRDM_ARENA_UNPOISON(out, bytes);
      return out;
    }
  }
  return AllocateSlow(bytes, alignment);
}

void* Arena::AllocateSlow(size_t bytes, size_t alignment) {
  // Oversized requests get a dedicated block (the large-allocation
  // fallback): they would strand most of a fresh bump block otherwise.
  const size_t worst = bytes + alignment - 1 + kRedzone;
  if (worst > block_bytes_ / 2) {
    large_.push_back(
        Block{std::make_unique_for_overwrite<std::byte[]>(worst), worst});
    std::byte* base = large_.back().data.get();
    bytes_reserved_ += worst;
    HRDM_ARENA_POISON(base, worst);
    std::byte* out = AlignUp(base, alignment);
    bytes_allocated_ += bytes;
    ++allocations_;
    HRDM_ARENA_UNPOISON(out, bytes);
    return out;
  }
  if (cur_ == nullptr && !blocks_.empty()) {
    current_ = 0;  // first allocation after Reset: reuse the retained blocks
  } else if (!blocks_.empty() && current_ + 1 < blocks_.size()) {
    ++current_;
  } else {
    blocks_.push_back(Block{
        std::make_unique_for_overwrite<std::byte[]>(block_bytes_),
        block_bytes_});
    bytes_reserved_ += block_bytes_;
    current_ = blocks_.size() - 1;
    HRDM_ARENA_POISON(blocks_.back().data.get(), block_bytes_);
  }
  cur_ = blocks_[current_].data.get();
  end_ = cur_ + blocks_[current_].size;
  // Guaranteed to fit now: worst <= block_bytes_ / 2 <= every block's size.
  return Allocate(bytes, alignment);
}

void Arena::RunFinalizers() {
  // Reverse creation order, mirroring stack unwinding.
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->fn(it->obj);
  }
  finalizers_.clear();
}

void Arena::Reset() {
  RunFinalizers();
  for (Block& b : large_) HRDM_ARENA_UNPOISON(b.data.get(), b.size);
  for (const Block& b : large_) bytes_reserved_ -= b.size;
  large_.clear();
  // The retained blocks go back to fully poisoned: any pointer from before
  // the Reset now faults under ASan instead of reading recycled bytes.
  for (Block& b : blocks_) HRDM_ARENA_POISON(b.data.get(), b.size);
  current_ = 0;
  cur_ = nullptr;
  end_ = nullptr;
  bytes_allocated_ = 0;
  allocations_ = 0;
}

}  // namespace hrdm::util
