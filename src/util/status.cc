#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace hrdm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kConstraintViolation:
      return "constraint-violation";
    case StatusCode::kIncompatibleSchemes:
      return "incompatible-schemes";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kTypeError:
      return "type-error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortWithMessage(const char* prefix, const std::string& why) {
  std::fprintf(stderr, "%s: fatal: %s\n", prefix, why.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace hrdm
