#ifndef HRDM_UTIL_CRC32_H_
#define HRDM_UTIL_CRC32_H_

/// \file crc32.h
/// \brief CRC-32C (Castagnoli) checksums for on-disk frame integrity.
///
/// The WAL (storage/wal.h) and the durable snapshot envelope
/// (storage/snapshot.h) frame every payload with a CRC so that torn writes
/// and bit rot are *detected* — recovery then keeps the longest valid
/// prefix instead of replaying garbage. CRC-32C is the polynomial used by
/// most storage engines (RocksDB, LevelDB, Kafka, iSCSI); this is the
/// portable table-driven software implementation, no hardware intrinsics.

#include <cstdint>
#include <string_view>

namespace hrdm::util {

/// \brief CRC-32C of `data` continued from `seed` (pass the previous
/// return value to checksum a logical payload in chunks). The default seed
/// starts a fresh checksum.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace hrdm::util

#endif  // HRDM_UTIL_CRC32_H_
