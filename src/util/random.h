#ifndef HRDM_UTIL_RANDOM_H_
#define HRDM_UTIL_RANDOM_H_

/// \file random.h
/// \brief Deterministic pseudo-random generator used by the workload
/// generators, property tests and benchmarks.
///
/// HRDM's tests must be reproducible, so all randomness flows through this
/// seedable splitmix64/xoshiro-style generator rather than std::random_device.

#include <cstdint>
#include <string>
#include <vector>

namespace hrdm {

/// \brief A small, fast, seedable PRNG (xoshiro256** with splitmix64
/// seeding). Not cryptographic; perfectly adequate for workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// \brief Re-seeds the generator deterministically from a single word.
  void Seed(uint64_t seed);

  /// \brief Next raw 64-bit word.
  uint64_t Next();

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli trial with probability `p` of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// \brief Random lower-case identifier of length `len`.
  std::string Identifier(size_t len);

  /// \brief Picks a uniformly random element index for a container of the
  /// given size. Requires size > 0.
  size_t Index(size_t size) {
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(size) - 1));
  }

  /// \brief Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace hrdm

#endif  // HRDM_UTIL_RANDOM_H_
