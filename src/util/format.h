#ifndef HRDM_UTIL_FORMAT_H_
#define HRDM_UTIL_FORMAT_H_

/// \file format.h
/// \brief Small string-building helpers used across HRDM.
///
/// The library deliberately avoids iostream in hot paths; these helpers
/// append into std::string buffers instead.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hrdm {

/// \brief Appends the decimal rendering of `v` to `out`.
void AppendInt(std::string* out, int64_t v);

/// \brief Appends the shortest round-trippable rendering of `v` to `out`.
void AppendDouble(std::string* out, double v);

/// \brief Renders a double for display (6 significant digits, trailing
/// zeroes trimmed).
std::string FormatDouble(double v);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Quotes a string for HRQL / debug output: wraps in double quotes
/// and backslash-escapes `"` and `\`.
std::string QuoteString(std::string_view s);

/// \brief Inverse of QuoteString on the *contents* (no surrounding quotes):
/// resolves backslash escapes. Invalid escapes are passed through verbatim.
std::string UnescapeString(std::string_view s);

/// \brief printf-style formatting into a std::string (bounded to 4 KiB).
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief True if `s` consists only of ASCII letters, digits and '_' and
/// starts with a letter or '_': the lexical class of HRQL identifiers.
bool IsIdentifier(std::string_view s);

}  // namespace hrdm

#endif  // HRDM_UTIL_FORMAT_H_
