#ifndef HRDM_UTIL_FILE_H_
#define HRDM_UTIL_FILE_H_

/// \file file.h
/// \brief POSIX file and fsync helpers for the durable storage engine.
///
/// Everything the WAL and snapshot layers need from the file system, with
/// the durability-critical details in one place:
///
///  * `AppendFile` — an append-only fd with explicit `Sync` (fsync), the
///    WAL's substrate;
///  * `AtomicWriteFile` — write-temp + (optional) fsync + rename +
///    directory fsync, so a snapshot either exists completely or not at
///    all (readers can never observe a half-written file under its final
///    name);
///  * `SyncDir` — fsync a directory so renames/creates/unlinks inside it
///    are themselves durable (rename alone is atomic but not persistent
///    until the directory inode reaches disk).
///
/// All functions return `Status`/`Result` (util/status.h); none throw.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hrdm::util {

/// \brief An append-only file handle (O_APPEND) with explicit fsync.
///
/// Move-only (owns the fd). The destructor closes without syncing — call
/// `Sync` wherever durability is required.
class AppendFile {
 public:
  /// \brief Opens (creating if missing) `path` for appending.
  static Result<AppendFile> Open(const std::string& path);

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// \brief Appends all of `data` (retrying short writes / EINTR).
  Status Append(std::string_view data);

  /// \brief fsync(2): block until everything appended so far is on disk.
  Status Sync();

  /// \brief Current file size in bytes.
  Result<uint64_t> Size() const;

  /// \brief Truncates the file to `size` bytes (drops a torn tail before
  /// resuming appends).
  Status TruncateTo(uint64_t size);

  /// \brief Closes the fd early (idempotent; destructor also closes).
  Status Close();

  const std::string& path() const { return path_; }

 private:
  AppendFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// \brief Writes `data` to `path` atomically: temp file + rename. With
/// `durable` the temp file is fsync'ed before the rename and the parent
/// directory after it, so after a crash either the old or the complete new
/// content is found — never a prefix.
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       bool durable);

/// \brief Reads the whole file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief fsync a directory (durability of renames/creates inside it).
Status SyncDir(const std::string& dir);

/// \brief mkdir -p (single level): creates `dir` if missing; OK if it
/// already exists as a directory.
Status CreateDirIfMissing(const std::string& dir);

/// \brief Names of the entries of `dir` (excluding "." and "..").
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// \brief True iff `path` exists (any file type).
bool FileExists(const std::string& path);

/// \brief unlink(2); OK if the file was already gone.
Status RemoveFileIfExists(const std::string& path);

/// \brief The directory part of `path` ("." when there is no slash).
std::string DirName(const std::string& path);

}  // namespace hrdm::util

#endif  // HRDM_UTIL_FILE_H_
