#ifndef HRDM_UTIL_STATUS_H_
#define HRDM_UTIL_STATUS_H_

/// \file status.h
/// \brief Error-handling primitives for HRDM: `Status` and `Result<T>`.
///
/// HRDM does not throw exceptions across its public API. Every fallible
/// operation returns either a `Status` (no payload) or a `Result<T>`
/// (payload-or-error), in the style of RocksDB / Apache Arrow. Status codes
/// are deliberately coarse; the human-readable message carries the detail.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hrdm {

/// \brief Coarse classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// A caller-supplied argument was malformed (bad attribute name, negative
  /// interval, quantifier mismatch, ...).
  kInvalidArgument = 1,
  /// A named entity (relation, attribute, key) does not exist.
  kNotFound = 2,
  /// An entity being created already exists.
  kAlreadyExists = 3,
  /// A model invariant would be violated (temporal key uniqueness, key
  /// constant-valuedness, vls containment, referential integrity, ...).
  kConstraintViolation = 4,
  /// Two schemes are not union- or merge-compatible (Section 4.1).
  kIncompatibleSchemes = 5,
  /// Parse error in the HRQL query language.
  kParseError = 6,
  /// Type error: value domain mismatch, non-time attribute where one from
  /// TT is required, etc.
  kTypeError = 7,
  /// Corrupt or truncated serialized data.
  kCorruption = 8,
  /// I/O failure talking to the underlying file system.
  kIoError = 9,
  /// Anything that indicates a bug in HRDM itself.
  kInternal = 10,
};

/// \brief Returns a stable lower-case name for a code (e.g. "ok",
/// "constraint-violation").
std::string_view StatusCodeName(StatusCode code);

/// \brief A cheap, copyable success-or-error value.
///
/// An OK status carries no allocation. Error statuses carry a code and a
/// message. `Status` is annotated nodiscard so silently dropped errors fail
/// compilation under -Werror-style builds.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IncompatibleSchemes(std::string msg) {
    return Status(StatusCode::kIncompatibleSchemes, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "code: message" (or "ok").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value of type `T` or an error `Status`.
///
/// Mirrors the subset of `absl::StatusOr` / `arrow::Result` that HRDM needs.
/// Accessing the value of an errored result aborts the process — callers
/// must check `ok()` first (or use `ValueOr`).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: makes `return some_t;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: makes `return Status::...;` work.
  /// Constructing a Result from an OK status is a bug and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // An OK status carries no value; this is always a programming error.
      Abort("Result constructed from OK status without a value");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void CheckOk() const {
    if (!ok()) Abort(status_.ToString());
  }
  [[noreturn]] static void Abort(const std::string& why);

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

namespace internal {
[[noreturn]] void AbortWithMessage(const char* prefix, const std::string& why);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const std::string& why) {
  internal::AbortWithMessage("hrdm::Result", why);
}

/// \brief Propagates an error status out of the enclosing function.
#define HRDM_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::hrdm::Status _hrdm_status = (expr);            \
    if (!_hrdm_status.ok()) return _hrdm_status;     \
  } while (false)

/// \brief Evaluates a Result-returning expression, propagating errors and
/// otherwise binding the value to `lhs`.
#define HRDM_ASSIGN_OR_RETURN(lhs, expr)                \
  HRDM_ASSIGN_OR_RETURN_IMPL(                           \
      HRDM_STATUS_CONCAT(_hrdm_result, __LINE__), lhs, expr)

#define HRDM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define HRDM_STATUS_CONCAT(a, b) HRDM_STATUS_CONCAT_IMPL(a, b)
#define HRDM_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace hrdm

#endif  // HRDM_UTIL_STATUS_H_
