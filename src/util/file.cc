#include "util/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hrdm::util {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Result<AppendFile> AppendFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("cannot open for append", path));
  }
  return AppendFile(fd, path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::IoError("append to closed file " + path_);
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("write failed on", path_));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::IoError("sync of closed file " + path_);
  if (::fsync(fd_) != 0) {
    return Status::IoError(Errno("fsync failed on", path_));
  }
  return Status::OK();
}

Result<uint64_t> AppendFile::Size() const {
  if (fd_ < 0) return Status::IoError("size of closed file " + path_);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError(Errno("fstat failed on", path_));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status AppendFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::IoError("truncate of closed file " + path_);
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IoError(Errno("ftruncate failed on", path_));
  }
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return Status::IoError(Errno("close failed on", path_));
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data,
                       bool durable) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("cannot open for writing", tmp));
  }
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(Errno("write failed on", tmp));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (durable && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("fsync failed on", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("close failed on", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("cannot rename into place", path));
  }
  if (durable) {
    HRDM_RETURN_IF_ERROR(SyncDir(DirName(path)));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(Errno("cannot open", path));
  }
  std::string data;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(Errno("read failed on", path));
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError(Errno("cannot open directory", dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(Errno("fsync failed on directory", dir));
  return Status::OK();
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError(dir + " exists but is not a directory");
  }
  return Status::IoError(Errno("cannot create directory", dir));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError(Errno("cannot open directory", dir));
  }
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (name == "." || name == "..") continue;
    names.emplace_back(name);
  }
  ::closedir(d);
  return names;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IoError(Errno("cannot remove", path));
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace hrdm::util
