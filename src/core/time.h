#ifndef HRDM_CORE_TIME_H_
#define HRDM_CORE_TIME_H_

/// \file time.h
/// \brief The time domain `T` of HRDM: discrete time points and closed
/// intervals.
///
/// Section 3 of the paper: "Let T = {..., t0, t1, ...} be a set of times, at
/// most countably infinite, over which is defined the linear (total) order
/// <_T ... the reader can assume that T is isomorphic to the natural
/// numbers". We model a time point as a 64-bit chronon index. A *closed
/// interval* `[t1, t2]` is the set {t | t1 <= t <= t2}; because time is
/// discrete, intervals are exactly finite runs of consecutive chronons.

#include <cstdint>
#include <limits>
#include <string>

namespace hrdm {

/// \brief A chronon index into the discrete time line `T`.
using TimePoint = int64_t;

/// \brief Smallest representable time point (used as "-infinity" sentinel in
/// workload code; never stored in lifespans produced by the algebra).
inline constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();

/// \brief Largest representable time point. The paper's "now / forever"
/// upper bound can be modelled with any large chronon; kTimeMax is reserved
/// as a sentinel.
inline constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();

/// \brief A closed interval `[begin, end]` of the discrete time line;
/// represents the set of chronons {t | begin <= t <= end}.
///
/// Invariant (checked by `valid()`, enforced by Lifespan): begin <= end.
/// Single chronons are intervals with begin == end.
struct Interval {
  TimePoint begin = 0;
  TimePoint end = 0;

  constexpr Interval() = default;
  constexpr Interval(TimePoint b, TimePoint e) : begin(b), end(e) {}

  /// \brief The single-chronon interval [t, t].
  static constexpr Interval At(TimePoint t) { return Interval(t, t); }

  constexpr bool valid() const { return begin <= end; }

  /// \brief Number of chronons in the interval. Requires valid().
  constexpr uint64_t length() const {
    return static_cast<uint64_t>(end - begin) + 1;
  }

  constexpr bool contains(TimePoint t) const { return begin <= t && t <= end; }

  /// \brief True if the two intervals share at least one chronon.
  constexpr bool overlaps(const Interval& o) const {
    return begin <= o.end && o.begin <= end;
  }

  /// \brief True if `o` starts immediately after this interval ends (or
  /// vice versa), so their union is a single run of chronons.
  constexpr bool adjacent(const Interval& o) const {
    return (end != kTimeMax && end + 1 == o.begin) ||
           (o.end != kTimeMax && o.end + 1 == begin);
  }

  /// \brief Intersection; returns an invalid interval when disjoint.
  constexpr Interval intersect(const Interval& o) const {
    return Interval(begin > o.begin ? begin : o.begin,
                    end < o.end ? end : o.end);
  }

  constexpr bool operator==(const Interval& o) const {
    return begin == o.begin && end == o.end;
  }

  /// \brief Renders "[b,e]" or "[t]" for single chronons.
  std::string ToString() const;
};

}  // namespace hrdm

#endif  // HRDM_CORE_TIME_H_
