#include "core/calendar.h"

#include <cstdio>
#include <cstdlib>

#include "util/format.h"

namespace hrdm {

namespace {

bool IsLeap(int64_t y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

int DaysInMonth(int64_t y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Result<TimePoint> ChrononFromDate(const CivilDate& date) {
  if (date.month < 1 || date.month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (date.day < 1 || date.day > DaysInMonth(date.year, date.month)) {
    return Status::InvalidArgument("day out of range");
  }
  // Hinnant's days_from_civil.
  int64_t y = date.year;
  const int m = date.month;
  const int d = date.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate DateFromChronon(TimePoint t) {
  // Hinnant's civil_from_days.
  int64_t z = t + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

Result<TimePoint> ParseDate(std::string_view iso) {
  long long y = 0;
  int m = 0, d = 0;
  const std::string s(iso);
  if (std::sscanf(s.c_str(), "%lld-%d-%d", &y, &m, &d) != 3) {
    return Status::ParseError("expected YYYY-MM-DD, got " + s);
  }
  return ChrononFromDate(CivilDate{y, m, d});
}

std::string FormatDate(TimePoint t) {
  const CivilDate d = DateFromChronon(t);
  return StrPrintf("%04lld-%02d-%02d", static_cast<long long>(d.year),
                   d.month, d.day);
}

Result<Lifespan> DateSpan(std::string_view from_iso,
                          std::string_view to_iso) {
  HRDM_ASSIGN_OR_RETURN(TimePoint from, ParseDate(from_iso));
  HRDM_ASSIGN_OR_RETURN(TimePoint to, ParseDate(to_iso));
  if (to < from) {
    return Status::InvalidArgument("date span ends before it begins");
  }
  return Span(from, to);
}

std::string FormatLifespanAsDates(const Lifespan& l) {
  std::string out = "{";
  bool first = true;
  for (const Interval& iv : l.intervals()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('[');
    out += FormatDate(iv.begin);
    if (iv.end != iv.begin) {
      out += "..";
      out += FormatDate(iv.end);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

}  // namespace hrdm
