#include "core/value.h"

#include <cstring>

#include "util/format.h"

namespace hrdm {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::string_view DomainTypeName(DomainType type) {
  switch (type) {
    case DomainType::kBool:
      return "bool";
    case DomainType::kInt:
      return "int";
    case DomainType::kDouble:
      return "double";
    case DomainType::kString:
      return "string";
    case DomainType::kTime:
      return "time";
  }
  return "unknown";
}

Result<DomainType> DomainTypeFromName(std::string_view name) {
  if (name == "bool") return DomainType::kBool;
  if (name == "int") return DomainType::kInt;
  if (name == "double") return DomainType::kDouble;
  if (name == "string") return DomainType::kString;
  if (name == "time") return DomainType::kTime;
  return Status::InvalidArgument("unknown domain type: " + std::string(name));
}

DomainType Value::type() const {
  switch (payload_.index()) {
    case 1:
      return DomainType::kBool;
    case 2:
      return DomainType::kInt;
    case 3:
      return DomainType::kDouble;
    case 4:
      return DomainType::kString;
    case 5:
      return DomainType::kTime;
    default:
      break;
  }
  internal::AbortWithMessage("hrdm::Value", "type() on absent value");
}

bool Value::operator<(const Value& o) const {
  if (payload_.index() != o.payload_.index()) {
    return payload_.index() < o.payload_.index();
  }
  return payload_ < o.payload_;
}

uint64_t Value::Hash() const {
  uint64_t h = FnvBytes(kFnvOffset, &"\x00\x01\x02\x03\x04\x05"[payload_.index()], 1);
  switch (payload_.index()) {
    case 1: {
      bool b = std::get<1>(payload_);
      return FnvBytes(h, &b, sizeof(b));
    }
    case 2: {
      int64_t v = std::get<2>(payload_);
      return FnvBytes(h, &v, sizeof(v));
    }
    case 3: {
      double v = std::get<3>(payload_);
      return FnvBytes(h, &v, sizeof(v));
    }
    case 4: {
      const std::string& s = std::get<4>(payload_);
      return FnvBytes(h, s.data(), s.size());
    }
    case 5: {
      TimePoint t = std::get<5>(payload_).t;
      return FnvBytes(h, &t, sizeof(t));
    }
    default:
      return h;
  }
}

std::string Value::ToString() const {
  if (absent()) return "<absent>";
  switch (type()) {
    case DomainType::kBool:
      return AsBool() ? "true" : "false";
    case DomainType::kInt: {
      std::string out;
      AppendInt(&out, AsInt());
      return out;
    }
    case DomainType::kDouble: {
      std::string out;
      AppendDouble(&out, AsDouble());
      return out;
    }
    case DomainType::kString:
      return QuoteString(AsString());
    case DomainType::kTime: {
      // "@17" — matches the HRQL time-literal syntax, so rendered
      // predicates parse back.
      std::string out = "@";
      AppendInt(&out, AsTime());
      return out;
    }
  }
  return "<?>";
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

template <typename T>
bool ApplyOrder(const T& a, CompareOp op, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<bool> Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.absent() || rhs.absent()) {
    return Status::TypeError("cannot compare absent values");
  }
  const DomainType lt = lhs.type();
  const DomainType rt = rhs.type();
  const bool numeric_l = lt == DomainType::kInt || lt == DomainType::kDouble;
  const bool numeric_r = rt == DomainType::kInt || rt == DomainType::kDouble;
  if (numeric_l && numeric_r) {
    if (lt == DomainType::kInt && rt == DomainType::kInt) {
      return ApplyOrder(lhs.AsInt(), op, rhs.AsInt());
    }
    return ApplyOrder(lhs.AsNumeric(), op, rhs.AsNumeric());
  }
  if (lt != rt) {
    return Status::TypeError(
        StrPrintf("cannot compare %s with %s",
                  std::string(DomainTypeName(lt)).c_str(),
                  std::string(DomainTypeName(rt)).c_str()));
  }
  switch (lt) {
    case DomainType::kBool:
      if (op != CompareOp::kEq && op != CompareOp::kNe) {
        return Status::TypeError("bool supports only = and !=");
      }
      return ApplyOrder(lhs.AsBool(), op, rhs.AsBool());
    case DomainType::kString:
      return ApplyOrder(lhs.AsString(), op, rhs.AsString());
    case DomainType::kTime:
      return ApplyOrder(lhs.AsTime(), op, rhs.AsTime());
    default:
      return Status::Internal("unhandled comparison type");
  }
}

}  // namespace hrdm
