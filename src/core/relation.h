#ifndef HRDM_CORE_RELATION_H_
#define HRDM_CORE_RELATION_H_

/// \file relation.h
/// \brief Historical relations: finite sets of tuples on a scheme with
/// temporal key uniqueness.
///
/// Section 3 of the paper: "A relation r on R is a finite set of tuples t
/// on scheme R such that if t1 and t2 are in r, for all s ∈ t1.l and all
/// s' ∈ t2.l, t1.v(K)(s) ≠ t2.v(K)(s')." Because key attributes are
/// constant-valued, this temporal uniqueness condition is equivalent to:
/// distinct tuples carry distinct (constant) key-value vectors — which is
/// what `Insert` enforces, via a hash index that also accelerates the
/// object-based set operations and joins.
///
/// `LS(r)`, the lifespan of a relation, is the union of its tuples'
/// lifespans; it is the value of the algebra's WHEN operator.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lifespan.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "util/status.h"

namespace hrdm {

/// \brief A finite set of historical tuples over one scheme.
///
/// Relations hold their tuples as shared immutable pointers (`TuplePtr`),
/// so copying a `Relation` is copy-on-write: the tuple vector and indexes
/// are duplicated, the tuples themselves are shared. Tuple order is
/// insertion order and carries no semantics; `EqualsAsSet` compares
/// relations as the sets they are.
class Relation {
 public:
  /// \brief Const iterator yielding `const Tuple&` over shared storage.
  class const_iterator {
   public:
    using base_iterator = std::vector<TuplePtr>::const_iterator;
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    const_iterator() = default;
    explicit const_iterator(base_iterator it) : it_(it) {}

    const Tuple& operator*() const { return **it_; }
    const Tuple* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++it_;
      return old;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    base_iterator it_;
  };

  /// \brief The empty relation on `scheme`.
  explicit Relation(SchemePtr scheme) : scheme_(std::move(scheme)) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const SchemePtr& scheme() const { return scheme_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(size_t i) const { return *tuples_[i]; }

  /// \brief Shared handle to the tuple at `i` (zero-copy scan path).
  const TuplePtr& tuple_ptr(size_t i) const { return tuples_[i]; }

  /// \brief The underlying shared tuple handles, in insertion order.
  const std::vector<TuplePtr>& tuple_ptrs() const { return tuples_; }

  const_iterator begin() const { return const_iterator(tuples_.begin()); }
  const_iterator end() const { return const_iterator(tuples_.end()); }

  /// \brief Inserts a tuple. Errors:
  ///  * the tuple's scheme is not structurally identical to the relation's;
  ///  * empty tuple lifespan (an "object" that never exists);
  ///  * temporal key violation: an existing tuple has the same key vector
  ///    (keyed schemes only; keyless schemes reject exact duplicates).
  Status Insert(TuplePtr t);
  Status Insert(Tuple t) {
    return Insert(std::make_shared<const Tuple>(std::move(t)));
  }

  /// \brief Inserts, dropping empty-lifespan tuples silently (used by the
  /// algebra, whose restrictions legitimately produce empty tuples).
  Status InsertOrDrop(TuplePtr t);
  Status InsertOrDrop(Tuple t) {
    return InsertOrDrop(std::make_shared<const Tuple>(std::move(t)));
  }

  /// \brief Set-semantics insert used by the algebra: drops empty-lifespan
  /// tuples and structural duplicates silently, and — unlike Insert — does
  /// NOT enforce temporal key uniqueness. The paper's standard set
  /// operators legitimately produce relations violating the key condition
  /// (that is exactly the Figure 11 critique motivating the object-based
  /// operators), so derived relations are plain sets of tuples.
  Status InsertDedup(TuplePtr t);
  Status InsertDedup(Tuple t) {
    return InsertDedup(std::make_shared<const Tuple>(std::move(t)));
  }

  /// \brief Index of a structurally identical tuple, if present.
  std::optional<size_t> FindStructural(const Tuple& t) const;

  /// \brief Replaces the tuple at `idx` (storage-engine update path).
  /// Enforces the same invariants as Insert, except that the outgoing
  /// tuple's key is free for reuse.
  Status ReplaceAt(size_t idx, Tuple t) {
    return ReplaceAt(idx, std::make_shared<const Tuple>(std::move(t)));
  }
  Status ReplaceAt(size_t idx, TuplePtr t);

  /// \brief Removes the tuple at `idx`. Indices of later tuples shift down
  /// by one (O(n) reindex; updates are rare relative to scans).
  Status EraseAt(size_t idx);

  /// \brief Index of the first tuple with key vector `key`, if any.
  /// O(1) expected. (Unique under Insert; with InsertDedup several tuples
  /// may share a key — see FindAllByKey.)
  std::optional<size_t> FindByKey(const std::vector<Value>& key) const;

  /// \brief All tuple indices with key vector `key` (ascending).
  std::vector<size_t> FindAllByKey(const std::vector<Value>& key) const;

  /// \brief `LS(r)`: union of tuple lifespans (the WHEN operator, §4.5).
  Lifespan LS() const;

  /// \brief Structural set equality: same scheme structure and the same set
  /// of tuples (order-insensitive).
  bool EqualsAsSet(const Relation& other) const;

  /// \brief Total bytes of representation-level storage (intervals and
  /// values), used by the granularity benchmarks.
  size_t ApproxBytes() const;

  /// \brief Whether this relation is already at the model level (every
  /// tuple's values materialized via interpolation). Algebra operators mark
  /// their outputs materialized so interpolation is applied exactly once —
  /// re-interpolating a derived relation (e.g. a Cartesian product, whose
  /// tuples are legitimately partial on their unioned lifespans) would
  /// wrongly extend values into regions the paper's semantics leave
  /// undefined.
  bool materialized() const { return materialized_; }
  void set_materialized(bool m) { materialized_ = m; }

  /// \brief Multi-line debug rendering (scheme, then one line per tuple).
  std::string ToString() const;

 private:
  uint64_t KeyHashOf(const std::vector<Value>& key) const;
  void IndexTuple(const Tuple& t, size_t idx);

  SchemePtr scheme_;
  std::vector<TuplePtr> tuples_;
  /// KeyHash -> indices of tuples with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<size_t>> key_index_;
  /// Structural Tuple::Hash -> indices (for set-semantics dedup).
  std::unordered_map<uint64_t, std::vector<size_t>> struct_index_;
  bool materialized_ = false;
};

}  // namespace hrdm

#endif  // HRDM_CORE_RELATION_H_
