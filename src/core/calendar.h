#ifndef HRDM_CORE_CALENDAR_H_
#define HRDM_CORE_CALENDAR_H_

/// \file calendar.h
/// \brief Civil-date views of the chronon line — the paper's deferred
/// "more elaborate structures for the time domain".
///
/// Section 3: "In a subsequent paper we will discuss more elaborate
/// structures for the time domain of historical databases." This module
/// provides the most-requested such structure: a proleptic-Gregorian
/// day calendar over the chronon line, so lifespans can be written and
/// printed as dates. One chronon == one day; chronon 0 == 1970-01-01
/// (days can be negative for earlier dates).
///
/// The conversion uses Howard Hinnant's days-from-civil algorithm (public
/// domain), exact over the entire int64 range of years representable.

#include <string>

#include "core/lifespan.h"
#include "core/time.h"
#include "util/status.h"

namespace hrdm {

/// \brief A civil (proleptic Gregorian) date.
struct CivilDate {
  int64_t year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  bool operator==(const CivilDate&) const = default;
};

/// \brief Days since 1970-01-01 for a civil date (may be negative).
/// Errors if month/day are out of range (including month length and leap
/// years).
Result<TimePoint> ChrononFromDate(const CivilDate& date);

/// \brief Inverse of ChrononFromDate; total (every chronon is a date).
CivilDate DateFromChronon(TimePoint t);

/// \brief Parses "YYYY-MM-DD" (with optional leading '-' on the year).
Result<TimePoint> ParseDate(std::string_view iso);

/// \brief Formats a chronon as "YYYY-MM-DD".
std::string FormatDate(TimePoint t);

/// \brief The lifespan covering [from, to] as dates (inclusive).
Result<Lifespan> DateSpan(std::string_view from_iso, std::string_view to_iso);

/// \brief Renders a lifespan with day-calendar semantics, e.g.
/// "{[2001-05-17..2003-02-01],[2010-01-01]}".
std::string FormatLifespanAsDates(const Lifespan& l);

}  // namespace hrdm

#endif  // HRDM_CORE_CALENDAR_H_
