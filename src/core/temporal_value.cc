#include "core/temporal_value.h"

#include <algorithm>

#include "util/format.h"

namespace hrdm {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

void TemporalValue::Reindex() {
  // Segment intervals are a class invariant: valid, begin-sorted, disjoint
  // (FromSegments establishes it, Constant/Restrict preserve it) — so the
  // domain needs only the linear adjacent-merge pass, not a full sort.
  std::vector<Interval> ivs;
  ivs.reserve(segments_.size());
  for (const Segment& s : segments_) ivs.push_back(s.interval);
  domain_ = Lifespan::FromSortedDisjoint(std::move(ivs));
  type_ = segments_.empty() ? std::nullopt
                            : std::optional<DomainType>(
                                  segments_.front().value.type());
}

Result<TemporalValue> TemporalValue::Constant(const Lifespan& domain,
                                              Value value) {
  if (value.absent()) {
    return Status::InvalidArgument("constant temporal value must be present");
  }
  std::vector<Segment> segs;
  segs.reserve(domain.IntervalCount());
  for (const Interval& iv : domain.intervals()) {
    segs.push_back(Segment{iv, value});
  }
  TemporalValue tv;
  tv.segments_ = std::move(segs);
  tv.Reindex();
  return tv;
}

Result<TemporalValue> TemporalValue::FromSegments(
    std::vector<Segment> segments) {
  // Drop empty intervals, validate values.
  std::vector<Segment> segs;
  segs.reserve(segments.size());
  for (Segment& s : segments) {
    if (!s.interval.valid()) continue;
    if (s.value.absent()) {
      return Status::InvalidArgument(
          "temporal value segment holds an absent value");
    }
    segs.push_back(std::move(s));
  }
  std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
    return a.interval.begin < b.interval.begin;
  });
  // Validate type homogeneity and disjointness; merge equal adjacents.
  std::vector<Segment> out;
  out.reserve(segs.size());
  for (Segment& s : segs) {
    if (!out.empty()) {
      Segment& last = out.back();
      if (s.value.type() != last.value.type()) {
        return Status::TypeError(
            "temporal value segments mix domain types: " +
            std::string(DomainTypeName(last.value.type())) + " vs " +
            std::string(DomainTypeName(s.value.type())));
      }
      if (s.interval.begin <= last.interval.end) {
        return Status::InvalidArgument(
            "temporal value segments overlap at " + s.interval.ToString());
      }
      if (last.interval.adjacent(s.interval) && last.value == s.value) {
        last.interval.end = s.interval.end;
        continue;
      }
    }
    out.push_back(std::move(s));
  }
  TemporalValue tv;
  tv.segments_ = std::move(out);
  tv.Reindex();
  return tv;
}

bool TemporalValue::IsConstant() const {
  for (size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].value != segments_[0].value) return false;
  }
  return true;
}

Value TemporalValue::ValueAt(TimePoint t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimePoint v, const Segment& s) { return v < s.interval.begin; });
  if (it == segments_.begin()) return Value();
  const Segment& s = *std::prev(it);
  return s.interval.contains(t) ? s.value : Value();
}

TemporalValue TemporalValue::Restrict(const Lifespan& to) const {
  // Full cover: restriction is the identity, so skip the sweep (and its
  // two allocations) entirely. ContainsAll is a linear allocation-free
  // merge, far cheaper than rebuilding the segment list.
  if (to.ContainsAll(domain_)) return *this;
  std::vector<Segment> out;
  const auto& ivs = to.intervals();
  size_t j = 0;
  for (const Segment& s : segments_) {
    while (j < ivs.size() && ivs[j].end < s.interval.begin) ++j;
    for (size_t k = j; k < ivs.size() && ivs[k].begin <= s.interval.end; ++k) {
      Interval x = s.interval.intersect(ivs[k]);
      if (x.valid()) out.push_back(Segment{x, s.value});
    }
  }
  TemporalValue tv;
  // Output of the sweep is sorted and disjoint; equal-adjacent merging can
  // only be needed if the restriction re-joined split segments, which it
  // cannot (restriction only removes chronons). But two originally
  // non-adjacent equal-valued segments may become adjacent after removal of
  // the gap? No: removing chronons cannot create adjacency between
  // *remaining* chronons. Canonical already.
  tv.segments_ = std::move(out);
  tv.Reindex();
  return tv;
}

bool TemporalValue::ConsistentWith(const TemporalValue& other) const {
  size_t i = 0, j = 0;
  while (i < segments_.size() && j < other.segments_.size()) {
    const Segment& a = segments_[i];
    const Segment& b = other.segments_[j];
    if (a.interval.overlaps(b.interval) && a.value != b.value) return false;
    if (a.interval.end < b.interval.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

Lifespan TemporalValue::AgreementWith(const TemporalValue& other) const {
  std::vector<Interval> hits;
  size_t i = 0, j = 0;
  while (i < segments_.size() && j < other.segments_.size()) {
    const Segment& a = segments_[i];
    const Segment& b = other.segments_[j];
    Interval x = a.interval.intersect(b.interval);
    if (x.valid() && a.value == b.value) hits.push_back(x);
    if (a.interval.end < b.interval.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return Lifespan::FromIntervals(std::move(hits));
}

Result<TemporalValue> TemporalValue::UnionWith(
    const TemporalValue& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  if (type_ != other.type_) {
    return Status::TypeError("cannot union temporal values of different types");
  }
  if (!ConsistentWith(other)) {
    return Status::ConstraintViolation(
        "temporal values contradict on their common domain");
  }
  // Merge: take this's segments plus other's restricted to the complement.
  const Lifespan extra = other.domain().Difference(domain_);
  TemporalValue rest = other.Restrict(extra);
  std::vector<Segment> merged = segments_;
  merged.insert(merged.end(), rest.segments_.begin(), rest.segments_.end());
  return FromSegments(std::move(merged));
}

std::vector<Value> TemporalValue::Image() const {
  std::vector<Value> vals;
  vals.reserve(segments_.size());
  for (const Segment& s : segments_) vals.push_back(s.value);
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

Result<Lifespan> TemporalValue::TimeImage() const {
  if (empty()) return Lifespan::Empty();
  if (*type_ != DomainType::kTime) {
    return Status::TypeError(
        "TimeImage requires a time-valued attribute (domain in TT)");
  }
  std::vector<TimePoint> pts;
  pts.reserve(segments_.size());
  for (const Segment& s : segments_) pts.push_back(s.value.AsTime());
  return Lifespan::FromPoints(std::move(pts));
}

Result<Lifespan> TemporalValue::TimesWhere(CompareOp op,
                                           const Value& rhs) const {
  std::vector<Interval> hits;
  for (const Segment& s : segments_) {
    HRDM_ASSIGN_OR_RETURN(bool match, Compare(s.value, op, rhs));
    if (match) hits.push_back(s.interval);
  }
  return Lifespan::FromIntervals(std::move(hits));
}

Result<Lifespan> TemporalValue::TimesWhereMatches(
    CompareOp op, const TemporalValue& other) const {
  std::vector<Interval> hits;
  size_t i = 0, j = 0;
  while (i < segments_.size() && j < other.segments_.size()) {
    const Segment& a = segments_[i];
    const Segment& b = other.segments_[j];
    Interval x = a.interval.intersect(b.interval);
    if (x.valid()) {
      HRDM_ASSIGN_OR_RETURN(bool match, Compare(a.value, op, b.value));
      if (match) hits.push_back(x);
    }
    if (a.interval.end < b.interval.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return Lifespan::FromIntervals(std::move(hits));
}

uint64_t TemporalValue::Hash() const {
  uint64_t h = 14695981039346656037ULL;
  for (const Segment& s : segments_) {
    h = (h ^ static_cast<uint64_t>(s.interval.begin)) * kFnvPrime;
    h = (h ^ static_cast<uint64_t>(s.interval.end)) * kFnvPrime;
    h = (h ^ s.value.Hash()) * kFnvPrime;
  }
  return h;
}

std::string TemporalValue::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) out += ", ";
    out += segments_[i].interval.ToString();
    out += "->";
    out += segments_[i].value.ToString();
  }
  out.push_back('}');
  return out;
}

}  // namespace hrdm
