#include "core/relation.h"

#include <algorithm>

namespace hrdm {

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

void Relation::IndexTuple(const Tuple& t, size_t idx) {
  if (!scheme_->key().empty()) {
    key_index_[KeyHashOf(t.KeyValues())].push_back(idx);
  }
  struct_index_[t.Hash()].push_back(idx);
}

Status Relation::Insert(TuplePtr t) {
  if (!t) return Status::InvalidArgument("cannot insert null tuple");
  if (t->scheme() != scheme_ && !t->scheme()->SameStructure(*scheme_)) {
    return Status::IncompatibleSchemes(
        "tuple scheme " + t->scheme()->name() +
        " does not match relation scheme " + scheme_->name());
  }
  if (t->lifespan().empty()) {
    return Status::InvalidArgument("cannot insert tuple with empty lifespan");
  }
  if (!scheme_->key().empty()) {
    const std::vector<Value> key = t->KeyValues();
    if (FindByKey(key).has_value()) {
      std::string key_str;
      for (const Value& v : key) {
        if (!key_str.empty()) key_str += ",";
        key_str += v.ToString();
      }
      return Status::ConstraintViolation(
          "temporal key violation in " + scheme_->name() + ": key (" +
          key_str + ") already present");
    }
  } else if (FindStructural(*t).has_value()) {
    return Status::ConstraintViolation(
        "duplicate tuple in keyless relation " + scheme_->name());
  }
  IndexTuple(*t, tuples_.size());
  tuples_.push_back(std::move(t));
  return Status::OK();
}

Status Relation::InsertOrDrop(TuplePtr t) {
  if (!t) return Status::InvalidArgument("cannot insert null tuple");
  if (t->lifespan().empty()) return Status::OK();
  return Insert(std::move(t));
}

Status Relation::InsertDedup(TuplePtr t) {
  if (!t) return Status::InvalidArgument("cannot insert null tuple");
  if (t->lifespan().empty()) return Status::OK();
  if (t->scheme() != scheme_ && !t->scheme()->SameStructure(*scheme_)) {
    return Status::IncompatibleSchemes(
        "tuple scheme " + t->scheme()->name() +
        " does not match relation scheme " + scheme_->name());
  }
  if (FindStructural(*t).has_value()) return Status::OK();
  IndexTuple(*t, tuples_.size());
  tuples_.push_back(std::move(t));
  return Status::OK();
}

namespace {

void RemoveIndexEntry(std::unordered_map<uint64_t, std::vector<size_t>>* map,
                      uint64_t hash, size_t idx) {
  auto it = map->find(hash);
  if (it == map->end()) return;
  auto& chain = it->second;
  chain.erase(std::remove(chain.begin(), chain.end(), idx), chain.end());
  if (chain.empty()) map->erase(it);
}

}  // namespace

Status Relation::ReplaceAt(size_t idx, TuplePtr t) {
  if (!t) return Status::InvalidArgument("ReplaceAt: null tuple");
  if (idx >= tuples_.size()) {
    return Status::InvalidArgument("ReplaceAt: index out of range");
  }
  if (t->scheme() != scheme_ && !t->scheme()->SameStructure(*scheme_)) {
    return Status::IncompatibleSchemes("ReplaceAt: scheme mismatch");
  }
  if (t->lifespan().empty()) {
    return Status::InvalidArgument("ReplaceAt: empty lifespan (use EraseAt)");
  }
  if (!scheme_->key().empty()) {
    auto existing = FindByKey(t->KeyValues());
    if (existing.has_value() && *existing != idx) {
      return Status::ConstraintViolation(
          "ReplaceAt: key already used by another tuple");
    }
  }
  const Tuple& old = *tuples_[idx];
  if (!scheme_->key().empty()) {
    RemoveIndexEntry(&key_index_, KeyHashOf(old.KeyValues()), idx);
  }
  RemoveIndexEntry(&struct_index_, old.Hash(), idx);
  IndexTuple(*t, idx);
  tuples_[idx] = std::move(t);
  return Status::OK();
}

Status Relation::EraseAt(size_t idx) {
  if (idx >= tuples_.size()) {
    return Status::InvalidArgument("EraseAt: index out of range");
  }
  tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(idx));
  // Rebuild the indexes (indices after idx all shift).
  key_index_.clear();
  struct_index_.clear();
  for (size_t i = 0; i < tuples_.size(); ++i) {
    IndexTuple(*tuples_[i], i);
  }
  return Status::OK();
}

uint64_t Relation::KeyHashOf(const std::vector<Value>& key) const {
  uint64_t h = 14695981039346656037ULL;
  for (const Value& v : key) {
    h = (h ^ v.Hash()) * kFnvPrime;
  }
  return h;
}

std::optional<size_t> Relation::FindByKey(
    const std::vector<Value>& key) const {
  auto it = key_index_.find(KeyHashOf(key));
  if (it == key_index_.end()) return std::nullopt;
  for (size_t idx : it->second) {
    if (tuples_[idx]->KeyValues() == key) return idx;
  }
  return std::nullopt;
}

std::vector<size_t> Relation::FindAllByKey(
    const std::vector<Value>& key) const {
  std::vector<size_t> out;
  auto it = key_index_.find(KeyHashOf(key));
  if (it == key_index_.end()) return out;
  for (size_t idx : it->second) {
    if (tuples_[idx]->KeyValues() == key) out.push_back(idx);
  }
  return out;
}

std::optional<size_t> Relation::FindStructural(const Tuple& t) const {
  auto it = struct_index_.find(t.Hash());
  if (it == struct_index_.end()) return std::nullopt;
  for (size_t idx : it->second) {
    if (*tuples_[idx] == t) return idx;
  }
  return std::nullopt;
}

Lifespan Relation::LS() const {
  Lifespan ls;
  for (const TuplePtr& t : tuples_) {
    ls = ls.Union(t->lifespan());
  }
  return ls;
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (!scheme_->SameStructure(*other.scheme_)) return false;
  if (size() != other.size()) return false;
  for (const TuplePtr& t : tuples_) {
    if (!other.FindStructural(*t).has_value()) return false;
  }
  // Sizes equal and this ⊆ other; if `this` held duplicates they would have
  // been rejected on insert, so the sets are equal.
  return true;
}

size_t Relation::ApproxBytes() const {
  size_t bytes = 0;
  for (const TuplePtr& tp : tuples_) {
    const Tuple& t = *tp;
    bytes += t.lifespan().IntervalCount() * sizeof(Interval);
    for (size_t i = 0; i < t.arity(); ++i) {
      for (const Segment& s : t.value(i).segments()) {
        bytes += sizeof(Interval);
        bytes += 8;  // value payload estimate
        if (s.value.IsType(DomainType::kString)) {
          bytes += s.value.AsString().size();
        }
      }
    }
  }
  return bytes;
}

std::string Relation::ToString() const {
  std::string out = scheme_->ToString();
  out.push_back('\n');
  // Render tuples sorted by key (then hash) for deterministic output.
  std::vector<size_t> order(tuples_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    const auto ka = tuples_[a]->KeyValues();
    const auto kb = tuples_[b]->KeyValues();
    if (ka != kb) return ka < kb;
    return tuples_[a]->Hash() < tuples_[b]->Hash();
  });
  for (size_t i : order) {
    out += "  ";
    out += tuples_[i]->ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace hrdm
