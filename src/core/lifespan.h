#ifndef HRDM_CORE_LIFESPAN_H_
#define HRDM_CORE_LIFESPAN_H_

/// \file lifespan.h
/// \brief Lifespans: arbitrary finite subsets of the time line `T`.
///
/// Section 2/3 of the paper: "A lifespan L is any subset of the set T", and
/// lifespans are closed under the set-theoretic operations (union,
/// intersection, difference). Lifespans are the unifying temporal construct
/// of HRDM — they are attached to tuples, to attributes in a scheme, and are
/// a first-class sort of the algebra (the `WHEN` operator returns one).
///
/// Representation: a canonical, sorted vector of disjoint, *non-adjacent*
/// closed intervals. Because time is discrete, [1,3] ∪ [4,6] is the same set
/// as [1,6]; canonicalisation merges such runs, which gives us O(n) set
/// operations by linear sweep and makes equality of sets equality of
/// representations. This is the paper's "representation level" coding of a
/// lifespan; the "model level" view is the set of chronons, reachable via
/// iteration or `Materialize()`.

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "util/status.h"

namespace hrdm {

/// \brief A finite subset of the discrete time line, canonically coded as
/// sorted disjoint non-adjacent closed intervals.
///
/// Value semantics; cheap to copy for typical interval counts. All set
/// operations return canonical lifespans.
class Lifespan {
 public:
  /// \brief The empty lifespan (the paper's "never").
  Lifespan() = default;

  /// \brief Lifespan consisting of a single closed interval.
  /// Requires iv.valid(); an invalid interval yields the empty lifespan.
  explicit Lifespan(Interval iv) {
    if (iv.valid()) intervals_.push_back(iv);
  }

  /// \brief Builds a lifespan from an arbitrary (unsorted, overlapping)
  /// interval list; invalid intervals are dropped, the rest canonicalised.
  static Lifespan FromIntervals(std::vector<Interval> ivs);

  /// \brief Builds a lifespan from intervals that are already valid, sorted
  /// by begin and pairwise disjoint (e.g. the output of an interval sweep):
  /// adjacent runs are merged in one linear pass, nothing is sorted. Feeding
  /// unsorted or overlapping intervals violates the canonical-form
  /// invariant — use `FromIntervals` when the input is arbitrary.
  static Lifespan FromSortedDisjoint(std::vector<Interval> ivs);

  /// \brief Builds a lifespan from arbitrary chronons (duplicates fine).
  static Lifespan FromPoints(std::vector<TimePoint> points);

  /// \brief The single-chronon lifespan {t}.
  static Lifespan Point(TimePoint t) { return Lifespan(Interval::At(t)); }

  /// \brief The empty lifespan.
  static Lifespan Empty() { return Lifespan(); }

  bool empty() const { return intervals_.empty(); }

  /// \brief Number of chronons in the set (model-level cardinality).
  uint64_t Cardinality() const;

  /// \brief Number of maximal intervals (representation-level size).
  size_t IntervalCount() const { return intervals_.size(); }

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// \brief Earliest chronon. Requires !empty().
  TimePoint Min() const { return intervals_.front().begin; }
  /// \brief Latest chronon. Requires !empty().
  TimePoint Max() const { return intervals_.back().end; }

  /// \brief The smallest single interval covering the whole set.
  /// Requires !empty().
  Interval Extent() const { return Interval(Min(), Max()); }

  /// \brief Membership test, O(log n).
  bool Contains(TimePoint t) const;

  /// \brief True if every chronon of `other` is in this set.
  bool ContainsAll(const Lifespan& other) const;

  /// \brief True if the two sets share at least one chronon.
  bool Overlaps(const Lifespan& other) const;

  /// \brief Set union L1 ∪ L2.
  Lifespan Union(const Lifespan& other) const;

  /// \brief Set intersection L1 ∩ L2.
  Lifespan Intersect(const Lifespan& other) const;

  /// \brief Set difference L1 − L2.
  Lifespan Difference(const Lifespan& other) const;

  /// \brief Relative complement within `universe`: universe − this.
  /// (The paper allows complementation relative to T; with finite storage we
  /// complement relative to an explicit finite universe.)
  Lifespan ComplementWithin(const Lifespan& universe) const {
    return universe.Difference(*this);
  }

  /// \brief All chronons in ascending order (model-level view). Linear in
  /// cardinality — use for small lifespans and tests.
  std::vector<TimePoint> Materialize() const;

  /// \brief First chronon >= t in the set, or kTimeMax if none.
  TimePoint NextOnOrAfter(TimePoint t) const;

  bool operator==(const Lifespan& other) const {
    return intervals_ == other.intervals_;
  }
  bool operator!=(const Lifespan& other) const { return !(*this == other); }

  /// \brief Renders e.g. "{[0,4],[7],[9,12]}"; "{}" when empty.
  std::string ToString() const;

  /// \brief Forward iterator over individual chronons.
  class PointIterator {
   public:
    PointIterator(const Lifespan* ls, size_t idx, TimePoint t)
        : ls_(ls), idx_(idx), t_(t) {}
    TimePoint operator*() const { return t_; }
    PointIterator& operator++();
    bool operator==(const PointIterator& o) const {
      return idx_ == o.idx_ && t_ == o.t_;
    }
    bool operator!=(const PointIterator& o) const { return !(*this == o); }

   private:
    const Lifespan* ls_;
    size_t idx_;  // current interval index; intervals_.size() == end.
    TimePoint t_;
  };

  PointIterator begin() const {
    if (empty()) return end();
    return PointIterator(this, 0, intervals_.front().begin);
  }
  PointIterator end() const {
    return PointIterator(this, intervals_.size(), 0);
  }

 private:
  /// Sorted, disjoint, non-adjacent, all valid().
  std::vector<Interval> intervals_;
};

/// \brief Convenience: the lifespan [b,e] as a free function, reading close
/// to the paper's notation.
inline Lifespan Span(TimePoint b, TimePoint e) {
  return Lifespan(Interval(b, e));
}

}  // namespace hrdm

#endif  // HRDM_CORE_LIFESPAN_H_
