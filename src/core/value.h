#ifndef HRDM_CORE_VALUE_H_
#define HRDM_CORE_VALUE_H_

/// \file value.h
/// \brief Atomic values and value domains.
///
/// Section 3 of the paper: "Let D = {D1, D2, ..., Dn} be a set of value
/// domains ... a set of atomic (non-decomposable) values". HRDM
/// additionally distinguishes the set `TT` of *time-valued* functions
/// (T -> T) from the ordinary `TD_i` (T -> D_i); we mirror that by giving
/// time its own domain type, `DomainType::kTime`, distinct from kInt even
/// though both are 64-bit integers. Operators that require a time-valued
/// attribute (dynamic TIME-SLICE, TIME-JOIN) check for kTime.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "core/time.h"
#include "util/status.h"

namespace hrdm {

/// \brief The type of a value domain (the range of an attribute's temporal
/// function).
enum class DomainType : uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  /// The special time domain: attributes with this domain are members of TT
  /// (functions from T into T) and enable dynamic TIME-SLICE and TIME-JOIN.
  kTime = 4,
};

/// \brief Stable lower-case name ("bool", "int", "double", "string",
/// "time").
std::string_view DomainTypeName(DomainType type);

/// \brief Parses a DomainTypeName back; error on unknown names.
Result<DomainType> DomainTypeFromName(std::string_view name);

/// \brief Strong wrapper distinguishing time-valued atoms from plain ints
/// inside the Value variant.
struct TimeAtom {
  TimePoint t = 0;
  bool operator==(const TimeAtom&) const = default;
  auto operator<=>(const TimeAtom&) const = default;
};

/// \brief An atomic, non-decomposable value: one element of some `D_i` (or
/// of `T` for time atoms).
///
/// Value is a tagged union with value semantics. A default-constructed
/// Value is "absent" (used transiently while building tuples; never a legal
/// attribute value at the model level — undefinedness is expressed by the
/// *temporal function's domain*, not by a null atom; HRDM's chosen JOIN
/// semantics produce no nulls).
class Value {
 public:
  Value() = default;

  static Value Bool(bool b) { return Value(Payload(std::in_place_index<1>, b)); }
  static Value Int(int64_t i) {
    return Value(Payload(std::in_place_index<2>, i));
  }
  static Value Double(double d) {
    return Value(Payload(std::in_place_index<3>, d));
  }
  static Value String(std::string s) {
    return Value(Payload(std::in_place_index<4>, std::move(s)));
  }
  static Value Time(TimePoint t) {
    return Value(Payload(std::in_place_index<5>, TimeAtom{t}));
  }

  bool absent() const { return payload_.index() == 0; }

  /// \brief Domain type of a present value. Requires !absent().
  DomainType type() const;

  bool IsType(DomainType t) const { return !absent() && type() == t; }

  bool AsBool() const { return std::get<1>(payload_); }
  int64_t AsInt() const { return std::get<2>(payload_); }
  double AsDouble() const { return std::get<3>(payload_); }
  const std::string& AsString() const { return std::get<4>(payload_); }
  TimePoint AsTime() const { return std::get<5>(payload_).t; }

  /// \brief Numeric view of kInt/kDouble values (for θ comparisons across
  /// the two numeric domains). Requires a numeric type.
  double AsNumeric() const {
    return IsType(DomainType::kInt) ? static_cast<double>(AsInt())
                                    : AsDouble();
  }

  /// \brief Exact equality: same type (int and double are distinct) and
  /// same payload. Absent values are equal to each other.
  bool operator==(const Value& o) const { return payload_ == o.payload_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// \brief Total order over all values (type tag first, then payload);
  /// used by containers and for deterministic output ordering, not by θ.
  bool operator<(const Value& o) const;

  /// \brief 64-bit hash (FNV-1a over tag and payload bytes).
  uint64_t Hash() const;

  /// \brief Display form: `true`, `42`, `3.5`, `"str"`, `@17` (time).
  std::string ToString() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   TimeAtom>;
  explicit Value(Payload p) : payload_(std::move(p)) {}

  Payload payload_;
};

/// \brief Comparison operators available in θ predicates and HRQL.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

std::string_view CompareOpName(CompareOp op);

/// \brief Evaluates `lhs θ rhs`.
///
/// Rules: comparing an absent value is an error; kInt and kDouble
/// inter-compare numerically; all other cross-type comparisons are type
/// errors; strings compare lexicographically; times chronologically; bools
/// support only kEq/kNe.
Result<bool> Compare(const Value& lhs, CompareOp op, const Value& rhs);

}  // namespace hrdm

#endif  // HRDM_CORE_VALUE_H_
