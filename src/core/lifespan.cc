#include "core/lifespan.h"

#include <algorithm>

namespace hrdm {

namespace {

/// Canonicalises a mutable interval list in place: sorts by begin, drops
/// invalid entries, merges overlapping and adjacent runs.
void Canonicalize(std::vector<Interval>* ivs) {
  ivs->erase(std::remove_if(ivs->begin(), ivs->end(),
                            [](const Interval& iv) { return !iv.valid(); }),
             ivs->end());
  std::sort(ivs->begin(), ivs->end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  size_t out = 0;
  for (size_t i = 0; i < ivs->size(); ++i) {
    if (out == 0) {
      (*ivs)[out++] = (*ivs)[i];
      continue;
    }
    Interval& last = (*ivs)[out - 1];
    const Interval& cur = (*ivs)[i];
    if (cur.overlaps(last) || last.adjacent(cur)) {
      last.end = std::max(last.end, cur.end);
    } else {
      (*ivs)[out++] = cur;
    }
  }
  ivs->resize(out);
}

}  // namespace

Lifespan Lifespan::FromIntervals(std::vector<Interval> ivs) {
  Canonicalize(&ivs);
  Lifespan ls;
  ls.intervals_ = std::move(ivs);
  return ls;
}

Lifespan Lifespan::FromSortedDisjoint(std::vector<Interval> ivs) {
  // Single merge pass — no sort. Valid, begin-sorted, pairwise-disjoint
  // input is the caller's contract; only adjacency can remain to fix.
  size_t out = 0;
  for (size_t i = 0; i < ivs.size(); ++i) {
    if (out > 0 && ivs[out - 1].adjacent(ivs[i])) {
      ivs[out - 1].end = ivs[i].end;
    } else {
      ivs[out++] = ivs[i];
    }
  }
  ivs.resize(out);
  Lifespan ls;
  ls.intervals_ = std::move(ivs);
  return ls;
}

Lifespan Lifespan::FromPoints(std::vector<TimePoint> points) {
  std::vector<Interval> ivs;
  ivs.reserve(points.size());
  for (TimePoint t : points) ivs.push_back(Interval::At(t));
  return FromIntervals(std::move(ivs));
}

uint64_t Lifespan::Cardinality() const {
  uint64_t n = 0;
  for (const Interval& iv : intervals_) n += iv.length();
  return n;
}

bool Lifespan::Contains(TimePoint t) const {
  // First interval whose begin is > t, then check its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->contains(t);
}

bool Lifespan::ContainsAll(const Lifespan& other) const {
  // Each interval of `other` must lie within a single interval of `this`
  // (canonical form guarantees no interval of a subset straddles a gap).
  size_t i = 0;
  for (const Interval& o : other.intervals_) {
    while (i < intervals_.size() && intervals_[i].end < o.begin) ++i;
    if (i == intervals_.size()) return false;
    if (!(intervals_[i].begin <= o.begin && o.end <= intervals_[i].end)) {
      return false;
    }
  }
  return true;
}

bool Lifespan::Overlaps(const Lifespan& other) const {
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    if (intervals_[i].overlaps(other.intervals_[j])) return true;
    if (intervals_[i].end < other.intervals_[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

Lifespan Lifespan::Union(const Lifespan& other) const {
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  merged.insert(merged.end(), intervals_.begin(), intervals_.end());
  merged.insert(merged.end(), other.intervals_.begin(),
                other.intervals_.end());
  return FromIntervals(std::move(merged));
}

Lifespan Lifespan::Intersect(const Lifespan& other) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    Interval x = intervals_[i].intersect(other.intervals_[j]);
    if (x.valid()) out.push_back(x);
    if (intervals_[i].end < other.intervals_[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  Lifespan ls;
  ls.intervals_ = std::move(out);  // Sweep output is already canonical.
  return ls;
}

Lifespan Lifespan::Difference(const Lifespan& other) const {
  std::vector<Interval> out;
  size_t j = 0;
  for (Interval cur : intervals_) {
    // Skip subtrahend intervals entirely before cur.
    while (j < other.intervals_.size() && other.intervals_[j].end < cur.begin) {
      ++j;
    }
    size_t k = j;
    TimePoint lo = cur.begin;
    while (k < other.intervals_.size() &&
           other.intervals_[k].begin <= cur.end) {
      const Interval& sub = other.intervals_[k];
      if (sub.begin > lo) out.push_back(Interval(lo, sub.begin - 1));
      if (sub.end >= cur.end) {
        lo = cur.end;
        // Entire remainder removed.
        lo = kTimeMax;  // Sentinel meaning "nothing left".
        break;
      }
      lo = sub.end + 1;
      ++k;
    }
    if (lo != kTimeMax && lo <= cur.end) out.push_back(Interval(lo, cur.end));
  }
  Lifespan ls;
  ls.intervals_ = std::move(out);  // Sweep output is already canonical.
  return ls;
}

std::vector<TimePoint> Lifespan::Materialize() const {
  std::vector<TimePoint> pts;
  pts.reserve(static_cast<size_t>(Cardinality()));
  for (const Interval& iv : intervals_) {
    for (TimePoint t = iv.begin; t <= iv.end; ++t) {
      pts.push_back(t);
      if (t == kTimeMax) break;  // Avoid overflow wrap.
    }
  }
  return pts;
}

TimePoint Lifespan::NextOnOrAfter(TimePoint t) const {
  for (const Interval& iv : intervals_) {
    if (iv.end < t) continue;
    return iv.begin >= t ? iv.begin : t;
  }
  return kTimeMax;
}

std::string Lifespan::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += intervals_[i].ToString();
  }
  out.push_back('}');
  return out;
}

Lifespan::PointIterator& Lifespan::PointIterator::operator++() {
  const auto& ivs = ls_->intervals();
  if (t_ < ivs[idx_].end) {
    ++t_;
  } else {
    ++idx_;
    t_ = idx_ < ivs.size() ? ivs[idx_].begin : 0;
  }
  return *this;
}

}  // namespace hrdm
