#ifndef HRDM_CORE_SCHEMA_H_
#define HRDM_CORE_SCHEMA_H_

/// \file schema.h
/// \brief Relation schemes: `R = <A, K, ALS, DOM>`.
///
/// Section 3 of the paper defines a relation scheme as an ordered 4-tuple:
///  1. `A ⊆ U`   — the attributes of R;
///  2. `K ⊆ A`   — the key attributes;
///  3. `ALS : A -> 2^T` — a lifespan for each attribute (this is what makes
///     *schemes* time-varying, Figure 6's evolving Daily-Trading-Volume);
///  4. `DOM : A -> HD`  — a historical domain for each attribute, where key
///     attributes must be constant-valued (`DOM(K_i) ∈ CD`).
///
/// The paper further notes (Section 2) that "the lifespan of the relation
/// schema [is] the union of the lifespans of all of the attributes in the
/// schema, and we need the constraint that the lifespan of the key
/// attributes must be the same as the lifespan of the entire relation
/// schema" — `RelationScheme::Make` validates exactly that.
///
/// DOM is represented by a `DomainType` (the *value-domain* `VD(A)`); the
/// constant-valuedness of keys is a property of tuple values and is
/// enforced on tuple construction (tuple.h). An attribute with
/// DomainType::kTime has `DOM(A) ⊆ TT` and unlocks the dynamic TIME-SLICE
/// and TIME-JOIN.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/interpolation.h"
#include "core/lifespan.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm {

/// \brief One attribute of a relation scheme: name, value domain, attribute
/// lifespan, and the interpolation function used to lift its stored values
/// to the model level.
struct AttributeDef {
  std::string name;
  DomainType type = DomainType::kInt;
  /// ALS(A, R): the set of times over which this attribute is defined in
  /// the scheme.
  Lifespan lifespan;
  /// Representation-level → model-level mapping for this attribute.
  InterpolationKind interpolation = InterpolationKind::kDiscrete;

  bool operator==(const AttributeDef& o) const {
    return name == o.name && type == o.type && lifespan == o.lifespan &&
           interpolation == o.interpolation;
  }
};

class RelationScheme;
/// \brief Schemes are immutable once built and shared between relations and
/// derived relations.
using SchemePtr = std::shared_ptr<const RelationScheme>;

/// \brief An immutable relation scheme `R = <A, K, ALS, DOM>`.
class RelationScheme {
 public:
  /// \brief Validates and builds a scheme.
  ///
  /// An empty `key` builds a *keyless derived scheme* (used by algebra
  /// results such as key-dropping projections, which use structural set
  /// semantics); base relations stored in a catalog must be keyed.
  ///
  /// Errors:
  ///  * no attributes, duplicate attribute names, invalid identifiers;
  ///  * key attribute not in A;
  ///  * a key attribute whose ALS differs from the scheme lifespan
  ///    (union of all attribute lifespans), per the Section 2 constraint.
  static Result<SchemePtr> Make(std::string name,
                                std::vector<AttributeDef> attributes,
                                std::vector<std::string> key);

  const std::string& name() const { return name_; }

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// \brief Key attribute names, in attribute order.
  const std::vector<std::string>& key() const { return key_; }
  /// \brief Indices of the key attributes within attributes().
  const std::vector<size_t>& key_indices() const { return key_indices_; }

  bool IsKey(size_t index) const;

  /// \brief Index of attribute `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// \brief Index of attribute `name`, or NotFound error naming the scheme.
  Result<size_t> RequireIndex(std::string_view name) const;

  /// \brief ALS(A, R) by index.
  const Lifespan& AttributeLifespan(size_t i) const {
    return attributes_[i].lifespan;
  }

  /// \brief The scheme lifespan: union of all attribute lifespans.
  const Lifespan& SchemeLifespan() const { return scheme_lifespan_; }

  /// \brief Union compatibility (Section 4.1): same attributes with the
  /// same domains (names, types, order). ALS may differ.
  bool UnionCompatibleWith(const RelationScheme& other) const;

  /// \brief Merge compatibility (Section 4.1): union-compatible and the
  /// same key.
  bool MergeCompatibleWith(const RelationScheme& other) const;

  /// \brief Derived scheme with identical attributes but each ALS replaced
  /// by `f(old_als_1, old_als_2)` pointwise against `other` (used by the
  /// set-theoretic operators: union takes ALS1 ∪ ALS2, intersection
  /// ALS1 ∩ ALS2). Requires union compatibility.
  enum class LifespanCombine { kUnion, kIntersect, kLeft };
  static Result<SchemePtr> Combine(std::string name,
                                   const RelationScheme& left,
                                   const RelationScheme& right,
                                   LifespanCombine combine);

  /// \brief Derived scheme keeping only the attributes in `names` (PROJECT,
  /// Section 4.2). The result keeps the old key if every key attribute is
  /// retained; otherwise the result is keyless (structural set semantics —
  /// the paper leaves the result key implicit).
  Result<SchemePtr> Project(const std::vector<std::string>& names) const;

  /// \brief Derived scheme for joins (Section 4.6): `R3 = <A1 ∪ A2,
  /// K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`. Shared attribute names must have
  /// equal domains; their ALS are unioned. `name` names the result.
  static Result<SchemePtr> JoinScheme(std::string name,
                                      const RelationScheme& left,
                                      const RelationScheme& right);

  /// \brief Derived scheme with one attribute's lifespan replaced
  /// (schema-evolution primitive used by the catalog).
  Result<SchemePtr> WithAttributeLifespan(std::string_view attr,
                                          Lifespan lifespan) const;

  /// \brief Structural equality ignoring the scheme name.
  bool SameStructure(const RelationScheme& other) const;

  /// \brief e.g. `emp(Name*: string @{[0,49]}, Salary: int @{[0,49]})`,
  /// `*` marking key attributes.
  std::string ToString() const;

 private:
  RelationScheme() = default;

  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::vector<std::string> key_;
  std::vector<size_t> key_indices_;
  Lifespan scheme_lifespan_;
};

}  // namespace hrdm

#endif  // HRDM_CORE_SCHEMA_H_
