#ifndef HRDM_CORE_TEMPORAL_VALUE_H_
#define HRDM_CORE_TEMPORAL_VALUE_H_

/// \file temporal_value.h
/// \brief Temporal functions: partial functions from `T` into a value
/// domain.
///
/// Section 3 of the paper: attribute values in HRDM are drawn from
/// `TD_i = { f | f : T -> D_i }` (or `TT = { g | g : T -> T }` for
/// time-valued attributes) — *partial functions* from time points into an
/// atomic domain. `CD` is the subset of constant-valued functions, required
/// for key attributes.
///
/// This class is the *representation level* (Figure 9) coding of such a
/// function: a sorted list of `<Interval, Value>` segments, each meaning
/// "over these chronons the function has this (stored) value". The *model
/// level* view — a total function on its domain — is obtained through
/// `ValueAt` (optionally via an interpolation function, see
/// interpolation.h). A constant-valued function is exactly the
/// `<lifespan, value>` pair representation the paper suggests for CD.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/lifespan.h"
#include "core/time.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm {

/// \brief One maximal run of chronons mapped to a single stored value.
struct Segment {
  Interval interval;
  Value value;

  bool operator==(const Segment&) const = default;
};

/// \brief A partial function from the time line into one value domain,
/// coded as stepwise-constant segments.
///
/// Invariants (established by all factories, preserved by all operations):
///  * segments are sorted by interval begin and pairwise disjoint;
///  * adjacent segments with equal values are merged (canonical form, so
///    function equality is representation equality);
///  * every segment's value is present and of one common DomainType.
class TemporalValue {
 public:
  /// \brief The empty (nowhere-defined) function.
  TemporalValue() = default;

  /// \brief The constant function mapping every chronon of `domain` to
  /// `value` — an element of the paper's `CD`. Error if `value` is absent.
  static Result<TemporalValue> Constant(const Lifespan& domain, Value value);

  /// \brief Builds from arbitrary segments. Error if segments overlap, hold
  /// absent values, or mix domain types.
  static Result<TemporalValue> FromSegments(std::vector<Segment> segments);

  /// \brief The single-chronon function {t -> value}.
  static Result<TemporalValue> At(TimePoint t, Value value) {
    return Constant(Lifespan::Point(t), std::move(value));
  }

  bool empty() const { return segments_.empty(); }

  const std::vector<Segment>& segments() const { return segments_; }

  /// \brief Domain type of the range values; nullopt when empty.
  std::optional<DomainType> type() const { return type_; }

  /// \brief The function's domain: the set of chronons where it is defined.
  /// (The paper's `vls` once intersected with the relevant lifespans.)
  const Lifespan& domain() const { return domain_; }

  /// \brief The stored value at chronon `t`, or absent Value if `t` is
  /// outside the domain ("undefined means the attribute is not relevant at
  /// such times, and thus does not exist").
  Value ValueAt(TimePoint t) const;

  /// \brief True if defined at `t`.
  bool DefinedAt(TimePoint t) const { return domain_.Contains(t); }

  /// \brief True if the function maps its whole domain to one value
  /// (member of `CD`). The domain may still be fragmented — a constant
  /// function over a reincarnation lifespan has several segments with one
  /// shared value. The empty function counts as constant.
  bool IsConstant() const;

  /// \brief For constant functions: the single value (absent if empty).
  Value ConstantValue() const {
    return segments_.empty() ? Value() : segments_.front().value;
  }

  /// \brief Restriction f|_L of the paper: the same function on
  /// `domain() ∩ L`.
  TemporalValue Restrict(const Lifespan& to) const;

  /// \brief Function union used by tuple merge (Section 4.1,
  /// `(t1 + t2).v(A) = t1.v(A) ∪ t2.v(A)`). Error if the two functions
  /// contradict each other anywhere on their common domain or differ in
  /// type.
  Result<TemporalValue> UnionWith(const TemporalValue& other) const;

  /// \brief True if the two functions agree wherever both are defined
  /// (mergability condition 3 of Section 4.1).
  bool ConsistentWith(const TemporalValue& other) const;

  /// \brief The set of chronons where both functions are defined and carry
  /// equal values — the pointwise function intersection's domain (used by
  /// the equijoin's `t.v(A) = t_r1.v(A) ∩ t_r2.v(B)` and by `∩ₒ`). Unlike
  /// TimesWhereMatches(kEq, ...) this never fails: exact Value equality is
  /// defined across all types.
  Lifespan AgreementWith(const TemporalValue& other) const;

  /// \brief Distinct values of the range (the function's image), in value
  /// order.
  std::vector<Value> Image() const;

  /// \brief For time-valued functions (type kTime): the image as a
  /// lifespan — "the set of times that t(A) maps to", which drives the
  /// dynamic TIME-SLICE and TIME-JOIN. Error for non-time functions.
  Result<Lifespan> TimeImage() const;

  /// \brief The set of chronons where this function's value satisfies
  /// `v θ rhs` (the pointwise predicate evaluation behind SELECT-WHEN).
  /// Comparison errors (type mismatch) propagate.
  Result<Lifespan> TimesWhere(CompareOp op, const Value& rhs) const;

  /// \brief The set of chronons where this and `other` are both defined and
  /// their values satisfy θ (used by the θ-JOIN's lifespan computation).
  Result<Lifespan> TimesWhereMatches(CompareOp op,
                                     const TemporalValue& other) const;

  bool operator==(const TemporalValue& o) const {
    return segments_ == o.segments_;
  }
  bool operator!=(const TemporalValue& o) const { return !(*this == o); }

  /// \brief 64-bit structural hash.
  uint64_t Hash() const;

  /// \brief e.g. `{[0,4]->"Codd", [7,9]->"Date"}`.
  std::string ToString() const;

 private:
  std::vector<Segment> segments_;
  Lifespan domain_;
  std::optional<DomainType> type_;

  /// Recomputes domain_/type_ from segments_ (which must be canonical).
  void Reindex();
};

}  // namespace hrdm

#endif  // HRDM_CORE_TEMPORAL_VALUE_H_
