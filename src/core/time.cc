#include "core/time.h"

#include "util/format.h"

namespace hrdm {

std::string Interval::ToString() const {
  std::string out;
  out.push_back('[');
  AppendInt(&out, begin);
  if (end != begin) {
    out.push_back(',');
    AppendInt(&out, end);
  }
  out.push_back(']');
  return out;
}

}  // namespace hrdm
