#include "core/schema.h"

#include <algorithm>
#include <unordered_set>

#include "util/format.h"

namespace hrdm {

Result<SchemePtr> RelationScheme::Make(std::string name,
                                       std::vector<AttributeDef> attributes,
                                       std::vector<std::string> key) {
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("relation name is not an identifier: " +
                                   name);
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("scheme " + name + " has no attributes");
  }
  // An empty key is allowed for *derived* schemes (e.g. a projection that
  // drops the key): such relations use structural set semantics instead of
  // temporal key uniqueness. Base relations registered in a catalog must
  // have keys (enforced by storage::Catalog).
  std::unordered_set<std::string> seen;
  for (const AttributeDef& a : attributes) {
    if (!IsIdentifier(a.name)) {
      return Status::InvalidArgument("attribute name is not an identifier: " +
                                     a.name);
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute " + a.name +
                                     " in scheme " + name);
    }
    if (a.type == DomainType::kDouble ||
        a.interpolation != InterpolationKind::kLinear) {
      // Any type works with discrete/stepwise; linear needs double.
    } else {
      return Status::TypeError("attribute " + a.name +
                               ": linear interpolation requires double");
    }
  }

  auto scheme = std::shared_ptr<RelationScheme>(new RelationScheme());
  scheme->name_ = std::move(name);
  scheme->attributes_ = std::move(attributes);

  // Scheme lifespan = union of attribute lifespans.
  Lifespan scheme_ls;
  for (const AttributeDef& a : scheme->attributes_) {
    scheme_ls = scheme_ls.Union(a.lifespan);
  }
  scheme->scheme_lifespan_ = std::move(scheme_ls);

  // Resolve and validate the key.
  std::unordered_set<std::string> key_seen;
  for (const std::string& k : key) {
    if (!key_seen.insert(k).second) {
      return Status::InvalidArgument("duplicate key attribute " + k);
    }
  }
  for (size_t i = 0; i < scheme->attributes_.size(); ++i) {
    const AttributeDef& a = scheme->attributes_[i];
    if (key_seen.count(a.name)) {
      scheme->key_.push_back(a.name);
      scheme->key_indices_.push_back(i);
      // Section 2: key attribute lifespans must equal the scheme lifespan.
      if (!(a.lifespan == scheme->scheme_lifespan_)) {
        return Status::ConstraintViolation(
            "key attribute " + a.name + " of scheme " + scheme->name_ +
            " must have the scheme lifespan " +
            scheme->scheme_lifespan_.ToString() + ", got " +
            a.lifespan.ToString());
      }
      key_seen.erase(a.name);
    }
  }
  if (!key_seen.empty()) {
    return Status::NotFound("key attribute " + *key_seen.begin() +
                            " is not an attribute of scheme " + scheme->name_);
  }
  return SchemePtr(scheme);
}

bool RelationScheme::IsKey(size_t index) const {
  return std::find(key_indices_.begin(), key_indices_.end(), index) !=
         key_indices_.end();
}

std::optional<size_t> RelationScheme::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> RelationScheme::RequireIndex(std::string_view name) const {
  if (auto idx = IndexOf(name)) return *idx;
  return Status::NotFound("attribute " + std::string(name) +
                          " not in scheme " + name_);
}

bool RelationScheme::UnionCompatibleWith(const RelationScheme& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name) return false;
    if (attributes_[i].type != other.attributes_[i].type) return false;
  }
  return true;
}

bool RelationScheme::MergeCompatibleWith(const RelationScheme& other) const {
  return UnionCompatibleWith(other) && key_ == other.key_;
}

Result<SchemePtr> RelationScheme::Combine(std::string name,
                                          const RelationScheme& left,
                                          const RelationScheme& right,
                                          LifespanCombine combine) {
  if (!left.UnionCompatibleWith(right)) {
    return Status::IncompatibleSchemes(left.name_ + " and " + right.name_ +
                                       " are not union-compatible");
  }
  std::vector<AttributeDef> attrs = left.attributes_;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const Lifespan& other_ls = right.attributes_[i].lifespan;
    switch (combine) {
      case LifespanCombine::kUnion:
        attrs[i].lifespan = attrs[i].lifespan.Union(other_ls);
        break;
      case LifespanCombine::kIntersect:
        attrs[i].lifespan = attrs[i].lifespan.Intersect(other_ls);
        break;
      case LifespanCombine::kLeft:
        break;
    }
  }
  return Make(std::move(name), std::move(attrs), left.key_);
}

Result<SchemePtr> RelationScheme::Project(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    return Status::InvalidArgument("projection list is empty");
  }
  std::vector<AttributeDef> attrs;
  attrs.reserve(names.size());
  std::unordered_set<std::string> kept;
  for (const std::string& n : names) {
    HRDM_ASSIGN_OR_RETURN(size_t idx, RequireIndex(n));
    if (!kept.insert(n).second) {
      return Status::InvalidArgument("duplicate attribute in projection: " +
                                     n);
    }
    attrs.push_back(attributes_[idx]);
  }
  // Key: the old key if fully retained; otherwise the result is a keyless
  // derived scheme (structural set semantics — projecting away the key can
  // legitimately produce tuples whose key vectors collide).
  bool key_retained = true;
  for (const std::string& k : key_) {
    if (!kept.count(k)) {
      key_retained = false;
      break;
    }
  }
  std::vector<std::string> new_key;
  if (key_retained) new_key = key_;
  // Keep the key-lifespan invariant: key attribute lifespans must equal the
  // (possibly shrunken) scheme lifespan of the projection.
  Lifespan scheme_ls;
  for (const AttributeDef& a : attrs) scheme_ls = scheme_ls.Union(a.lifespan);
  for (AttributeDef& a : attrs) {
    if (std::find(new_key.begin(), new_key.end(), a.name) != new_key.end()) {
      a.lifespan = scheme_ls;
    }
  }
  return Make(name_ + "_proj", std::move(attrs), std::move(new_key));
}

Result<SchemePtr> RelationScheme::JoinScheme(std::string name,
                                             const RelationScheme& left,
                                             const RelationScheme& right) {
  std::vector<AttributeDef> attrs = left.attributes_;
  for (const AttributeDef& b : right.attributes_) {
    auto idx = left.IndexOf(b.name);
    if (idx.has_value()) {
      AttributeDef& a = attrs[*idx];
      if (a.type != b.type) {
        return Status::IncompatibleSchemes(
            "shared attribute " + b.name +
            " has conflicting domains in join of " + left.name_ + " and " +
            right.name_);
      }
      a.lifespan = a.lifespan.Union(b.lifespan);
    } else {
      attrs.push_back(b);
    }
  }
  // K1 ∪ K2.
  std::vector<std::string> key = left.key_;
  for (const std::string& k : right.key_) {
    if (std::find(key.begin(), key.end(), k) == key.end()) key.push_back(k);
  }
  // Restore the key-lifespan invariant on the combined scheme.
  Lifespan scheme_ls;
  for (const AttributeDef& a : attrs) scheme_ls = scheme_ls.Union(a.lifespan);
  for (AttributeDef& a : attrs) {
    if (std::find(key.begin(), key.end(), a.name) != key.end()) {
      a.lifespan = scheme_ls;
    }
  }
  return Make(std::move(name), std::move(attrs), std::move(key));
}

Result<SchemePtr> RelationScheme::WithAttributeLifespan(
    std::string_view attr, Lifespan lifespan) const {
  HRDM_ASSIGN_OR_RETURN(size_t idx, RequireIndex(attr));
  std::vector<AttributeDef> attrs = attributes_;
  attrs[idx].lifespan = std::move(lifespan);
  // Keys must keep spanning the (possibly changed) scheme lifespan.
  Lifespan scheme_ls;
  for (const AttributeDef& a : attrs) scheme_ls = scheme_ls.Union(a.lifespan);
  for (AttributeDef& a : attrs) {
    if (std::find(key_.begin(), key_.end(), a.name) != key_.end()) {
      a.lifespan = scheme_ls;
    }
  }
  return Make(name_, std::move(attrs), key_);
}

bool RelationScheme::SameStructure(const RelationScheme& other) const {
  return attributes_ == other.attributes_ && key_ == other.key_;
}

std::string RelationScheme::ToString() const {
  std::string out = name_;
  out.push_back('(');
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    const AttributeDef& a = attributes_[i];
    out += a.name;
    if (IsKey(i)) out.push_back('*');
    out += ": ";
    out += DomainTypeName(a.type);
    out += " @";
    out += a.lifespan.ToString();
  }
  out.push_back(')');
  return out;
}

}  // namespace hrdm
