#ifndef HRDM_CORE_TUPLE_H_
#define HRDM_CORE_TUPLE_H_

/// \file tuple.h
/// \brief Historical tuples: `t = <v, l>`.
///
/// Section 3 of the paper: "A tuple t on scheme R is an ordered pair,
/// t = <v, l>, where t.l, the lifespan of tuple t, is a lifespan, and t.v,
/// the value of the tuple, is a mapping such that for all attributes A ∈ R,
/// t.v(A) is a mapping in t.l ∩ ALS(A,R) -> DOM(A)."
///
/// The *value lifespan* of attribute A in tuple t is
/// `vls(t,A,R) = t.l ∩ ALS(A,R)` — the set of times over which the value is
/// defined (Figures 7–8). Tuple values are therefore heterogeneous in the
/// temporal dimension: each attribute is clipped both by the tuple's
/// lifespan and by its own attribute lifespan.
///
/// Invariants enforced by `Tuple::Builder::Build` and preserved by all
/// algebra operators:
///  * the domain of every stored value is contained in `vls(t,A,R)`;
///  * every value's range type matches `DOM(A)`;
///  * key attribute values are constant-valued (`DOM(K) ⊆ CD`) and total on
///    `vls` (so the temporal key-uniqueness condition of Section 3 is
///    well-defined at every chronon of the tuple's lifespan).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/interpolation.h"
#include "core/lifespan.h"
#include "core/schema.h"
#include "core/temporal_value.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm {

/// \brief An immutable historical tuple `<v, l>` bound to a scheme.
class Tuple {
 public:
  /// \brief Incremental construction of a valid tuple.
  class Builder {
   public:
    /// \brief Starts a tuple on `scheme` with lifespan `lifespan`.
    Builder(SchemePtr scheme, Lifespan lifespan);

    /// \brief Sets attribute `attr` to the temporal function `value`.
    /// The function is clipped to `vls(t, attr, R)` automatically.
    Builder& Set(std::string_view attr, TemporalValue value);

    /// \brief Sets attribute `attr` to the constant function over the whole
    /// `vls(t, attr, R)` — the `<lifespan, value>` pair coding of CD.
    Builder& SetConstant(std::string_view attr, Value value);

    /// \brief Sets attribute `attr` at a single chronon.
    Builder& SetAt(std::string_view attr, TimePoint t, Value value);

    /// \brief Validates invariants and produces the tuple. Errors:
    /// unknown attribute names, type mismatches, values escaping their
    /// `vls`, non-constant or partial key values, empty tuple lifespan.
    Result<Tuple> Build() &&;

   private:
    SchemePtr scheme_;
    Lifespan lifespan_;
    std::vector<TemporalValue> values_;
    std::vector<std::vector<Segment>> pending_;  // per attribute
    Status deferred_error_;
  };

  /// \brief Low-level constructor used by the algebra, which derives tuples
  /// whose invariants follow from its own definitions (e.g. Cartesian
  /// products legitimately have key values that are partial on the combined
  /// lifespan — the paper's "null values" discussion in Section 5). The
  /// caller must supply one value per scheme attribute; this is checked,
  /// the Builder's richer validation is not re-run.
  static Tuple FromParts(SchemePtr scheme, Lifespan lifespan,
                         std::vector<TemporalValue> values);

  const SchemePtr& scheme() const { return scheme_; }
  const Lifespan& lifespan() const { return lifespan_; }

  size_t arity() const { return values_.size(); }

  /// \brief The stored (representation-level) temporal function of
  /// attribute `i`.
  const TemporalValue& value(size_t i) const { return values_[i]; }

  /// \brief Stored function by attribute name; NotFound for unknown names.
  Result<TemporalValue> value(std::string_view attr) const;

  /// \brief `vls(t, A, R) = t.l ∩ ALS(A, R)` for attribute `i`.
  Lifespan Vls(size_t i) const {
    return lifespan_.Intersect(scheme_->AttributeLifespan(i));
  }

  /// \brief `vls(t, X, R)` for a set of attribute indices: the intersection
  /// of the individual value lifespans (paper's extension of vls to sets).
  Lifespan VlsOf(const std::vector<size_t>& indices) const;

  /// \brief Stored value of attribute `i` at chronon `s` — the paper's
  /// `t(A)(s)`; absent when `s` is outside the stored function's domain.
  Value ValueAt(size_t i, TimePoint s) const { return values_[i].ValueAt(s); }

  /// \brief Model-level value of attribute `i` at chronon `s`: applies the
  /// attribute's interpolation function over `vls` before evaluating, so a
  /// stepwise attribute answers queries between stored changes (Figure 9).
  Result<Value> ModelValueAt(size_t i, TimePoint s) const;

  /// \brief The full model-level function of attribute `i` on its `vls`.
  Result<TemporalValue> ModelValue(size_t i) const;

  /// \brief The model-level view of this tuple: every attribute value
  /// interpolated into a total function on its `vls` (Figure 9's
  /// representation → model mapping). Idempotent. The algebra operates on
  /// materialized tuples so that restriction (TIME-SLICE, SELECT-WHEN,
  /// joins) restricts the *model-level* function — restricting the sparse
  /// stored representation instead would drop stepwise anchors that extend
  /// into the restriction window and silently change query answers.
  Result<Tuple> Materialized() const;

  /// \brief `Materialized()` as a shared handle, memoized: the first call
  /// interpolates and caches the model-level tuple; later calls return the
  /// cached handle without re-running the representation → model mapping.
  /// Thread-safe: the cache is published with a claim/publish state machine
  /// (one CAS winner stores, everyone else reads after an acquire load) —
  /// concurrent first calls race benignly, losers keep their own
  /// equal-valued materialization instead of waiting for the winner. The
  /// cache is per-object and is deliberately not copied with the tuple:
  /// derived tuples (restrictions, projections) are new objects with their
  /// own — initially empty — memo. Storage-resident tuples are long-lived,
  /// so repeated scans interpolate each stored tuple exactly once per
  /// database version, not once per query.
  Result<std::shared_ptr<const Tuple>> MaterializedShared() const;

  /// \brief The constant key values, in key-attribute order.
  std::vector<Value> KeyValues() const;

  /// \brief Hash of the key values (for relation key indexes).
  uint64_t KeyHash() const;

  /// \brief True if this tuple and `other` have equal key vectors at all
  /// pairs of chronons — with constant keys, equal key value vectors
  /// (mergability condition 2 / key-uniqueness condition of Section 3).
  bool SameKeyAs(const Tuple& other) const;

  /// \brief Mergability (Section 4.1): same key value and non-contradicting
  /// values at every common chronon. Scheme merge-compatibility is checked
  /// by the caller (it is a property of relations).
  bool MergeableWith(const Tuple& other) const;

  /// \brief The merge `t1 + t2` (Section 4.1): lifespan union, pointwise
  /// function union. `result_scheme` is the merged scheme (ALS unions).
  /// Errors if not mergeable.
  Result<Tuple> Merge(const Tuple& other, SchemePtr result_scheme) const;

  /// \brief The restriction `t|_L`: lifespan becomes `t.l ∩ L`, every value
  /// clipped to its new vls. The result may have an empty lifespan; such
  /// tuples are dropped by the algebra rather than inserted.
  Tuple Restrict(const Lifespan& l, SchemePtr result_scheme) const;

  /// \brief Rebinds the tuple to a structurally compatible scheme (same
  /// attribute names/types; ALS may differ — values are re-clipped).
  Tuple Rebind(SchemePtr scheme) const;

  /// \brief Structural equality: same lifespan and same stored functions
  /// (scheme pointers may differ if structurally equal).
  bool operator==(const Tuple& other) const;

  /// \brief 64-bit structural hash (lifespan + values), memoized: tuples
  /// are immutable, and relation set-semantics (`InsertDedup`) hashes every
  /// tuple at least twice (dedup probe + structural index), so the first
  /// computation is cached. Thread-safe: the memo is a relaxed atomic and
  /// the hash is a pure function of immutable state, so racing writers
  /// store the same value.
  uint64_t Hash() const;

  std::string ToString() const;

  // The materialization memo is identity-bound, so copies and moves start
  // with an empty cache (and copying/moving never touches another thread's
  // published memo).
  Tuple(const Tuple& other)
      : scheme_(other.scheme_),
        lifespan_(other.lifespan_),
        values_(other.values_) {}
  Tuple(Tuple&& other) noexcept
      : scheme_(std::move(other.scheme_)),
        lifespan_(std::move(other.lifespan_)),
        values_(std::move(other.values_)) {}
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      scheme_ = other.scheme_;
      lifespan_ = other.lifespan_;
      values_ = other.values_;
      ResetMemos();
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      scheme_ = std::move(other.scheme_);
      lifespan_ = std::move(other.lifespan_);
      values_ = std::move(other.values_);
      ResetMemos();
    }
    return *this;
  }

 private:
  friend class Builder;
  Tuple(SchemePtr scheme, Lifespan lifespan, std::vector<TemporalValue> values)
      : scheme_(std::move(scheme)),
        lifespan_(std::move(lifespan)),
        values_(std::move(values)) {}

  // Assignment gives the object a new value, so the identity-bound caches
  // restart empty. Assignment requires exclusive access to *this (like any
  // non-const use), so plain stores suffice.
  void ResetMemos() {
    memo_state_.store(kMemoEmpty, std::memory_order_relaxed);
    materialized_memo_.reset();
    hash_memo_.store(0, std::memory_order_relaxed);
  }

  // States of the materialization memo. `materialized_memo_` itself is a
  // plain shared_ptr: it is written only by the thread whose CAS takes
  // kMemoEmpty -> kMemoClaimed, and read only after an acquire load of
  // kMemoReady observes that thread's release store — a publish pattern
  // ThreadSanitizer verifies as-is (unlike std::atomic<std::shared_ptr>,
  // whose embedded lock-bit spinlock TSan cannot model).
  enum : uint32_t { kMemoEmpty = 0, kMemoClaimed = 1, kMemoReady = 2 };

  SchemePtr scheme_;
  Lifespan lifespan_;
  std::vector<TemporalValue> values_;
  mutable std::atomic<uint32_t> memo_state_{kMemoEmpty};
  mutable std::shared_ptr<const Tuple> materialized_memo_;
  mutable std::atomic<uint64_t> hash_memo_{0};  // 0 = not yet computed
};

/// \brief Shared immutable tuple handle. Relations and cursors pass tuples
/// by pointer so that copying a relation (or flowing a tuple through a
/// pipeline) never duplicates the underlying temporal functions.
using TuplePtr = std::shared_ptr<const Tuple>;

}  // namespace hrdm

#endif  // HRDM_CORE_TUPLE_H_
