#ifndef HRDM_CORE_INTERPOLATION_H_
#define HRDM_CORE_INTERPOLATION_H_

/// \file interpolation.h
/// \brief Interpolation functions: the representation-level → model-level
/// mapping of Figure 9.
///
/// The paper (Section 3): "the mapping from the representation level to the
/// model level must include, for any such attribute, an *interpolation
/// function* I ... which maps each such 'partially-represented function'
/// into a total function from S." The paper defers the catalogue of
/// interpolation functions to [Clifford 85]; we implement the three
/// canonical choices:
///
///  * `kDiscrete`  — no interpolation: the function is defined only where a
///    value is stored. (Suitable for event-like attributes.)
///  * `kStepwise`  — stored values persist until the next stored value
///    ("stair-step"): the classical choice for state-like attributes such
///    as Salary or Manager.
///  * `kLinear`    — linear interpolation between stored numeric samples
///    (requires a kDouble range): suitable for sampled measurements such as
///    the paper's Daily-Trading-Volume.

#include <cstdint>
#include <string_view>

#include "core/lifespan.h"
#include "core/temporal_value.h"
#include "util/status.h"

namespace hrdm {

/// \brief Which interpolation function maps stored (partial) values to the
/// model-level total function.
enum class InterpolationKind : uint8_t {
  kDiscrete = 0,
  kStepwise = 1,
  kLinear = 2,
};

/// \brief Stable name ("discrete", "stepwise", "linear").
std::string_view InterpolationKindName(InterpolationKind kind);

/// \brief Parses an InterpolationKindName back.
Result<InterpolationKind> InterpolationKindFromName(std::string_view name);

/// \brief Applies interpolation `kind` to the partially-represented
/// function `stored`, producing a function defined on as much of `target`
/// as the interpolation semantics allow:
///
///  * kDiscrete: `stored.Restrict(target)` — the identity interpolation.
///  * kStepwise: each stored value extends forward in time until the chronon
///    before the next stored value (and the last stored value extends to the
///    end of `target`); chronons of `target` before the first stored value
///    remain undefined.
///  * kLinear: within `target`, chronons between two consecutive stored
///    runs take the linearly interpolated value between the last value of
///    the earlier run and the first value of the later run; the last run
///    extends stepwise to the end of `target`. Requires a kDouble range.
///
/// The result's domain is always a subset of `target`; if `stored` is
/// entirely outside/after `target` the result may be empty.
Result<TemporalValue> Interpolate(const TemporalValue& stored,
                                  const Lifespan& target,
                                  InterpolationKind kind);

}  // namespace hrdm

#endif  // HRDM_CORE_INTERPOLATION_H_
