#include "core/interpolation.h"

#include <vector>

namespace hrdm {

std::string_view InterpolationKindName(InterpolationKind kind) {
  switch (kind) {
    case InterpolationKind::kDiscrete:
      return "discrete";
    case InterpolationKind::kStepwise:
      return "stepwise";
    case InterpolationKind::kLinear:
      return "linear";
  }
  return "unknown";
}

Result<InterpolationKind> InterpolationKindFromName(std::string_view name) {
  if (name == "discrete") return InterpolationKind::kDiscrete;
  if (name == "stepwise") return InterpolationKind::kStepwise;
  if (name == "linear") return InterpolationKind::kLinear;
  return Status::InvalidArgument("unknown interpolation kind: " +
                                 std::string(name));
}

namespace {

/// Stepwise: stored segment k's value holds from its begin through the
/// chronon before segment k+1 begins (or through target max for the last).
Result<TemporalValue> StepwiseInterpolate(const TemporalValue& stored,
                                          const Lifespan& target) {
  if (stored.empty() || target.empty()) return TemporalValue();
  const auto& segs = stored.segments();
  std::vector<Segment> extended;
  extended.reserve(segs.size());
  for (size_t k = 0; k < segs.size(); ++k) {
    TimePoint hi;
    if (k + 1 < segs.size()) {
      hi = segs[k + 1].interval.begin - 1;
    } else {
      hi = std::max(segs[k].interval.end, target.Max());
    }
    extended.push_back(Segment{Interval(segs[k].interval.begin, hi),
                               segs[k].value});
  }
  HRDM_ASSIGN_OR_RETURN(TemporalValue full,
                        TemporalValue::FromSegments(std::move(extended)));
  return full.Restrict(target);
}

/// Linear: exact on stored runs; between run k (ending at e_k, value v_k)
/// and run k+1 (starting at b_{k+1}, value w_{k+1}) chronon t takes
/// v_k + (w_{k+1} - v_k) * (t - e_k) / (b_{k+1} - e_k). After the last run,
/// extend stepwise to target max. Before the first run: undefined.
Result<TemporalValue> LinearInterpolate(const TemporalValue& stored,
                                        const Lifespan& target) {
  if (stored.empty() || target.empty()) return TemporalValue();
  if (stored.type() != DomainType::kDouble) {
    return Status::TypeError(
        "linear interpolation requires a double-valued attribute");
  }
  const auto& segs = stored.segments();
  std::vector<Segment> out;
  for (size_t k = 0; k < segs.size(); ++k) {
    out.push_back(segs[k]);
    const TimePoint e = segs[k].interval.end;
    const double v = segs[k].value.AsDouble();
    if (k + 1 < segs.size()) {
      const TimePoint b = segs[k + 1].interval.begin;
      const double w = segs[k + 1].value.AsDouble();
      // Gap chronons e+1 .. b-1. Materialised per chronon, but only for
      // chronons inside `target` (gaps outside the target cost nothing).
      const Lifespan gap =
          target.Intersect(e + 1 <= b - 1 ? Span(e + 1, b - 1)
                                          : Lifespan::Empty());
      for (TimePoint t : gap) {
        const double frac =
            static_cast<double>(t - e) / static_cast<double>(b - e);
        out.push_back(Segment{Interval::At(t), Value::Double(v + (w - v) * frac)});
      }
    } else if (target.Max() > e) {
      // Step-extend the final value.
      out.push_back(Segment{Interval(e + 1, target.Max()), Value::Double(v)});
    }
  }
  HRDM_ASSIGN_OR_RETURN(TemporalValue full,
                        TemporalValue::FromSegments(std::move(out)));
  return full.Restrict(target);
}

}  // namespace

Result<TemporalValue> Interpolate(const TemporalValue& stored,
                                  const Lifespan& target,
                                  InterpolationKind kind) {
  switch (kind) {
    case InterpolationKind::kDiscrete:
      return stored.Restrict(target);
    case InterpolationKind::kStepwise:
      return StepwiseInterpolate(stored, target);
    case InterpolationKind::kLinear:
      return LinearInterpolate(stored, target);
  }
  return Status::Internal("unhandled interpolation kind");
}

}  // namespace hrdm
