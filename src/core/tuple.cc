#include "core/tuple.h"

#include "util/format.h"

namespace hrdm {

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

Tuple::Builder::Builder(SchemePtr scheme, Lifespan lifespan)
    : scheme_(std::move(scheme)), lifespan_(std::move(lifespan)) {
  values_.resize(scheme_->arity());
  pending_.resize(scheme_->arity());
}

Tuple::Builder& Tuple::Builder::Set(std::string_view attr,
                                    TemporalValue value) {
  auto idx = scheme_->IndexOf(attr);
  if (!idx.has_value()) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::NotFound("attribute " + std::string(attr) +
                                         " not in scheme " + scheme_->name());
    }
    return *this;
  }
  values_[*idx] = std::move(value);
  pending_[*idx].clear();
  return *this;
}

Tuple::Builder& Tuple::Builder::SetConstant(std::string_view attr,
                                            Value value) {
  auto idx = scheme_->IndexOf(attr);
  if (!idx.has_value()) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::NotFound("attribute " + std::string(attr) +
                                         " not in scheme " + scheme_->name());
    }
    return *this;
  }
  const Lifespan vls =
      lifespan_.Intersect(scheme_->AttributeLifespan(*idx));
  auto tv = TemporalValue::Constant(vls, std::move(value));
  if (!tv.ok()) {
    if (deferred_error_.ok()) deferred_error_ = tv.status();
    return *this;
  }
  values_[*idx] = std::move(tv).value();
  pending_[*idx].clear();
  return *this;
}

Tuple::Builder& Tuple::Builder::SetAt(std::string_view attr, TimePoint t,
                                      Value value) {
  auto idx = scheme_->IndexOf(attr);
  if (!idx.has_value()) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::NotFound("attribute " + std::string(attr) +
                                         " not in scheme " + scheme_->name());
    }
    return *this;
  }
  pending_[*idx].push_back(Segment{Interval::At(t), std::move(value)});
  return *this;
}

Result<Tuple> Tuple::Builder::Build() && {
  HRDM_RETURN_IF_ERROR(deferred_error_);
  if (lifespan_.empty()) {
    return Status::InvalidArgument("tuple lifespan is empty");
  }
  for (size_t i = 0; i < scheme_->arity(); ++i) {
    if (!pending_[i].empty()) {
      if (!values_[i].empty()) {
        // Merge point assignments into a previously Set function.
        std::vector<Segment> segs = values_[i].segments();
        segs.insert(segs.end(), pending_[i].begin(), pending_[i].end());
        HRDM_ASSIGN_OR_RETURN(values_[i],
                              TemporalValue::FromSegments(std::move(segs)));
      } else {
        HRDM_ASSIGN_OR_RETURN(
            values_[i], TemporalValue::FromSegments(std::move(pending_[i])));
      }
    }
    const AttributeDef& a = scheme_->attribute(i);
    const TemporalValue& v = values_[i];
    if (v.empty()) {
      if (scheme_->IsKey(i)) {
        return Status::ConstraintViolation("key attribute " + a.name +
                                           " has no value");
      }
      continue;
    }
    if (*v.type() != a.type) {
      return Status::TypeError(
          "attribute " + a.name + " expects " +
          std::string(DomainTypeName(a.type)) + ", got " +
          std::string(DomainTypeName(*v.type())));
    }
    const Lifespan vls = lifespan_.Intersect(a.lifespan);
    if (!vls.ContainsAll(v.domain())) {
      return Status::ConstraintViolation(
          "value of attribute " + a.name + " escapes vls " + vls.ToString() +
          ": domain " + v.domain().ToString());
    }
    if (scheme_->IsKey(i)) {
      if (!v.IsConstant()) {
        return Status::ConstraintViolation(
            "key attribute " + a.name +
            " must be constant-valued (DOM(K) in CD)");
      }
      if (v.domain() != vls) {
        return Status::ConstraintViolation(
            "key attribute " + a.name + " must be total on vls " +
            vls.ToString() + ", has domain " + v.domain().ToString());
      }
    }
  }
  return Tuple(std::move(scheme_), std::move(lifespan_), std::move(values_));
}

Tuple Tuple::FromParts(SchemePtr scheme, Lifespan lifespan,
                       std::vector<TemporalValue> values) {
  if (values.size() != scheme->arity()) {
    internal::AbortWithMessage("hrdm::Tuple",
                               "FromParts: value count does not match scheme");
  }
  return Tuple(std::move(scheme), std::move(lifespan), std::move(values));
}

Result<TemporalValue> Tuple::value(std::string_view attr) const {
  HRDM_ASSIGN_OR_RETURN(size_t idx, scheme_->RequireIndex(attr));
  return values_[idx];
}

Lifespan Tuple::VlsOf(const std::vector<size_t>& indices) const {
  if (indices.empty()) return lifespan_;
  Lifespan out = Vls(indices[0]);
  for (size_t k = 1; k < indices.size(); ++k) {
    out = out.Intersect(Vls(indices[k]));
  }
  return out;
}

Result<Value> Tuple::ModelValueAt(size_t i, TimePoint s) const {
  HRDM_ASSIGN_OR_RETURN(TemporalValue model, ModelValue(i));
  return model.ValueAt(s);
}

Result<TemporalValue> Tuple::ModelValue(size_t i) const {
  return Interpolate(values_[i], Vls(i), scheme_->attribute(i).interpolation);
}

Result<Tuple> Tuple::Materialized() const {
  std::vector<TemporalValue> values;
  values.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    HRDM_ASSIGN_OR_RETURN(TemporalValue v, ModelValue(i));
    values.push_back(std::move(v));
  }
  return Tuple(scheme_, lifespan_, std::move(values));
}

Result<std::shared_ptr<const Tuple>> Tuple::MaterializedShared() const {
  if (memo_state_.load(std::memory_order_acquire) == kMemoReady) {
    return materialized_memo_;
  }
  HRDM_ASSIGN_OR_RETURN(Tuple m, Materialized());
  auto fresh = std::make_shared<const Tuple>(std::move(m));
  uint32_t expected = kMemoEmpty;
  if (memo_state_.compare_exchange_strong(expected, kMemoClaimed,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    materialized_memo_ = fresh;
    memo_state_.store(kMemoReady, std::memory_order_release);
  }
  // A losing racer keeps its own (equal-valued) materialization rather
  // than spinning until the winner publishes.
  return fresh;
}

std::vector<Value> Tuple::KeyValues() const {
  std::vector<Value> key;
  key.reserve(scheme_->key_indices().size());
  for (size_t i : scheme_->key_indices()) {
    key.push_back(values_[i].ConstantValue());
  }
  return key;
}

uint64_t Tuple::KeyHash() const {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i : scheme_->key_indices()) {
    h = (h ^ values_[i].ConstantValue().Hash()) * kFnvPrime;
  }
  return h;
}

bool Tuple::SameKeyAs(const Tuple& other) const {
  return KeyValues() == other.KeyValues();
}

bool Tuple::MergeableWith(const Tuple& other) const {
  if (arity() != other.arity()) return false;
  if (!SameKeyAs(other)) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!values_[i].ConsistentWith(other.values_[i])) return false;
  }
  return true;
}

Result<Tuple> Tuple::Merge(const Tuple& other, SchemePtr result_scheme) const {
  if (!MergeableWith(other)) {
    return Status::ConstraintViolation("tuples are not mergeable");
  }
  Lifespan merged_ls = lifespan_.Union(other.lifespan_);
  std::vector<TemporalValue> merged_vals;
  merged_vals.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    HRDM_ASSIGN_OR_RETURN(TemporalValue v,
                          values_[i].UnionWith(other.values_[i]));
    merged_vals.push_back(std::move(v));
  }
  return Tuple(std::move(result_scheme), std::move(merged_ls),
               std::move(merged_vals));
}

Tuple Tuple::Restrict(const Lifespan& l, SchemePtr result_scheme) const {
  const SchemePtr& scheme = result_scheme ? result_scheme : scheme_;
  // Full cover within the same scheme: `t|_L = t` when L ⊇ t.l (every vls
  // is unchanged too, since vls ⊆ t.l). One tuple copy, no interval sweeps.
  if (scheme == scheme_ && l.ContainsAll(lifespan_)) return *this;
  Lifespan new_ls = lifespan_.Intersect(l);
  std::vector<TemporalValue> new_vals;
  new_vals.reserve(values_.size());
  // Restricting within the same scheme cannot move an attribute lifespan,
  // and a stored value's domain already lies inside its old vls ⊆ ALS(i) —
  // so domain ∩ (new_ls ∩ ALS(i)) = domain ∩ new_ls and the per-attribute
  // ALS intersection (an allocation each) can be skipped. Rebinding to a
  // *different* scheme must still clip to the target's ALS.
  const bool same_scheme = scheme == scheme_;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (same_scheme) {
      new_vals.push_back(values_[i].Restrict(new_ls));
    } else {
      const Lifespan vls = new_ls.Intersect(scheme->AttributeLifespan(i));
      new_vals.push_back(values_[i].Restrict(vls));
    }
  }
  return Tuple(scheme, std::move(new_ls), std::move(new_vals));
}

Tuple Tuple::Rebind(SchemePtr scheme) const {
  Lifespan ls = lifespan_;
  std::vector<TemporalValue> vals;
  vals.reserve(scheme->arity());
  for (size_t i = 0; i < scheme->arity(); ++i) {
    const AttributeDef& a = scheme->attribute(i);
    const Lifespan vls = ls.Intersect(a.lifespan);
    // Map by name so evolved schemes (added/reordered attributes) rebind
    // correctly; attributes new to the scheme start with no history.
    auto old_idx = scheme_->IndexOf(a.name);
    if (old_idx.has_value()) {
      vals.push_back(values_[*old_idx].Restrict(vls));
    } else if (scheme->IsKey(i)) {
      // A brand-new key attribute cannot be conjured; this only happens if
      // the caller evolved the key, which the catalog forbids. Keep the
      // value empty; well-formedness checks will flag it.
      vals.emplace_back();
    } else {
      vals.emplace_back();
    }
  }
  return Tuple(std::move(scheme), std::move(ls), std::move(vals));
}

bool Tuple::operator==(const Tuple& other) const {
  return lifespan_ == other.lifespan_ && values_ == other.values_;
}

uint64_t Tuple::Hash() const {
  if (uint64_t memo = hash_memo_.load(std::memory_order_relaxed)) return memo;
  uint64_t h = 14695981039346656037ULL;
  for (const Interval& iv : lifespan_.intervals()) {
    h = (h ^ static_cast<uint64_t>(iv.begin)) * kFnvPrime;
    h = (h ^ static_cast<uint64_t>(iv.end)) * kFnvPrime;
  }
  for (const TemporalValue& v : values_) {
    h = (h ^ v.Hash()) * kFnvPrime;
  }
  if (h == 0) h = 1;  // 0 is the "not yet computed" sentinel
  hash_memo_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "<l=";
  out += lifespan_.ToString();
  for (size_t i = 0; i < values_.size(); ++i) {
    out += ", ";
    out += scheme_->attribute(i).name;
    out += "=";
    out += values_[i].ToString();
  }
  out.push_back('>');
  return out;
}

}  // namespace hrdm
