#include "classic/classic.h"

#include <algorithm>

#include "util/format.h"

namespace hrdm::classic {

std::optional<size_t> SnapshotRelation::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

void SnapshotRelation::InsertRow(Row row) {
  if (!Contains(row)) rows_.push_back(std::move(row));
}

bool SnapshotRelation::Contains(const Row& row) const {
  return std::find(rows_.begin(), rows_.end(), row) != rows_.end();
}

bool SnapshotRelation::EqualsAsSet(const SnapshotRelation& other) const {
  if (columns_ != other.columns_) return false;
  if (size() != other.size()) return false;
  for (const Row& r : rows_) {
    if (!other.Contains(r)) return false;
  }
  return true;
}

std::string SnapshotRelation::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
  }
  out += ")\n";
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  for (const Row& r : sorted) {
    out += "  (";
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out += ", ";
      out += r[i].absent() ? "-" : r[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

namespace {

Result<size_t> RequireColumn(const SnapshotRelation& s,
                             std::string_view name) {
  if (auto idx = s.IndexOf(name)) return *idx;
  return Status::NotFound("column " + std::string(name) + " not found");
}

Status RequireSameHeader(const SnapshotRelation& a,
                         const SnapshotRelation& b) {
  if (a.columns() != b.columns()) {
    return Status::IncompatibleSchemes(
        "snapshot relations are not union-compatible");
  }
  return Status::OK();
}

/// Absent cells never satisfy a comparison.
Result<bool> CellMatches(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.absent() || rhs.absent()) return false;
  return Compare(lhs, op, rhs);
}

}  // namespace

Result<SnapshotRelation> Select(const SnapshotRelation& s,
                                std::string_view attr, CompareOp op,
                                const Value& constant) {
  HRDM_ASSIGN_OR_RETURN(size_t idx, RequireColumn(s, attr));
  SnapshotRelation out(s.columns());
  for (const Row& r : s.rows()) {
    HRDM_ASSIGN_OR_RETURN(bool m, CellMatches(r[idx], op, constant));
    if (m) out.InsertRow(r);
  }
  return out;
}

Result<SnapshotRelation> SelectAttr(const SnapshotRelation& s,
                                    std::string_view attr, CompareOp op,
                                    std::string_view attr2) {
  HRDM_ASSIGN_OR_RETURN(size_t i, RequireColumn(s, attr));
  HRDM_ASSIGN_OR_RETURN(size_t j, RequireColumn(s, attr2));
  SnapshotRelation out(s.columns());
  for (const Row& r : s.rows()) {
    HRDM_ASSIGN_OR_RETURN(bool m, CellMatches(r[i], op, r[j]));
    if (m) out.InsertRow(r);
  }
  return out;
}

Result<SnapshotRelation> Project(const SnapshotRelation& s,
                                 const std::vector<std::string>& attrs) {
  std::vector<Column> cols;
  std::vector<size_t> src;
  for (const std::string& a : attrs) {
    HRDM_ASSIGN_OR_RETURN(size_t idx, RequireColumn(s, a));
    cols.push_back(s.columns()[idx]);
    src.push_back(idx);
  }
  SnapshotRelation out(std::move(cols));
  for (const Row& r : s.rows()) {
    Row projected;
    projected.reserve(src.size());
    for (size_t idx : src) projected.push_back(r[idx]);
    out.InsertRow(std::move(projected));
  }
  return out;
}

Result<SnapshotRelation> Union(const SnapshotRelation& a,
                               const SnapshotRelation& b) {
  HRDM_RETURN_IF_ERROR(RequireSameHeader(a, b));
  SnapshotRelation out(a.columns());
  for (const Row& r : a.rows()) out.InsertRow(r);
  for (const Row& r : b.rows()) out.InsertRow(r);
  return out;
}

Result<SnapshotRelation> Intersect(const SnapshotRelation& a,
                                   const SnapshotRelation& b) {
  HRDM_RETURN_IF_ERROR(RequireSameHeader(a, b));
  SnapshotRelation out(a.columns());
  for (const Row& r : a.rows()) {
    if (b.Contains(r)) out.InsertRow(r);
  }
  return out;
}

Result<SnapshotRelation> Difference(const SnapshotRelation& a,
                                    const SnapshotRelation& b) {
  HRDM_RETURN_IF_ERROR(RequireSameHeader(a, b));
  SnapshotRelation out(a.columns());
  for (const Row& r : a.rows()) {
    if (!b.Contains(r)) out.InsertRow(r);
  }
  return out;
}

namespace {

Result<std::vector<Column>> DisjointHeader(const SnapshotRelation& a,
                                           const SnapshotRelation& b) {
  std::vector<Column> cols = a.columns();
  for (const Column& c : b.columns()) {
    if (a.IndexOf(c.name).has_value()) {
      return Status::IncompatibleSchemes(
          "operands must have disjoint attributes; both have " + c.name);
    }
    cols.push_back(c);
  }
  return cols;
}

Row ConcatRows(const Row& x, const Row& y) {
  Row r = x;
  r.insert(r.end(), y.begin(), y.end());
  return r;
}

}  // namespace

Result<SnapshotRelation> CartesianProduct(const SnapshotRelation& a,
                                          const SnapshotRelation& b) {
  HRDM_ASSIGN_OR_RETURN(std::vector<Column> cols, DisjointHeader(a, b));
  SnapshotRelation out(std::move(cols));
  for (const Row& x : a.rows()) {
    for (const Row& y : b.rows()) {
      out.InsertRow(ConcatRows(x, y));
    }
  }
  return out;
}

Result<SnapshotRelation> ThetaJoin(const SnapshotRelation& a,
                                   std::string_view attr_a, CompareOp op,
                                   const SnapshotRelation& b,
                                   std::string_view attr_b) {
  HRDM_ASSIGN_OR_RETURN(size_t i, RequireColumn(a, attr_a));
  HRDM_ASSIGN_OR_RETURN(size_t j, RequireColumn(b, attr_b));
  HRDM_ASSIGN_OR_RETURN(std::vector<Column> cols, DisjointHeader(a, b));
  SnapshotRelation out(std::move(cols));
  for (const Row& x : a.rows()) {
    for (const Row& y : b.rows()) {
      HRDM_ASSIGN_OR_RETURN(bool m, CellMatches(x[i], op, y[j]));
      if (m) out.InsertRow(ConcatRows(x, y));
    }
  }
  return out;
}

Result<SnapshotRelation> NaturalJoin(const SnapshotRelation& a,
                                     const SnapshotRelation& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> b_extra;
  for (size_t j = 0; j < b.arity(); ++j) {
    if (auto i = a.IndexOf(b.columns()[j].name)) {
      if (a.columns()[*i].type != b.columns()[j].type) {
        return Status::IncompatibleSchemes("shared attribute " +
                                           b.columns()[j].name +
                                           " has conflicting domains");
      }
      shared.emplace_back(*i, j);
    } else {
      b_extra.push_back(j);
    }
  }
  std::vector<Column> cols = a.columns();
  for (size_t j : b_extra) cols.push_back(b.columns()[j]);
  SnapshotRelation out(std::move(cols));
  for (const Row& x : a.rows()) {
    for (const Row& y : b.rows()) {
      bool match = true;
      for (const auto& [i, j] : shared) {
        if (x[i].absent() || y[j].absent() || !(x[i] == y[j])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Row r = x;
      for (size_t j : b_extra) r.push_back(y[j]);
      out.InsertRow(std::move(r));
    }
  }
  return out;
}

Result<SnapshotRelation> Snapshot(const Relation& r, TimePoint t) {
  std::vector<Column> cols;
  cols.reserve(r.scheme()->arity());
  for (const AttributeDef& a : r.scheme()->attributes()) {
    cols.push_back(Column{a.name, a.type});
  }
  SnapshotRelation out(std::move(cols));
  for (const Tuple& tup : r) {
    if (!tup.lifespan().Contains(t)) continue;
    Row row;
    row.reserve(tup.arity());
    for (size_t i = 0; i < tup.arity(); ++i) {
      // Materialized (algebra-derived) relations are already at the model
      // level; re-interpolating them would extend values into regions the
      // operator semantics left undefined (e.g. ALS unioned in from the
      // other operand of a Union).
      if (r.materialized()) {
        row.push_back(tup.ValueAt(i, t));
      } else {
        HRDM_ASSIGN_OR_RETURN(Value v, tup.ModelValueAt(i, t));
        row.push_back(std::move(v));
      }
    }
    out.InsertRow(std::move(row));
  }
  return out;
}

Result<Relation> Lift(const SnapshotRelation& s, TimePoint t,
                      const std::vector<std::string>& key,
                      std::string name) {
  if (key.empty()) {
    return Status::InvalidArgument("Lift requires a non-empty key");
  }
  const Lifespan now = Lifespan::Point(t);
  std::vector<AttributeDef> attrs;
  attrs.reserve(s.arity());
  for (const Column& c : s.columns()) {
    attrs.push_back(
        AttributeDef{c.name, c.type, now, InterpolationKind::kDiscrete});
  }
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      RelationScheme::Make(std::move(name), std::move(attrs), key));
  Relation out(scheme);
  for (const Row& row : s.rows()) {
    Tuple::Builder b(scheme, now);
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].absent()) continue;
      b.SetConstant(s.columns()[i].name, row[i]);
    }
    HRDM_ASSIGN_OR_RETURN(Tuple tup, std::move(b).Build());
    HRDM_RETURN_IF_ERROR(out.Insert(std::move(tup)));
  }
  return out;
}

}  // namespace hrdm::classic
