#ifndef HRDM_CLASSIC_CLASSIC_H_
#define HRDM_CLASSIC_CLASSIC_H_

/// \file classic.h
/// \brief The classical (snapshot) relational model and algebra — HRDM's
/// baseline.
///
/// Section 5 of the paper claims HRDM is a *consistent extension* of the
/// traditional relational model: "each component C of the relational model
/// (structural or operational) has a corresponding component C_H in the
/// historical relational model with the property that the definitions of C
/// and C_H become equivalent in the absence of a temporal dimension", i.e.
/// when `T = {now}`.
///
/// This module provides:
///  * a small, self-contained implementation of classical relations and
///    their algebra (`SnapshotRelation`, select/project/set ops/joins);
///  * the two mappings connecting the models:
///      - `Snapshot(r, t)`  — the state of an historical relation at
///        chronon `t` (a slice of the Figure 10 cube), and
///      - `Lift(s, t, key)` — embeds a classical relation as an historical
///        relation over `T = {t}` with constant values,
///    with which the consistency theorem is phrased operationally:
///    `Snapshot(Op_H(r), now) == Op(Snapshot(r, now))` for every operator.
///
/// These equivalences are verified exhaustively by tests/consistency_test.cc
/// and measured by bench/bench_consistency.cc.

#include <optional>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm::classic {

/// \brief A classical attribute: name and domain.
struct Column {
  std::string name;
  DomainType type = DomainType::kInt;

  bool operator==(const Column&) const = default;
};

/// \brief One classical tuple: a flat row of atomic values. Cells may be
/// absent only when produced by snapshotting a heterogeneous historical
/// relation; classical operators treat absent cells as non-matching.
using Row = std::vector<Value>;

/// \brief A classical (snapshot) relation: a header and a set of rows.
class SnapshotRelation {
 public:
  SnapshotRelation() = default;
  explicit SnapshotRelation(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }

  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  std::optional<size_t> IndexOf(std::string_view name) const;

  /// \brief Set-semantics insert: exact duplicate rows collapse.
  void InsertRow(Row row);

  bool Contains(const Row& row) const;

  /// \brief Set equality (order-insensitive), headers must match.
  bool EqualsAsSet(const SnapshotRelation& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

// --- The classical relational algebra -------------------------------------

/// \brief σ_{attr θ constant}(s).
Result<SnapshotRelation> Select(const SnapshotRelation& s,
                                std::string_view attr, CompareOp op,
                                const Value& constant);

/// \brief σ_{attr θ attr2}(s).
Result<SnapshotRelation> SelectAttr(const SnapshotRelation& s,
                                    std::string_view attr, CompareOp op,
                                    std::string_view attr2);

/// \brief π_X(s).
Result<SnapshotRelation> Project(const SnapshotRelation& s,
                                 const std::vector<std::string>& attrs);

Result<SnapshotRelation> Union(const SnapshotRelation& a,
                               const SnapshotRelation& b);
Result<SnapshotRelation> Intersect(const SnapshotRelation& a,
                                   const SnapshotRelation& b);
Result<SnapshotRelation> Difference(const SnapshotRelation& a,
                                    const SnapshotRelation& b);

/// \brief a × b; requires disjoint attribute names.
Result<SnapshotRelation> CartesianProduct(const SnapshotRelation& a,
                                          const SnapshotRelation& b);

/// \brief a JOIN b [A θ B]; requires disjoint attribute names.
Result<SnapshotRelation> ThetaJoin(const SnapshotRelation& a,
                                   std::string_view attr_a, CompareOp op,
                                   const SnapshotRelation& b,
                                   std::string_view attr_b);

/// \brief Natural join over shared attribute names.
Result<SnapshotRelation> NaturalJoin(const SnapshotRelation& a,
                                     const SnapshotRelation& b);

// --- Mappings between the models -------------------------------------------

/// \brief The classical state of historical relation `r` at chronon `t`:
/// one row per tuple alive at `t`, with model-level (interpolated) values.
/// Attributes undefined at `t` yield absent cells.
Result<SnapshotRelation> Snapshot(const Relation& r, TimePoint t);

/// \brief Embeds a classical relation into HRDM over the singleton time
/// domain `{t}`: every value becomes a constant function on `{t}`.
/// `key` selects the key attributes (must be non-empty and unique in `s` —
/// i.e. `s` must actually satisfy the key, else ConstraintViolation).
Result<Relation> Lift(const SnapshotRelation& s, TimePoint t,
                      const std::vector<std::string>& key,
                      std::string name = "lifted");

}  // namespace hrdm::classic

#endif  // HRDM_CLASSIC_CLASSIC_H_
