#include "constraints/constraints.h"

#include <algorithm>
#include <map>

#include "util/format.h"

namespace hrdm {

namespace {

std::string KeyString(const Tuple& t) {
  std::string out = "(";
  const auto key = t.KeyValues();
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ",";
    out += key[i].absent() ? "?" : key[i].ToString();
  }
  out += ")";
  return out;
}

void AddBoundaries(const Lifespan& ls, std::vector<TimePoint>* out) {
  for (const Interval& iv : ls.intervals()) {
    out->push_back(iv.begin);
    if (iv.end != kTimeMax) out->push_back(iv.end + 1);
  }
}

/// Resolves attribute names to indices; empty names list means all.
Result<std::vector<size_t>> ResolveAttrs(const Relation& r,
                                         const std::vector<std::string>& names) {
  std::vector<size_t> idx;
  if (names.empty()) {
    for (size_t i = 0; i < r.scheme()->arity(); ++i) idx.push_back(i);
    return idx;
  }
  for (const std::string& n : names) {
    HRDM_ASSIGN_OR_RETURN(size_t i, r.scheme()->RequireIndex(n));
    idx.push_back(i);
  }
  return idx;
}

/// Model values of `attrs` for every tuple of `r` (parallel vectors).
Result<std::vector<std::vector<TemporalValue>>> ModelValues(
    const Relation& r, const std::vector<size_t>& attrs) {
  std::vector<std::vector<TemporalValue>> out;
  out.reserve(r.size());
  for (const Tuple& t : r) {
    std::vector<TemporalValue> vals;
    vals.reserve(attrs.size());
    for (size_t i : attrs) {
      HRDM_ASSIGN_OR_RETURN(TemporalValue v, t.ModelValue(i));
      vals.push_back(std::move(v));
    }
    out.push_back(std::move(vals));
  }
  return out;
}

/// The vector of values of `vals` at chronon t; `all_defined` is set false
/// if any is absent.
std::vector<Value> At(const std::vector<TemporalValue>& vals, TimePoint t,
                      bool* all_defined) {
  std::vector<Value> out;
  out.reserve(vals.size());
  *all_defined = true;
  for (const TemporalValue& v : vals) {
    out.push_back(v.ValueAt(t));
    if (out.back().absent()) *all_defined = false;
  }
  return out;
}

}  // namespace

Result<std::vector<TimePoint>> CriticalChronons(
    const Relation& r, const std::vector<std::string>& attrs) {
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> idx, ResolveAttrs(r, attrs));
  std::vector<TimePoint> pts;
  for (const Tuple& t : r) {
    AddBoundaries(t.lifespan(), &pts);
    for (size_t i : idx) {
      HRDM_ASSIGN_OR_RETURN(TemporalValue v, t.ModelValue(i));
      for (const Segment& s : v.segments()) {
        pts.push_back(s.interval.begin);
        if (s.interval.end != kTimeMax) pts.push_back(s.interval.end + 1);
      }
    }
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

Result<std::vector<Violation>> CheckPointFD(
    const Relation& r, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs) {
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> xi, ResolveAttrs(r, lhs));
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> yi, ResolveAttrs(r, rhs));
  std::vector<std::string> all = lhs;
  all.insert(all.end(), rhs.begin(), rhs.end());
  HRDM_ASSIGN_OR_RETURN(std::vector<TimePoint> critical,
                        CriticalChronons(r, all));
  HRDM_ASSIGN_OR_RETURN(auto xs, ModelValues(r, xi));
  HRDM_ASSIGN_OR_RETURN(auto ys, ModelValues(r, yi));

  std::vector<Violation> violations;
  for (TimePoint t : critical) {
    std::map<std::vector<Value>, size_t> witness;  // X-vector -> tuple index
    for (size_t u = 0; u < r.size(); ++u) {
      bool x_defined = false;
      std::vector<Value> xv = At(xs[u], t, &x_defined);
      if (!x_defined) continue;
      auto [it, inserted] = witness.emplace(std::move(xv), u);
      if (inserted) continue;
      const size_t w = it->second;
      // Two tuples agree on X at t: Y values must not conflict.
      for (size_t k = 0; k < yi.size(); ++k) {
        const Value yu = ys[u][k].ValueAt(t);
        const Value yw = ys[w][k].ValueAt(t);
        if (!yu.absent() && !yw.absent() && yu != yw) {
          violations.push_back(Violation{StrPrintf(
              "point FD violated at t=%lld: tuples %s and %s agree on LHS "
              "but differ on %s (%s vs %s)",
              static_cast<long long>(t), KeyString(r.tuple(u)).c_str(),
              KeyString(r.tuple(w)).c_str(),
              r.scheme()->attribute(yi[k]).name.c_str(),
              yu.ToString().c_str(), yw.ToString().c_str())});
        }
      }
    }
  }
  return violations;
}

Result<std::vector<Violation>> CheckGlobalFD(
    const Relation& r, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs) {
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> xi, ResolveAttrs(r, lhs));
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> yi, ResolveAttrs(r, rhs));
  std::vector<std::string> all = lhs;
  all.insert(all.end(), rhs.begin(), rhs.end());
  HRDM_ASSIGN_OR_RETURN(std::vector<TimePoint> critical,
                        CriticalChronons(r, all));
  HRDM_ASSIGN_OR_RETURN(auto xs, ModelValues(r, xi));
  HRDM_ASSIGN_OR_RETURN(auto ys, ModelValues(r, yi));

  // X-vector -> first (tuple, chronon, Y-vector) seen.
  struct Witness {
    size_t tuple;
    TimePoint t;
    std::vector<Value> y;
  };
  std::map<std::vector<Value>, Witness> groups;
  std::vector<Violation> violations;
  for (size_t u = 0; u < r.size(); ++u) {
    for (TimePoint t : critical) {
      bool x_defined = false;
      std::vector<Value> xv = At(xs[u], t, &x_defined);
      if (!x_defined) continue;
      bool y_defined = false;
      std::vector<Value> yv = At(ys[u], t, &y_defined);
      auto it = groups.find(xv);
      if (it == groups.end()) {
        groups.emplace(std::move(xv), Witness{u, t, std::move(yv)});
        continue;
      }
      const Witness& w = it->second;
      for (size_t k = 0; k < yi.size(); ++k) {
        if (!yv[k].absent() && !w.y[k].absent() && yv[k] != w.y[k]) {
          violations.push_back(Violation{StrPrintf(
              "global FD violated: tuple %s at t=%lld and tuple %s at "
              "t=%lld agree on LHS but differ on %s (%s vs %s)",
              KeyString(r.tuple(u)).c_str(), static_cast<long long>(t),
              KeyString(r.tuple(w.tuple)).c_str(),
              static_cast<long long>(w.t),
              r.scheme()->attribute(yi[k]).name.c_str(),
              yv[k].ToString().c_str(), w.y[k].ToString().c_str())});
        }
      }
    }
  }
  return violations;
}

Result<std::vector<Violation>> CheckMonotone(const Relation& r,
                                             std::string_view attr,
                                             bool non_decreasing) {
  HRDM_ASSIGN_OR_RETURN(size_t idx, r.scheme()->RequireIndex(attr));
  const DomainType type = r.scheme()->attribute(idx).type;
  if (type != DomainType::kInt && type != DomainType::kDouble &&
      type != DomainType::kTime) {
    return Status::TypeError(
        "monotonicity constraint requires a numeric or time attribute");
  }
  auto numeric = [type](const Value& v) {
    return type == DomainType::kTime ? static_cast<double>(v.AsTime())
                                     : v.AsNumeric();
  };
  std::vector<Violation> violations;
  for (const Tuple& t : r) {
    HRDM_ASSIGN_OR_RETURN(TemporalValue v, t.ModelValue(idx));
    const auto& segs = v.segments();
    for (size_t k = 1; k < segs.size(); ++k) {
      const double prev = numeric(segs[k - 1].value);
      const double cur = numeric(segs[k].value);
      const bool bad = non_decreasing ? cur < prev : cur > prev;
      if (bad) {
        violations.push_back(Violation{StrPrintf(
            "tuple %s: %s %s from %s to %s at t=%lld",
            KeyString(t).c_str(), std::string(attr).c_str(),
            non_decreasing ? "decreases" : "increases",
            segs[k - 1].value.ToString().c_str(),
            segs[k].value.ToString().c_str(),
            static_cast<long long>(segs[k].interval.begin))});
      }
    }
  }
  return violations;
}

Result<std::vector<Violation>> CheckTemporalForeignKey(
    const Relation& child, const std::vector<std::string>& fk_attrs,
    const Relation& parent) {
  if (parent.scheme()->key().empty()) {
    return Status::InvalidArgument("FK target relation " +
                                   parent.scheme()->name() + " has no key");
  }
  if (fk_attrs.size() != parent.scheme()->key().size()) {
    return Status::InvalidArgument(
        "FK attribute count does not match parent key arity");
  }
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> fki, ResolveAttrs(child, fk_attrs));
  for (size_t k = 0; k < fki.size(); ++k) {
    const DomainType ct = child.scheme()->attribute(fki[k]).type;
    const DomainType pt =
        parent.scheme()
            ->attribute(parent.scheme()->key_indices()[k])
            .type;
    if (ct != pt) {
      return Status::TypeError("FK attribute " + fk_attrs[k] +
                               " domain does not match parent key");
    }
  }
  // Critical chronons: the child's fk-value changes plus the parent's
  // aliveness changes.
  HRDM_ASSIGN_OR_RETURN(std::vector<TimePoint> critical,
                        CriticalChronons(child, fk_attrs));
  std::vector<TimePoint> extra;
  for (const Tuple& p : parent) AddBoundaries(p.lifespan(), &extra);
  critical.insert(critical.end(), extra.begin(), extra.end());
  std::sort(critical.begin(), critical.end());
  critical.erase(std::unique(critical.begin(), critical.end()),
                 critical.end());

  HRDM_ASSIGN_OR_RETURN(auto fk_vals, ModelValues(child, fki));

  std::vector<Violation> violations;
  for (size_t u = 0; u < child.size(); ++u) {
    for (TimePoint t : critical) {
      bool defined = false;
      std::vector<Value> fk = At(fk_vals[u], t, &defined);
      if (!defined) continue;
      auto idx = parent.FindByKey(fk);
      const bool alive =
          idx.has_value() && parent.tuple(*idx).lifespan().Contains(t);
      if (!alive) {
        std::string fk_str;
        for (const Value& v : fk) {
          if (!fk_str.empty()) fk_str += ",";
          fk_str += v.ToString();
        }
        violations.push_back(Violation{StrPrintf(
            "temporal RI violated: tuple %s of %s references (%s) at "
            "t=%lld but no %s tuple exists then",
            KeyString(child.tuple(u)).c_str(),
            child.scheme()->name().c_str(), fk_str.c_str(),
            static_cast<long long>(t), parent.scheme()->name().c_str())});
      }
    }
  }
  return violations;
}

Result<std::vector<Violation>> CheckRelationWellFormed(const Relation& r) {
  std::vector<Violation> violations;
  const RelationScheme& scheme = *r.scheme();
  for (size_t u = 0; u < r.size(); ++u) {
    const Tuple& t = r.tuple(u);
    if (t.lifespan().empty()) {
      violations.push_back(
          Violation{"tuple " + KeyString(t) + " has empty lifespan"});
    }
    for (size_t i = 0; i < t.arity(); ++i) {
      const AttributeDef& a = scheme.attribute(i);
      const TemporalValue& v = t.value(i);
      if (v.empty()) {
        if (scheme.IsKey(i)) {
          violations.push_back(Violation{
              "tuple " + KeyString(t) + ": key attribute " + a.name +
              " has no value"});
        }
        continue;
      }
      if (*v.type() != a.type) {
        violations.push_back(Violation{
            "tuple " + KeyString(t) + ": attribute " + a.name +
            " has wrong domain type"});
      }
      const Lifespan vls = t.Vls(i);
      if (!vls.ContainsAll(v.domain())) {
        violations.push_back(Violation{
            "tuple " + KeyString(t) + ": value of " + a.name +
            " escapes vls " + vls.ToString()});
      }
      if (scheme.IsKey(i)) {
        if (!v.IsConstant()) {
          violations.push_back(Violation{
              "tuple " + KeyString(t) + ": key attribute " + a.name +
              " is not constant-valued"});
        } else if (v.domain() != vls) {
          violations.push_back(Violation{
              "tuple " + KeyString(t) + ": key attribute " + a.name +
              " is not total on vls"});
        }
      }
    }
    if (!scheme.key().empty()) {
      if (r.FindAllByKey(t.KeyValues()).size() > 1) {
        violations.push_back(Violation{
            "temporal key uniqueness violated for key " + KeyString(t)});
      }
    }
  }
  return violations;
}

}  // namespace hrdm
