#ifndef HRDM_CONSTRAINTS_CONSTRAINTS_H_
#define HRDM_CONSTRAINTS_CONSTRAINTS_H_

/// \file constraints.h
/// \brief Temporal integrity constraints (Sections 1 and 5).
///
/// The paper sketches how HRDM extends the classical constraint theory:
///
///  * *point-in-time* functional dependencies — "dependencies that hold at
///    each single point in time" (the classical FD evaluated on every
///    snapshot);
///  * *global* (the paper's "intensional"/"dynamic") dependencies — FDs
///    ranging over all pairs of points in time;
///  * constraints "over the way that values change over time (as in the
///    familiar 'salary must never decrease' example)";
///  * temporal referential integrity (Section 1: "a student can only take
///    a course at time t if both the student and the course exist in the
///    database at time t").
///
/// Checkers report every violation found (rather than failing fast), so
/// callers can surface complete diagnostics. All value inspection is at
/// the model level (interpolated).

#include <string>
#include <vector>

#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief One detected constraint violation, with a human-readable
/// description naming the tuples and chronon involved.
struct Violation {
  std::string description;
};

/// \brief Point-in-time FD `X -> Y`: at every chronon, any two tuples that
/// agree on all of X also agree on all of Y (classical FD on every
/// snapshot). Attributes undefined at a chronon are treated as
/// non-matching on the X side and as automatically violating on the Y side
/// only if the two Y values are defined and differ.
Result<std::vector<Violation>> CheckPointFD(
    const Relation& r, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs);

/// \brief Global FD `X -> Y` over all points in time: for any two tuples
/// u, v and any two chronons s, s', if u(X)(s) = v(X)(s') then
/// u(Y)(s) = v(Y)(s'). (The paper's stronger, "intensional" reading.)
Result<std::vector<Violation>> CheckGlobalFD(
    const Relation& r, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs);

/// \brief Value-evolution constraint: within every tuple, the model-level
/// value of `attr` never decreases (or never increases) across its value
/// lifespan — the paper's "salary must never decrease" example. Requires a
/// numeric or time attribute.
Result<std::vector<Violation>> CheckMonotone(const Relation& r,
                                             std::string_view attr,
                                             bool non_decreasing);

/// \brief Temporal referential integrity: for every chronon `t` at which a
/// child tuple's `fk_attrs` values are defined, a parent tuple must exist
/// at `t` whose key values equal them. `fk_attrs` must match the parent
/// key's arity and domains.
Result<std::vector<Violation>> CheckTemporalForeignKey(
    const Relation& child, const std::vector<std::string>& fk_attrs,
    const Relation& parent);

/// \brief Verifies the relation-level invariants of Section 3 hold for
/// every tuple of `r`: value domains inside `vls`, constant total keys,
/// temporal key uniqueness. Used by tests and by storage after load.
Result<std::vector<Violation>> CheckRelationWellFormed(const Relation& r);

/// \brief The chronons at which any model-level value of any tuple of `r`
/// may change: segment starts of interpolated values plus lifespan interval
/// starts. Constraint checkers evaluate at exactly these "critical
/// chronons" — between consecutive ones nothing changes, making the checks
/// sound without materialising every chronon.
Result<std::vector<TimePoint>> CriticalChronons(
    const Relation& r, const std::vector<std::string>& attrs);

}  // namespace hrdm

#endif  // HRDM_CONSTRAINTS_CONSTRAINTS_H_
