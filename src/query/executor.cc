#include "query/executor.h"

#include "algebra/aggregate.h"
#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "query/parser.h"
#include "query/plan.h"

namespace hrdm::query {

Resolver DatabaseResolver(const storage::Database& db) {
  return [&db](std::string_view name) { return db.Get(name); };
}

Resolver VersionResolver(const storage::DatabaseVersion& version) {
  return [&version](std::string_view name) { return version.Get(name); };
}

CardinalityFn CatalogCardinality(const storage::Catalog& catalog) {
  return [&catalog](std::string_view name) -> std::optional<size_t> {
    auto stats = catalog.Stats(name);
    if (!stats) return std::nullopt;
    return stats->tuple_count;
  };
}

IndexCatalogFn CatalogIndexes(const storage::Catalog& catalog) {
  return [&catalog](std::string_view name) -> std::optional<IndexInfo> {
    auto spec = catalog.Indexes(name);
    if (!spec) return std::nullopt;
    IndexInfo info;
    info.lifespan = spec->lifespan;
    info.value_attrs = std::move(spec->value_attrs);
    return info;
  };
}

namespace {

// DatabasePlanOptions and VersionPlanOptions differ only in how the source
// spells its catalog / relation / index accessors; these overloads let one
// template build the hooks for both. Every hook re-resolves through the
// source per call — for a live Database that means no reference captured
// at options-build time can dangle across later mutations, and for a
// pinned version every answer comes from the immutable snapshot.
const storage::Catalog& CatalogOf(const storage::Database& db) {
  return db.catalog();
}
const storage::Catalog& CatalogOf(const storage::DatabaseVersion& v) {
  return v.catalog;
}
const storage::RelationIndexes* IndexesOf(const storage::Database& db,
                                          std::string_view relation) {
  return db.indexes(relation);
}
const storage::RelationIndexes* IndexesOf(const storage::DatabaseVersion& v,
                                          std::string_view relation) {
  return v.IndexesOf(relation);
}
Result<const Relation*> RelationOf(const storage::Database& db,
                                   std::string_view relation) {
  return db.Get(relation);
}
Result<const Relation*> RelationOf(const storage::DatabaseVersion& v,
                                   std::string_view relation) {
  return v.Get(relation);
}

template <typename Source>
PlanOptions MakePlanOptions(const Source& src) {
  PlanOptions options;
  options.cardinality =
      [&src](std::string_view name) -> std::optional<size_t> {
    auto stats = CatalogOf(src).Stats(name);
    if (!stats) return std::nullopt;
    return stats->tuple_count;
  };
  options.index_catalog =
      [&src](std::string_view name) -> std::optional<IndexInfo> {
    auto spec = CatalogOf(src).Indexes(name);
    if (!spec) return std::nullopt;
    IndexInfo info;
    info.lifespan = spec->lifespan;
    info.value_attrs = std::move(spec->value_attrs);
    return info;
  };
  options.lifespan_probe =
      [&src](std::string_view relation,
             const Lifespan& window) -> std::optional<IndexProbeResult> {
    const storage::RelationIndexes* ix = IndexesOf(src, relation);
    if (!ix || !ix->has_lifespan()) return std::nullopt;
    auto rel = RelationOf(src, relation);
    if (!rel.ok()) return std::nullopt;
    return IndexProbeResult{ix->lifespan()->Probe(window),
                            (*rel)->materialized()};
  };
  options.value_probe =
      [&src](std::string_view relation, std::string_view attr,
             const Value& key) -> std::optional<IndexProbeResult> {
    const storage::RelationIndexes* ix = IndexesOf(src, relation);
    if (!ix) return std::nullopt;
    const storage::ValueIndex* vi = ix->value(attr);
    if (!vi) return std::nullopt;
    auto rel = RelationOf(src, relation);
    if (!rel.ok()) return std::nullopt;
    return IndexProbeResult{vi->Probe(key), (*rel)->materialized()};
  };
  options.indexed_build =
      [&src](std::string_view relation,
             std::string_view attr) -> std::optional<IndexedBuildSide> {
    const storage::RelationIndexes* ix = IndexesOf(src, relation);
    if (!ix) return std::nullopt;
    const storage::ValueIndex* vi = ix->value(attr);
    if (!vi) return std::nullopt;
    auto rel = RelationOf(src, relation);
    if (!rel.ok()) return std::nullopt;
    IndexedBuildSide build;
    build.materialized = (*rel)->materialized();
    build.varying = vi->Varying();
    build.groups.reserve(vi->buckets().size());
    for (const auto& [digest, tuples] : vi->buckets()) {
      build.groups.emplace_back(digest, tuples);  // one copy, straight in
    }
    return build;
  };
  return options;
}

}  // namespace

PlanOptions DatabasePlanOptions(const storage::Database& db) {
  return MakePlanOptions(db);
}

PlanOptions VersionPlanOptions(const storage::DatabaseVersion& version) {
  return MakePlanOptions(version);
}

namespace {

Result<Relation> EvalStreaming(const ExprPtr& expr, const Resolver& resolver,
                               const PlanOptions& options) {
  if (!expr) return Status::InvalidArgument("null expression");
  if (expr->kind == ExprKind::kRelationRef) {
    // A bare reference is the stored relation itself, unmaterialized —
    // copy-on-write makes this copy O(#tuples) pointer bumps, not a deep
    // copy of every temporal value.
    HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(expr->relation));
    return *rel;
  }
  HRDM_ASSIGN_OR_RETURN(Plan plan, Plan::Lower(expr, resolver, options));
  return plan.Drain();
}

}  // namespace

Result<Relation> Eval(const ExprPtr& expr, const Resolver& resolver) {
  // No catalog in sight: the planner falls back to exact stored sizes
  // through the resolver for its join-strategy cardinalities.
  return EvalStreaming(expr, resolver, PlanOptions{});
}

Result<Relation> Eval(const ExprPtr& expr, const storage::Database& db) {
  return EvalStreaming(expr, DatabaseResolver(db), DatabasePlanOptions(db));
}

Result<Relation> Eval(const ExprPtr& expr,
                      const storage::DatabaseVersion& version) {
  return EvalStreaming(expr, VersionResolver(version),
                       VersionPlanOptions(version));
}

namespace {

/// The original recursive interpreter. Every child is evaluated to a whole
/// Relation; `stats` counts each child relation while it is live.
Result<Relation> EvalMat(const ExprPtr& expr, const Resolver& resolver,
                         EvalStats* stats);

/// Counts an operator's output relation while its children are still live
/// (they genuinely coexist inside the operator), then releases the
/// children.
Result<Relation> Finish(Result<Relation> out, size_t children_tuples,
                        EvalStats* stats) {
  if (stats) {
    if (out.ok()) stats->OnRelation(out->size());
    stats->OnRelease(children_tuples);
  }
  return out;
}

Result<Lifespan> EvalLifespanMat(const LsExprPtr& expr,
                                 const Resolver& resolver, EvalStats* stats) {
  if (!expr) return Status::InvalidArgument("null lifespan expression");
  switch (expr->kind) {
    case LsExprKind::kLiteral:
      return expr->literal;
    case LsExprKind::kWhen: {
      HRDM_ASSIGN_OR_RETURN(Relation rel,
                            EvalMat(expr->relation, resolver, stats));
      Lifespan ls = When(rel);
      if (stats) stats->OnRelease(rel.size());
      return ls;
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      HRDM_ASSIGN_OR_RETURN(Lifespan l,
                            EvalLifespanMat(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(Lifespan r,
                            EvalLifespanMat(expr->right, resolver, stats));
      switch (expr->kind) {
        case LsExprKind::kUnion:
          return l.Union(r);
        case LsExprKind::kIntersect:
          return l.Intersect(r);
        case LsExprKind::kDifference:
          return l.Difference(r);
        case LsExprKind::kLiteral:
        case LsExprKind::kWhen:
          break;  // unreachable: the enclosing case covers ∪ ∩ − only
      }
    }
  }
  return Status::Internal("unhandled lifespan expression kind");
}

Result<Relation> EvalMat(const ExprPtr& expr, const Resolver& resolver,
                         EvalStats* stats) {
  if (!expr) return Status::InvalidArgument("null expression");
  Result<Relation> result = [&]() -> Result<Relation> {
    switch (expr->kind) {
      case ExprKind::kRelationRef: {
        HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(expr->relation));
        return Finish(*rel, 0, stats);
      }
      case ExprKind::kSelectIf: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        Result<Relation> out = Status::Internal("unset");
        if (expr->window) {
          HRDM_ASSIGN_OR_RETURN(
              Lifespan window, EvalLifespanMat(expr->window, resolver, stats));
          out = SelectIf(input, *expr->predicate, expr->quantifier, window);
        } else {
          out = SelectIf(input, *expr->predicate, expr->quantifier);
        }
        return Finish(std::move(out), input.size(), stats);
      }
      case ExprKind::kSelectWhen: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        Result<Relation> out = SelectWhen(input, *expr->predicate);
        return Finish(std::move(out), input.size(), stats);
      }
      case ExprKind::kProject: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        Result<Relation> out = Project(input, expr->attrs);
        return Finish(std::move(out), input.size(), stats);
      }
      case ExprKind::kTimeSlice: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        HRDM_ASSIGN_OR_RETURN(
            Lifespan window, EvalLifespanMat(expr->window, resolver, stats));
        Result<Relation> out = TimeSlice(input, window);
        return Finish(std::move(out), input.size(), stats);
      }
      case ExprKind::kDynSlice: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        Result<Relation> out = TimeSliceDynamic(input, expr->attr_a);
        return Finish(std::move(out), input.size(), stats);
      }
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference:
      case ExprKind::kUnionO:
      case ExprKind::kIntersectO:
      case ExprKind::kDifferenceO:
      case ExprKind::kProduct: {
        HRDM_ASSIGN_OR_RETURN(Relation l, EvalMat(expr->left, resolver, stats));
        HRDM_ASSIGN_OR_RETURN(Relation r,
                              EvalMat(expr->right, resolver, stats));
        Result<Relation> out = [&]() -> Result<Relation> {
          switch (expr->kind) {
            case ExprKind::kUnion:
              return Union(l, r);
            case ExprKind::kIntersect:
              return Intersect(l, r);
            case ExprKind::kDifference:
              return Difference(l, r);
            case ExprKind::kUnionO:
              return UnionO(l, r);
            case ExprKind::kIntersectO:
              return IntersectO(l, r);
            case ExprKind::kDifferenceO:
              return DifferenceO(l, r);
            case ExprKind::kProduct:
              return CartesianProduct(l, r);
            case ExprKind::kRelationRef:
            case ExprKind::kSelectIf:
            case ExprKind::kSelectWhen:
            case ExprKind::kProject:
            case ExprKind::kTimeSlice:
            case ExprKind::kDynSlice:
            case ExprKind::kThetaJoin:
            case ExprKind::kNaturalJoin:
            case ExprKind::kTimeJoin:
            case ExprKind::kAggregate:
              break;  // unreachable: the enclosing case covers set ops and ×
          }
          return Status::Internal("unhandled set operation kind");
        }();
        return Finish(std::move(out), l.size() + r.size(), stats);
      }
      case ExprKind::kThetaJoin: {
        HRDM_ASSIGN_OR_RETURN(Relation l, EvalMat(expr->left, resolver, stats));
        HRDM_ASSIGN_OR_RETURN(Relation r,
                              EvalMat(expr->right, resolver, stats));
        Result<Relation> out =
            ThetaJoin(l, expr->attr_a, expr->op, r, expr->attr_b);
        return Finish(std::move(out), l.size() + r.size(), stats);
      }
      case ExprKind::kNaturalJoin: {
        HRDM_ASSIGN_OR_RETURN(Relation l, EvalMat(expr->left, resolver, stats));
        HRDM_ASSIGN_OR_RETURN(Relation r,
                              EvalMat(expr->right, resolver, stats));
        Result<Relation> out = NaturalJoin(l, r);
        return Finish(std::move(out), l.size() + r.size(), stats);
      }
      case ExprKind::kTimeJoin: {
        HRDM_ASSIGN_OR_RETURN(Relation l, EvalMat(expr->left, resolver, stats));
        HRDM_ASSIGN_OR_RETURN(Relation r,
                              EvalMat(expr->right, resolver, stats));
        Result<Relation> out = TimeJoin(l, expr->attr_a, r);
        return Finish(std::move(out), l.size() + r.size(), stats);
      }
      case ExprKind::kAggregate: {
        HRDM_ASSIGN_OR_RETURN(Relation input,
                              EvalMat(expr->left, resolver, stats));
        AggregateSpec spec{expr->agg_fn, expr->attr_a, expr->attrs};
        Result<Relation> out = Aggregate(input, spec);
        return Finish(std::move(out), input.size(), stats);
      }
    }
    return Status::Internal("unhandled expression kind");
  }();
  return result;
}

}  // namespace

Result<Relation> EvalMaterializing(const ExprPtr& expr,
                                   const Resolver& resolver,
                                   EvalStats* stats) {
  Result<Relation> result = EvalMat(expr, resolver, stats);
  if (result.ok() && stats) {
    // The root output is the answer, not an intermediate.
    stats->intermediate_tuples -= result->size() < stats->intermediate_tuples
                                      ? result->size()
                                      : stats->intermediate_tuples;
    stats->OnRelease(result->size());
  }
  return result;
}

Result<Relation> EvalMaterializing(const ExprPtr& expr,
                                   const storage::Database& db,
                                   EvalStats* stats) {
  return EvalMaterializing(expr, DatabaseResolver(db), stats);
}

Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const Resolver& resolver) {
  if (!expr) return Status::InvalidArgument("null lifespan expression");
  switch (expr->kind) {
    case LsExprKind::kLiteral:
      return expr->literal;
    case LsExprKind::kWhen: {
      HRDM_ASSIGN_OR_RETURN(Relation rel, Eval(expr->relation, resolver));
      return When(rel);
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      HRDM_ASSIGN_OR_RETURN(Lifespan l, EvalLifespan(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Lifespan r, EvalLifespan(expr->right, resolver));
      switch (expr->kind) {
        case LsExprKind::kUnion:
          return l.Union(r);
        case LsExprKind::kIntersect:
          return l.Intersect(r);
        case LsExprKind::kDifference:
          return l.Difference(r);
        case LsExprKind::kLiteral:
        case LsExprKind::kWhen:
          break;  // unreachable: the enclosing case covers ∪ ∩ − only
      }
    }
  }
  return Status::Internal("unhandled lifespan expression kind");
}

Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::Database& db) {
  return EvalLifespan(expr, DatabaseResolver(db));
}

Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::DatabaseVersion& version) {
  return EvalLifespan(expr, VersionResolver(version));
}

Result<Relation> Run(std::string_view hrql, const storage::Database& db) {
  HRDM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(hrql));
  return Eval(expr, db);
}

Result<Relation> Run(std::string_view hrql,
                     const storage::DatabaseVersion& version) {
  HRDM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(hrql));
  return Eval(expr, version);
}

}  // namespace hrdm::query
