#include "query/executor.h"

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "query/parser.h"

namespace hrdm::query {

Resolver DatabaseResolver(const storage::Database& db) {
  return [&db](std::string_view name) { return db.Get(name); };
}

Result<Relation> Eval(const ExprPtr& expr, const Resolver& resolver) {
  if (!expr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kRelationRef: {
      HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(expr->relation));
      return *rel;
    }
    case ExprKind::kSelectIf: {
      HRDM_ASSIGN_OR_RETURN(Relation input, Eval(expr->left, resolver));
      if (expr->window) {
        HRDM_ASSIGN_OR_RETURN(Lifespan window,
                              EvalLifespan(expr->window, resolver));
        return SelectIf(input, *expr->predicate, expr->quantifier, window);
      }
      return SelectIf(input, *expr->predicate, expr->quantifier);
    }
    case ExprKind::kSelectWhen: {
      HRDM_ASSIGN_OR_RETURN(Relation input, Eval(expr->left, resolver));
      return SelectWhen(input, *expr->predicate);
    }
    case ExprKind::kProject: {
      HRDM_ASSIGN_OR_RETURN(Relation input, Eval(expr->left, resolver));
      return Project(input, expr->attrs);
    }
    case ExprKind::kTimeSlice: {
      HRDM_ASSIGN_OR_RETURN(Relation input, Eval(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Lifespan window,
                            EvalLifespan(expr->window, resolver));
      return TimeSlice(input, window);
    }
    case ExprKind::kDynSlice: {
      HRDM_ASSIGN_OR_RETURN(Relation input, Eval(expr->left, resolver));
      return TimeSliceDynamic(input, expr->attr_a);
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO:
    case ExprKind::kProduct: {
      HRDM_ASSIGN_OR_RETURN(Relation l, Eval(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Relation r, Eval(expr->right, resolver));
      switch (expr->kind) {
        case ExprKind::kUnion:
          return Union(l, r);
        case ExprKind::kIntersect:
          return Intersect(l, r);
        case ExprKind::kDifference:
          return Difference(l, r);
        case ExprKind::kUnionO:
          return UnionO(l, r);
        case ExprKind::kIntersectO:
          return IntersectO(l, r);
        case ExprKind::kDifferenceO:
          return DifferenceO(l, r);
        default:
          return CartesianProduct(l, r);
      }
    }
    case ExprKind::kThetaJoin: {
      HRDM_ASSIGN_OR_RETURN(Relation l, Eval(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Relation r, Eval(expr->right, resolver));
      return ThetaJoin(l, expr->attr_a, expr->op, r, expr->attr_b);
    }
    case ExprKind::kNaturalJoin: {
      HRDM_ASSIGN_OR_RETURN(Relation l, Eval(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Relation r, Eval(expr->right, resolver));
      return NaturalJoin(l, r);
    }
    case ExprKind::kTimeJoin: {
      HRDM_ASSIGN_OR_RETURN(Relation l, Eval(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Relation r, Eval(expr->right, resolver));
      return TimeJoin(l, expr->attr_a, r);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Relation> Eval(const ExprPtr& expr, const storage::Database& db) {
  return Eval(expr, DatabaseResolver(db));
}

Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const Resolver& resolver) {
  if (!expr) return Status::InvalidArgument("null lifespan expression");
  switch (expr->kind) {
    case LsExprKind::kLiteral:
      return expr->literal;
    case LsExprKind::kWhen: {
      HRDM_ASSIGN_OR_RETURN(Relation rel, Eval(expr->relation, resolver));
      return When(rel);
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      HRDM_ASSIGN_OR_RETURN(Lifespan l, EvalLifespan(expr->left, resolver));
      HRDM_ASSIGN_OR_RETURN(Lifespan r, EvalLifespan(expr->right, resolver));
      switch (expr->kind) {
        case LsExprKind::kUnion:
          return l.Union(r);
        case LsExprKind::kIntersect:
          return l.Intersect(r);
        default:
          return l.Difference(r);
      }
    }
  }
  return Status::Internal("unhandled lifespan expression kind");
}

Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::Database& db) {
  return EvalLifespan(expr, DatabaseResolver(db));
}

Result<Relation> Run(std::string_view hrql, const storage::Database& db) {
  HRDM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(hrql));
  return Eval(expr, db);
}

}  // namespace hrdm::query
