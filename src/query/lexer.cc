#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/format.h"

namespace hrdm::query {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kString:
      return "string";
    case TokenKind::kTime:
      return "time literal";
    case TokenKind::kEnd:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(
        StrPrintf("%s at offset %zu", msg.c_str(), i));
  };
  auto push = [&](TokenKind kind, size_t at, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = at;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdentifier, start,
           std::string(input.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[j])) ||
              input[j] == '.')) {
        if (input[j] == '.') {
          if (is_double) return error("malformed number");
          is_double = true;
        }
        ++j;
      }
      const std::string text(input.substr(i, j - i));
      Token t;
      t.offset = start;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '@': {
        size_t j = i + 1;
        bool neg = false;
        if (j < input.size() && input[j] == '-') {
          neg = true;
          ++j;
        }
        size_t digits_start = j;
        while (j < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
        if (j == digits_start) return error("expected digits after '@'");
        Token t;
        t.kind = TokenKind::kTime;
        t.offset = start;
        t.time_value = std::strtoll(
            std::string(input.substr(i + 1, j - i - 1)).c_str(), nullptr, 10);
        if (neg) {
          // strtoll already handled the sign via the '-' in the substring.
        }
        tokens.push_back(std::move(t));
        i = j;
        continue;
      }
      case '"': {
        std::string text;
        size_t j = i + 1;
        bool closed = false;
        while (j < input.size()) {
          if (input[j] == '\\' && j + 1 < input.size()) {
            text.push_back(input[j + 1]);
            j += 2;
            continue;
          }
          if (input[j] == '"') {
            closed = true;
            ++j;
            break;
          }
          text.push_back(input[j]);
          ++j;
        }
        if (!closed) return error("unterminated string literal");
        Token t;
        t.kind = TokenKind::kString;
        t.text = std::move(text);
        t.offset = start;
        tokens.push_back(std::move(t));
        i = j;
        continue;
      }
      case '(':
        push(TokenKind::kLParen, start, "(");
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start, ")");
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start, ",");
        ++i;
        continue;
      case '{':
        push(TokenKind::kLBrace, start, "{");
        ++i;
        continue;
      case '}':
        push(TokenKind::kRBrace, start, "}");
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start, "[");
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start, "]");
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, start, "=");
        ++i;
        continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNe, start, "!=");
          i += 2;
          continue;
        }
        return error("expected '=' after '!'");
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kLe, start, "<=");
          i += 2;
        } else {
          push(TokenKind::kLt, start, "<");
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kGe, start, ">=");
          i += 2;
        } else {
          push(TokenKind::kGt, start, ">");
          ++i;
        }
        continue;
      default:
        return error(StrPrintf("unexpected character '%c'", c));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace hrdm::query
