#ifndef HRDM_QUERY_LEXER_H_
#define HRDM_QUERY_LEXER_H_

/// \file lexer.h
/// \brief Tokenizer for HRQL, the textual form of the HRDM algebra.
///
/// Layer contract: the very front of the query layer (§4.5's multi-sorted
/// language, made textual) — stateless text → token-stream conversion,
/// consumed only by parser.h. docs/HRQL.md is the user-facing reference
/// for the surface syntax.
///
/// Token classes:
///  * identifiers / keywords: `[A-Za-z_][A-Za-z0-9_]*` (keywords are
///    recognised case-insensitively by the parser);
///  * integer and floating literals: `-?[0-9]+(\.[0-9]+)?`;
///  * string literals: double-quoted with backslash escapes;
///  * time literals: `@` followed by an integer (e.g. `@17` is chronon 17);
///  * punctuation: `( ) , { } [ ]` and the comparison operators
///    `= != < <= > >=`.

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "util/status.h"

namespace hrdm::query {

enum class TokenKind : uint8_t {
  kIdentifier,
  kInt,
  kDouble,
  kString,
  kTime,     // @N
  kLParen,
  kRParen,
  kComma,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kEq,       // =
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier / string payload
  int64_t int_value = 0;
  double double_value = 0;
  TimePoint time_value = 0;
  size_t offset = 0;    // byte offset in the input, for error messages

  std::string Describe() const;
};

/// \brief Tokenizes `input`; fails with ParseError (and offset) on
/// malformed lexemes. The result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_LEXER_H_
