#ifndef HRDM_QUERY_EXECUTOR_H_
#define HRDM_QUERY_EXECUTOR_H_

/// \file executor.h
/// \brief Evaluation of HRQL query trees against a database.
///
/// Two execution strategies share the algebra's per-tuple kernels:
///
///  * **Streaming** (the default, `Eval`): the tree is lowered to a
///    physical plan of Volcano-style cursors (query/plan.h) and drained.
///    Unary pipelines (`timeslice` → `select_*` → `project` chains, the
///    shape the optimizer produces) stream end-to-end without materializing
///    any intermediate relation; blocking operators buffer internally.
///
///  * **Materializing** (`EvalMaterializing`): the original recursive
///    interpreter — each AST node evaluates its children to whole
///    `Relation`s and applies the corresponding src/algebra operator. Kept
///    as the semantic reference and performance baseline
///    (bench/bench_executor.cc); `Eval` is property-tested equal to it in
///    tests/plan_test.cc.
///
/// Because the algebra is multi-sorted, evaluation comes in two flavors —
/// `Eval` for relation-sorted and `EvalLifespan` for lifespan-sorted
/// expressions (where `when(e)` first evaluates `e` and then applies Ω).
///
/// Every entry point also has an overload taking a
/// `storage::DatabaseVersion` — a pinned, immutable snapshot
/// (storage/database_version.h). Those overloads are the multi-session
/// read path: they touch no lock and no live engine state, so any number
/// of threads can evaluate against their pinned versions while writers
/// commit (src/session/session.h wraps this as `Session`).

#include <cstdint>
#include <functional>
#include <string_view>

#include "core/relation.h"
#include "query/ast.h"
#include "query/optimizer.h"
#include "query/plan.h"
#include "storage/database.h"
#include "util/status.h"

namespace hrdm::query {

/// \brief Resolves a base-relation name to a stored relation.
using Resolver = std::function<Result<const Relation*>(std::string_view)>;

/// \brief Wraps a Database as a Resolver.
Resolver DatabaseResolver(const storage::Database& db);

/// \brief Wraps a pinned database version as a Resolver. The version must
/// outlive the returned function (hold the `DatabaseVersionPtr` pin).
Resolver VersionResolver(const storage::DatabaseVersion& version);

/// \brief Cardinality source reading the catalog's relation stats — feeds
/// the optimizer's join-strategy chooser when evaluating against a
/// Database. The catalog must outlive the returned function.
CardinalityFn CatalogCardinality(const storage::Catalog& catalog);

/// \brief Index-registration source reading the catalog (feeds the
/// optimizer's access-path chooser). The catalog must outlive the returned
/// function.
IndexCatalogFn CatalogIndexes(const storage::Catalog& catalog);

/// \brief The full set of planning hooks for evaluating against `db`:
/// catalog cardinalities, index registrations, and the index probe /
/// hash-build feeds backed by the database's storage indexes
/// (storage/index.h). This is what `Eval(expr, db)` lowers with; tests and
/// benches start from it and set `force_*` knobs. `db` must outlive the
/// returned options.
PlanOptions DatabasePlanOptions(const storage::Database& db);

/// \brief Planning hooks bound to one pinned version: same shape as
/// `DatabasePlanOptions`, but every hook answers from the immutable
/// snapshot — safe to use from any thread, concurrently with writers, for
/// as long as the pin is held. The version must outlive the options.
PlanOptions VersionPlanOptions(const storage::DatabaseVersion& version);

/// \brief Counters for the materializing interpreter (the baseline the
/// plan layer's PlanStats is compared against).
struct EvalStats {
  /// Total tuples held by intermediate (non-root) relations produced
  /// during evaluation, including materialized scan leaves.
  size_t intermediate_tuples = 0;
  /// Tuples in currently-live relations during evaluation.
  size_t live_tuples = 0;
  /// Peak of `live_tuples` — the materializing analogue of
  /// PlanStats::peak_buffered.
  size_t peak_live_tuples = 0;

  void OnRelation(size_t n) {
    intermediate_tuples += n;
    live_tuples += n;
    if (live_tuples > peak_live_tuples) peak_live_tuples = live_tuples;
  }
  void OnRelease(size_t n) { live_tuples -= n < live_tuples ? n : live_tuples; }
};

/// \brief Evaluates a relation-sorted expression by lowering it to a
/// streaming physical plan (query/plan.h). A bare relation reference
/// returns a copy-on-write copy of the stored relation (no tuple is
/// duplicated).
Result<Relation> Eval(const ExprPtr& expr, const Resolver& resolver);
Result<Relation> Eval(const ExprPtr& expr, const storage::Database& db);
Result<Relation> Eval(const ExprPtr& expr,
                      const storage::DatabaseVersion& version);

/// \brief Evaluates via the materializing recursive interpreter: every
/// operator node materializes a whole intermediate `Relation`. `stats`, if
/// non-null, receives intermediate-relation counters (root output
/// excluded from `intermediate_tuples`).
Result<Relation> EvalMaterializing(const ExprPtr& expr,
                                   const Resolver& resolver,
                                   EvalStats* stats = nullptr);
Result<Relation> EvalMaterializing(const ExprPtr& expr,
                                   const storage::Database& db,
                                   EvalStats* stats = nullptr);

/// \brief Evaluates a lifespan-sorted expression.
Result<Lifespan> EvalLifespan(const LsExprPtr& expr, const Resolver& resolver);
Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::Database& db);
Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::DatabaseVersion& version);

/// \brief Convenience: parse and evaluate a relation-sorted HRQL string.
Result<Relation> Run(std::string_view hrql, const storage::Database& db);
Result<Relation> Run(std::string_view hrql,
                     const storage::DatabaseVersion& version);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_EXECUTOR_H_
