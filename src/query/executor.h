#ifndef HRDM_QUERY_EXECUTOR_H_
#define HRDM_QUERY_EXECUTOR_H_

/// \file executor.h
/// \brief Evaluation of HRQL query trees against a database.
///
/// The executor is a direct, recursive interpreter: each AST node maps to
/// the corresponding operator in src/algebra. Because the algebra is
/// multi-sorted, evaluation comes in two flavors — `Eval` for
/// relation-sorted and `EvalLifespan` for lifespan-sorted expressions
/// (where `when(e)` first evaluates `e` and then applies Ω).

#include <functional>
#include <string_view>

#include "core/relation.h"
#include "query/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace hrdm::query {

/// \brief Resolves a base-relation name to a stored relation.
using Resolver = std::function<Result<const Relation*>(std::string_view)>;

/// \brief Wraps a Database as a Resolver.
Resolver DatabaseResolver(const storage::Database& db);

/// \brief Evaluates a relation-sorted expression.
Result<Relation> Eval(const ExprPtr& expr, const Resolver& resolver);
Result<Relation> Eval(const ExprPtr& expr, const storage::Database& db);

/// \brief Evaluates a lifespan-sorted expression.
Result<Lifespan> EvalLifespan(const LsExprPtr& expr, const Resolver& resolver);
Result<Lifespan> EvalLifespan(const LsExprPtr& expr,
                              const storage::Database& db);

/// \brief Convenience: parse and evaluate a relation-sorted HRQL string.
Result<Relation> Run(std::string_view hrql, const storage::Database& db);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_EXECUTOR_H_
