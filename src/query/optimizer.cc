#include "query/optimizer.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "algebra/join.h"

namespace hrdm::query {

namespace {

/// Estimate used for base relations the cardinality source does not know.
constexpr size_t kDefaultCardinality = 64;

/// Saturating product (cardinality estimates must not overflow).
size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > static_cast<size_t>(-1) / b) return static_cast<size_t>(-1);
  return a * b;
}

/// True if values of the two domains can ever satisfy `=` under Compare:
/// same type, or both numeric (kInt/kDouble inter-compare). This is the
/// hash-join eligibility test — incomparable domains keep the nested-loop
/// strategy so the per-pair type error surfaces exactly as in the
/// whole-relation operator.
bool EqComparable(DomainType a, DomainType b) {
  auto numeric = [](DomainType t) {
    return t == DomainType::kInt || t == DomainType::kDouble;
  };
  return a == b || (numeric(a) && numeric(b));
}

}  // namespace

std::string_view JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kNestedLoop:
      return "nested_loop";
    case JoinStrategy::kHash:
      return "hash";
    case JoinStrategy::kMerge:
      return "merge";
  }
  return "unknown";
}

size_t EstimateCardinality(const ExprPtr& expr, const CardinalityFn& card) {
  if (!expr) return 0;
  switch (expr->kind) {
    case ExprKind::kRelationRef: {
      if (card) {
        if (auto n = card(expr->relation)) return *n;
      }
      return kDefaultCardinality;
    }
    case ExprKind::kSelectIf:
    case ExprKind::kSelectWhen:
      // Filters keep roughly half their input (classic rule of thumb).
      return EstimateCardinality(expr->left, card) / 2;
    case ExprKind::kProject:
    case ExprKind::kTimeSlice:
    case ExprKind::kDynSlice:
      return EstimateCardinality(expr->left, card);
    case ExprKind::kUnion:
    case ExprKind::kUnionO:
      return EstimateCardinality(expr->left, card) +
             EstimateCardinality(expr->right, card);
    case ExprKind::kIntersect:
    case ExprKind::kIntersectO:
      return std::min(EstimateCardinality(expr->left, card),
                      EstimateCardinality(expr->right, card));
    case ExprKind::kDifference:
    case ExprKind::kDifferenceO:
      return EstimateCardinality(expr->left, card);
    case ExprKind::kProduct:
      return SatMul(EstimateCardinality(expr->left, card),
                    EstimateCardinality(expr->right, card));
    case ExprKind::kThetaJoin: {
      const size_t l = EstimateCardinality(expr->left, card);
      const size_t r = EstimateCardinality(expr->right, card);
      // Equality is selective (≈ one partner per tuple); inequalities pass
      // about half the pair space.
      return expr->op == CompareOp::kEq ? std::max(l, r) : SatMul(l, r) / 2;
    }
    case ExprKind::kNaturalJoin:
      return std::max(EstimateCardinality(expr->left, card),
                      EstimateCardinality(expr->right, card));
    case ExprKind::kTimeJoin:
      return std::max(EstimateCardinality(expr->left, card),
                      EstimateCardinality(expr->right, card));
    case ExprKind::kAggregate:
      // One tuple per group (see EstimateGroupCount).
      return EstimateGroupCount(*expr, card);
  }
  return kDefaultCardinality;
}

size_t EstimateGroupCount(const Expr& agg, const CardinalityFn& card) {
  const size_t child = EstimateCardinality(agg.left, card);
  if (child == 0) return 0;
  // Ungrouped: the whole relation collapses into a single historical tuple.
  if (agg.attrs.empty()) return 1;
  // Grouped: quarter-of-input rule of thumb, capped by the input estimate.
  return std::max<size_t>(1, child / 4);
}

JoinChoice ChooseJoinStrategy(const Expr& join, const RelationScheme& left,
                              const RelationScheme& right,
                              const CardinalityFn& card) {
  JoinChoice choice;
  choice.est_left = EstimateCardinality(join.left, card);
  choice.est_right = EstimateCardinality(join.right, card);
  switch (join.kind) {
    case ExprKind::kThetaJoin: {
      // Equi-pattern detection: θ is "=" and the two domains can actually
      // compare equal (otherwise nested loop keeps error behavior).
      if (join.op != CompareOp::kEq) break;
      auto ia = left.IndexOf(join.attr_a);
      auto ib = right.IndexOf(join.attr_b);
      if (!ia || !ib) break;  // lowering rejects this before execution
      if (!EqComparable(left.attribute(*ia).type,
                        right.attribute(*ib).type)) {
        break;
      }
      choice.strategy = JoinStrategy::kHash;
      choice.build_left = choice.est_left < choice.est_right;
      break;
    }
    case ExprKind::kNaturalJoin: {
      // Equality on every shared attribute; with none, the join degenerates
      // to a product over the common lifespan — nested loop.
      if (SharedAttributes(left, right).empty()) break;
      choice.strategy = JoinStrategy::kHash;
      choice.build_left = choice.est_left < choice.est_right;
      break;
    }
    case ExprKind::kTimeJoin:
      choice.strategy = JoinStrategy::kMerge;
      break;
    // Non-join nodes (and the pure product) stay on the nested-loop
    // default the JoinChoice initializer carries.
    case ExprKind::kRelationRef:
    case ExprKind::kSelectIf:
    case ExprKind::kSelectWhen:
    case ExprKind::kProject:
    case ExprKind::kTimeSlice:
    case ExprKind::kDynSlice:
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO:
    case ExprKind::kProduct:
    case ExprKind::kAggregate:
      break;
  }
  return choice;
}

size_t DefaultParallelism() {
  static const size_t cached = [] {
    if (const char* raw = std::getenv("HRDM_THREADS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(raw, &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        return static_cast<size_t>(v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw > 0 ? hw : 1);
  }();
  return cached;
}

size_t ChooseParallelism(size_t requested, size_t est_tuples, bool force) {
  if (requested <= 1) return 1;
  if (force) return requested;
  if (est_tuples < kParallelMinTuples) return 1;
  // No more workers than morsels: extra ones would only idle.
  const size_t morsels = (est_tuples + kMorselSize - 1) / kMorselSize;
  return std::min(requested, morsels);
}

size_t DefaultBatchSize() {
  // Deliberately not cached: the batch-size differential axis re-reads the
  // override between plans (tests/differential_util.h).
  if (const char* raw = std::getenv("HRDM_BATCH_SIZE")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(raw, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return kDefaultBatchSize;
}

size_t ChooseBatchSize(size_t requested) {
  const size_t wanted = requested == 0 ? DefaultBatchSize() : requested;
  return std::max<size_t>(1, std::min(wanted, kMorselSize));
}

std::string_view AccessPathName(AccessPath p) {
  switch (p) {
    case AccessPath::kFullScan:
      return "full_scan";
    case AccessPath::kLifespanIndex:
      return "lifespan_index";
    case AccessPath::kValueIndex:
      return "value_index";
  }
  return "unknown";
}

AccessPathChoice ChooseAccessPath(const Expr& op, const IndexCatalogFn& indexes,
                                  const CardinalityFn& card) {
  AccessPathChoice choice;
  if (!op.left || op.left->kind != ExprKind::kRelationRef || !indexes) {
    return choice;
  }
  const std::optional<IndexInfo> info = indexes(op.left->relation);
  if (!info) return choice;
  choice.est_base = EstimateCardinality(op.left, card);

  auto find_value_probe = [&]() {
    if (!op.predicate) return;
    for (auto& [attr, key] : op.predicate->EqualityConstants()) {
      if (std::find(info->value_attrs.begin(), info->value_attrs.end(),
                    attr) != info->value_attrs.end()) {
        choice.value_eligible = true;
        choice.attr = attr;
        choice.key = key;
        return;
      }
    }
  };

  switch (op.kind) {
    case ExprKind::kSelectIf:
      // Existential only: with forall, a tuple whose quantification domain
      // is empty qualifies vacuously, so no candidate pruning is sound.
      if (op.quantifier != Quantifier::kExists) return choice;
      find_value_probe();
      // A windowed existential needs the predicate to hold at a window
      // chronon, which requires the tuple alive there.
      choice.lifespan_eligible = op.window != nullptr && info->lifespan;
      break;
    case ExprKind::kSelectWhen:
      // SELECT-WHEN drops tuples that never satisfy the criterion, so the
      // same equality-superset argument applies.
      find_value_probe();
      break;
    case ExprKind::kTimeSlice:
      choice.lifespan_eligible = info->lifespan;
      break;
    // Every other node shape has no index-eligible restriction.
    case ExprKind::kRelationRef:
    case ExprKind::kProject:
    case ExprKind::kDynSlice:
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO:
    case ExprKind::kProduct:
    case ExprKind::kThetaJoin:
    case ExprKind::kNaturalJoin:
    case ExprKind::kTimeJoin:
    case ExprKind::kAggregate:
      return choice;
  }

  if (choice.est_base <= kIndexScanMinTuples) return choice;
  // Equality probes are usually the more selective of the two.
  if (choice.value_eligible) {
    choice.path = AccessPath::kValueIndex;
  } else if (choice.lifespan_eligible) {
    choice.path = AccessPath::kLifespanIndex;
  }
  return choice;
}

namespace {

constexpr int kMaxPasses = 16;

/// One bottom-up rewrite pass. Increments *applied for each rule fired.
ExprPtr RewriteOnce(const ExprPtr& e, int* applied);

LsExprPtr RewriteLsOnce(const LsExprPtr& e, int* applied) {
  if (!e) return e;
  switch (e->kind) {
    case LsExprKind::kLiteral:
      return e;
    case LsExprKind::kWhen: {
      ExprPtr inner = RewriteOnce(e->relation, applied);
      if (inner == e->relation) return e;
      return WhenE(std::move(inner));
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      LsExprPtr l = RewriteLsOnce(e->left, applied);
      LsExprPtr r = RewriteLsOnce(e->right, applied);
      // Rule 7: fold literal ∘ literal.
      if (l->kind == LsExprKind::kLiteral &&
          r->kind == LsExprKind::kLiteral) {
        ++*applied;
        switch (e->kind) {
          case LsExprKind::kUnion:
            return LsLiteral(l->literal.Union(r->literal));
          case LsExprKind::kIntersect:
            return LsLiteral(l->literal.Intersect(r->literal));
          case LsExprKind::kDifference:
            return LsLiteral(l->literal.Difference(r->literal));
          case LsExprKind::kLiteral:
          case LsExprKind::kWhen:
            break;  // unreachable: the outer case covers ∪ ∩ − only
        }
        return LsBinary(e->kind, std::move(l), std::move(r));
      }
      if (l == e->left && r == e->right) return e;
      return LsBinary(e->kind, std::move(l), std::move(r));
    }
  }
  return e;
}

bool IsLiteralWindow(const LsExprPtr& w) {
  return w && w->kind == LsExprKind::kLiteral;
}

ExprPtr RewriteOnce(const ExprPtr& e, int* applied) {
  if (!e) return e;

  // Recurse into children first (bottom-up).
  ExprPtr left = e->left ? RewriteOnce(e->left, applied) : nullptr;
  ExprPtr right = e->right ? RewriteOnce(e->right, applied) : nullptr;
  LsExprPtr window = e->window ? RewriteLsOnce(e->window, applied) : nullptr;

  auto rebuild = [&]() -> ExprPtr {
    if (left == e->left && right == e->right && window == e->window) return e;
    auto copy = std::make_shared<Expr>(*e);
    copy->left = left;
    copy->right = right;
    copy->window = window;
    return copy;
  };

  switch (e->kind) {
    case ExprKind::kTimeSlice: {
      // Rule 1: fuse nested static time-slices (literal windows).
      if (left->kind == ExprKind::kTimeSlice && IsLiteralWindow(window) &&
          IsLiteralWindow(left->window)) {
        ++*applied;
        return TimeSliceE(left->left,
                          LsLiteral(window->literal.Intersect(
                              left->window->literal)));
      }
      // Rule 3: push the slice below select_when.
      if (left->kind == ExprKind::kSelectWhen) {
        ++*applied;
        return SelectWhenE(TimeSliceE(left->left, window),
                           *left->predicate);
      }
      // Rule 4: distribute over union.
      if (left->kind == ExprKind::kUnion) {
        ++*applied;
        return Binary(ExprKind::kUnion, TimeSliceE(left->left, window),
                      TimeSliceE(left->right, window));
      }
      return rebuild();
    }
    case ExprKind::kSelectWhen: {
      // Rule 2: fuse stacked select_when (select commutativity).
      if (left->kind == ExprKind::kSelectWhen) {
        ++*applied;
        return SelectWhenE(left->left, Predicate::And({*left->predicate,
                                                       *e->predicate}));
      }
      // Rule 4: distribute over union.
      if (left->kind == ExprKind::kUnion) {
        ++*applied;
        return Binary(ExprKind::kUnion,
                      SelectWhenE(left->left, *e->predicate),
                      SelectWhenE(left->right, *e->predicate));
      }
      return rebuild();
    }
    case ExprKind::kSelectIf: {
      // Rule 5: SELECT-IF distributes over ∪, ∩ and − (pure filter).
      if (left->kind == ExprKind::kUnion ||
          left->kind == ExprKind::kIntersect ||
          left->kind == ExprKind::kDifference) {
        // Only when an explicit window is given: the implicit window is
        // LS(r), which differs between the operand relations.
        if (window) {
          ++*applied;
          return Binary(
              left->kind,
              SelectIfE(left->left, *e->predicate, e->quantifier, window),
              SelectIfE(left->right, *e->predicate, e->quantifier, window));
        }
      }
      return rebuild();
    }
    case ExprKind::kProject: {
      // Rule 6: project-project fusion.
      if (left->kind == ExprKind::kProject) {
        ++*applied;
        return ProjectE(left->left, e->attrs);
      }
      return rebuild();
    }
    // No rewrite rules fire at these node shapes (yet): rebuild with the
    // recursively rewritten children.
    case ExprKind::kRelationRef:
    case ExprKind::kDynSlice:
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO:
    case ExprKind::kProduct:
    case ExprKind::kThetaJoin:
    case ExprKind::kNaturalJoin:
    case ExprKind::kTimeJoin:
    case ExprKind::kAggregate:
      return rebuild();
  }
  return rebuild();
}

}  // namespace

ExprPtr Optimize(const ExprPtr& expr, OptimizerStats* stats) {
  ExprPtr current = expr;
  int total = 0;
  int passes = 0;
  for (; passes < kMaxPasses; ++passes) {
    int applied = 0;
    ExprPtr next = RewriteOnce(current, &applied);
    total += applied;
    if (applied == 0) {
      current = next;
      break;
    }
    current = next;
  }
  if (stats != nullptr) {
    stats->rules_applied = total;
    stats->passes = passes + 1;
  }
  return current;
}

LsExprPtr OptimizeLs(const LsExprPtr& expr, OptimizerStats* stats) {
  LsExprPtr current = expr;
  int total = 0;
  int passes = 0;
  for (; passes < kMaxPasses; ++passes) {
    int applied = 0;
    LsExprPtr next = RewriteLsOnce(current, &applied);
    total += applied;
    if (applied == 0) {
      current = next;
      break;
    }
    current = next;
  }
  if (stats != nullptr) {
    stats->rules_applied = total;
    stats->passes = passes + 1;
  }
  return current;
}

}  // namespace hrdm::query
