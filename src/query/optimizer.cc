#include "query/optimizer.h"

namespace hrdm::query {

namespace {

constexpr int kMaxPasses = 16;

/// One bottom-up rewrite pass. Increments *applied for each rule fired.
ExprPtr RewriteOnce(const ExprPtr& e, int* applied);

LsExprPtr RewriteLsOnce(const LsExprPtr& e, int* applied) {
  if (!e) return e;
  switch (e->kind) {
    case LsExprKind::kLiteral:
      return e;
    case LsExprKind::kWhen: {
      ExprPtr inner = RewriteOnce(e->relation, applied);
      if (inner == e->relation) return e;
      return WhenE(std::move(inner));
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      LsExprPtr l = RewriteLsOnce(e->left, applied);
      LsExprPtr r = RewriteLsOnce(e->right, applied);
      // Rule 7: fold literal ∘ literal.
      if (l->kind == LsExprKind::kLiteral &&
          r->kind == LsExprKind::kLiteral) {
        ++*applied;
        switch (e->kind) {
          case LsExprKind::kUnion:
            return LsLiteral(l->literal.Union(r->literal));
          case LsExprKind::kIntersect:
            return LsLiteral(l->literal.Intersect(r->literal));
          default:
            return LsLiteral(l->literal.Difference(r->literal));
        }
      }
      if (l == e->left && r == e->right) return e;
      return LsBinary(e->kind, std::move(l), std::move(r));
    }
  }
  return e;
}

bool IsLiteralWindow(const LsExprPtr& w) {
  return w && w->kind == LsExprKind::kLiteral;
}

ExprPtr RewriteOnce(const ExprPtr& e, int* applied) {
  if (!e) return e;

  // Recurse into children first (bottom-up).
  ExprPtr left = e->left ? RewriteOnce(e->left, applied) : nullptr;
  ExprPtr right = e->right ? RewriteOnce(e->right, applied) : nullptr;
  LsExprPtr window = e->window ? RewriteLsOnce(e->window, applied) : nullptr;

  auto rebuild = [&]() -> ExprPtr {
    if (left == e->left && right == e->right && window == e->window) return e;
    auto copy = std::make_shared<Expr>(*e);
    copy->left = left;
    copy->right = right;
    copy->window = window;
    return copy;
  };

  switch (e->kind) {
    case ExprKind::kTimeSlice: {
      // Rule 1: fuse nested static time-slices (literal windows).
      if (left->kind == ExprKind::kTimeSlice && IsLiteralWindow(window) &&
          IsLiteralWindow(left->window)) {
        ++*applied;
        return TimeSliceE(left->left,
                          LsLiteral(window->literal.Intersect(
                              left->window->literal)));
      }
      // Rule 3: push the slice below select_when.
      if (left->kind == ExprKind::kSelectWhen) {
        ++*applied;
        return SelectWhenE(TimeSliceE(left->left, window),
                           *left->predicate);
      }
      // Rule 4: distribute over union.
      if (left->kind == ExprKind::kUnion) {
        ++*applied;
        return Binary(ExprKind::kUnion, TimeSliceE(left->left, window),
                      TimeSliceE(left->right, window));
      }
      return rebuild();
    }
    case ExprKind::kSelectWhen: {
      // Rule 2: fuse stacked select_when (select commutativity).
      if (left->kind == ExprKind::kSelectWhen) {
        ++*applied;
        return SelectWhenE(left->left, Predicate::And({*left->predicate,
                                                       *e->predicate}));
      }
      // Rule 4: distribute over union.
      if (left->kind == ExprKind::kUnion) {
        ++*applied;
        return Binary(ExprKind::kUnion,
                      SelectWhenE(left->left, *e->predicate),
                      SelectWhenE(left->right, *e->predicate));
      }
      return rebuild();
    }
    case ExprKind::kSelectIf: {
      // Rule 5: SELECT-IF distributes over ∪, ∩ and − (pure filter).
      if (left->kind == ExprKind::kUnion ||
          left->kind == ExprKind::kIntersect ||
          left->kind == ExprKind::kDifference) {
        // Only when an explicit window is given: the implicit window is
        // LS(r), which differs between the operand relations.
        if (window) {
          ++*applied;
          return Binary(
              left->kind,
              SelectIfE(left->left, *e->predicate, e->quantifier, window),
              SelectIfE(left->right, *e->predicate, e->quantifier, window));
        }
      }
      return rebuild();
    }
    case ExprKind::kProject: {
      // Rule 6: project-project fusion.
      if (left->kind == ExprKind::kProject) {
        ++*applied;
        return ProjectE(left->left, e->attrs);
      }
      return rebuild();
    }
    default:
      return rebuild();
  }
}

}  // namespace

ExprPtr Optimize(const ExprPtr& expr, OptimizerStats* stats) {
  ExprPtr current = expr;
  int total = 0;
  int passes = 0;
  for (; passes < kMaxPasses; ++passes) {
    int applied = 0;
    ExprPtr next = RewriteOnce(current, &applied);
    total += applied;
    if (applied == 0) {
      current = next;
      break;
    }
    current = next;
  }
  if (stats != nullptr) {
    stats->rules_applied = total;
    stats->passes = passes + 1;
  }
  return current;
}

LsExprPtr OptimizeLs(const LsExprPtr& expr, OptimizerStats* stats) {
  LsExprPtr current = expr;
  int total = 0;
  int passes = 0;
  for (; passes < kMaxPasses; ++passes) {
    int applied = 0;
    LsExprPtr next = RewriteLsOnce(current, &applied);
    total += applied;
    if (applied == 0) {
      current = next;
      break;
    }
    current = next;
  }
  if (stats != nullptr) {
    stats->rules_applied = total;
    stats->passes = passes + 1;
  }
  return current;
}

}  // namespace hrdm::query
