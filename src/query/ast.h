#ifndef HRDM_QUERY_AST_H_
#define HRDM_QUERY_AST_H_

/// \file ast.h
/// \brief The multi-sorted query AST for the HRDM algebra.
///
/// Section 4.5 of the paper: "we provide for a multi-sorted language whose
/// universes are respectively relations and ... lifespans". The AST mirrors
/// this: `Expr` nodes are relation-sorted, `LsExpr` nodes lifespan-sorted.
/// `WHEN` crosses from relations to lifespans; the lifespan parameters of
/// `TIME-SLICE` and `SELECT-IF` cross back ("the result of WHEN ... can
/// serve as the 'parameter' to those relational operators").
///
/// The textual form printed by `ToString` is valid HRQL (see parser.h), so
/// `Parse(expr->ToString())` round-trips — property-tested in
/// tests/parser_test.cc.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/predicate.h"
#include "core/lifespan.h"
#include "core/value.h"

namespace hrdm::query {

struct Expr;
struct LsExpr;
using ExprPtr = std::shared_ptr<const Expr>;
using LsExprPtr = std::shared_ptr<const LsExpr>;

/// \brief Relation-sorted operators.
enum class ExprKind : uint8_t {
  kRelationRef,   // named base relation
  kSelectIf,      // select_if(e, pred, quant [, window])
  kSelectWhen,    // select_when(e, pred)
  kProject,       // project(e, a1, ..., an)
  kTimeSlice,     // timeslice(e, L)
  kDynSlice,      // dynslice(e, attr)
  kUnion,         // union(e1, e2)
  kIntersect,     // intersect(e1, e2)
  kDifference,    // minus(e1, e2)
  kUnionO,        // ounion(e1, e2)
  kIntersectO,    // ointersect(e1, e2)
  kDifferenceO,   // ominus(e1, e2)
  kProduct,       // product(e1, e2)
  kThetaJoin,     // join(e1, e2, A op B)
  kNaturalJoin,   // natjoin(e1, e2)
  kTimeJoin,      // timejoin(e1, e2, attr)
  kAggregate,     // aggregate(e, fn [attr] [by g1, ..., gk])
};

/// \brief Lifespan-sorted operators.
enum class LsExprKind : uint8_t {
  kLiteral,     // {[a,b],[c],...}
  kWhen,        // when(e)
  kUnion,       // lunion(L1, L2)
  kIntersect,   // lintersect(L1, L2)
  kDifference,  // lminus(L1, L2)
};

/// \brief A relation-sorted expression node (immutable, shared).
struct Expr {
  ExprKind kind;

  // kRelationRef
  std::string relation;

  // Unary/binary operands.
  ExprPtr left;
  ExprPtr right;

  // Selections.
  std::optional<Predicate> predicate;
  Quantifier quantifier = Quantifier::kExists;
  LsExprPtr window;  // optional SELECT-IF window / TIME-SLICE parameter

  // Projection attributes / aggregation group-by attributes.
  std::vector<std::string> attrs;

  // Joins / dynamic slice / aggregated attribute.
  std::string attr_a;
  std::string attr_b;
  CompareOp op = CompareOp::kEq;

  // Aggregation (kAggregate; attr_a is the aggregated attribute, empty for
  // count, attrs are the group-by attributes).
  AggregateFn agg_fn = AggregateFn::kCount;

  /// \brief HRQL rendering.
  std::string ToString() const;
};

/// \brief A lifespan-sorted expression node.
struct LsExpr {
  LsExprKind kind;
  Lifespan literal;   // kLiteral
  ExprPtr relation;   // kWhen
  LsExprPtr left;     // set ops
  LsExprPtr right;

  std::string ToString() const;
};

// --- constructors ------------------------------------------------------------

ExprPtr Rel(std::string name);
ExprPtr SelectIfE(ExprPtr e, Predicate p, Quantifier q,
                  LsExprPtr window = nullptr);
ExprPtr SelectWhenE(ExprPtr e, Predicate p);
ExprPtr ProjectE(ExprPtr e, std::vector<std::string> attrs);
ExprPtr TimeSliceE(ExprPtr e, LsExprPtr window);
ExprPtr DynSliceE(ExprPtr e, std::string attr);
ExprPtr Binary(ExprKind kind, ExprPtr l, ExprPtr r);
ExprPtr ThetaJoinE(ExprPtr l, ExprPtr r, std::string attr_a, CompareOp op,
                   std::string attr_b);
ExprPtr NaturalJoinE(ExprPtr l, ExprPtr r);
ExprPtr TimeJoinE(ExprPtr l, ExprPtr r, std::string attr);
ExprPtr AggregateE(ExprPtr e, AggregateFn fn, std::string value_attr,
                   std::vector<std::string> group_by);

LsExprPtr LsLiteral(Lifespan l);
LsExprPtr WhenE(ExprPtr e);
LsExprPtr LsBinary(LsExprKind kind, LsExprPtr l, LsExprPtr r);

/// \brief Structural equality of expression trees (used by optimizer tests).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);
bool LsExprEquals(const LsExprPtr& a, const LsExprPtr& b);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_AST_H_
