#ifndef HRDM_QUERY_PLAN_H_
#define HRDM_QUERY_PLAN_H_

/// \file plan.h
/// \brief The physical execution layer: batch-at-a-time cursor pipelines.
///
/// Sits between the optimizer and the algebra. A query tree is *lowered*
/// to a tree of cursors, each pulling a `TupleBatch` — a vector of
/// `std::shared_ptr<const Tuple>` handles, `PlanContext::batch_size`
/// (default ~1024) per batch — from its child via `NextBatch()`. No
/// intermediate `Relation` is ever materialized along a unary pipeline
/// (the shape the optimizer's push-down rules produce:
/// `project(select_when(timeslice(r, L), p), X)` streams end-to-end with
/// one batch in flight per operator), but the per-pull virtual-call and
/// handle-shuffling overhead of the old tuple-at-a-time Volcano protocol
/// is amortized over whole batches: each operator runs its kernel in a
/// tight loop over the batch it holds.
///
/// **Batch protocol.** `NextBatch()` returns a pointer to a batch owned by
/// the producing cursor, or null at end of stream; emitted batches are
/// never empty, and the pointed-to batch is valid only until the next
/// `NextBatch()` call on the same cursor. The consumer MAY move handles
/// out of the batch (every cursor refills or clears its batch before
/// reuse). A non-virtual `Next()` compatibility shim drives unported
/// consumers one tuple at a time over the same batches, so porting an
/// operator is never blocked on porting its neighbours.
///
/// **Arena memory.** Per-query tuple temporaries (restricted, projected
/// and joined tuples created by the serial operator kernels) are
/// placement-constructed in a per-plan bump allocator
/// (`util::Arena`, owned by `PlanContext`) instead of one heap
/// allocation + shared_ptr control block each; the handles alias the
/// arena's `shared_ptr`, so tuples escaping into results keep the arena
/// alive and nothing dangles. Morsel-parallel *workers* still allocate
/// through the heap (the arena is single-threaded by design).
/// `PlanStats::arena_bytes` tracks the arena traffic,
/// `batches_emitted`/`batch_tuples` the batch traffic.
///
/// Cursors reuse the algebra's kernels (SelectIfBatch, SelectWhenHolds,
/// TimeSliceTupleRaw, ProjectTupleRaw, ProductTuple, JoinKeysDigest, ...),
/// so the streaming and whole-relation paths share one implementation of
/// the paper's semantics. Interpolation (representation → model mapping,
/// Figure 9) happens once, per tuple, at the scan leaf. Restriction
/// cursors take a pass-through fast path where the restriction is provably
/// the identity (the criterion holds over the whole lifespan / the window
/// covers it), re-emitting the input handle untouched.
///
/// Blocking operators buffer internally and account for every buffered
/// tuple in `PlanStats`:
///  * `SetOpCursor` — the set-theoretic/object-based operators need both
///    whole inputs (structural/mergeable lookups), so it drains both
///    children, applies the whole-relation operator, and streams (or
///    surrenders) the result;
///  * `ProductJoinCursor` — buffers only its *right* input and streams the
///    left, so `r × s` holds |s| tuples, not |r × s|;
///  * `HashAggregateCursor` — AGGREGATE: folds the input batches into
///    per-group aggregation state (key vector + contribution segments, via
///    the shared kernel of algebra/aggregate.h), holding input handles only
///    for the duplicate elimination a set-semantics aggregate requires.
///
/// The JOIN family lowers to dedicated join cursors, all built on the
/// shared assembly kernel of algebra/join.h and selected by the optimizer's
/// `ChooseJoinStrategy` (equi-pattern detection + catalog cardinality):
///  * `NestedLoopJoinCursor` — pairwise θ evaluation; buffers only the
///    right input, streams the left (the fallback "product" strategy);
///  * `HashEquiJoinCursor` — EQUIJOIN/NATURAL-JOIN: buffers only its
///    *build* side, partitioned by a time-invariant digest of the join
///    attribute values; build tuples whose join attribute varies over
///    their lifespan are probed per pair, so results are exact. Builds
///    and probes batch-at-a-time, suspending mid-bucket when the output
///    batch fills;
///  * `MergeTimeJoinCursor` — TIME-JOIN: buffers both sides sorted by
///    effective-span start and sweeps a chronon-interval frontier so only
///    pairs whose spans can overlap are tested.
///
/// Base relations are read through one of two leaves, picked by the
/// optimizer's `ChooseAccessPath` (query/optimizer.h) at lowering time:
///  * `ScanCursor` — the full scan, filling batches straight from the
///    stored tuple vector;
///  * `IndexScanCursor` — an access-path read: the candidate set of a
///    storage-index probe (lifespan interval index for TIME-SLICE windows,
///    value equality index for sargable SELECT-IF/SELECT-WHEN conjuncts —
///    see storage/index.h), reached through the probe hooks of
///    `PlanOptions` so this layer never depends on storage types. The
///    enclosing operator's kernel re-checks every candidate, so index scans
///    prune work, never change answers.
///
/// `PlanStats::peak_buffered` is the peak intermediate tuple count: 0 for a
/// fully streaming pipeline (in-flight batches are not "buffered" — they
/// are the stream). tests/plan_test.cc asserts this, and
/// bench/bench_executor.cc, bench/bench_join.cc and bench/bench_scan.cc
/// track it alongside the access-path and join-strategy counters.
///
/// **Parallel execution.** Three operator families can run morsel-parallel
/// on the shared worker pool (util/thread_pool.h) when the optimizer's
/// `ChooseParallelism` grants them more than one worker
/// (`PlanOptions::parallelism`, default HRDM_THREADS / hardware
/// concurrency; serial below a cardinality threshold):
///  * the scan leaves split their interpolation pass (representation →
///    model, the per-tuple CPU cost of a base read) into ~kMorselSize-tuple
///    morsels materialized by workers into per-morsel slots;
///  * `HashEquiJoinCursor` digests its drained build side via per-morsel
///    partition tables merged in morsel order (bucket contents identical
///    to the serial build), then buffers the probe side and probes morsels
///    in parallel, concatenating per-morsel outputs in morsel order;
///  * `HashAggregateCursor` folds the deduplicated input into per-morsel
///    `GroupedAggregator` partials merged in morsel order; the
///    order-insensitive finishing sweep makes per-group results bitwise
///    equal to the serial fold.
/// All merges happen on the coordinator thread in deterministic morsel
/// order, so a parallel plan's output is the same *set* of tuples as the
/// serial plan's (and identical across runs); with parallelism 1 every
/// cursor takes exactly the legacy serial path. PlanStats records the
/// morsel traffic (`morsels_dispatched`, `partitions_merged`,
/// `worker_tuples`) for EXPLAIN. The optimizer's `ChooseBatchSize` keeps
/// batches within a morsel (`kMorselSize`), so batch boundaries never
/// straddle morsel boundaries.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/join.h"
#include "algebra/predicate.h"
#include "algebra/setops.h"
#include "core/relation.h"
#include "query/ast.h"
#include "query/optimizer.h"
#include "util/arena.h"
#include "util/status.h"

namespace hrdm::query {

/// \brief Resolves a base-relation name to a stored relation (mirrors
/// executor.h's Resolver; redeclared here to avoid a circular include).
using PlanResolver = std::function<Result<const Relation*>(std::string_view)>;

/// \brief The unit of flow between cursors: a run of shared tuple handles,
/// owned by the emitting cursor (see the batch protocol in the header
/// comment).
using TupleBatch = std::vector<TuplePtr>;

/// \brief The result of probing a storage index for a base-relation read: a
/// superset of the qualifying tuples, plus whether they are already
/// model-level (materialized) or still need per-tuple interpolation.
struct IndexProbeResult {
  std::vector<TuplePtr> candidates;
  bool materialized = false;
};

/// \brief Probes a lifespan interval index: tuples of `relation` alive at
/// some chronon of `window`. nullopt when no such index exists.
using LifespanProbeFn = std::function<std::optional<IndexProbeResult>(
    std::string_view relation, const Lifespan& window)>;

/// \brief Probes a value equality index: candidate tuples of `relation`
/// with `attr = key` at some chronon (the matching digest bucket plus every
/// varying-valued tuple). nullopt when no such index exists.
using ValueProbeFn = std::function<std::optional<IndexProbeResult>(
    std::string_view relation, std::string_view attr, const Value& key)>;

/// \brief A hash-join build side served pre-partitioned from a storage
/// value index: one (raw value digest, tuples) group per constant-valued
/// bucket, plus the varying-valued fallback tuples.
struct IndexedBuildSide {
  std::vector<std::pair<uint64_t, std::vector<TuplePtr>>> groups;
  std::vector<TuplePtr> varying;
  bool materialized = false;
};

/// \brief Fetches the pre-partitioned contents of a value index on
/// `relation`.`attr` for a hash-join build side; nullopt when no such index
/// exists.
using IndexedBuildFn = std::function<std::optional<IndexedBuildSide>(
    std::string_view relation, std::string_view attr)>;

/// \brief Execution counters shared by every cursor of one physical plan.
struct PlanStats {
  /// Tuples pulled out of base-relation scan leaves.
  size_t tuples_scanned = 0;
  /// Tuples produced by the root cursor.
  size_t tuples_returned = 0;
  /// Intermediate tuples currently buffered by blocking operators.
  size_t buffered_now = 0;
  /// Peak of `buffered_now` over the plan's lifetime — the peak
  /// intermediate tuple count. 0 for a fully streaming (unary) pipeline.
  size_t peak_buffered = 0;
  /// Physical join operators instantiated in this plan, by strategy
  /// (records what the optimizer's ChooseJoinStrategy picked).
  size_t joins_nested_loop = 0;
  size_t joins_hash = 0;
  size_t joins_merge = 0;
  /// Join pairs whose exact per-pair lifespan kernel ran (the pruning
  /// metric: product tests |l|·|r| pairs, hash/merge far fewer).
  size_t join_pairs_tested = 0;
  /// Base-relation leaves by access path (records what the optimizer's
  /// ChooseAccessPath picked — the scan analogue of the joins_* counters).
  size_t scans_full = 0;
  size_t scans_lifespan_index = 0;
  size_t scans_value_index = 0;
  /// Candidate tuples handed over by index probes. Compare against the
  /// base-relation size for the access-path pruning metric (the scan
  /// analogue of join_pairs_tested).
  size_t index_candidates = 0;
  /// Hash joins whose build side was fed pre-partitioned from a value
  /// index instead of draining and digesting a build cursor.
  size_t hash_builds_from_index = 0;
  /// Aggregate operators instantiated in this plan.
  size_t aggregates = 0;
  /// Groups the planner pre-sized aggregate tables for (the optimizer's
  /// EstimateGroupCount) vs. groups actually built — compare the two for
  /// the estimator's accuracy, the aggregate analogue of join_pairs_tested.
  size_t agg_groups_estimated = 0;
  size_t agg_groups_built = 0;
  /// Input tuples that took the per-chronon varying-group-key fallback
  /// (grouping attributes whose value changes over the tuple's lifespan).
  size_t agg_fallback_tuples = 0;
  /// --- batch execution (see the header comment; util/arena.h) ------------
  /// Batches emitted by all cursors of the plan, and the tuples they
  /// carried. `batch_fill_avg()` is their ratio — how full the average
  /// batch ran (a selective filter or a tiny input drives it down).
  size_t batches_emitted = 0;
  size_t batch_tuples = 0;
  /// Bytes of per-query tuple temporaries served by the plan's arena
  /// (util/arena.h) instead of the heap.
  size_t arena_bytes = 0;
  /// --- parallel execution (see the header comment; util/thread_pool.h) ---
  /// Effective parallelism of the widest operator in the plan — what the
  /// optimizer's ChooseParallelism granted (1 = fully serial plan).
  size_t parallelism = 1;
  /// Operators that actually ran a morsel-parallel phase.
  size_t parallel_operators = 0;
  /// Morsels dispatched to the worker pool across all parallel phases.
  size_t morsels_dispatched = 0;
  /// Per-morsel partial results merged on the coordinator (hash-join digest
  /// partitions + aggregate partials), in morsel order.
  size_t partitions_merged = 0;
  /// Tuples processed by each pool worker (index = worker id) — the
  /// per-thread EXPLAIN counters. Empty for a fully serial plan.
  std::vector<size_t> worker_tuples;

  double batch_fill_avg() const {
    return batches_emitted == 0
               ? 0.0
               : static_cast<double>(batch_tuples) /
                     static_cast<double>(batches_emitted);
  }

  void OnParallelOperator(size_t effective) {
    if (effective > parallelism) parallelism = effective;
    if (effective > 1) ++parallel_operators;
  }
  void OnWorkerTuples(size_t worker, size_t n) {
    if (worker >= worker_tuples.size()) worker_tuples.resize(worker + 1, 0);
    worker_tuples[worker] += n;
  }

  void OnBuffer(size_t n) {
    buffered_now += n;
    if (buffered_now > peak_buffered) peak_buffered = buffered_now;
  }
  void OnRelease(size_t n) { buffered_now -= n < buffered_now ? n : buffered_now; }
};

/// \brief Per-plan execution state shared by every cursor of one physical
/// plan: the stats block, the chosen batch size, and the arena backing
/// per-query tuple temporaries. Owned by the enclosing `Plan`,
/// address-stable for the cursor tree's lifetime.
struct PlanContext {
  PlanStats stats;
  /// Handles per emitted batch (ChooseBatchSize: PlanOptions::batch_size,
  /// the HRDM_BATCH_SIZE env override, else kDefaultBatchSize).
  size_t batch_size = kDefaultBatchSize;
  /// The per-plan bump allocator for tuple temporaries; null = heap
  /// allocation (e.g. cursor trees composed without a Plan). Coordinator
  /// thread only — morsel workers allocate through the heap.
  std::shared_ptr<util::Arena> arena;

  /// \brief Moves a freshly built tuple into the arena (heap when none)
  /// and returns a shared handle. Arena-backed handles alias the arena's
  /// shared_ptr, so tuples escaping into results keep the arena alive.
  TuplePtr AdoptTuple(Tuple&& t);
};

/// \brief A pull-based physical operator emitting its output batch-at-a-
/// time: `NextBatch` yields the next (never-empty) run of output tuples,
/// or null at end of stream. Every tuple flowing between cursors is
/// materialized (model-level) and bound to `scheme()`. The returned batch
/// is owned by this cursor and valid until the next `NextBatch` call; the
/// consumer may move handles out of it.
///
/// The stream is a tuple *stream*, not a set: restriction operators (and
/// the streaming join cursors, whose pairs may assemble to equal tuples)
/// can emit structural duplicates mid-pipeline. Set semantics — the
/// whole-relation operators' output contract — are established at the
/// materialization boundary: `Plan::Drain` and `SetOpCursor`'s input
/// draining collapse duplicates via `InsertDedup`.
class Cursor {
 public:
  Cursor(SchemePtr scheme, PlanContext* ctx)
      : scheme_(std::move(scheme)), ctx_(ctx), stats_(&ctx->stats) {}
  virtual ~Cursor() = default;

  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// \brief Pulls the next output batch; null at end of stream.
  virtual Result<TupleBatch*> NextBatch() = 0;

  /// \brief Tuple-at-a-time compatibility shim over `NextBatch`: yields
  /// the batches' handles one by one, null at end of stream. For consumers
  /// that need per-tuple control flow; do not interleave with direct
  /// `NextBatch` calls on the same cursor.
  Result<TuplePtr> Next();

  /// \brief Blocking cursors that already hold their entire output as a
  /// set-semantics Relation may surrender it wholesale, so a draining
  /// consumer does not re-deduplicate an already-deduplicated result.
  /// Returns nullopt (the default) when the cursor must be pulled
  /// batch-by-batch; only valid before the first NextBatch().
  virtual Result<std::optional<Relation>> TakeBuffered() {
    return std::optional<Relation>();
  }

  /// \brief The output scheme, known at plan-build time.
  const SchemePtr& scheme() const { return scheme_; }

 protected:
  /// \brief The tail of every NextBatch implementation: null for an empty
  /// batch (end of stream), else the batch pointer with the plan-wide
  /// batch counters bumped.
  TupleBatch* EmitOrEnd(TupleBatch& batch) {
    if (batch.empty()) return nullptr;
    ++stats_->batches_emitted;
    stats_->batch_tuples += batch.size();
    return &batch;
  }

  SchemePtr scheme_;
  PlanContext* ctx_;  // owned by the enclosing Plan; never null
  PlanStats* stats_;  // == &ctx_->stats (kept for kernel-loop brevity)

 private:
  // Next() shim state: the batch currently being handed out one-by-one.
  TupleBatch* read_ = nullptr;
  size_t read_pos_ = 0;
  bool read_done_ = false;
};

using CursorPtr = std::unique_ptr<Cursor>;

/// \brief Adapter base for cursors still implemented tuple-at-a-time
/// (`NextTuple`): packs their output into batches so batch-native
/// consumers see the uniform protocol. Porting an operator to native
/// batches means moving it off this base.
class ScalarCursor : public Cursor {
 public:
  using Cursor::Cursor;
  Result<TupleBatch*> NextBatch() final;

 protected:
  /// \brief Produces the next output tuple; null at end of stream.
  virtual Result<TuplePtr> NextTuple() = 0;

 private:
  TupleBatch batch_;
  bool done_ = false;
};

// --- cursors -----------------------------------------------------------------

/// \brief Leaf: streams a relation's tuples without copying them, slicing
/// the stored tuple vector directly into batches. Holds only the shared
/// tuple handles (not the relation's key/structural indexes), so the scan
/// is safe even if the stored relation is later mutated and construction
/// is O(#tuples) pointer bumps.
/// Non-materialized inputs are interpolated per batch (into the arena);
/// with `parallelism > 1` the whole interpolation pass instead runs up
/// front, morsel-parallel on the worker pool (per-morsel output slots, so
/// tuple order is unchanged), and the materialized tuples stream from the
/// buffer (accounted in PlanStats until the cursor dies).
class ScanCursor : public Cursor {
 public:
  ScanCursor(const Relation& rel, size_t parallelism, PlanContext* ctx);
  ~ScanCursor() override;
  Result<TupleBatch*> NextBatch() override;

 private:
  std::vector<TuplePtr> tuples_;
  bool materialized_;
  size_t parallelism_;
  bool parallel_primed_ = false;
  size_t pos_ = 0;
  TupleBatch batch_;
};

/// \brief Leaf: streams the candidate set of a storage-index probe
/// (lifespan or value index — `path` records which) instead of the whole
/// relation. Candidates are a superset of the qualifying tuples; the
/// enclosing operator's kernel re-checks each one, so the scan is exact.
/// Like ScanCursor, non-materialized candidates are interpolated per batch
/// — or morsel-parallel up front when `parallelism > 1`.
class IndexScanCursor : public Cursor {
 public:
  IndexScanCursor(SchemePtr scheme, IndexProbeResult probe, AccessPath path,
                  size_t parallelism, PlanContext* ctx);
  ~IndexScanCursor() override;
  Result<TupleBatch*> NextBatch() override;

 private:
  std::vector<TuplePtr> tuples_;
  bool materialized_;
  size_t parallelism_;
  bool parallel_primed_ = false;
  size_t pos_ = 0;
  TupleBatch batch_;
};

/// \brief SELECT-IF: pure tuple filter (whole tuples pass or are dropped).
/// The predicate runs in one tight loop per input batch (SelectIfBatch);
/// passing handles move to the output batch untouched. Input batches the
/// filter empties entirely are skipped, never emitted.
class SelectIfCursor : public Cursor {
 public:
  SelectIfCursor(CursorPtr child, Predicate predicate, Quantifier quantifier,
                 std::optional<Lifespan> window, PlanContext* ctx);
  Result<TupleBatch*> NextBatch() override;

 private:
  CursorPtr child_;
  Predicate predicate_;
  Quantifier quantifier_;
  std::optional<Lifespan> window_;
  TupleBatch out_;
};

/// \brief SELECT-WHEN: restricts each tuple to the chronons where the
/// criterion holds; tuples that never satisfy it are dropped. Tuples the
/// criterion holds over entirely pass through as the original handle (no
/// copy); the rest are restricted into the arena.
///
/// Doubles as the fused form of a whole restriction chain: the lowering
/// collapses consecutive SELECT-WHEN / static TIME-SLICE operators into one
/// cursor whose `stages` (innermost-first) are slice windows and criteria.
/// Per tuple the effective lifespan is accumulated across the stages —
/// windows intersect, criteria evaluate scoped to the lifespan accumulated
/// so far (exactly the holds the unfused pipeline computes on the
/// stage-restricted tuple) — and the tuple is restricted once at the end
/// instead of once per operator. A tuple whose effective lifespan empties
/// mid-chain is dropped immediately, before the later criteria run,
/// mirroring the unfused per-stage drops.
///
/// A PROJECT directly above the chain fuses too: emission then builds the
/// projected tuple straight from the original handle (each kept attribute
/// restricted to the effective lifespan), skipping both the intermediate
/// restricted tuple and the separate projection pass — the result is
/// value-for-value what ProjectTupleRaw applied to the restricted tuple
/// would produce (projection copies values verbatim, so restriction and
/// projection commute per attribute).
class SelectWhenCursor : public Cursor {
 public:
  /// One fused restriction stage: a static slice window or a criterion.
  using Stage = std::variant<Lifespan, Predicate>;

  SelectWhenCursor(CursorPtr child, Predicate predicate, PlanContext* ctx);
  /// Fused chain; `stages` are innermost-first. With `project_scheme`
  /// non-null the cursor also applies the projection it describes
  /// (`project_src` maps output attribute positions to child positions).
  SelectWhenCursor(CursorPtr child, std::vector<Stage> stages,
                   SchemePtr project_scheme, std::vector<size_t> project_src,
                   PlanContext* ctx);
  Result<TupleBatch*> NextBatch() override;

 private:
  CursorPtr child_;
  std::vector<Stage> stages_;        // innermost-first
  bool project_ = false;             // emission projects to scheme_
  std::vector<size_t> project_src_;  // output position -> child position
  TupleBatch out_;
};

/// \brief PROJECT: narrows each tuple to the projected attributes, one
/// arena-built tuple per input handle in a tight per-batch loop.
class ProjectCursor : public Cursor {
 public:
  ProjectCursor(CursorPtr child, SchemePtr out_scheme,
                std::vector<size_t> src, PlanContext* ctx);
  Result<TupleBatch*> NextBatch() override;

 private:
  CursorPtr child_;
  std::vector<size_t> src_;
  TupleBatch out_;
};

/// \brief TIME-SLICE, static (`T_L`) or dynamic (`T_@A`): restricts each
/// tuple to the window (resp. the image of its own value of A); tuples
/// whose restricted lifespan is empty are dropped. Tuples the static
/// window already covers pass through as the original handle.
class TimeSliceCursor : public Cursor {
 public:
  /// Static slice.
  TimeSliceCursor(CursorPtr child, Lifespan window, PlanContext* ctx);
  /// Dynamic slice on attribute `attr_idx` (pre-checked time-valued).
  TimeSliceCursor(CursorPtr child, size_t attr_idx, PlanContext* ctx);
  Result<TupleBatch*> NextBatch() override;

 private:
  CursorPtr child_;
  std::optional<Lifespan> window_;  // static mode
  size_t attr_idx_ = 0;             // dynamic mode
  TupleBatch out_;
};

/// \brief Cartesian product: streams the left input against a buffered
/// right input (|right| buffered tuples, counted in PlanStats).
class ProductJoinCursor : public ScalarCursor {
 public:
  ProductJoinCursor(CursorPtr left, CursorPtr right, SchemePtr out_scheme,
                    PlanContext* ctx);
  ~ProductJoinCursor() override;

 protected:
  Result<TuplePtr> NextTuple() override;

 private:
  CursorPtr left_;
  CursorPtr right_;
  bool primed_ = false;
  std::vector<TuplePtr> right_buffer_;
  TuplePtr current_left_;
  size_t right_pos_ = 0;
};

// --- join cursors ------------------------------------------------------------

/// \brief The joined lifespan of one (left, right) tuple pair — empty means
/// the pair produces no tuple. Bound to one of the per-pair kernels of
/// algebra/join.h at lowering time.
using JoinPairFn =
    std::function<Result<Lifespan>(const Tuple& left, const Tuple& right)>;

/// \brief Fallback join strategy: streams the left input against a buffered
/// right input, evaluating the pair kernel for every pair (the JOIN ≡
/// SELECT-WHEN ∘ × reading, with the filter fused so no wide product tuple
/// is ever assembled for non-matching pairs). Buffers |right| tuples.
class NestedLoopJoinCursor : public ScalarCursor {
 public:
  NestedLoopJoinCursor(CursorPtr left, CursorPtr right,
                       JoinAssembly assembly, JoinPairFn pair,
                       PlanContext* ctx);
  ~NestedLoopJoinCursor() override;

 protected:
  Result<TuplePtr> NextTuple() override;

 private:
  CursorPtr left_;
  CursorPtr right_;
  JoinAssembly assembly_;
  JoinPairFn pair_;
  bool primed_ = false;
  std::vector<TuplePtr> right_buffer_;
  TuplePtr current_left_;
  size_t right_pos_ = 0;
};

/// \brief Hash equi-join (EQUIJOIN / NATURAL-JOIN with shared attributes):
/// drains its *build* side batch-at-a-time into buckets keyed by a
/// time-invariant digest of the join attribute values (JoinKeysDigest),
/// then streams the probe side, testing only digest-matching candidates
/// with the exact pair kernel and assembling matches into the output batch
/// until it fills (the probe position suspends mid-bucket and resumes on
/// the next pull). Build tuples whose join attribute varies over their
/// lifespan cannot be digested time-invariantly and are probed per pair
/// instead — the result is always exact. Buffers only the build side.
///
/// With `parallelism > 1`, both blocking phases go morsel-parallel on the
/// worker pool: the drained build side is digested into per-morsel
/// partition tables merged in morsel order (identical bucket contents to
/// the serial build, since morsels are contiguous index ranges), and the
/// probe side is buffered and probed per morsel with the per-morsel output
/// runs concatenated in morsel order before streaming out in batch-size
/// slices. The parallel form additionally buffers the probe input and the
/// joined output.
class HashEquiJoinCursor : public Cursor {
 public:
  /// `key_attrs` are the equality columns as (left index, right index)
  /// pairs; `build_left` selects which input is drained into the table
  /// (the optimizer picks the smaller estimate).
  HashEquiJoinCursor(CursorPtr left, CursorPtr right, bool build_left,
                     std::vector<std::pair<size_t, size_t>> key_attrs,
                     JoinAssembly assembly, JoinPairFn pair, size_t parallelism,
                     PlanContext* ctx);
  /// Index-fed build: the build side arrives pre-partitioned from a storage
  /// value index (single-column equality only), so no build cursor is
  /// drained or digested; `probe` is the *other* input. The build tuples
  /// still buffer (and count in PlanStats) exactly as in the drained form.
  HashEquiJoinCursor(CursorPtr probe, IndexedBuildSide build, bool build_left,
                     std::vector<std::pair<size_t, size_t>> key_attrs,
                     JoinAssembly assembly, JoinPairFn pair, size_t parallelism,
                     PlanContext* ctx);
  ~HashEquiJoinCursor() override;
  Result<TupleBatch*> NextBatch() override;

 private:
  Status Prime();
  /// Parallel build partitioning: per-morsel digest tables over `build_`,
  /// merged into buckets_/varying_ in morsel order.
  Status PartitionBuildParallel();
  /// Parallel probe: drains the probe child into a buffer, probes morsels
  /// on the pool, concatenates per-morsel outputs in morsel order.
  Status RunProbeParallel();
  /// Appends the joined tuple of probe_ × build_[idx] to `out` (nothing
  /// when the pair's lifespan is empty).
  Status TryPairInto(size_t build_idx, TupleBatch& out);
  /// Worker-side probe kernel: every joined tuple of `probe` against the
  /// digest table, appended to `out`. Reads shared state only; per-morsel
  /// pair counts go to `pairs_tested`, not PlanStats.
  Status ProbeOne(const TuplePtr& probe, std::vector<TuplePtr>& out,
                  size_t& pairs_tested) const;

  CursorPtr left_;
  CursorPtr right_;
  bool build_left_;
  std::vector<std::pair<size_t, size_t>> key_attrs_;
  JoinAssembly assembly_;
  JoinPairFn pair_;
  size_t parallelism_;

  bool primed_ = false;
  /// Index-fed mode: the pre-partitioned build side, consumed by Prime.
  std::optional<IndexedBuildSide> prebuilt_;
  std::vector<TuplePtr> build_;                  // the buffered build side
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
  std::vector<size_t> varying_;  // build tuples without a constant digest

  // Probe iteration state (serial mode). The candidate walk for probe_
  // suspends wherever the output batch fills and resumes on the next pull.
  TuplePtr probe_;
  const std::vector<size_t>* bucket_ = nullptr;  // candidates for probe_
  size_t bucket_pos_ = 0;
  bool in_varying_ = false;   // finished bucket_, now scanning varying_
  bool scan_all_ = false;     // probe digest unavailable: scan all of build_
  size_t scan_pos_ = 0;
  TupleBatch out_;

  // Parallel-probe state: the concatenated output runs, streamed out.
  bool parallel_probed_ = false;
  std::vector<TuplePtr> parallel_out_;
  size_t parallel_out_pos_ = 0;
};

/// \brief TIME-JOIN via a lifespan merge: both sides are drained and sorted
/// by the start of their effective chronon span (left: image(t(A)) ∩ t.l,
/// right: t.l); a sweep keeps a frontier of right tuples whose spans can
/// still overlap, so far fewer than |l|·|r| pairs are tested. Buffers both
/// sides.
class MergeTimeJoinCursor : public ScalarCursor {
 public:
  MergeTimeJoinCursor(CursorPtr left, CursorPtr right, size_t attr_a,
                      JoinAssembly assembly, PlanContext* ctx);
  ~MergeTimeJoinCursor() override;

 protected:
  Result<TuplePtr> NextTuple() override;

 private:
  struct Entry {
    TuplePtr tuple;
    Lifespan effective;  // the span the joined lifespan is confined to
    TimePoint begin = 0;
    TimePoint end = 0;
  };

  Status Prime();

  CursorPtr left_;
  CursorPtr right_;
  size_t attr_a_;
  JoinAssembly assembly_;

  bool primed_ = false;
  std::vector<Entry> lefts_;   // sorted by begin
  std::vector<Entry> rights_;  // sorted by begin
  size_t li_ = 0;              // current left entry
  size_t next_right_ = 0;      // first right entry not yet activated
  std::vector<size_t> active_; // rights whose span may still overlap
  size_t ai_ = 0;              // next active candidate for lefts_[li_]
  bool left_open_ = false;     // activation done for lefts_[li_]
};

/// \brief Base for blocking cursors that compute their entire output
/// relation on the first pull and then stream (or surrender) it: owns the
/// priming protocol, the already-being-pulled guard, and the release-side
/// PlanStats accounting. Subclasses implement `Prime`, which must account
/// the *returned* relation's tuples via `stats_->OnBuffer` (they stay
/// buffered until streamed out wholesale, taken, or destroyed — the base
/// pairs the `OnRelease`). Streams the primed result in batch-size slices.
class BufferedResultCursor : public Cursor {
 public:
  using Cursor::Cursor;
  ~BufferedResultCursor() override;
  Result<TupleBatch*> NextBatch() override;
  Result<std::optional<Relation>> TakeBuffered() override;

 protected:
  /// Computes the full output (set semantics, materialized), called once.
  virtual Result<Relation> Prime() = 0;

 private:
  Status EnsurePrimed();

  bool primed_ = false;
  std::optional<Relation> result_;
  size_t pos_ = 0;
  TupleBatch batch_;
};

/// \brief AGGREGATE: blocking unary operator computing time-varying
/// COUNT/SUM/MIN/MAX/AVG with optional GROUP-BY (algebra/aggregate.h is the
/// shared kernel, so the streaming and whole-relation paths cannot
/// diverge). The input batches are folded into per-*group* state — key
/// vector, member spans, contribution segments — never whole wide tuples;
/// the only per-input retention is the shared handles needed to establish
/// set semantics at this blocking boundary (the stream may carry structural
/// duplicates, and COUNT/SUM/AVG are duplicate-sensitive). Group keys that
/// are constant over a tuple's lifespan take the JoinKeyDigest fast path;
/// varying keys take the exact per-chronon fallback, counted in
/// `PlanStats::agg_fallback_tuples`.
/// With `parallelism > 1` the fold phase runs morsel-parallel: the
/// deduplicated input handles are split into morsels, each folded into a
/// `GroupedAggregator::Fork()` partial on a pool worker, and the partials
/// merged (`MergeFrom`) in morsel order — bitwise-identical group results,
/// since the finishing sweep is order-insensitive.
class HashAggregateCursor : public BufferedResultCursor {
 public:
  /// `estimated_groups` pre-sizes the group table (the optimizer's
  /// EstimateGroupCount, advisory).
  HashAggregateCursor(CursorPtr child, GroupedAggregator aggregator,
                      size_t estimated_groups, size_t parallelism,
                      PlanContext* ctx);

 protected:
  Result<Relation> Prime() override;

 private:
  /// Folds `handles` into aggregator_ — serially (FoldBatch), or via
  /// per-morsel partials on the worker pool when parallelism_ > 1.
  Status FoldAll(const std::vector<TuplePtr>& handles);

  CursorPtr child_;
  GroupedAggregator aggregator_;
  size_t parallelism_;
};

/// \brief Blocking binary operator: drains both children into relations,
/// applies a whole-relation algebra operator, then streams the result.
/// Used for the set-theoretic/object-based operators, whose semantics need
/// both whole inputs.
class SetOpCursor : public BufferedResultCursor {
 public:
  /// The algebra operator to apply to the two drained inputs.
  using WholeRelationOp =
      std::function<Result<Relation>(const Relation&, const Relation&)>;

  SetOpCursor(CursorPtr left, CursorPtr right, SchemePtr out_scheme,
              WholeRelationOp op, PlanContext* ctx);

 protected:
  Result<Relation> Prime() override;

 private:
  CursorPtr left_;
  CursorPtr right_;
  WholeRelationOp op_;
};

// --- plans -------------------------------------------------------------------

/// \brief Knobs for lowering a query tree to a physical plan.
struct PlanOptions {
  /// Base-relation cardinality estimates for the join-strategy chooser
  /// (typically CatalogCardinality from executor.h). When null, the
  /// planner resolves names through the PlanResolver and uses exact stored
  /// sizes.
  CardinalityFn cardinality;
  /// Test hook (the differential join suite): force every *eligible* JOIN
  /// node onto one strategy. Nodes the strategy cannot execute (e.g. kHash
  /// on a non-equality θ-join, kMerge on anything but TIME-JOIN) fall back
  /// to nested loop.
  std::optional<JoinStrategy> force_join_strategy;

  // --- access paths (storage indexes; see DatabasePlanOptions in
  // executor.h for the hooks wired to a Database) -----------------------------

  /// Which indexes exist per base relation, for the access-path chooser.
  /// When null, every base read is a full scan.
  IndexCatalogFn index_catalog;
  /// Probes a lifespan interval index for TIME-SLICE / windowed SELECT-IF.
  LifespanProbeFn lifespan_probe;
  /// Probes a value equality index for sargable SELECT-IF / SELECT-WHEN.
  ValueProbeFn value_probe;
  /// Serves a hash-join build side pre-partitioned from a value index.
  IndexedBuildFn indexed_build;
  /// Test hook (the index differential fuzz): force every *eligible*
  /// restriction onto one access path; nodes the path is not valid for (or
  /// relations without the index) fall back to the full scan. kFullScan
  /// disables index scans and index-fed hash builds entirely.
  std::optional<AccessPath> force_access_path;

  // --- parallel execution (see the header comment) ---------------------------

  /// Requested degree of parallelism. 0 = auto (DefaultParallelism: the
  /// HRDM_THREADS env override, else hardware concurrency); 1 = exact
  /// legacy serial execution, bit-for-bit; > 1 = morsel-parallel operators
  /// on that many pool workers where ChooseParallelism allows.
  size_t parallelism = 0;
  /// Test hook (the parallel differential fuzz): bypass ChooseParallelism's
  /// cardinality threshold so even tiny inputs run morsel-parallel.
  bool force_parallel = false;

  // --- batch execution (see the header comment) ------------------------------

  /// Handles per emitted batch. 0 = auto (ChooseBatchSize: the
  /// HRDM_BATCH_SIZE env override, else kDefaultBatchSize); explicit values
  /// are clamped to [1, kMorselSize]. The differential suites sweep this
  /// axis ({1, 7, 1024, ...}) — output must be identical at every setting.
  size_t batch_size = 0;
};

/// \brief A lowered physical plan: owns the cursor tree and its context
/// (stats + batch size + arena).
class Plan {
 public:
  /// \brief Lowers a relation-sorted query tree to a cursor pipeline.
  /// Scheme computation and compatibility checks happen here, eagerly;
  /// lifespan-sorted windows are evaluated eagerly too (they are
  /// parameters, not streams). Per-tuple errors (e.g. a predicate naming an
  /// unknown attribute) surface on `Next`/`NextBatch`.
  static Result<Plan> Lower(const ExprPtr& expr, const PlanResolver& resolver);
  static Result<Plan> Lower(const ExprPtr& expr, const PlanResolver& resolver,
                            const PlanOptions& options);

  /// \brief Pulls the next root batch; null at end of stream. Owned by the
  /// root cursor, valid until the next call.
  Result<TupleBatch*> NextBatch();

  /// \brief Pulls the next root tuple; null at end of stream (the
  /// tuple-at-a-time shim over `NextBatch`).
  Result<TuplePtr> Next();

  /// \brief Runs the plan to completion into a set-semantics `Relation`
  /// (structural duplicates collapsed, empty-lifespan tuples dropped),
  /// marked materialized — exactly the contract of the whole-relation
  /// algebra operators.
  Result<Relation> Drain();

  const SchemePtr& scheme() const { return root_->scheme(); }
  const PlanStats& stats() const { return ctx_->stats; }

 private:
  Plan(std::unique_ptr<PlanContext> ctx, CursorPtr root)
      : ctx_(std::move(ctx)), root_(std::move(root)) {}

  std::unique_ptr<PlanContext> ctx_;  // address-stable; outlives root_
  CursorPtr root_;
};

/// \brief Lowers `expr` onto an existing plan context (used by Plan::Lower
/// and by tests that compose cursors directly).
Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanContext* ctx);
Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanContext* ctx, const PlanOptions& options);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_PLAN_H_
