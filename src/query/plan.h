#ifndef HRDM_QUERY_PLAN_H_
#define HRDM_QUERY_PLAN_H_

/// \file plan.h
/// \brief The physical execution layer: Volcano-style cursor pipelines.
///
/// Sits between the optimizer and the algebra. A query tree is *lowered*
/// to a tree of cursors, each pulling `std::shared_ptr<const Tuple>` from
/// its child one tuple at a time — no intermediate `Relation` is ever
/// materialized along a unary pipeline (the shape the optimizer's push-down
/// rules produce: `project(select_when(timeslice(r, L), p), X)` streams
/// end-to-end with O(1) in-flight tuples).
///
/// Cursors reuse the algebra's per-tuple kernels (SelectIfMatches,
/// SelectWhenTuple, TimeSliceTuple, ProjectTuple, ProductTuple, ...), so
/// the streaming and whole-relation paths share one implementation of the
/// paper's semantics. Interpolation (representation → model mapping,
/// Figure 9) happens once, per tuple, at the scan leaf.
///
/// Blocking operators buffer internally and account for every buffered
/// tuple in `PlanStats`:
///  * `SetOpCursor` — the set-theoretic/object-based operators and the
///    θ-/natural/time joins need both whole inputs (structural/mergeable
///    lookups, pairwise matching), so it drains both children, applies the
///    whole-relation operator, and streams (or surrenders) the result;
///  * `ProductJoinCursor` — buffers only its *right* input and streams the
///    left, so `r × s` holds |s| tuples, not |r × s|.
///
/// `PlanStats::peak_buffered` is the peak intermediate tuple count: 0 for a
/// fully streaming pipeline. tests/plan_test.cc asserts this, and
/// bench/bench_executor.cc tracks it against the materializing interpreter.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/setops.h"
#include "core/relation.h"
#include "query/ast.h"
#include "util/status.h"

namespace hrdm::query {

/// \brief Resolves a base-relation name to a stored relation (mirrors
/// executor.h's Resolver; redeclared here to avoid a circular include).
using PlanResolver = std::function<Result<const Relation*>(std::string_view)>;

/// \brief Execution counters shared by every cursor of one physical plan.
struct PlanStats {
  /// Tuples pulled out of base-relation scan leaves.
  size_t tuples_scanned = 0;
  /// Tuples produced by the root cursor.
  size_t tuples_returned = 0;
  /// Intermediate tuples currently buffered by blocking operators.
  size_t buffered_now = 0;
  /// Peak of `buffered_now` over the plan's lifetime — the peak
  /// intermediate tuple count. 0 for a fully streaming (unary) pipeline.
  size_t peak_buffered = 0;

  void OnBuffer(size_t n) {
    buffered_now += n;
    if (buffered_now > peak_buffered) peak_buffered = buffered_now;
  }
  void OnRelease(size_t n) { buffered_now -= n < buffered_now ? n : buffered_now; }
};

/// \brief A pull-based physical operator. `Next` yields the next tuple of
/// this operator's output, or a null `TuplePtr` at end of stream. Every
/// tuple flowing between cursors is materialized (model-level) and bound to
/// `scheme()`.
class Cursor {
 public:
  Cursor(SchemePtr scheme, PlanStats* stats)
      : scheme_(std::move(scheme)), stats_(stats) {}
  virtual ~Cursor() = default;

  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// \brief Pulls the next output tuple; null at end of stream.
  virtual Result<TuplePtr> Next() = 0;

  /// \brief Blocking cursors that already hold their entire output as a
  /// set-semantics Relation may surrender it wholesale, so a draining
  /// consumer does not re-deduplicate an already-deduplicated result.
  /// Returns nullopt (the default) when the cursor must be pulled
  /// tuple-by-tuple; only valid before the first Next().
  virtual Result<std::optional<Relation>> TakeBuffered() {
    return std::optional<Relation>();
  }

  /// \brief The output scheme, known at plan-build time.
  const SchemePtr& scheme() const { return scheme_; }

 protected:
  SchemePtr scheme_;
  PlanStats* stats_;  // owned by the enclosing Plan; never null
};

using CursorPtr = std::unique_ptr<Cursor>;

// --- cursors -----------------------------------------------------------------

/// \brief Leaf: streams a relation's tuples without copying them. Holds
/// only the shared tuple handles (not the relation's key/structural
/// indexes), so the scan is safe even if the stored relation is later
/// mutated and construction is O(#tuples) pointer bumps.
/// Non-materialized inputs are interpolated one tuple at a time.
class ScanCursor : public Cursor {
 public:
  ScanCursor(const Relation& rel, PlanStats* stats);
  Result<TuplePtr> Next() override;

 private:
  std::vector<TuplePtr> tuples_;
  bool materialized_;
  size_t pos_ = 0;
};

/// \brief SELECT-IF: pure tuple filter (whole tuples pass or are dropped).
class SelectIfCursor : public Cursor {
 public:
  SelectIfCursor(CursorPtr child, Predicate predicate, Quantifier quantifier,
                 std::optional<Lifespan> window, PlanStats* stats);
  Result<TuplePtr> Next() override;

 private:
  CursorPtr child_;
  Predicate predicate_;
  Quantifier quantifier_;
  std::optional<Lifespan> window_;
};

/// \brief SELECT-WHEN: restricts each tuple to the chronons where the
/// criterion holds; tuples that never satisfy it are dropped.
class SelectWhenCursor : public Cursor {
 public:
  SelectWhenCursor(CursorPtr child, Predicate predicate, PlanStats* stats);
  Result<TuplePtr> Next() override;

 private:
  CursorPtr child_;
  Predicate predicate_;
};

/// \brief PROJECT: narrows each tuple to the projected attributes.
class ProjectCursor : public Cursor {
 public:
  ProjectCursor(CursorPtr child, SchemePtr out_scheme,
                std::vector<size_t> src, PlanStats* stats);
  Result<TuplePtr> Next() override;

 private:
  CursorPtr child_;
  std::vector<size_t> src_;
};

/// \brief TIME-SLICE, static (`T_L`) or dynamic (`T_@A`): restricts each
/// tuple to the window (resp. the image of its own value of A); tuples
/// whose restricted lifespan is empty are dropped.
class TimeSliceCursor : public Cursor {
 public:
  /// Static slice.
  TimeSliceCursor(CursorPtr child, Lifespan window, PlanStats* stats);
  /// Dynamic slice on attribute `attr_idx` (pre-checked time-valued).
  TimeSliceCursor(CursorPtr child, size_t attr_idx, PlanStats* stats);
  Result<TuplePtr> Next() override;

 private:
  CursorPtr child_;
  std::optional<Lifespan> window_;  // static mode
  size_t attr_idx_ = 0;             // dynamic mode
};

/// \brief Cartesian product: streams the left input against a buffered
/// right input (|right| buffered tuples, counted in PlanStats).
class ProductJoinCursor : public Cursor {
 public:
  ProductJoinCursor(CursorPtr left, CursorPtr right, SchemePtr out_scheme,
                    PlanStats* stats);
  ~ProductJoinCursor() override;
  Result<TuplePtr> Next() override;

 private:
  CursorPtr left_;
  CursorPtr right_;
  bool primed_ = false;
  std::vector<TuplePtr> right_buffer_;
  TuplePtr current_left_;
  size_t right_pos_ = 0;
};

/// \brief Blocking binary operator: drains both children into relations,
/// applies a whole-relation algebra operator, then streams the result.
/// Used for the set-theoretic/object-based operators and the joins, whose
/// semantics need both whole inputs.
class SetOpCursor : public Cursor {
 public:
  /// The algebra operator to apply to the two drained inputs.
  using WholeRelationOp =
      std::function<Result<Relation>(const Relation&, const Relation&)>;

  SetOpCursor(CursorPtr left, CursorPtr right, SchemePtr out_scheme,
              WholeRelationOp op, PlanStats* stats);
  ~SetOpCursor() override;
  Result<TuplePtr> Next() override;
  Result<std::optional<Relation>> TakeBuffered() override;

 private:
  Status Prime();

  CursorPtr left_;
  CursorPtr right_;
  WholeRelationOp op_;
  bool primed_ = false;
  std::optional<Relation> result_;
  size_t pos_ = 0;
};

// --- plans -------------------------------------------------------------------

/// \brief A lowered physical plan: owns the cursor tree and its stats.
class Plan {
 public:
  /// \brief Lowers a relation-sorted query tree to a cursor pipeline.
  /// Scheme computation and compatibility checks happen here, eagerly;
  /// lifespan-sorted windows are evaluated eagerly too (they are
  /// parameters, not streams). Per-tuple errors (e.g. a predicate naming an
  /// unknown attribute) surface on `Next`.
  static Result<Plan> Lower(const ExprPtr& expr, const PlanResolver& resolver);

  /// \brief Pulls the next root tuple; null at end of stream.
  Result<TuplePtr> Next();

  /// \brief Runs the plan to completion into a set-semantics `Relation`
  /// (structural duplicates collapsed, empty-lifespan tuples dropped),
  /// marked materialized — exactly the contract of the whole-relation
  /// algebra operators.
  Result<Relation> Drain();

  const SchemePtr& scheme() const { return root_->scheme(); }
  const PlanStats& stats() const { return *stats_; }

 private:
  Plan(std::unique_ptr<PlanStats> stats, CursorPtr root)
      : stats_(std::move(stats)), root_(std::move(root)) {}

  std::unique_ptr<PlanStats> stats_;  // address-stable; outlives root_
  CursorPtr root_;
};

/// \brief Lowers `expr` onto an existing stats block (used by Plan::Lower
/// and by tests that compose cursors directly).
Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanStats* stats);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_PLAN_H_
