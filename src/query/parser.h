#ifndef HRDM_QUERY_PARSER_H_
#define HRDM_QUERY_PARSER_H_

/// \file parser.h
/// \brief Recursive-descent parser for HRQL, the textual HRDM algebra.
///
/// The paper presents the algebra in mathematical notation; HRQL is a
/// 1:1 functional syntax over the same operators so that examples and
/// tests can be written at the paper's level of abstraction:
///
/// ```
/// rel_expr :=
///     IDENT                                       -- base relation
///   | select_if(rel_expr, pred, quant [, ls_expr])-- SELECT-IF (§4.3)
///   | select_when(rel_expr, pred)                 -- SELECT-WHEN (§4.3)
///   | project(rel_expr, IDENT {, IDENT})          -- PROJECT (§4.2)
///   | timeslice(rel_expr, ls_expr)                -- static TIME-SLICE (§4.4)
///   | dynslice(rel_expr, IDENT)                   -- dynamic TIME-SLICE (§4.4)
///   | union|intersect|minus(rel_expr, rel_expr)   -- set ops (§4.1)
///   | ounion|ointersect|ominus(rel_expr, rel_expr)-- object-based (§4.1)
///   | product(rel_expr, rel_expr)                 -- × (§4.1)
///   | join(rel_expr, rel_expr, IDENT op IDENT)    -- θ-JOIN (§4.6)
///   | natjoin(rel_expr, rel_expr)                 -- NATURAL-JOIN (§4.6)
///   | timejoin(rel_expr, rel_expr, IDENT)         -- TIME-JOIN (§4.6)
///   | aggregate(rel_expr, agg)                    -- temporal aggregation
///
/// agg :=
///     count [by IDENT {, IDENT}]
///   | (sum|min|max|avg) IDENT [by IDENT {, IDENT}]
///
/// ls_expr :=
///     { interval {, interval} } | {}              -- lifespan literal
///   | when(rel_expr)                              -- WHEN (§4.5)
///   | lunion|lintersect|lminus(ls_expr, ls_expr)  -- lifespan set ops (§2)
///
/// interval := [ INT ] | [ INT , INT ]
/// pred     := simple {and simple}
/// simple   := IDENT op literal | IDENT op IDENT
/// op       := = | != | < | <= | > | >=
/// quant    := exists | forall
/// literal  := INT | DOUBLE | STRING | true | false | @INT (time)
/// ```
///
/// Keywords are case-insensitive; attribute/relation identifiers are
/// case-sensitive. `ToString()` on the AST prints this grammar back, and
/// parsing is a round-trip (property-tested).

#include <string_view>
#include <variant>

#include "query/ast.h"
#include "util/status.h"

namespace hrdm::query {

/// \brief A parsed query: either relation-sorted or lifespan-sorted.
using ParsedQuery = std::variant<ExprPtr, LsExprPtr>;

/// \brief Parses a relation-sorted expression.
Result<ExprPtr> ParseExpr(std::string_view input);

/// \brief Parses a lifespan-sorted expression.
Result<LsExprPtr> ParseLsExpr(std::string_view input);

/// \brief Parses either sort (tries relation first, then lifespan).
Result<ParsedQuery> ParseQuery(std::string_view input);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_PARSER_H_
