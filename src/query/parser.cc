#include "query/parser.h"

#include <algorithm>
#include <cctype>

#include "query/lexer.h"
#include "util/format.h"

namespace hrdm::query {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> ParseRelation() {
    HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

  Result<LsExprPtr> ParseLifespan() {
    HRDM_ASSIGN_OR_RETURN(LsExprPtr e, LsExprRule());
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(StrPrintf("%s, got %s at offset %zu",
                                        msg.c_str(),
                                        Peek().Describe().c_str(),
                                        Peek().offset));
  }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      Token probe;
      probe.kind = kind;
      return Error("expected " + probe.Describe());
    }
    Take();
    return Status::OK();
  }

  /// Peeks a lower-cased identifier (empty if not an identifier).
  std::string PeekKeyword() const {
    return At(TokenKind::kIdentifier) ? Lower(Peek().text) : std::string();
  }

  Result<CompareOp> TakeCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Take();
        return CompareOp::kEq;
      case TokenKind::kNe:
        Take();
        return CompareOp::kNe;
      case TokenKind::kLt:
        Take();
        return CompareOp::kLt;
      case TokenKind::kLe:
        Take();
        return CompareOp::kLe;
      case TokenKind::kGt:
        Take();
        return CompareOp::kGt;
      case TokenKind::kGe:
        Take();
        return CompareOp::kGe;
      default:
        return Error("expected comparison operator");
    }
  }

  Result<std::string> TakeIdentifier() {
    if (!At(TokenKind::kIdentifier)) return Error("expected identifier");
    return Take().text;
  }

  Result<Value> TakeLiteral() {
    switch (Peek().kind) {
      case TokenKind::kInt:
        return Value::Int(Take().int_value);
      case TokenKind::kDouble:
        return Value::Double(Take().double_value);
      case TokenKind::kString:
        return Value::String(Take().text);
      case TokenKind::kTime:
        return Value::Time(Take().time_value);
      case TokenKind::kIdentifier: {
        const std::string kw = Lower(Peek().text);
        if (kw == "true") {
          Take();
          return Value::Bool(true);
        }
        if (kw == "false") {
          Take();
          return Value::Bool(false);
        }
        return Error("expected literal");
      }
      default:
        return Error("expected literal");
    }
  }

  /// pred := simple {and simple};  simple := IDENT op (literal | IDENT)
  Result<Predicate> ParsePredicate() {
    std::vector<Predicate> conjuncts;
    while (true) {
      HRDM_ASSIGN_OR_RETURN(std::string attr, TakeIdentifier());
      HRDM_ASSIGN_OR_RETURN(CompareOp op, TakeCompareOp());
      if (At(TokenKind::kIdentifier)) {
        const std::string kw = Lower(Peek().text);
        if (kw == "true" || kw == "false") {
          HRDM_ASSIGN_OR_RETURN(Value v, TakeLiteral());
          conjuncts.push_back(Predicate::AttrConst(attr, op, std::move(v)));
        } else {
          conjuncts.push_back(Predicate::AttrAttr(attr, op, Take().text));
        }
      } else {
        HRDM_ASSIGN_OR_RETURN(Value v, TakeLiteral());
        conjuncts.push_back(Predicate::AttrConst(attr, op, std::move(v)));
      }
      if (PeekKeyword() == "and") {
        Take();
        continue;
      }
      break;
    }
    if (conjuncts.size() == 1) return conjuncts.front();
    return Predicate::And(std::move(conjuncts));
  }

  Result<Quantifier> ParseQuantifier() {
    const std::string kw = PeekKeyword();
    if (kw == "exists") {
      Take();
      return Quantifier::kExists;
    }
    if (kw == "forall") {
      Take();
      return Quantifier::kForall;
    }
    return Error("expected quantifier 'exists' or 'forall'");
  }

  /// interval := [ INT ] | [ INT , INT ]
  Result<Interval> ParseInterval() {
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    if (!At(TokenKind::kInt)) return Error("expected chronon");
    const TimePoint b = Take().int_value;
    TimePoint e = b;
    if (At(TokenKind::kComma)) {
      Take();
      if (!At(TokenKind::kInt)) return Error("expected chronon");
      e = Take().int_value;
    }
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    if (e < b) return Error("interval end precedes begin");
    return Interval(b, e);
  }

  Result<LsExprPtr> LsExprRule() {
    if (At(TokenKind::kLBrace)) {
      Take();
      std::vector<Interval> ivs;
      if (!At(TokenKind::kRBrace)) {
        while (true) {
          HRDM_ASSIGN_OR_RETURN(Interval iv, ParseInterval());
          ivs.push_back(iv);
          if (At(TokenKind::kComma)) {
            Take();
            continue;
          }
          break;
        }
      }
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return LsLiteral(Lifespan::FromIntervals(std::move(ivs)));
    }
    const std::string kw = PeekKeyword();
    if (kw == "when") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr rel, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return WhenE(std::move(rel));
    }
    if (kw == "lunion" || kw == "lintersect" || kw == "lminus") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(LsExprPtr l, LsExprRule());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(LsExprPtr r, LsExprRule());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      const LsExprKind kind = kw == "lunion"      ? LsExprKind::kUnion
                              : kw == "lintersect" ? LsExprKind::kIntersect
                                                   : LsExprKind::kDifference;
      return LsBinary(kind, std::move(l), std::move(r));
    }
    return Error("expected lifespan expression");
  }

  Result<ExprPtr> Binary2(ExprKind kind) {
    Take();  // function name
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    HRDM_ASSIGN_OR_RETURN(ExprPtr l, RelExpr());
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    HRDM_ASSIGN_OR_RETURN(ExprPtr r, RelExpr());
    HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Binary(kind, std::move(l), std::move(r));
  }

  Result<ExprPtr> RelExpr() {
    const std::string kw = PeekKeyword();
    if (kw.empty()) return Error("expected relation expression");

    if (kw == "select_if") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(Quantifier q, ParseQuantifier());
      LsExprPtr window;
      if (At(TokenKind::kComma)) {
        Take();
        HRDM_ASSIGN_OR_RETURN(window, LsExprRule());
      }
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return SelectIfE(std::move(e), std::move(p), q, std::move(window));
    }
    if (kw == "select_when") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return SelectWhenE(std::move(e), std::move(p));
    }
    if (kw == "project") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      std::vector<std::string> attrs;
      while (At(TokenKind::kComma)) {
        Take();
        HRDM_ASSIGN_OR_RETURN(std::string a, TakeIdentifier());
        attrs.push_back(std::move(a));
      }
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (attrs.empty()) return Error("project needs at least one attribute");
      return ProjectE(std::move(e), std::move(attrs));
    }
    if (kw == "timeslice") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(LsExprPtr window, LsExprRule());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return TimeSliceE(std::move(e), std::move(window));
    }
    if (kw == "dynslice") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(std::string attr, TakeIdentifier());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return DynSliceE(std::move(e), std::move(attr));
    }
    if (kw == "union") return Binary2(ExprKind::kUnion);
    if (kw == "intersect") return Binary2(ExprKind::kIntersect);
    if (kw == "minus") return Binary2(ExprKind::kDifference);
    if (kw == "ounion") return Binary2(ExprKind::kUnionO);
    if (kw == "ointersect") return Binary2(ExprKind::kIntersectO);
    if (kw == "ominus") return Binary2(ExprKind::kDifferenceO);
    if (kw == "product") return Binary2(ExprKind::kProduct);
    if (kw == "natjoin") return Binary2(ExprKind::kNaturalJoin);
    if (kw == "join") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr l, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(ExprPtr r, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(std::string a, TakeIdentifier());
      HRDM_ASSIGN_OR_RETURN(CompareOp op, TakeCompareOp());
      HRDM_ASSIGN_OR_RETURN(std::string b, TakeIdentifier());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return ThetaJoinE(std::move(l), std::move(r), std::move(a), op,
                        std::move(b));
    }
    if (kw == "aggregate") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr e, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      if (!At(TokenKind::kIdentifier)) {
        return Error("expected aggregate function (count|sum|min|max|avg)");
      }
      auto fn = AggregateFnFromName(Lower(Peek().text));
      if (!fn.ok()) {
        return Error("expected aggregate function (count|sum|min|max|avg)");
      }
      Take();
      std::string value_attr;
      if (*fn != AggregateFn::kCount) {
        // 'by' here means the attribute was omitted — reject it now with
        // a precise message instead of mis-reading it as an attribute
        // named "by" and failing later (or at scheme validation).
        if (PeekKeyword() == "by") {
          return Error("aggregate function needs an attribute before 'by'");
        }
        HRDM_ASSIGN_OR_RETURN(value_attr, TakeIdentifier());
      }
      std::vector<std::string> group_by;
      if (PeekKeyword() == "by") {
        Take();
        while (true) {
          HRDM_ASSIGN_OR_RETURN(std::string g, TakeIdentifier());
          group_by.push_back(std::move(g));
          if (At(TokenKind::kComma)) {
            Take();
            continue;
          }
          break;
        }
      }
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return AggregateE(std::move(e), *fn, std::move(value_attr),
                        std::move(group_by));
    }
    if (kw == "timejoin") {
      Take();
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      HRDM_ASSIGN_OR_RETURN(ExprPtr l, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(ExprPtr r, RelExpr());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      HRDM_ASSIGN_OR_RETURN(std::string a, TakeIdentifier());
      HRDM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return TimeJoinE(std::move(l), std::move(r), std::move(a));
    }
    // Plain identifier: base relation reference (case-sensitive).
    return Rel(Take().text);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(std::string_view input) {
  HRDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseRelation();
}

Result<LsExprPtr> ParseLsExpr(std::string_view input) {
  HRDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseLifespan();
}

Result<ParsedQuery> ParseQuery(std::string_view input) {
  auto rel = ParseExpr(input);
  if (rel.ok()) return ParsedQuery(std::move(rel).value());
  auto ls = ParseLsExpr(input);
  if (ls.ok()) return ParsedQuery(std::move(ls).value());
  return rel.status();
}

}  // namespace hrdm::query
