#include "query/plan.h"

#include <utility>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/timeslice.h"

namespace hrdm::query {

namespace {

/// Runs a cursor to completion into a set-semantics Relation (the
/// whole-relation operators' output contract). Blocking cursors hand over
/// their buffered result directly.
Result<Relation> DrainCursor(Cursor* cursor) {
  HRDM_ASSIGN_OR_RETURN(std::optional<Relation> whole,
                        cursor->TakeBuffered());
  if (whole) return std::move(*whole);
  Relation out(cursor->scheme());
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, cursor->Next());
    if (!t) break;
    HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(t)));
  }
  out.set_materialized(true);
  return out;
}

/// Evaluates a lifespan-sorted window expression against the same stats
/// block as the enclosing plan, so the relations a `when(e)` subquery
/// materializes are visible in `peak_buffered` (they are genuine
/// intermediate materializations — the materializing interpreter counts
/// them too).
Result<Lifespan> EvalWindow(const LsExprPtr& expr,
                            const PlanResolver& resolver, PlanStats* stats) {
  if (!expr) return Status::InvalidArgument("null lifespan expression");
  switch (expr->kind) {
    case LsExprKind::kLiteral:
      return expr->literal;
    case LsExprKind::kWhen: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr cursor,
                            LowerExpr(expr->relation, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(Relation rel, DrainCursor(cursor.get()));
      stats->OnBuffer(rel.size());
      Lifespan ls = rel.LS();  // Ω(r) = LS(r), §4.5
      stats->OnRelease(rel.size());
      return ls;
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      HRDM_ASSIGN_OR_RETURN(Lifespan l,
                            EvalWindow(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(Lifespan r,
                            EvalWindow(expr->right, resolver, stats));
      switch (expr->kind) {
        case LsExprKind::kUnion:
          return l.Union(r);
        case LsExprKind::kIntersect:
          return l.Intersect(r);
        default:
          return l.Difference(r);
      }
    }
  }
  return Status::Internal("unhandled lifespan expression kind");
}

}  // namespace

// --- ScanCursor --------------------------------------------------------------

ScanCursor::ScanCursor(const Relation& rel, PlanStats* stats)
    : Cursor(rel.scheme(), stats),
      tuples_(rel.tuple_ptrs()),
      materialized_(rel.materialized()) {}

Result<TuplePtr> ScanCursor::Next() {
  if (pos_ >= tuples_.size()) return TuplePtr();
  ++stats_->tuples_scanned;
  const TuplePtr& t = tuples_[pos_++];
  if (materialized_) return t;
  // Representation → model mapping (Figure 9), one tuple at a time: the
  // streaming analogue of MaterializeRelation.
  HRDM_ASSIGN_OR_RETURN(Tuple m, t->Materialized());
  return std::make_shared<const Tuple>(std::move(m));
}

// --- SelectIfCursor ----------------------------------------------------------

SelectIfCursor::SelectIfCursor(CursorPtr child, Predicate predicate,
                               Quantifier quantifier,
                               std::optional<Lifespan> window,
                               PlanStats* stats)
    : Cursor(child->scheme(), stats),
      child_(std::move(child)),
      predicate_(std::move(predicate)),
      quantifier_(quantifier),
      window_(std::move(window)) {}

Result<TuplePtr> SelectIfCursor::Next() {
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, child_->Next());
    if (!t) return TuplePtr();
    HRDM_ASSIGN_OR_RETURN(
        bool selected,
        SelectIfMatches(*t, predicate_, quantifier_,
                        window_ ? &*window_ : nullptr));
    if (selected) return t;
  }
}

// --- SelectWhenCursor --------------------------------------------------------

SelectWhenCursor::SelectWhenCursor(CursorPtr child, Predicate predicate,
                                   PlanStats* stats)
    : Cursor(child->scheme(), stats),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Result<TuplePtr> SelectWhenCursor::Next() {
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, child_->Next());
    if (!t) return TuplePtr();
    HRDM_ASSIGN_OR_RETURN(TuplePtr selected,
                          SelectWhenTuple(t, predicate_, scheme_));
    if (selected) return selected;
  }
}

// --- ProjectCursor -----------------------------------------------------------

ProjectCursor::ProjectCursor(CursorPtr child, SchemePtr out_scheme,
                             std::vector<size_t> src, PlanStats* stats)
    : Cursor(std::move(out_scheme), stats),
      child_(std::move(child)),
      src_(std::move(src)) {}

Result<TuplePtr> ProjectCursor::Next() {
  HRDM_ASSIGN_OR_RETURN(TuplePtr t, child_->Next());
  if (!t) return TuplePtr();
  return ProjectTuple(*t, scheme_, src_);
}

// --- TimeSliceCursor ---------------------------------------------------------

TimeSliceCursor::TimeSliceCursor(CursorPtr child, Lifespan window,
                                 PlanStats* stats)
    : Cursor(child->scheme(), stats),
      child_(std::move(child)),
      window_(std::move(window)) {}

TimeSliceCursor::TimeSliceCursor(CursorPtr child, size_t attr_idx,
                                 PlanStats* stats)
    : Cursor(child->scheme(), stats),
      child_(std::move(child)),
      attr_idx_(attr_idx) {}

Result<TuplePtr> TimeSliceCursor::Next() {
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, child_->Next());
    if (!t) return TuplePtr();
    TuplePtr sliced;
    if (window_) {
      sliced = TimeSliceTuple(t, *window_, scheme_);
    } else {
      HRDM_ASSIGN_OR_RETURN(sliced, DynSliceTuple(t, attr_idx_, scheme_));
    }
    if (sliced) return sliced;
  }
}

// --- ProductJoinCursor -------------------------------------------------------

ProductJoinCursor::ProductJoinCursor(CursorPtr left, CursorPtr right,
                                     SchemePtr out_scheme, PlanStats* stats)
    : Cursor(std::move(out_scheme), stats),
      left_(std::move(left)),
      right_(std::move(right)) {}

ProductJoinCursor::~ProductJoinCursor() {
  stats_->OnRelease(right_buffer_.size());
}

Result<TuplePtr> ProductJoinCursor::Next() {
  if (!primed_) {
    primed_ = true;
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, right_->Next());
      if (!t) break;
      right_buffer_.push_back(std::move(t));
      stats_->OnBuffer(1);
    }
  }
  if (right_buffer_.empty()) {
    // The product is empty, but the left side must still be evaluated so
    // its runtime errors surface exactly as in the materializing path
    // (which evaluates both operands before applying the operator).
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, left_->Next());
      if (!t) return TuplePtr();
    }
  }
  while (true) {
    if (!current_left_ || right_pos_ >= right_buffer_.size()) {
      HRDM_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_) return TuplePtr();
      right_pos_ = 0;
    }
    return ProductTuple(*current_left_, *right_buffer_[right_pos_++],
                        scheme_);
  }
}

// --- SetOpCursor -------------------------------------------------------------

SetOpCursor::SetOpCursor(CursorPtr left, CursorPtr right,
                         SchemePtr out_scheme, WholeRelationOp op,
                         PlanStats* stats)
    : Cursor(std::move(out_scheme), stats),
      left_(std::move(left)),
      right_(std::move(right)),
      op_(std::move(op)) {}

SetOpCursor::~SetOpCursor() {
  if (result_) stats_->OnRelease(result_->size());
}

Status SetOpCursor::Prime() {
  primed_ = true;
  HRDM_ASSIGN_OR_RETURN(Relation l, DrainCursor(left_.get()));
  stats_->OnBuffer(l.size());
  HRDM_ASSIGN_OR_RETURN(Relation r, DrainCursor(right_.get()));
  stats_->OnBuffer(r.size());
  HRDM_ASSIGN_OR_RETURN(Relation result, op_(l, r));
  stats_->OnBuffer(result.size());
  stats_->OnRelease(l.size() + r.size());
  result_ = std::move(result);
  return Status::OK();
}

Result<TuplePtr> SetOpCursor::Next() {
  if (!primed_) {
    HRDM_RETURN_IF_ERROR(Prime());
  }
  if (!result_ || pos_ >= result_->size()) return TuplePtr();
  return result_->tuple_ptr(pos_++);
}

Result<std::optional<Relation>> SetOpCursor::TakeBuffered() {
  if (pos_ != 0) return std::optional<Relation>();  // already being pulled
  if (!primed_) {
    HRDM_RETURN_IF_ERROR(Prime());
  }
  if (!result_) return std::optional<Relation>();  // already taken
  Relation out = std::move(*result_);
  result_.reset();
  stats_->OnRelease(out.size());
  return std::optional<Relation>(std::move(out));
}

// --- lowering ----------------------------------------------------------------

Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanStats* stats) {
  if (!expr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kRelationRef: {
      HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(expr->relation));
      // Copy-on-write: the scan shares the stored tuples.
      return CursorPtr(new ScanCursor(*rel, stats));
    }
    case ExprKind::kSelectIf: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, stats));
      std::optional<Lifespan> window;
      if (expr->window) {
        HRDM_ASSIGN_OR_RETURN(Lifespan w,
                              EvalWindow(expr->window, resolver, stats));
        window = std::move(w);
      }
      return CursorPtr(new SelectIfCursor(std::move(child), *expr->predicate,
                                          expr->quantifier,
                                          std::move(window), stats));
    }
    case ExprKind::kSelectWhen: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, stats));
      return CursorPtr(
          new SelectWhenCursor(std::move(child), *expr->predicate, stats));
    }
    case ExprKind::kProject: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(SchemePtr out_scheme,
                            child->scheme()->Project(expr->attrs));
      HRDM_ASSIGN_OR_RETURN(
          std::vector<size_t> src,
          ProjectSourceIndices(*child->scheme(), *out_scheme));
      return CursorPtr(new ProjectCursor(std::move(child),
                                         std::move(out_scheme),
                                         std::move(src), stats));
    }
    case ExprKind::kTimeSlice: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(Lifespan window,
                            EvalWindow(expr->window, resolver, stats));
      return CursorPtr(
          new TimeSliceCursor(std::move(child), std::move(window), stats));
    }
    case ExprKind::kDynSlice: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(size_t idx,
                            DynSliceAttrIndex(*child->scheme(), expr->attr_a));
      return CursorPtr(new TimeSliceCursor(std::move(child), idx, stats));
    }
    case ExprKind::kProduct: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            ProductScheme(left->scheme(), right->scheme()));
      return CursorPtr(new ProductJoinCursor(std::move(left),
                                             std::move(right),
                                             std::move(scheme), stats));
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO: {
      SetOpKind kind;
      switch (expr->kind) {
        case ExprKind::kUnion:       kind = SetOpKind::kUnion; break;
        case ExprKind::kIntersect:   kind = SetOpKind::kIntersect; break;
        case ExprKind::kDifference:  kind = SetOpKind::kDifference; break;
        case ExprKind::kUnionO:      kind = SetOpKind::kUnionO; break;
        case ExprKind::kIntersectO:  kind = SetOpKind::kIntersectO; break;
        default:                     kind = SetOpKind::kDifferenceO; break;
      }
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(
          SchemePtr scheme,
          SetOpScheme(kind, left->scheme(), right->scheme()));
      return CursorPtr(new SetOpCursor(
          std::move(left), std::move(right), std::move(scheme),
          [kind](const Relation& r1, const Relation& r2) {
            return ApplySetOp(kind, r1, r2);
          },
          stats));
    }
    case ExprKind::kThetaJoin: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            ThetaJoinScheme(left->scheme(), expr->attr_a,
                                            right->scheme(), expr->attr_b));
      return CursorPtr(new SetOpCursor(
          std::move(left), std::move(right), std::move(scheme),
          [a = expr->attr_a, op = expr->op, b = expr->attr_b](
              const Relation& r1, const Relation& r2) {
            return ThetaJoin(r1, a, op, r2, b);
          },
          stats));
    }
    case ExprKind::kNaturalJoin: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(
          SchemePtr scheme,
          NaturalJoinScheme(left->scheme(), right->scheme()));
      return CursorPtr(new SetOpCursor(
          std::move(left), std::move(right), std::move(scheme),
          [](const Relation& r1, const Relation& r2) {
            return NaturalJoin(r1, r2);
          },
          stats));
    }
    case ExprKind::kTimeJoin: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, stats));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            TimeJoinScheme(left->scheme(), expr->attr_a,
                                           right->scheme()));
      return CursorPtr(new SetOpCursor(
          std::move(left), std::move(right), std::move(scheme),
          [a = expr->attr_a](const Relation& r1, const Relation& r2) {
            return TimeJoin(r1, a, r2);
          },
          stats));
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Plan> Plan::Lower(const ExprPtr& expr, const PlanResolver& resolver) {
  auto stats = std::make_unique<PlanStats>();
  HRDM_ASSIGN_OR_RETURN(CursorPtr root,
                        LowerExpr(expr, resolver, stats.get()));
  return Plan(std::move(stats), std::move(root));
}

Result<TuplePtr> Plan::Next() {
  HRDM_ASSIGN_OR_RETURN(TuplePtr t, root_->Next());
  if (t) ++stats_->tuples_returned;
  return t;
}

Result<Relation> Plan::Drain() {
  HRDM_ASSIGN_OR_RETURN(Relation out, DrainCursor(root_.get()));
  stats_->tuples_returned += out.size();
  return out;
}

}  // namespace hrdm::query
