#include "query/plan.h"

#include <algorithm>
#include <utility>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/timeslice.h"
#include "util/thread_pool.h"

namespace hrdm::query {

namespace {

/// Builds a cursor of concrete type `C` and returns it as a CursorPtr, so the
/// result converts into Result<CursorPtr> in a single user-defined step.
template <typename C, typename... Args>
CursorPtr MakeCursor(Args&&... args) {
  return std::make_unique<C>(std::forward<Args>(args)...);
}

// --- parallel execution helpers ---------------------------------------------

/// The degree of parallelism PlanOptions asks for (0 = auto).
size_t RequestedParallelism(const PlanOptions& options) {
  return options.parallelism == 0 ? DefaultParallelism() : options.parallelism;
}

/// The morsel size for `n` items on `workers` workers: kMorselSize, shrunk
/// only so every worker has at least one morsel on small (forced-parallel)
/// inputs.
size_t MorselSizeFor(size_t n, size_t workers) {
  const size_t per_worker = (n + workers - 1) / workers;
  return std::max<size_t>(1, std::min(kMorselSize, per_worker));
}

size_t MorselCountFor(size_t n, size_t morsel) {
  return n == 0 ? 0 : (n + morsel - 1) / morsel;
}

/// Interpolates `tuples[begin, end)` in place (representation → model,
/// Figure 9) — the per-morsel kernel of the parallel scan leaves. Worker
/// threads allocate through the heap: the plan arena is coordinator-only.
Status MaterializeRange(std::vector<TuplePtr>& tuples, size_t begin,
                        size_t end) {
  for (size_t i = begin; i < end; ++i) {
    HRDM_ASSIGN_OR_RETURN(tuples[i], tuples[i]->MaterializedShared());
  }
  return Status::OK();
}

/// The scan leaves' morsel-parallel interpolation pass: every morsel writes
/// its own disjoint slice of `tuples`, so order is unchanged and no two
/// workers touch the same slot. Stats are updated on the coordinator after
/// all morsels join.
Status ParallelMaterialize(std::vector<TuplePtr>& tuples, size_t workers,
                           PlanStats* stats) {
  util::ThreadPool& pool = util::SharedThreadPool(workers);
  const size_t morsel = MorselSizeFor(tuples.size(), workers);
  const size_t count = MorselCountFor(tuples.size(), morsel);
  std::vector<size_t> morsel_worker(count, 0);
  size_t dispatched = 0;
  HRDM_RETURN_IF_ERROR(util::ParallelMorsels(
      pool, tuples.size(), morsel,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        morsel_worker[begin / morsel] = worker_id;
        return MaterializeRange(tuples, begin, end);
      },
      &dispatched));
  stats->morsels_dispatched += dispatched;
  for (size_t m = 0; m < count; ++m) {
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, tuples.size());
    stats->OnWorkerTuples(morsel_worker[m], end - begin);
  }
  return Status::OK();
}

/// Runs a cursor to completion into a set-semantics Relation (the
/// whole-relation operators' output contract). Blocking cursors hand over
/// their buffered result directly; everything else drains batch-at-a-time.
Result<Relation> DrainCursor(Cursor* cursor) {
  HRDM_ASSIGN_OR_RETURN(std::optional<Relation> whole,
                        cursor->TakeBuffered());
  if (whole) return std::move(*whole);
  Relation out(cursor->scheme());
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, cursor->NextBatch());
    if (!batch) break;
    for (TuplePtr& t : *batch) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(t)));
    }
  }
  out.set_materialized(true);
  return out;
}

/// Evaluates a lifespan-sorted window expression against the same context
/// as the enclosing plan, so the relations a `when(e)` subquery
/// materializes are visible in `peak_buffered` (they are genuine
/// intermediate materializations — the materializing interpreter counts
/// them too).
Result<Lifespan> EvalWindow(const LsExprPtr& expr,
                            const PlanResolver& resolver, PlanContext* ctx,
                            const PlanOptions& options) {
  if (!expr) return Status::InvalidArgument("null lifespan expression");
  switch (expr->kind) {
    case LsExprKind::kLiteral:
      return expr->literal;
    case LsExprKind::kWhen: {
      HRDM_ASSIGN_OR_RETURN(
          CursorPtr cursor,
          LowerExpr(expr->relation, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(Relation rel, DrainCursor(cursor.get()));
      ctx->stats.OnBuffer(rel.size());
      Lifespan ls = rel.LS();  // Ω(r) = LS(r), §4.5
      ctx->stats.OnRelease(rel.size());
      return ls;
    }
    case LsExprKind::kUnion:
    case LsExprKind::kIntersect:
    case LsExprKind::kDifference: {
      HRDM_ASSIGN_OR_RETURN(Lifespan l,
                            EvalWindow(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(Lifespan r,
                            EvalWindow(expr->right, resolver, ctx, options));
      switch (expr->kind) {
        case LsExprKind::kUnion:
          return l.Union(r);
        case LsExprKind::kIntersect:
          return l.Intersect(r);
        case LsExprKind::kDifference:
          return l.Difference(r);
        case LsExprKind::kLiteral:
        case LsExprKind::kWhen:
          break;  // unreachable: the enclosing case covers ∪ ∩ − only
      }
    }
  }
  return Status::Internal("unhandled lifespan expression kind");
}

/// The resolver-backed exact-size cardinality fallback used when no
/// catalog is wired in (shared by the join-strategy and access-path
/// choosers).
CardinalityFn CardinalityOrExact(const CardinalityFn& card,
                                 const PlanResolver& resolver) {
  if (card) return card;
  return [&resolver](std::string_view name) -> std::optional<size_t> {
    auto rel = resolver(name);
    if (!rel.ok()) return std::nullopt;
    return (*rel)->size();
  };
}

/// The optimizer's strategy choice for one JOIN node, with the forced
/// override (differential tests) applied — a forced strategy the node is
/// not eligible for falls back to nested loop rather than mis-executing.
JoinChoice ResolveJoinChoice(const Expr& e, const RelationScheme& ls,
                             const RelationScheme& rs,
                             const PlanResolver& resolver,
                             const PlanOptions& options) {
  JoinChoice choice = ChooseJoinStrategy(
      e, ls, rs, CardinalityOrExact(options.cardinality, resolver));
  if (options.force_join_strategy) {
    switch (*options.force_join_strategy) {
      case JoinStrategy::kNestedLoop:
        choice.strategy = JoinStrategy::kNestedLoop;
        break;
      case JoinStrategy::kHash:
        if (choice.strategy != JoinStrategy::kHash) {
          choice.strategy = JoinStrategy::kNestedLoop;
        }
        break;
      case JoinStrategy::kMerge:
        choice.strategy = e.kind == ExprKind::kTimeJoin
                              ? JoinStrategy::kMerge
                              : JoinStrategy::kNestedLoop;
        break;
    }
  }
  return choice;
}

}  // namespace

// --- PlanContext -------------------------------------------------------------

TuplePtr PlanContext::AdoptTuple(Tuple&& t) {
  if (!arena) return std::make_shared<const Tuple>(std::move(t));
  const Tuple* obj = arena->Create<Tuple>(std::move(t));
  stats.arena_bytes = arena->bytes_allocated();
  // Aliasing handle: shares the arena's control block, points at the
  // arena-resident tuple — escaping handles keep the whole arena alive.
  return TuplePtr(arena, obj);
}

// --- Cursor (tuple-at-a-time compatibility shim) -----------------------------

Result<TuplePtr> Cursor::Next() {
  while (true) {
    if (read_ != nullptr && read_pos_ < read_->size()) {
      return std::move((*read_)[read_pos_++]);
    }
    if (read_done_) return TuplePtr();
    HRDM_ASSIGN_OR_RETURN(read_, NextBatch());
    read_pos_ = 0;
    if (read_ == nullptr) {
      read_done_ = true;
      return TuplePtr();
    }
  }
}

// --- ScalarCursor ------------------------------------------------------------

Result<TupleBatch*> ScalarCursor::NextBatch() {
  if (done_) return nullptr;
  batch_.clear();
  while (batch_.size() < ctx_->batch_size) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, NextTuple());
    if (!t) {
      done_ = true;
      break;
    }
    batch_.push_back(std::move(t));
  }
  return EmitOrEnd(batch_);
}

// --- ScanCursor --------------------------------------------------------------

ScanCursor::ScanCursor(const Relation& rel, size_t parallelism,
                       PlanContext* ctx)
    : Cursor(rel.scheme(), ctx),
      tuples_(rel.tuple_ptrs()),
      materialized_(rel.materialized()),
      parallelism_(parallelism) {
  // Already-materialized inputs have no interpolation pass to parallelize.
  if (materialized_) parallelism_ = 1;
  ++stats_->scans_full;
  stats_->OnParallelOperator(parallelism_);
}

ScanCursor::~ScanCursor() {
  if (parallel_primed_) stats_->OnRelease(tuples_.size());
}

Result<TupleBatch*> ScanCursor::NextBatch() {
  if (parallelism_ > 1 && !parallel_primed_) {
    parallel_primed_ = true;
    HRDM_RETURN_IF_ERROR(ParallelMaterialize(tuples_, parallelism_, stats_));
    materialized_ = true;
    stats_->OnBuffer(tuples_.size());  // interpolated copies, held till death
  }
  if (pos_ >= tuples_.size()) return nullptr;
  const size_t n = std::min(ctx_->batch_size, tuples_.size() - pos_);
  batch_.clear();
  if (materialized_) {
    for (size_t i = 0; i < n; ++i) batch_.push_back(tuples_[pos_ + i]);
  } else {
    // Representation → model mapping (Figure 9), one tight loop per batch.
    // MaterializedShared memoizes per stored tuple, so re-scanning a
    // database version re-uses the interpolated handles instead of
    // re-running Figure 9's mapping every query.
    for (size_t i = 0; i < n; ++i) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr m, tuples_[pos_ + i]->MaterializedShared());
      batch_.push_back(std::move(m));
    }
  }
  pos_ += n;
  stats_->tuples_scanned += n;
  return EmitOrEnd(batch_);
}

// --- IndexScanCursor ---------------------------------------------------------

IndexScanCursor::IndexScanCursor(SchemePtr scheme, IndexProbeResult probe,
                                 AccessPath path, size_t parallelism,
                                 PlanContext* ctx)
    : Cursor(std::move(scheme), ctx),
      tuples_(std::move(probe.candidates)),
      materialized_(probe.materialized),
      parallelism_(parallelism) {
  if (materialized_) parallelism_ = 1;
  if (path == AccessPath::kValueIndex) {
    ++stats_->scans_value_index;
  } else {
    ++stats_->scans_lifespan_index;
  }
  stats_->index_candidates += tuples_.size();
  stats_->OnParallelOperator(parallelism_);
}

IndexScanCursor::~IndexScanCursor() {
  if (parallel_primed_) stats_->OnRelease(tuples_.size());
}

Result<TupleBatch*> IndexScanCursor::NextBatch() {
  if (parallelism_ > 1 && !parallel_primed_) {
    parallel_primed_ = true;
    HRDM_RETURN_IF_ERROR(ParallelMaterialize(tuples_, parallelism_, stats_));
    materialized_ = true;
    stats_->OnBuffer(tuples_.size());
  }
  if (pos_ >= tuples_.size()) return nullptr;
  const size_t n = std::min(ctx_->batch_size, tuples_.size() - pos_);
  batch_.clear();
  if (materialized_) {
    for (size_t i = 0; i < n; ++i) batch_.push_back(tuples_[pos_ + i]);
  } else {
    for (size_t i = 0; i < n; ++i) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr m, tuples_[pos_ + i]->MaterializedShared());
      batch_.push_back(std::move(m));
    }
  }
  pos_ += n;
  stats_->tuples_scanned += n;
  return EmitOrEnd(batch_);
}

// --- SelectIfCursor ----------------------------------------------------------

SelectIfCursor::SelectIfCursor(CursorPtr child, Predicate predicate,
                               Quantifier quantifier,
                               std::optional<Lifespan> window,
                               PlanContext* ctx)
    : Cursor(child->scheme(), ctx),
      child_(std::move(child)),
      predicate_(std::move(predicate)),
      quantifier_(quantifier),
      window_(std::move(window)) {}

Result<TupleBatch*> SelectIfCursor::NextBatch() {
  // Keep pulling child batches until one survives the filter (batches are
  // never empty, so a fully-filtered input batch is skipped, not emitted).
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* in, child_->NextBatch());
    if (!in) return nullptr;
    out_.clear();
    HRDM_RETURN_IF_ERROR(SelectIfBatch(*in, predicate_, quantifier_,
                                       window_ ? &*window_ : nullptr, out_));
    if (!out_.empty()) return EmitOrEnd(out_);
  }
}

// --- SelectWhenCursor --------------------------------------------------------

SelectWhenCursor::SelectWhenCursor(CursorPtr child, Predicate predicate,
                                   PlanContext* ctx)
    : Cursor(child->scheme(), ctx), child_(std::move(child)) {
  stages_.emplace_back(std::move(predicate));
}

SelectWhenCursor::SelectWhenCursor(CursorPtr child, std::vector<Stage> stages,
                                   SchemePtr project_scheme,
                                   std::vector<size_t> project_src,
                                   PlanContext* ctx)
    : Cursor(project_scheme ? std::move(project_scheme) : child->scheme(),
             ctx),
      child_(std::move(child)),
      stages_(std::move(stages)),
      project_(!project_src.empty()),  // projection lists are never empty
      project_src_(std::move(project_src)) {}

Result<TupleBatch*> SelectWhenCursor::NextBatch() {
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* in, child_->NextBatch());
    if (!in) return nullptr;
    out_.clear();
    for (TuplePtr& t : *in) {
      // Accumulate the chain's effective lifespan, innermost stage first.
      // Criteria are evaluated scoped to the lifespan accumulated so far,
      // which equals SelectWhenHolds on the stage-restricted tuple — so the
      // chronons kept, the comparisons attempted, and the per-stage drops
      // all match the unfused pipeline, with a single Restrict at the end.
      Lifespan eff = t->lifespan();
      for (const Stage& stage : stages_) {
        if (const Lifespan* window = std::get_if<Lifespan>(&stage)) {
          eff = eff.Intersect(*window);
        } else {
          HRDM_ASSIGN_OR_RETURN(
              eff, std::get<Predicate>(stage).TimesWhere(
                       *t, ValueView::kStored, &eff));
        }
        if (eff.empty()) break;
      }
      if (eff.empty()) continue;
      if (project_) {
        // Fused restrict+project: only the kept attributes are restricted,
        // straight into the projected tuple. Equal to ProjectTupleRaw over
        // the restricted tuple — projection copies values verbatim, so the
        // two operations commute attribute-by-attribute.
        std::vector<TemporalValue> values;
        values.reserve(project_src_.size());
        for (size_t idx : project_src_) {
          values.push_back(t->value(idx).Restrict(eff));
        }
        out_.push_back(ctx_->AdoptTuple(
            Tuple::FromParts(scheme_, eff, std::move(values))));
        continue;
      }
      // Identity fast path: the whole chain holds over the whole lifespan,
      // so Restrict would rebuild the tuple unchanged — re-emit the handle.
      if (t->scheme() == scheme_ && eff.ContainsAll(t->lifespan())) {
        out_.push_back(std::move(t));
        continue;
      }
      Tuple restricted = t->Restrict(eff, scheme_);
      if (restricted.lifespan().empty()) continue;
      out_.push_back(ctx_->AdoptTuple(std::move(restricted)));
    }
    if (!out_.empty()) return EmitOrEnd(out_);
  }
}

// --- ProjectCursor -----------------------------------------------------------

ProjectCursor::ProjectCursor(CursorPtr child, SchemePtr out_scheme,
                             std::vector<size_t> src, PlanContext* ctx)
    : Cursor(std::move(out_scheme), ctx),
      child_(std::move(child)),
      src_(std::move(src)) {}

Result<TupleBatch*> ProjectCursor::NextBatch() {
  HRDM_ASSIGN_OR_RETURN(TupleBatch* in, child_->NextBatch());
  if (!in) return nullptr;
  out_.clear();
  for (const TuplePtr& t : *in) {
    out_.push_back(ctx_->AdoptTuple(ProjectTupleRaw(*t, scheme_, src_)));
  }
  return EmitOrEnd(out_);
}

// --- TimeSliceCursor ---------------------------------------------------------

TimeSliceCursor::TimeSliceCursor(CursorPtr child, Lifespan window,
                                 PlanContext* ctx)
    : Cursor(child->scheme(), ctx),
      child_(std::move(child)),
      window_(std::move(window)) {}

TimeSliceCursor::TimeSliceCursor(CursorPtr child, size_t attr_idx,
                                 PlanContext* ctx)
    : Cursor(child->scheme(), ctx),
      child_(std::move(child)),
      attr_idx_(attr_idx) {}

Result<TupleBatch*> TimeSliceCursor::NextBatch() {
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* in, child_->NextBatch());
    if (!in) return nullptr;
    out_.clear();
    for (TuplePtr& t : *in) {
      if (window_) {
        // Identity fast path: the window covers the whole lifespan, so the
        // restriction cannot remove anything — re-emit the handle.
        if (t->scheme() == scheme_ && window_->ContainsAll(t->lifespan())) {
          out_.push_back(std::move(t));
          continue;
        }
        std::optional<Tuple> sliced = TimeSliceTupleRaw(*t, *window_, scheme_);
        if (sliced) out_.push_back(ctx_->AdoptTuple(*std::move(sliced)));
      } else {
        HRDM_ASSIGN_OR_RETURN(TuplePtr sliced,
                              DynSliceTuple(t, attr_idx_, scheme_));
        if (sliced) out_.push_back(std::move(sliced));
      }
    }
    if (!out_.empty()) return EmitOrEnd(out_);
  }
}

// --- ProductJoinCursor -------------------------------------------------------

ProductJoinCursor::ProductJoinCursor(CursorPtr left, CursorPtr right,
                                     SchemePtr out_scheme, PlanContext* ctx)
    : ScalarCursor(std::move(out_scheme), ctx),
      left_(std::move(left)),
      right_(std::move(right)) {}

ProductJoinCursor::~ProductJoinCursor() {
  stats_->OnRelease(right_buffer_.size());
}

Result<TuplePtr> ProductJoinCursor::NextTuple() {
  if (!primed_) {
    primed_ = true;
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, right_->Next());
      if (!t) break;
      right_buffer_.push_back(std::move(t));
      stats_->OnBuffer(1);
    }
  }
  if (right_buffer_.empty()) {
    // The product is empty, but the left side must still be evaluated so
    // its runtime errors surface exactly as in the materializing path
    // (which evaluates both operands before applying the operator).
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, left_->Next());
      if (!t) return TuplePtr();
    }
  }
  while (true) {
    if (!current_left_ || right_pos_ >= right_buffer_.size()) {
      HRDM_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_) return TuplePtr();
      right_pos_ = 0;
    }
    return ProductTuple(*current_left_, *right_buffer_[right_pos_++],
                        scheme_);
  }
}

// --- NestedLoopJoinCursor ----------------------------------------------------

NestedLoopJoinCursor::NestedLoopJoinCursor(CursorPtr left, CursorPtr right,
                                           JoinAssembly assembly,
                                           JoinPairFn pair, PlanContext* ctx)
    : ScalarCursor(assembly.scheme(), ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      assembly_(std::move(assembly)),
      pair_(std::move(pair)) {
  ++stats_->joins_nested_loop;
}

NestedLoopJoinCursor::~NestedLoopJoinCursor() {
  stats_->OnRelease(right_buffer_.size());
}

Result<TuplePtr> NestedLoopJoinCursor::NextTuple() {
  if (!primed_) {
    primed_ = true;
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, right_->Next());
      if (!t) break;
      right_buffer_.push_back(std::move(t));
      stats_->OnBuffer(1);
    }
  }
  if (right_buffer_.empty()) {
    // The join is empty, but the left side must still be evaluated so its
    // runtime errors surface exactly as in the materializing path (which
    // evaluates both operands before applying the operator).
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TuplePtr t, left_->Next());
      if (!t) return TuplePtr();
    }
  }
  while (true) {
    if (!current_left_ || right_pos_ >= right_buffer_.size()) {
      HRDM_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_) return TuplePtr();
      right_pos_ = 0;
    }
    const Tuple& t2 = *right_buffer_[right_pos_++];
    ++stats_->join_pairs_tested;
    HRDM_ASSIGN_OR_RETURN(Lifespan l, pair_(*current_left_, t2));
    if (l.empty()) continue;
    return ctx_->AdoptTuple(assembly_.Assemble(*current_left_, t2, l));
  }
}

// --- HashEquiJoinCursor ------------------------------------------------------

HashEquiJoinCursor::HashEquiJoinCursor(
    CursorPtr left, CursorPtr right, bool build_left,
    std::vector<std::pair<size_t, size_t>> key_attrs, JoinAssembly assembly,
    JoinPairFn pair, size_t parallelism, PlanContext* ctx)
    : Cursor(assembly.scheme(), ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      build_left_(build_left),
      key_attrs_(std::move(key_attrs)),
      assembly_(std::move(assembly)),
      pair_(std::move(pair)),
      parallelism_(parallelism) {
  ++stats_->joins_hash;
  stats_->OnParallelOperator(parallelism_);
}

HashEquiJoinCursor::HashEquiJoinCursor(
    CursorPtr probe, IndexedBuildSide build, bool build_left,
    std::vector<std::pair<size_t, size_t>> key_attrs, JoinAssembly assembly,
    JoinPairFn pair, size_t parallelism, PlanContext* ctx)
    : Cursor(assembly.scheme(), ctx),
      build_left_(build_left),
      key_attrs_(std::move(key_attrs)),
      assembly_(std::move(assembly)),
      pair_(std::move(pair)),
      parallelism_(parallelism),
      prebuilt_(std::move(build)) {
  // The probe cursor takes the input slot the build side vacated.
  (build_left_ ? right_ : left_) = std::move(probe);
  ++stats_->joins_hash;
  ++stats_->hash_builds_from_index;
  stats_->OnParallelOperator(parallelism_);
}

HashEquiJoinCursor::~HashEquiJoinCursor() {
  stats_->OnRelease(build_.size());
  if (parallel_probed_) stats_->OnRelease(parallel_out_.size());
}

Status HashEquiJoinCursor::Prime() {
  primed_ = true;
  if (prebuilt_) {
    // Index-fed build: the value index already partitioned the build side
    // by the raw digest of its (single) join column; fold each group's
    // digest exactly as JoinKeysDigest folds the probe side's.
    auto adopt = [&](TuplePtr t) -> Result<size_t> {
      if (!prebuilt_->materialized) {
        HRDM_ASSIGN_OR_RETURN(t, t->MaterializedShared());
      }
      build_.push_back(std::move(t));
      stats_->OnBuffer(1);
      return build_.size() - 1;
    };
    for (auto& [digest, tuples] : prebuilt_->groups) {
      const uint64_t h = CombineJoinKeyDigest(kJoinKeyDigestSeed, digest);
      for (TuplePtr& t : tuples) {
        HRDM_ASSIGN_OR_RETURN(size_t idx, adopt(std::move(t)));
        buckets_[h].push_back(idx);
      }
    }
    for (TuplePtr& t : prebuilt_->varying) {
      HRDM_ASSIGN_OR_RETURN(size_t idx, adopt(std::move(t)));
      varying_.push_back(idx);
    }
    prebuilt_.reset();
    return Status::OK();
  }
  Cursor* build_child = build_left_ ? left_.get() : right_.get();
  if (parallelism_ > 1) {
    // Parallel build: the drain stays on the coordinator (cursor pulls are
    // serial by design), the digesting goes to the pool.
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, build_child->NextBatch());
      if (!batch) break;
      for (TuplePtr& t : *batch) {
        build_.push_back(std::move(t));
        stats_->OnBuffer(1);
      }
    }
    return PartitionBuildParallel();
  }
  // Serial build: digest batch-at-a-time as the drain goes.
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, build_child->NextBatch());
    if (!batch) break;
    for (TuplePtr& t : *batch) {
      const size_t idx = build_.size();
      if (auto digest = JoinKeysDigest(*t, key_attrs_, build_left_)) {
        buckets_[*digest].push_back(idx);
      } else {
        varying_.push_back(idx);
      }
      build_.push_back(std::move(t));
      stats_->OnBuffer(1);
    }
  }
  return Status::OK();
}

Status HashEquiJoinCursor::PartitionBuildParallel() {
  // Per-morsel partition tables: each morsel digests its contiguous slice
  // of build_ into a private (digest, index) list, merged below in morsel
  // order — indices are appended ascending, so every bucket (and varying_)
  // ends up byte-identical to the serial build's.
  struct Partition {
    std::vector<std::pair<uint64_t, size_t>> digested;
    std::vector<size_t> varying;
    size_t worker_id = 0;
  };
  util::ThreadPool& pool = util::SharedThreadPool(parallelism_);
  const size_t morsel = MorselSizeFor(build_.size(), parallelism_);
  const size_t count = MorselCountFor(build_.size(), morsel);
  std::vector<Partition> parts(count);
  size_t dispatched = 0;
  HRDM_RETURN_IF_ERROR(util::ParallelMorsels(
      pool, build_.size(), morsel,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        Partition& p = parts[begin / morsel];
        p.worker_id = worker_id;
        for (size_t i = begin; i < end; ++i) {
          if (auto digest = JoinKeysDigest(*build_[i], key_attrs_,
                                           build_left_)) {
            p.digested.emplace_back(*digest, i);
          } else {
            p.varying.push_back(i);
          }
        }
        return Status::OK();
      },
      &dispatched));
  stats_->morsels_dispatched += dispatched;
  for (size_t m = 0; m < count; ++m) {
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, build_.size());
    stats_->OnWorkerTuples(parts[m].worker_id, end - begin);
    for (const auto& [digest, idx] : parts[m].digested) {
      buckets_[digest].push_back(idx);
    }
    for (size_t idx : parts[m].varying) varying_.push_back(idx);
    ++stats_->partitions_merged;
  }
  return Status::OK();
}

Status HashEquiJoinCursor::TryPairInto(size_t build_idx, TupleBatch& out) {
  const Tuple& b = *build_[build_idx];
  const Tuple& t1 = build_left_ ? b : *probe_;
  const Tuple& t2 = build_left_ ? *probe_ : b;
  ++stats_->join_pairs_tested;
  HRDM_ASSIGN_OR_RETURN(Lifespan l, pair_(t1, t2));
  if (l.empty()) return Status::OK();
  out.push_back(ctx_->AdoptTuple(assembly_.Assemble(t1, t2, l)));
  return Status::OK();
}

Status HashEquiJoinCursor::ProbeOne(const TuplePtr& probe,
                                    std::vector<TuplePtr>& out,
                                    size_t& pairs_tested) const {
  // The worker-side mirror of the serial probe loop: same candidate order
  // (digest bucket, then varying; or the full scan when the probe digest is
  // unavailable), so per-probe output order matches the serial emission.
  // Heap-allocates its output — the plan arena is coordinator-only.
  auto try_pair = [&](size_t build_idx) -> Status {
    const Tuple& b = *build_[build_idx];
    const Tuple& t1 = build_left_ ? b : *probe;
    const Tuple& t2 = build_left_ ? *probe : b;
    ++pairs_tested;
    HRDM_ASSIGN_OR_RETURN(Lifespan l, pair_(t1, t2));
    if (!l.empty()) {
      out.push_back(
          std::make_shared<const Tuple>(assembly_.Assemble(t1, t2, l)));
    }
    return Status::OK();
  };
  if (auto digest = JoinKeysDigest(*probe, key_attrs_, !build_left_)) {
    auto it = buckets_.find(*digest);
    if (it != buckets_.end()) {
      for (size_t idx : it->second) HRDM_RETURN_IF_ERROR(try_pair(idx));
    }
    for (size_t idx : varying_) HRDM_RETURN_IF_ERROR(try_pair(idx));
  } else {
    // Varying probe value: it may match any partition at some chronon.
    for (size_t i = 0; i < build_.size(); ++i) {
      HRDM_RETURN_IF_ERROR(try_pair(i));
    }
  }
  return Status::OK();
}

Status HashEquiJoinCursor::RunProbeParallel() {
  parallel_probed_ = true;
  Cursor* probe_child = build_left_ ? right_.get() : left_.get();
  // Drain the probe side on the coordinator (also the error-parity
  // evaluation when the build side is empty), then probe morsel-parallel.
  std::vector<TuplePtr> probes;
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, probe_child->NextBatch());
    if (!batch) break;
    for (TuplePtr& t : *batch) probes.push_back(std::move(t));
  }
  stats_->OnBuffer(probes.size());
  if (build_.empty() || probes.empty()) {
    stats_->OnRelease(probes.size());
    return Status::OK();
  }
  struct MorselOut {
    std::vector<TuplePtr> out;
    size_t pairs_tested = 0;
    size_t worker_id = 0;
  };
  util::ThreadPool& pool = util::SharedThreadPool(parallelism_);
  const size_t morsel = MorselSizeFor(probes.size(), parallelism_);
  const size_t count = MorselCountFor(probes.size(), morsel);
  std::vector<MorselOut> morsels(count);
  size_t dispatched = 0;
  HRDM_RETURN_IF_ERROR(util::ParallelMorsels(
      pool, probes.size(), morsel,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        MorselOut& mo = morsels[begin / morsel];
        mo.worker_id = worker_id;
        for (size_t i = begin; i < end; ++i) {
          HRDM_RETURN_IF_ERROR(ProbeOne(probes[i], mo.out, mo.pairs_tested));
        }
        return Status::OK();
      },
      &dispatched));
  stats_->morsels_dispatched += dispatched;
  // Concatenate the per-morsel output runs in morsel order: the joined
  // stream is the serial emission order, morsel boundaries invisible.
  size_t total = 0;
  for (const MorselOut& mo : morsels) total += mo.out.size();
  parallel_out_.reserve(total);
  for (size_t m = 0; m < count; ++m) {
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, probes.size());
    stats_->OnWorkerTuples(morsels[m].worker_id, end - begin);
    stats_->join_pairs_tested += morsels[m].pairs_tested;
    for (TuplePtr& t : morsels[m].out) parallel_out_.push_back(std::move(t));
    ++stats_->partitions_merged;
  }
  stats_->OnBuffer(parallel_out_.size());
  stats_->OnRelease(probes.size());  // the probe buffer dies here
  return Status::OK();
}

Result<TupleBatch*> HashEquiJoinCursor::NextBatch() {
  if (!primed_) {
    HRDM_RETURN_IF_ERROR(Prime());
  }
  if (parallelism_ > 1) {
    if (!parallel_probed_) {
      HRDM_RETURN_IF_ERROR(RunProbeParallel());
    }
    // Stream the concatenated parallel output in batch-size slices.
    if (parallel_out_pos_ >= parallel_out_.size()) return nullptr;
    const size_t n =
        std::min(ctx_->batch_size, parallel_out_.size() - parallel_out_pos_);
    out_.clear();
    for (size_t i = 0; i < n; ++i) {
      out_.push_back(std::move(parallel_out_[parallel_out_pos_ + i]));
    }
    parallel_out_pos_ += n;
    return EmitOrEnd(out_);
  }
  Cursor* probe_child = build_left_ ? right_.get() : left_.get();
  if (build_.empty()) {
    // Evaluate the probe side anyway for error parity with the
    // materializing path.
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, probe_child->NextBatch());
      if (!batch) return nullptr;
    }
  }
  // Fill the output batch, suspending the candidate walk wherever it fills;
  // probe_ and the bucket/varying positions persist across calls, so the
  // next pull resumes exactly where this one stopped.
  out_.clear();
  while (out_.size() < ctx_->batch_size) {
    if (!probe_) {
      HRDM_ASSIGN_OR_RETURN(probe_, probe_child->Next());
      if (!probe_) break;  // probe side exhausted: flush what we have
      bucket_ = nullptr;
      bucket_pos_ = 0;
      in_varying_ = false;
      scan_all_ = false;
      scan_pos_ = 0;
      if (auto digest = JoinKeysDigest(*probe_, key_attrs_, !build_left_)) {
        auto it = buckets_.find(*digest);
        if (it != buckets_.end()) bucket_ = &it->second;
      } else {
        // The probe tuple's join value varies over its lifespan: it may
        // match any partition at some chronon, so test every build tuple.
        scan_all_ = true;
      }
    }
    if (scan_all_) {
      while (scan_pos_ < build_.size() && out_.size() < ctx_->batch_size) {
        HRDM_RETURN_IF_ERROR(TryPairInto(scan_pos_++, out_));
      }
      if (scan_pos_ >= build_.size()) probe_.reset();
      continue;
    }
    // Digest-matching partition first, then the varying build tuples
    // (which may match anything at some chronon).
    while (bucket_ && bucket_pos_ < bucket_->size() &&
           out_.size() < ctx_->batch_size) {
      HRDM_RETURN_IF_ERROR(TryPairInto((*bucket_)[bucket_pos_++], out_));
    }
    if (bucket_ && bucket_pos_ < bucket_->size()) continue;  // batch full
    if (!in_varying_) {
      in_varying_ = true;
      scan_pos_ = 0;
    }
    while (scan_pos_ < varying_.size() && out_.size() < ctx_->batch_size) {
      HRDM_RETURN_IF_ERROR(TryPairInto(varying_[scan_pos_++], out_));
    }
    if (scan_pos_ >= varying_.size()) probe_.reset();
  }
  return EmitOrEnd(out_);
}

// --- MergeTimeJoinCursor -----------------------------------------------------

MergeTimeJoinCursor::MergeTimeJoinCursor(CursorPtr left, CursorPtr right,
                                         size_t attr_a, JoinAssembly assembly,
                                         PlanContext* ctx)
    : ScalarCursor(assembly.scheme(), ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      attr_a_(attr_a),
      assembly_(std::move(assembly)) {
  ++stats_->joins_merge;
}

MergeTimeJoinCursor::~MergeTimeJoinCursor() {
  stats_->OnRelease(lefts_.size() + rights_.size());
}

Status MergeTimeJoinCursor::Prime() {
  primed_ = true;
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, left_->Next());
    if (!t) break;
    // The joined lifespan is confined to image(t(A)) ∩ t.l; tuples whose
    // effective span is empty can never join and are dropped here.
    HRDM_ASSIGN_OR_RETURN(Lifespan image, t->value(attr_a_).TimeImage());
    Lifespan effective = image.Intersect(t->lifespan());
    if (effective.empty()) continue;
    Entry e{std::move(t), std::move(effective), 0, 0};
    e.begin = e.effective.Min();
    e.end = e.effective.Max();
    lefts_.push_back(std::move(e));
    stats_->OnBuffer(1);
  }
  while (true) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr t, right_->Next());
    if (!t) break;
    Entry e{std::move(t), Lifespan(), 0, 0};
    e.effective = e.tuple->lifespan();
    if (e.effective.empty()) continue;
    e.begin = e.effective.Min();
    e.end = e.effective.Max();
    rights_.push_back(std::move(e));
    stats_->OnBuffer(1);
  }
  auto by_begin = [](const Entry& a, const Entry& b) {
    return a.begin < b.begin;
  };
  std::stable_sort(lefts_.begin(), lefts_.end(), by_begin);
  std::stable_sort(rights_.begin(), rights_.end(), by_begin);
  return Status::OK();
}

Result<TuplePtr> MergeTimeJoinCursor::NextTuple() {
  if (!primed_) {
    HRDM_RETURN_IF_ERROR(Prime());
  }
  while (li_ < lefts_.size()) {
    Entry& L = lefts_[li_];
    if (!left_open_) {
      left_open_ = true;
      // Advance the frontier: rights starting by L.end join the active
      // set; actives ending before L.begin can never overlap this or any
      // later left (left begins are non-decreasing) and retire for good.
      while (next_right_ < rights_.size() &&
             rights_[next_right_].begin <= L.end) {
        active_.push_back(next_right_++);
      }
      std::erase_if(active_,
                    [&](size_t r) { return rights_[r].end < L.begin; });
      ai_ = 0;
    }
    while (ai_ < active_.size()) {
      const Entry& R = rights_[active_[ai_++]];
      // Extent check: actives were admitted against *some* left's end, not
      // necessarily this one's.
      if (R.begin > L.end || R.end < L.begin) continue;
      ++stats_->join_pairs_tested;
      Lifespan l = L.effective.Intersect(R.effective);
      if (l.empty()) continue;
      return ctx_->AdoptTuple(assembly_.Assemble(*L.tuple, *R.tuple, l));
    }
    ++li_;
    left_open_ = false;
  }
  return TuplePtr();
}

// --- BufferedResultCursor ----------------------------------------------------

BufferedResultCursor::~BufferedResultCursor() {
  if (result_) stats_->OnRelease(result_->size());
}

Status BufferedResultCursor::EnsurePrimed() {
  if (primed_) return Status::OK();
  primed_ = true;
  HRDM_ASSIGN_OR_RETURN(Relation out, Prime());
  result_ = std::move(out);
  return Status::OK();
}

Result<TupleBatch*> BufferedResultCursor::NextBatch() {
  HRDM_RETURN_IF_ERROR(EnsurePrimed());
  if (!result_ || pos_ >= result_->size()) return nullptr;
  const size_t n = std::min(ctx_->batch_size, result_->size() - pos_);
  batch_.clear();
  for (size_t i = 0; i < n; ++i) batch_.push_back(result_->tuple_ptr(pos_ + i));
  pos_ += n;
  return EmitOrEnd(batch_);
}

Result<std::optional<Relation>> BufferedResultCursor::TakeBuffered() {
  if (pos_ != 0) return std::optional<Relation>();  // already being pulled
  HRDM_RETURN_IF_ERROR(EnsurePrimed());
  if (!result_) return std::optional<Relation>();  // already taken
  Relation out = std::move(*result_);
  result_.reset();
  stats_->OnRelease(out.size());
  return std::optional<Relation>(std::move(out));
}

// --- HashAggregateCursor -----------------------------------------------------

HashAggregateCursor::HashAggregateCursor(CursorPtr child,
                                         GroupedAggregator aggregator,
                                         size_t estimated_groups,
                                         size_t parallelism, PlanContext* ctx)
    : BufferedResultCursor(aggregator.scheme(), ctx),
      child_(std::move(child)),
      aggregator_(std::move(aggregator)),
      parallelism_(parallelism) {
  ++stats_->aggregates;
  stats_->agg_groups_estimated += estimated_groups;
  aggregator_.Reserve(estimated_groups);
  stats_->OnParallelOperator(parallelism_);
}

Status HashAggregateCursor::FoldAll(const std::vector<TuplePtr>& handles) {
  if (parallelism_ <= 1 || handles.size() < 2) {
    return aggregator_.FoldBatch(handles.data(), handles.size());
  }
  // Morsel-parallel fold: each morsel folds its contiguous input slice into
  // a Fork()ed partial; merging the partials in morsel order reconstructs
  // exactly the serial aggregator state (same group first-touch order, same
  // per-group contribution order), so results are bitwise identical.
  util::ThreadPool& pool = util::SharedThreadPool(parallelism_);
  const size_t morsel = MorselSizeFor(handles.size(), parallelism_);
  const size_t count = MorselCountFor(handles.size(), morsel);
  std::vector<GroupedAggregator> partials;
  partials.reserve(count);
  for (size_t m = 0; m < count; ++m) partials.push_back(aggregator_.Fork());
  std::vector<size_t> morsel_worker(count, 0);
  size_t dispatched = 0;
  HRDM_RETURN_IF_ERROR(util::ParallelMorsels(
      pool, handles.size(), morsel,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        GroupedAggregator& partial = partials[begin / morsel];
        morsel_worker[begin / morsel] = worker_id;
        return partial.FoldBatch(handles.data() + begin, end - begin);
      },
      &dispatched));
  stats_->morsels_dispatched += dispatched;
  for (size_t m = 0; m < count; ++m) {
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, handles.size());
    stats_->OnWorkerTuples(morsel_worker[m], end - begin);
    aggregator_.MergeFrom(partials[m]);
    ++stats_->partitions_merged;
  }
  return Status::OK();
}

Result<Relation> HashAggregateCursor::Prime() {
  // Aggregation is duplicate-sensitive (COUNT/SUM/AVG) but the input
  // stream is not yet a set — restriction and join cursors may emit
  // structural duplicates that the materialization boundary would
  // normally collapse. The set boundary is established here: the unique
  // tuples are collected first (only the shared handles, never copies),
  // then folded — serially or morsel-parallel (FoldAll).
  HRDM_ASSIGN_OR_RETURN(std::optional<Relation> whole,
                        child_->TakeBuffered());
  if (whole) {
    // The child already holds its entire deduplicated output.
    stats_->OnBuffer(whole->size());
    HRDM_RETURN_IF_ERROR(FoldAll(whole->tuple_ptrs()));
    stats_->OnRelease(whole->size());
  } else {
    Relation seen(child_->scheme());
    while (true) {
      HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, child_->NextBatch());
      if (!batch) break;
      for (TuplePtr& t : *batch) {
        const size_t before = seen.size();
        HRDM_RETURN_IF_ERROR(seen.InsertDedup(std::move(t)));
        if (seen.size() == before) continue;  // structural duplicate
        stats_->OnBuffer(1);
      }
    }
    HRDM_RETURN_IF_ERROR(FoldAll(seen.tuple_ptrs()));
    stats_->OnRelease(seen.size());
  }
  stats_->agg_groups_built += aggregator_.group_count();
  stats_->agg_fallback_tuples += aggregator_.fallback_tuples();

  HRDM_ASSIGN_OR_RETURN(std::vector<TuplePtr> tuples, aggregator_.Finish());
  Relation out(aggregator_.scheme());
  for (TuplePtr& t : tuples) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(t)));
  }
  out.set_materialized(true);
  stats_->OnBuffer(out.size());
  return out;
}

// --- SetOpCursor -------------------------------------------------------------

SetOpCursor::SetOpCursor(CursorPtr left, CursorPtr right,
                         SchemePtr out_scheme, WholeRelationOp op,
                         PlanContext* ctx)
    : BufferedResultCursor(std::move(out_scheme), ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      op_(std::move(op)) {}

Result<Relation> SetOpCursor::Prime() {
  HRDM_ASSIGN_OR_RETURN(Relation l, DrainCursor(left_.get()));
  stats_->OnBuffer(l.size());
  HRDM_ASSIGN_OR_RETURN(Relation r, DrainCursor(right_.get()));
  stats_->OnBuffer(r.size());
  HRDM_ASSIGN_OR_RETURN(Relation result, op_(l, r));
  stats_->OnBuffer(result.size());
  stats_->OnRelease(l.size() + r.size());
  return result;
}

// --- lowering ----------------------------------------------------------------

namespace {

/// The access path to actually lower for one restriction node: the
/// chooser's cost-based pick, with the forced override (differential tests)
/// applied — a forced path the node is not eligible for falls back to the
/// full scan rather than mis-executing.
AccessPath ResolveAccessPath(const AccessPathChoice& choice,
                             const PlanOptions& options) {
  if (!options.force_access_path) return choice.path;
  switch (*options.force_access_path) {
    case AccessPath::kFullScan:
      return AccessPath::kFullScan;
    case AccessPath::kValueIndex:
      return choice.value_eligible ? AccessPath::kValueIndex
                                   : AccessPath::kFullScan;
    case AccessPath::kLifespanIndex:
      return choice.lifespan_eligible ? AccessPath::kLifespanIndex
                                      : AccessPath::kFullScan;
  }
  return AccessPath::kFullScan;
}

/// Lowers the input of a restriction node (`op.left`): an IndexScanCursor
/// over a storage-index probe when the access-path chooser picks one (and
/// the probe hooks actually serve it), the ordinary recursive lowering —
/// a full ScanCursor for base relations — otherwise. `window` is the
/// operator's already-evaluated slice/quantification window, when it has
/// one (lifespan probes need it).
Result<CursorPtr> LowerRestrictionInput(const Expr& op, const Lifespan* window,
                                        const PlanResolver& resolver,
                                        PlanContext* ctx,
                                        const PlanOptions& options) {
  if (op.left && op.left->kind == ExprKind::kRelationRef) {
    const AccessPathChoice choice = ChooseAccessPath(
        op, options.index_catalog,
        CardinalityOrExact(options.cardinality, resolver));
    const AccessPath path = ResolveAccessPath(choice, options);
    if (path == AccessPath::kValueIndex && options.value_probe && choice.key) {
      if (auto probe = options.value_probe(op.left->relation, choice.attr,
                                           *choice.key)) {
        HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(op.left->relation));
        const size_t parallelism =
            ChooseParallelism(RequestedParallelism(options),
                              probe->candidates.size(), options.force_parallel);
        return MakeCursor<IndexScanCursor>(
            rel->scheme(), std::move(*probe), AccessPath::kValueIndex,
            parallelism, ctx);
      }
    }
    if (path == AccessPath::kLifespanIndex && options.lifespan_probe &&
        window != nullptr) {
      if (auto probe = options.lifespan_probe(op.left->relation, *window)) {
        HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(op.left->relation));
        const size_t parallelism =
            ChooseParallelism(RequestedParallelism(options),
                              probe->candidates.size(), options.force_parallel);
        return MakeCursor<IndexScanCursor>(
            rel->scheme(), std::move(*probe), AccessPath::kLifespanIndex,
            parallelism, ctx);
      }
    }
  }
  return LowerExpr(op.left, resolver, ctx, options);
}

/// Lowers the maximal chain of consecutive SELECT-WHEN / static TIME-SLICE
/// nodes rooted at `expr` into a single fused restriction cursor. Both
/// operators are pointwise restrictions of the model-level tuple
/// (`t|_window`, `t|_holds`), so a chain composes to one restriction by
/// the intersection of its stages' lifespans — the fused cursor computes
/// that intersection innermost-first (criteria scoped to the accumulated
/// lifespan, matching what they would see on the stage-restricted tuple)
/// and restricts each surviving tuple once. Slice windows are evaluated in
/// lowering order (outermost first), exactly as the unfused per-node
/// lowering evaluates them. Adjacent windows fold into their intersection;
/// a chain that is windows-only stays a plain TimeSliceCursor. The chain's
/// base input goes through the access-path chooser for the innermost node,
/// with the intersection of every window in the chain as the probe window
/// — any surviving tuple overlaps it, so the candidate superset is exact
/// and tighter than the innermost window alone.
///
/// `project_attrs`, when given, is a PROJECT sitting directly above the
/// chain; it fuses into the cursor's emission (only kept attributes are
/// restricted). The projection is resolved against the chain's scheme
/// after the chain is lowered, preserving the unfused error order
/// (window evaluation before projection validation).
Result<CursorPtr> LowerRestrictionChain(
    const ExprPtr& expr, const PlanResolver& resolver, PlanContext* ctx,
    const PlanOptions& options,
    const std::vector<std::string>* project_attrs = nullptr) {
  std::vector<SelectWhenCursor::Stage> stages;  // collected outermost-first
  std::optional<Lifespan> probe_window;
  const Expr* node = expr.get();
  while (true) {
    if (node->kind == ExprKind::kSelectWhen) {
      stages.emplace_back(*node->predicate);
    } else {
      HRDM_ASSIGN_OR_RETURN(
          Lifespan window, EvalWindow(node->window, resolver, ctx, options));
      probe_window =
          probe_window ? probe_window->Intersect(window) : window;
      if (!stages.empty() &&
          std::holds_alternative<Lifespan>(stages.back())) {
        // Two slices with no criterion between them restrict to the
        // intersection; fold them into one stage.
        Lifespan& prev = std::get<Lifespan>(stages.back());
        prev = prev.Intersect(window);
      } else {
        stages.emplace_back(std::move(window));
      }
    }
    const Expr* child = node->left.get();
    if (child && (child->kind == ExprKind::kSelectWhen ||
                  child->kind == ExprKind::kTimeSlice)) {
      node = child;
      continue;
    }
    break;
  }
  // `node` is now the innermost restriction; its input is the chain's base.
  HRDM_ASSIGN_OR_RETURN(
      CursorPtr child,
      LowerRestrictionInput(*node, probe_window ? &*probe_window : nullptr,
                            resolver, ctx, options));
  std::reverse(stages.begin(), stages.end());  // innermost-first
  if (project_attrs) {
    HRDM_ASSIGN_OR_RETURN(SchemePtr out_scheme,
                          child->scheme()->Project(*project_attrs));
    HRDM_ASSIGN_OR_RETURN(
        std::vector<size_t> src,
        ProjectSourceIndices(*child->scheme(), *out_scheme));
    return MakeCursor<SelectWhenCursor>(std::move(child), std::move(stages),
                                        std::move(out_scheme), std::move(src),
                                        ctx);
  }
  if (stages.size() == 1 && std::holds_alternative<Lifespan>(stages[0])) {
    return MakeCursor<TimeSliceCursor>(
        std::move(child), std::move(std::get<Lifespan>(stages[0])), ctx);
  }
  return MakeCursor<SelectWhenCursor>(std::move(child), std::move(stages),
                                      SchemePtr(), std::vector<size_t>(),
                                      ctx);
}

/// Attempts an index-fed hash equi-join lowering: when both operands are
/// bare base relations, the chooser picks kHash, and the build side carries
/// a value index on its (single) join attribute, the build cursor is
/// skipped entirely — the index's pre-partitioned groups become the hash
/// table and only the probe side is lowered. Returns a null cursor when not
/// applicable (caller falls back to the ordinary join lowering); restricted
/// to bare-relation operands so the decision needs no speculative lowering.
Result<CursorPtr> TryIndexFedEquiJoin(const ExprPtr& expr,
                                      const PlanResolver& resolver,
                                      PlanContext* ctx,
                                      const PlanOptions& options) {
  if (!options.indexed_build) return CursorPtr();
  if (options.force_access_path == AccessPath::kFullScan) return CursorPtr();
  if (!expr->left || expr->left->kind != ExprKind::kRelationRef ||
      !expr->right || expr->right->kind != ExprKind::kRelationRef) {
    return CursorPtr();
  }
  HRDM_ASSIGN_OR_RETURN(const Relation* lrel, resolver(expr->left->relation));
  HRDM_ASSIGN_OR_RETURN(const Relation* rrel, resolver(expr->right->relation));
  const SchemePtr& ls = lrel->scheme();
  const SchemePtr& rs = rrel->scheme();
  const JoinChoice choice =
      ResolveJoinChoice(*expr, *ls, *rs, resolver, options);
  if (choice.strategy != JoinStrategy::kHash) return CursorPtr();

  std::vector<std::pair<size_t, size_t>> key_attrs;
  std::string build_attr;
  SchemePtr out_scheme;
  JoinPairFn pair;
  if (expr->kind == ExprKind::kThetaJoin) {
    HRDM_ASSIGN_OR_RETURN(size_t ia, ls->RequireIndex(expr->attr_a));
    HRDM_ASSIGN_OR_RETURN(size_t ib, rs->RequireIndex(expr->attr_b));
    key_attrs = {{ia, ib}};
    build_attr = choice.build_left ? expr->attr_a : expr->attr_b;
    HRDM_ASSIGN_OR_RETURN(out_scheme,
                          ThetaJoinScheme(ls, expr->attr_a, rs, expr->attr_b));
    pair = [ia, op = expr->op, ib](const Tuple& t1, const Tuple& t2) {
      return ThetaJoinPairLifespan(t1, ia, op, t2, ib);
    };
  } else if (expr->kind == ExprKind::kNaturalJoin) {
    std::vector<std::pair<size_t, size_t>> shared = SharedAttributes(*ls, *rs);
    // A multi-column natural join would need a composite-key index; single
    // per-attribute indexes only serve the one-shared-attribute shape.
    if (shared.size() != 1) return CursorPtr();
    build_attr = ls->attribute(shared[0].first).name;
    key_attrs = std::move(shared);
    HRDM_ASSIGN_OR_RETURN(out_scheme, NaturalJoinScheme(ls, rs));
    pair = [key_attrs](const Tuple& t1, const Tuple& t2) -> Result<Lifespan> {
      return NaturalJoinPairLifespan(t1, t2, key_attrs);
    };
  } else {
    return CursorPtr();
  }

  const ExprPtr& build_expr = choice.build_left ? expr->left : expr->right;
  std::optional<IndexedBuildSide> build =
      options.indexed_build(build_expr->relation, build_attr);
  if (!build) return CursorPtr();

  HRDM_ASSIGN_OR_RETURN(
      CursorPtr probe,
      LowerExpr(choice.build_left ? expr->right : expr->left, resolver, ctx,
                options));
  JoinAssembly assembly(std::move(out_scheme), *ls, *rs);
  const size_t parallelism =
      ChooseParallelism(RequestedParallelism(options),
                        choice.est_left + choice.est_right,
                        options.force_parallel);
  return MakeCursor<HashEquiJoinCursor>(
      std::move(probe), std::move(*build), choice.build_left,
      std::move(key_attrs), std::move(assembly), std::move(pair), parallelism,
      ctx);
}

}  // namespace

Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanContext* ctx) {
  return LowerExpr(expr, resolver, ctx, PlanOptions{});
}

Result<CursorPtr> LowerExpr(const ExprPtr& expr, const PlanResolver& resolver,
                            PlanContext* ctx, const PlanOptions& options) {
  if (!expr) return Status::InvalidArgument("null expression");
  switch (expr->kind) {
    case ExprKind::kRelationRef: {
      HRDM_ASSIGN_OR_RETURN(const Relation* rel, resolver(expr->relation));
      const size_t parallelism = ChooseParallelism(
          RequestedParallelism(options), rel->size(), options.force_parallel);
      // Copy-on-write: the scan shares the stored tuples.
      return MakeCursor<ScanCursor>(*rel, parallelism, ctx);
    }
    case ExprKind::kSelectIf: {
      // The window is a parameter, not a stream: evaluate it first so a
      // lifespan-index probe can use it when the chooser picks that path.
      std::optional<Lifespan> window;
      if (expr->window) {
        HRDM_ASSIGN_OR_RETURN(
            Lifespan w, EvalWindow(expr->window, resolver, ctx, options));
        window = std::move(w);
      }
      HRDM_ASSIGN_OR_RETURN(
          CursorPtr child,
          LowerRestrictionInput(*expr, window ? &*window : nullptr, resolver,
                                ctx, options));
      return MakeCursor<SelectIfCursor>(
          std::move(child), *expr->predicate, expr->quantifier,
          std::move(window), ctx);
    }
    case ExprKind::kSelectWhen:
      return LowerRestrictionChain(expr, resolver, ctx, options);
    case ExprKind::kProject: {
      if (expr->left && (expr->left->kind == ExprKind::kSelectWhen ||
                         expr->left->kind == ExprKind::kTimeSlice)) {
        return LowerRestrictionChain(expr->left, resolver, ctx, options,
                                     &expr->attrs);
      }
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(SchemePtr out_scheme,
                            child->scheme()->Project(expr->attrs));
      HRDM_ASSIGN_OR_RETURN(
          std::vector<size_t> src,
          ProjectSourceIndices(*child->scheme(), *out_scheme));
      return MakeCursor<ProjectCursor>(
          std::move(child), std::move(out_scheme), std::move(src), ctx);
    }
    case ExprKind::kTimeSlice:
      return LowerRestrictionChain(expr, resolver, ctx, options);
    case ExprKind::kDynSlice: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(size_t idx,
                            DynSliceAttrIndex(*child->scheme(), expr->attr_a));
      return MakeCursor<TimeSliceCursor>(std::move(child), idx, ctx);
    }
    case ExprKind::kProduct: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            ProductScheme(left->scheme(), right->scheme()));
      return MakeCursor<ProductJoinCursor>(
          std::move(left), std::move(right), std::move(scheme), ctx);
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO: {
      SetOpKind kind = SetOpKind::kDifferenceO;
      switch (expr->kind) {
        case ExprKind::kUnion:       kind = SetOpKind::kUnion; break;
        case ExprKind::kIntersect:   kind = SetOpKind::kIntersect; break;
        case ExprKind::kDifference:  kind = SetOpKind::kDifference; break;
        case ExprKind::kUnionO:      kind = SetOpKind::kUnionO; break;
        case ExprKind::kIntersectO:  kind = SetOpKind::kIntersectO; break;
        case ExprKind::kDifferenceO: kind = SetOpKind::kDifferenceO; break;
        case ExprKind::kRelationRef:
        case ExprKind::kSelectIf:
        case ExprKind::kSelectWhen:
        case ExprKind::kProject:
        case ExprKind::kTimeSlice:
        case ExprKind::kDynSlice:
        case ExprKind::kProduct:
        case ExprKind::kThetaJoin:
        case ExprKind::kNaturalJoin:
        case ExprKind::kTimeJoin:
        case ExprKind::kAggregate:
          // Unreachable: the enclosing case covers the six set operators.
          return Status::Internal("unhandled set operation kind");
      }
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(
          SchemePtr scheme,
          SetOpScheme(kind, left->scheme(), right->scheme()));
      return MakeCursor<SetOpCursor>(
          std::move(left), std::move(right), std::move(scheme),
          [kind](const Relation& r1, const Relation& r2) {
            return ApplySetOp(kind, r1, r2);
          },
          ctx);
    }
    case ExprKind::kThetaJoin: {
      HRDM_ASSIGN_OR_RETURN(
          CursorPtr fed, TryIndexFedEquiJoin(expr, resolver, ctx, options));
      if (fed) return fed;
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            ThetaJoinScheme(left->scheme(), expr->attr_a,
                                            right->scheme(), expr->attr_b));
      HRDM_ASSIGN_OR_RETURN(size_t ia,
                            left->scheme()->RequireIndex(expr->attr_a));
      HRDM_ASSIGN_OR_RETURN(size_t ib,
                            right->scheme()->RequireIndex(expr->attr_b));
      JoinAssembly assembly(std::move(scheme), *left->scheme(),
                            *right->scheme());
      JoinPairFn pair = [ia, op = expr->op, ib](const Tuple& t1,
                                                const Tuple& t2) {
        return ThetaJoinPairLifespan(t1, ia, op, t2, ib);
      };
      const JoinChoice choice = ResolveJoinChoice(
          *expr, *left->scheme(), *right->scheme(), resolver, options);
      if (choice.strategy == JoinStrategy::kHash) {
        const size_t parallelism =
            ChooseParallelism(RequestedParallelism(options),
                              choice.est_left + choice.est_right,
                              options.force_parallel);
        return MakeCursor<HashEquiJoinCursor>(
            std::move(left), std::move(right), choice.build_left,
            std::vector<std::pair<size_t, size_t>>{{ia, ib}},
            std::move(assembly), std::move(pair), parallelism, ctx);
      }
      return MakeCursor<NestedLoopJoinCursor>(
          std::move(left), std::move(right), std::move(assembly),
          std::move(pair), ctx);
    }
    case ExprKind::kNaturalJoin: {
      HRDM_ASSIGN_OR_RETURN(
          CursorPtr fed, TryIndexFedEquiJoin(expr, resolver, ctx, options));
      if (fed) return fed;
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(
          SchemePtr scheme,
          NaturalJoinScheme(left->scheme(), right->scheme()));
      std::vector<std::pair<size_t, size_t>> shared =
          SharedAttributes(*left->scheme(), *right->scheme());
      JoinAssembly assembly(std::move(scheme), *left->scheme(),
                            *right->scheme());
      JoinPairFn pair = [shared](const Tuple& t1,
                                 const Tuple& t2) -> Result<Lifespan> {
        return NaturalJoinPairLifespan(t1, t2, shared);
      };
      const JoinChoice choice = ResolveJoinChoice(
          *expr, *left->scheme(), *right->scheme(), resolver, options);
      if (choice.strategy == JoinStrategy::kHash) {
        const size_t parallelism =
            ChooseParallelism(RequestedParallelism(options),
                              choice.est_left + choice.est_right,
                              options.force_parallel);
        return MakeCursor<HashEquiJoinCursor>(
            std::move(left), std::move(right), choice.build_left,
            std::move(shared), std::move(assembly), std::move(pair),
            parallelism, ctx);
      }
      return MakeCursor<NestedLoopJoinCursor>(
          std::move(left), std::move(right), std::move(assembly),
          std::move(pair), ctx);
    }
    case ExprKind::kAggregate: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr child,
                            LowerExpr(expr->left, resolver, ctx, options));
      AggregateSpec spec{expr->agg_fn, expr->attr_a, expr->attrs};
      HRDM_ASSIGN_OR_RETURN(GroupedAggregator aggregator,
                            GroupedAggregator::Make(child->scheme(), spec));
      const size_t est = EstimateGroupCount(
          *expr, CardinalityOrExact(options.cardinality, resolver));
      // The fold cost scales with the *input* cardinality, not the groups.
      const size_t est_input = EstimateCardinality(
          expr->left, CardinalityOrExact(options.cardinality, resolver));
      const size_t parallelism = ChooseParallelism(
          RequestedParallelism(options), est_input, options.force_parallel);
      return MakeCursor<HashAggregateCursor>(
          std::move(child), std::move(aggregator), est, parallelism, ctx);
    }
    case ExprKind::kTimeJoin: {
      HRDM_ASSIGN_OR_RETURN(CursorPtr left,
                            LowerExpr(expr->left, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(CursorPtr right,
                            LowerExpr(expr->right, resolver, ctx, options));
      HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                            TimeJoinScheme(left->scheme(), expr->attr_a,
                                           right->scheme()));
      HRDM_ASSIGN_OR_RETURN(size_t ia,
                            left->scheme()->RequireIndex(expr->attr_a));
      JoinAssembly assembly(std::move(scheme), *left->scheme(),
                            *right->scheme());
      const JoinChoice choice = ResolveJoinChoice(
          *expr, *left->scheme(), *right->scheme(), resolver, options);
      if (choice.strategy == JoinStrategy::kMerge) {
        return MakeCursor<MergeTimeJoinCursor>(
            std::move(left), std::move(right), ia, std::move(assembly),
            ctx);
      }
      JoinPairFn pair = [ia](const Tuple& t1, const Tuple& t2) {
        return TimeJoinPairLifespan(t1, ia, t2);
      };
      return MakeCursor<NestedLoopJoinCursor>(
          std::move(left), std::move(right), std::move(assembly),
          std::move(pair), ctx);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Plan> Plan::Lower(const ExprPtr& expr, const PlanResolver& resolver) {
  return Lower(expr, resolver, PlanOptions{});
}

Result<Plan> Plan::Lower(const ExprPtr& expr, const PlanResolver& resolver,
                         const PlanOptions& options) {
  auto ctx = std::make_unique<PlanContext>();
  ctx->batch_size = ChooseBatchSize(options.batch_size);
  ctx->arena = std::make_shared<util::Arena>();
  HRDM_ASSIGN_OR_RETURN(CursorPtr root,
                        LowerExpr(expr, resolver, ctx.get(), options));
  return Plan(std::move(ctx), std::move(root));
}

Result<TupleBatch*> Plan::NextBatch() {
  HRDM_ASSIGN_OR_RETURN(TupleBatch* batch, root_->NextBatch());
  if (batch) ctx_->stats.tuples_returned += batch->size();
  return batch;
}

Result<TuplePtr> Plan::Next() {
  HRDM_ASSIGN_OR_RETURN(TuplePtr t, root_->Next());
  if (t) ++ctx_->stats.tuples_returned;
  return t;
}

Result<Relation> Plan::Drain() {
  HRDM_ASSIGN_OR_RETURN(Relation out, DrainCursor(root_.get()));
  ctx_->stats.tuples_returned += out.size();
  return out;
}

}  // namespace hrdm::query
