#ifndef HRDM_QUERY_OPTIMIZER_H_
#define HRDM_QUERY_OPTIMIZER_H_

/// \file optimizer.h
/// \brief Algebraic rewrite optimizer for HRQL query trees, plus the two
/// physical choosers consulted at lowering time: join strategy
/// (`ChooseJoinStrategy`) and base-relation access path
/// (`ChooseAccessPath`).
///
/// Section 5 of the paper sketches the algebraic identities of the
/// historical algebra: "the commutativity of select, the distribution of
/// select over the binary set-theoretic operators ... the distribution of
/// TIMESLICE over the binary set-theoretic operators, commutativity of
/// TIMESLICE with both flavors of SELECT". The optimizer implements these
/// as rewrite rules; tests/optimizer_test.cc verifies on random databases
/// that every rewrite preserves the query answer, which operationalises the
/// paper's claims.
///
/// Implemented rules (all answer-preserving, property-tested):
///
///  1. timeslice fusion:
///       timeslice(timeslice(e, L1), L2) → timeslice(e, L1 ∩ L2)
///  2. select-when fusion (commutativity of select):
///       select_when(select_when(e, p1), p2) → select_when(e, p1 AND p2)
///  3. TIMESLICE/SELECT-WHEN commutativity, used to push the slice down:
///       timeslice(select_when(e, p), L) → select_when(timeslice(e, L), p)
///  4. distribution over UNION (for rewriting operators):
///       timeslice(union(e1, e2), L) → union(timeslice(e1,L), timeslice(e2,L))
///       select_when(union(e1, e2), p) → union(select_when(e1,p), ...)
///  5. SELECT-IF distribution over all three set operators (SELECT-IF is a
///     pure tuple filter, so it distributes over ∪, ∩ and −):
///       select_if(union(e1,e2), ...) → union(select_if(e1,...), ...), etc.
///  6. projection fusion:
///       project(project(e, X), Y) → project(e, Y)
///  7. lifespan-literal folding inside window expressions
///     (lunion/lintersect/lminus of literals).
///
/// Note the asymmetry the paper glosses over: TIMESLICE and SELECT-WHEN
/// *rewrite* tuples, so they distribute over ∪ but not over ∩ or − (two
/// different tuples can become equal after restriction); SELECT-IF filters
/// whole tuples and distributes over all three. The test suite demonstrates
/// the ∪-only distribution with counterexamples for −.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "core/schema.h"
#include "query/ast.h"

namespace hrdm::query {

/// \brief Statistics from one Optimize run.
struct OptimizerStats {
  int rules_applied = 0;
  int passes = 0;
};

// --- join strategy selection -------------------------------------------------
//
// Beyond tree rewrites, the optimizer picks a *physical* strategy for every
// JOIN node when the tree is lowered to a cursor plan (query/plan.h):
//
//  * kNestedLoop — pairwise θ-evaluation streaming the left input against a
//    buffered right input. Always correct; O(|l|·|r|) pair checks.
//  * kHash — for equality patterns (EQUIJOIN, NATURAL-JOIN with shared
//    attributes): the smaller (build) side is partitioned by a
//    time-invariant digest of its join attribute values, the other side
//    probes. Tuples whose join attribute varies over their lifespan fall
//    back to per-pair probing, so the strategy is exact, not approximate.
//  * kMerge — for TIME-JOIN: both sides sorted by the start of their
//    effective chronon span; a frontier sweep only tests pairs whose spans
//    can overlap.
//
// The choice is driven by equi-pattern detection on the AST node, domain
// comparability from the operand schemes, and cardinality estimates (from
// the storage catalog's relation stats when available).

/// \brief Physical join strategies the planner can select.
enum class JoinStrategy : uint8_t {
  kNestedLoop,
  kHash,
  kMerge,
};

std::string_view JoinStrategyName(JoinStrategy s);

/// \brief Base-relation cardinality source (typically the catalog's
/// relation stats); nullopt when the relation is unknown to the source.
using CardinalityFn =
    std::function<std::optional<size_t>(std::string_view relation)>;

/// \brief One JOIN node's physical plan decision.
struct JoinChoice {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  /// Hash only: drain the *left* input into the hash table (chosen when its
  /// estimated cardinality is smaller); otherwise the right input builds.
  bool build_left = false;
  /// The input-cardinality estimates the decision was based on.
  size_t est_left = 0;
  size_t est_right = 0;
};

/// \brief Rough output-cardinality estimate for a query subtree. Base
/// relations come from `card` (unknown relations estimate at a default);
/// operators apply simple selectivity rules (filters halve, unions add,
/// joins multiply with an equality discount). Only the *relative order* of
/// estimates matters — they pick hash build sides, nothing else.
size_t EstimateCardinality(const ExprPtr& expr, const CardinalityFn& card);

/// \brief Selects the physical strategy for one JOIN node (kThetaJoin,
/// kNaturalJoin or kTimeJoin) whose operand schemes are known.
/// Non-join nodes get kNestedLoop trivially.
JoinChoice ChooseJoinStrategy(const Expr& join, const RelationScheme& left,
                              const RelationScheme& right,
                              const CardinalityFn& card);

// --- aggregation estimates ---------------------------------------------------
//
// AGGREGATE lowers to a blocking HashAggregateCursor (query/plan.h) whose
// memory is proportional to the number of *groups*, not input tuples. The
// planner pre-sizes the cursor's group table from the catalog's relation
// stats: an ungrouped aggregate has at most one group; a grouped one is
// estimated with the classic quarter-of-input rule over the child's
// cardinality estimate. Like every other estimate here, it is advisory —
// a wrong guess resizes a hash table, never changes answers.

/// \brief Estimated number of groups (output tuples) of one kAggregate
/// node (`agg.left` is the aggregated input).
size_t EstimateGroupCount(const Expr& agg, const CardinalityFn& card);

// --- access-path selection ----------------------------------------------------
//
// The entry-point restrictions (SELECT-IF, SELECT-WHEN, TIME-SLICE, §4.3–4.4)
// normally read their base relation through a full ScanCursor — O(|r|) per
// query regardless of selectivity. When the storage engine maintains an
// index on the relation (storage/index.h, registered in the catalog), the
// planner can open the pipeline with an IndexScanCursor over the index's
// candidate set instead. Two index shapes are recognised:
//
//  * value index — a sargable `attr = constant` conjunct under SELECT-IF
//    (existential) or SELECT-WHEN probes the equality index; candidates are
//    the matching digest bucket plus every varying-valued tuple, a strict
//    superset of the answer that the exact per-tuple kernel then filters.
//  * lifespan index — a TIME-SLICE window (or a windowed existential
//    SELECT-IF) probes the interval index for tuples alive during the
//    window.
//
// Both paths are *candidate pruners*: the operator's own kernel re-runs on
// every candidate, so a probe can only change performance, never answers.
// Universally-quantified SELECT-IF stays on the full scan — with an empty
// quantification domain `forall` holds vacuously, so tuples outside the
// index's candidate set can still qualify.

/// \brief Physical access paths for a base-relation read under an
/// entry-point restriction.
enum class AccessPath : uint8_t {
  kFullScan,
  kLifespanIndex,
  kValueIndex,
};

std::string_view AccessPathName(AccessPath p);

/// \brief Which indexes exist on a base relation — the optimizer's view of
/// the catalog's registrations (storage::IndexSpec), decoupled through a
/// function hook so the query layer never touches storage types.
struct IndexInfo {
  bool lifespan = false;
  std::vector<std::string> value_attrs;
};

/// \brief Index-registration source (typically the storage catalog);
/// nullopt when the relation has no registered indexes.
using IndexCatalogFn =
    std::function<std::optional<IndexInfo>(std::string_view relation)>;

/// \brief One restriction node's access-path decision. `path` is the
/// cost-based pick; the eligibility flags record which probes would be
/// semantically valid (the force_access_path test hook consults them so a
/// forced path the node is not eligible for falls back to the scan).
struct AccessPathChoice {
  AccessPath path = AccessPath::kFullScan;
  /// A value-index probe is semantically valid for this node.
  bool value_eligible = false;
  /// A lifespan-index probe is semantically valid for this node.
  bool lifespan_eligible = false;
  /// kValueIndex: the indexed attribute and equality constant to probe.
  std::string attr;
  std::optional<Value> key;
  /// The base-relation cardinality estimate the decision was based on.
  size_t est_base = 0;
};

/// \brief Base relations at or below this estimated size keep the full
/// scan: a probe + candidate materialization costs more than reading a
/// handful of tuples. (force_access_path bypasses this threshold.)
inline constexpr size_t kIndexScanMinTuples = 64;

/// \brief Selects the access path for one restriction node (kSelectIf,
/// kSelectWhen or kTimeSlice) whose *immediate* child is a base-relation
/// reference. Other nodes get kFullScan trivially.
AccessPathChoice ChooseAccessPath(const Expr& op, const IndexCatalogFn& indexes,
                                  const CardinalityFn& card);

// --- parallel execution -------------------------------------------------------
//
// Parallel-eligible physical operators (the scan leaves' interpolation
// pass, the hash join's build partitioning and probe phase, the aggregate
// fold — query/plan.h) split their input into fixed-size *morsels*
// dispatched to the shared worker pool (util/thread_pool.h). Like the join
// strategy and access path, the degree of parallelism is a per-operator
// planning decision: the requested degree comes from
// `PlanOptions::parallelism` (default: HRDM_THREADS env override, else
// `hardware_concurrency`), and `ChooseParallelism` falls back to serial
// execution below a cardinality threshold — forking workers over a handful
// of tuples costs more than the work itself. Parallelism never changes
// answers, only schedules: every parallel path merges per-morsel partial
// results in morsel order, so the merged state is deterministic.

/// \brief Tuples per morsel dispatched to the worker pool. Small enough to
/// load-balance skewed kernels, large enough that task dispatch is noise.
inline constexpr size_t kMorselSize = 2048;

/// \brief Operators whose estimated input is below this stay serial: the
/// dispatch + merge overhead would dominate. (PlanOptions::force_parallel
/// bypasses the threshold for the differential tests.)
inline constexpr size_t kParallelMinTuples = 8192;

/// \brief The requested degree of parallelism when PlanOptions leaves it 0:
/// the HRDM_THREADS environment variable if set to a positive integer,
/// otherwise `std::thread::hardware_concurrency` (at least 1). Cached after
/// the first call.
size_t DefaultParallelism();

/// \brief The effective degree of parallelism for one operator whose input
/// is estimated at `est_tuples`: 1 (serial) when `requested` <= 1 or the
/// estimate is below kParallelMinTuples, otherwise `requested` capped by
/// the morsel count so no worker is provisioned without a morsel to run.
/// `force` bypasses the threshold and the cap (the differential fuzz
/// suite runs many workers over small inputs on purpose).
size_t ChooseParallelism(size_t requested, size_t est_tuples, bool force);

// --- batch execution ----------------------------------------------------------
//
// Cursors exchange *batches* of tuple handles (query/plan.h), amortizing
// the per-pull virtual dispatch and keeping the kernel loops tight. Like
// the degree of parallelism, the batch size is a planning decision made
// once per plan at lowering time.

/// \brief Tuple handles per cursor batch when nothing overrides it: large
/// enough to amortize virtual dispatch, small enough that a pipeline's
/// in-flight batches stay cache-resident.
inline constexpr size_t kDefaultBatchSize = 1024;

/// \brief The batch size when PlanOptions leaves it 0: the HRDM_BATCH_SIZE
/// environment variable if set to a positive integer, otherwise
/// kDefaultBatchSize. Re-read on every call (unlike DefaultParallelism) so
/// the differential suites can sweep batch sizes within one process.
size_t DefaultBatchSize();

/// \brief The batch size a plan actually runs with: `requested` (0 = auto,
/// DefaultBatchSize), clamped to [1, kMorselSize] — a batch never outgrows
/// the unit of parallel work distribution, so batch-filling drains and
/// morsel-parallel phases (ChooseParallelism) stay composable.
size_t ChooseBatchSize(size_t requested);

/// \brief Applies the rewrite rules to a fixpoint (bounded) and returns the
/// rewritten tree. `stats`, if non-null, receives counters.
ExprPtr Optimize(const ExprPtr& expr, OptimizerStats* stats = nullptr);

/// \brief Rewrites a lifespan-sorted tree (literal folding, recursion into
/// when()).
LsExprPtr OptimizeLs(const LsExprPtr& expr, OptimizerStats* stats = nullptr);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_OPTIMIZER_H_
