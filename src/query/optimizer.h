#ifndef HRDM_QUERY_OPTIMIZER_H_
#define HRDM_QUERY_OPTIMIZER_H_

/// \file optimizer.h
/// \brief Algebraic rewrite optimizer for HRQL query trees.
///
/// Section 5 of the paper sketches the algebraic identities of the
/// historical algebra: "the commutativity of select, the distribution of
/// select over the binary set-theoretic operators ... the distribution of
/// TIMESLICE over the binary set-theoretic operators, commutativity of
/// TIMESLICE with both flavors of SELECT". The optimizer implements these
/// as rewrite rules; tests/optimizer_test.cc verifies on random databases
/// that every rewrite preserves the query answer, which operationalises the
/// paper's claims.
///
/// Implemented rules (all answer-preserving, property-tested):
///
///  1. timeslice fusion:
///       timeslice(timeslice(e, L1), L2) → timeslice(e, L1 ∩ L2)
///  2. select-when fusion (commutativity of select):
///       select_when(select_when(e, p1), p2) → select_when(e, p1 AND p2)
///  3. TIMESLICE/SELECT-WHEN commutativity, used to push the slice down:
///       timeslice(select_when(e, p), L) → select_when(timeslice(e, L), p)
///  4. distribution over UNION (for rewriting operators):
///       timeslice(union(e1, e2), L) → union(timeslice(e1,L), timeslice(e2,L))
///       select_when(union(e1, e2), p) → union(select_when(e1,p), ...)
///  5. SELECT-IF distribution over all three set operators (SELECT-IF is a
///     pure tuple filter, so it distributes over ∪, ∩ and −):
///       select_if(union(e1,e2), ...) → union(select_if(e1,...), ...), etc.
///  6. projection fusion:
///       project(project(e, X), Y) → project(e, Y)
///  7. lifespan-literal folding inside window expressions
///     (lunion/lintersect/lminus of literals).
///
/// Note the asymmetry the paper glosses over: TIMESLICE and SELECT-WHEN
/// *rewrite* tuples, so they distribute over ∪ but not over ∩ or − (two
/// different tuples can become equal after restriction); SELECT-IF filters
/// whole tuples and distributes over all three. The test suite demonstrates
/// the ∪-only distribution with counterexamples for −.

#include "query/ast.h"

namespace hrdm::query {

/// \brief Statistics from one Optimize run.
struct OptimizerStats {
  int rules_applied = 0;
  int passes = 0;
};

/// \brief Applies the rewrite rules to a fixpoint (bounded) and returns the
/// rewritten tree. `stats`, if non-null, receives counters.
ExprPtr Optimize(const ExprPtr& expr, OptimizerStats* stats = nullptr);

/// \brief Rewrites a lifespan-sorted tree (literal folding, recursion into
/// when()).
LsExprPtr OptimizeLs(const LsExprPtr& expr, OptimizerStats* stats = nullptr);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_OPTIMIZER_H_
