#ifndef HRDM_QUERY_OPTIMIZER_H_
#define HRDM_QUERY_OPTIMIZER_H_

/// \file optimizer.h
/// \brief Algebraic rewrite optimizer for HRQL query trees.
///
/// Section 5 of the paper sketches the algebraic identities of the
/// historical algebra: "the commutativity of select, the distribution of
/// select over the binary set-theoretic operators ... the distribution of
/// TIMESLICE over the binary set-theoretic operators, commutativity of
/// TIMESLICE with both flavors of SELECT". The optimizer implements these
/// as rewrite rules; tests/optimizer_test.cc verifies on random databases
/// that every rewrite preserves the query answer, which operationalises the
/// paper's claims.
///
/// Implemented rules (all answer-preserving, property-tested):
///
///  1. timeslice fusion:
///       timeslice(timeslice(e, L1), L2) → timeslice(e, L1 ∩ L2)
///  2. select-when fusion (commutativity of select):
///       select_when(select_when(e, p1), p2) → select_when(e, p1 AND p2)
///  3. TIMESLICE/SELECT-WHEN commutativity, used to push the slice down:
///       timeslice(select_when(e, p), L) → select_when(timeslice(e, L), p)
///  4. distribution over UNION (for rewriting operators):
///       timeslice(union(e1, e2), L) → union(timeslice(e1,L), timeslice(e2,L))
///       select_when(union(e1, e2), p) → union(select_when(e1,p), ...)
///  5. SELECT-IF distribution over all three set operators (SELECT-IF is a
///     pure tuple filter, so it distributes over ∪, ∩ and −):
///       select_if(union(e1,e2), ...) → union(select_if(e1,...), ...), etc.
///  6. projection fusion:
///       project(project(e, X), Y) → project(e, Y)
///  7. lifespan-literal folding inside window expressions
///     (lunion/lintersect/lminus of literals).
///
/// Note the asymmetry the paper glosses over: TIMESLICE and SELECT-WHEN
/// *rewrite* tuples, so they distribute over ∪ but not over ∩ or − (two
/// different tuples can become equal after restriction); SELECT-IF filters
/// whole tuples and distributes over all three. The test suite demonstrates
/// the ∪-only distribution with counterexamples for −.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "core/schema.h"
#include "query/ast.h"

namespace hrdm::query {

/// \brief Statistics from one Optimize run.
struct OptimizerStats {
  int rules_applied = 0;
  int passes = 0;
};

// --- join strategy selection -------------------------------------------------
//
// Beyond tree rewrites, the optimizer picks a *physical* strategy for every
// JOIN node when the tree is lowered to a cursor plan (query/plan.h):
//
//  * kNestedLoop — pairwise θ-evaluation streaming the left input against a
//    buffered right input. Always correct; O(|l|·|r|) pair checks.
//  * kHash — for equality patterns (EQUIJOIN, NATURAL-JOIN with shared
//    attributes): the smaller (build) side is partitioned by a
//    time-invariant digest of its join attribute values, the other side
//    probes. Tuples whose join attribute varies over their lifespan fall
//    back to per-pair probing, so the strategy is exact, not approximate.
//  * kMerge — for TIME-JOIN: both sides sorted by the start of their
//    effective chronon span; a frontier sweep only tests pairs whose spans
//    can overlap.
//
// The choice is driven by equi-pattern detection on the AST node, domain
// comparability from the operand schemes, and cardinality estimates (from
// the storage catalog's relation stats when available).

/// \brief Physical join strategies the planner can select.
enum class JoinStrategy : uint8_t {
  kNestedLoop,
  kHash,
  kMerge,
};

std::string_view JoinStrategyName(JoinStrategy s);

/// \brief Base-relation cardinality source (typically the catalog's
/// relation stats); nullopt when the relation is unknown to the source.
using CardinalityFn =
    std::function<std::optional<size_t>(std::string_view relation)>;

/// \brief One JOIN node's physical plan decision.
struct JoinChoice {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  /// Hash only: drain the *left* input into the hash table (chosen when its
  /// estimated cardinality is smaller); otherwise the right input builds.
  bool build_left = false;
  /// The input-cardinality estimates the decision was based on.
  size_t est_left = 0;
  size_t est_right = 0;
};

/// \brief Rough output-cardinality estimate for a query subtree. Base
/// relations come from `card` (unknown relations estimate at a default);
/// operators apply simple selectivity rules (filters halve, unions add,
/// joins multiply with an equality discount). Only the *relative order* of
/// estimates matters — they pick hash build sides, nothing else.
size_t EstimateCardinality(const ExprPtr& expr, const CardinalityFn& card);

/// \brief Selects the physical strategy for one JOIN node (kThetaJoin,
/// kNaturalJoin or kTimeJoin) whose operand schemes are known.
/// Non-join nodes get kNestedLoop trivially.
JoinChoice ChooseJoinStrategy(const Expr& join, const RelationScheme& left,
                              const RelationScheme& right,
                              const CardinalityFn& card);

/// \brief Applies the rewrite rules to a fixpoint (bounded) and returns the
/// rewritten tree. `stats`, if non-null, receives counters.
ExprPtr Optimize(const ExprPtr& expr, OptimizerStats* stats = nullptr);

/// \brief Rewrites a lifespan-sorted tree (literal folding, recursion into
/// when()).
LsExprPtr OptimizeLs(const LsExprPtr& expr, OptimizerStats* stats = nullptr);

}  // namespace hrdm::query

#endif  // HRDM_QUERY_OPTIMIZER_H_
