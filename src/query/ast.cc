#include "query/ast.h"

#include "util/format.h"

namespace hrdm::query {

namespace {

std::string_view FunctionName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kRelationRef:
      return "";
    case ExprKind::kSelectIf:
      return "select_if";
    case ExprKind::kSelectWhen:
      return "select_when";
    case ExprKind::kProject:
      return "project";
    case ExprKind::kTimeSlice:
      return "timeslice";
    case ExprKind::kDynSlice:
      return "dynslice";
    case ExprKind::kUnion:
      return "union";
    case ExprKind::kIntersect:
      return "intersect";
    case ExprKind::kDifference:
      return "minus";
    case ExprKind::kUnionO:
      return "ounion";
    case ExprKind::kIntersectO:
      return "ointersect";
    case ExprKind::kDifferenceO:
      return "ominus";
    case ExprKind::kProduct:
      return "product";
    case ExprKind::kThetaJoin:
      return "join";
    case ExprKind::kNaturalJoin:
      return "natjoin";
    case ExprKind::kTimeJoin:
      return "timejoin";
    case ExprKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kRelationRef:
      return relation;
    case ExprKind::kSelectIf: {
      std::string out = "select_if(" + left->ToString() + ", " +
                        predicate->ToString() + ", " +
                        std::string(QuantifierName(quantifier));
      if (window) out += ", " + window->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kSelectWhen:
      return "select_when(" + left->ToString() + ", " +
             predicate->ToString() + ")";
    case ExprKind::kProject: {
      std::string out = "project(" + left->ToString();
      for (const std::string& a : attrs) out += ", " + a;
      out += ")";
      return out;
    }
    case ExprKind::kTimeSlice:
      return "timeslice(" + left->ToString() + ", " + window->ToString() +
             ")";
    case ExprKind::kDynSlice:
      return "dynslice(" + left->ToString() + ", " + attr_a + ")";
    case ExprKind::kThetaJoin:
      return "join(" + left->ToString() + ", " + right->ToString() + ", " +
             attr_a + " " + std::string(CompareOpName(op)) + " " + attr_b +
             ")";
    case ExprKind::kTimeJoin:
      return "timejoin(" + left->ToString() + ", " + right->ToString() +
             ", " + attr_a + ")";
    case ExprKind::kAggregate: {
      std::string out = "aggregate(" + left->ToString() + ", " +
                        std::string(AggregateFnName(agg_fn));
      if (!attr_a.empty()) out += " " + attr_a;
      for (size_t i = 0; i < attrs.size(); ++i) {
        out += (i == 0 ? " by " : ", ") + attrs[i];
      }
      out += ")";
      return out;
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kUnionO:
    case ExprKind::kIntersectO:
    case ExprKind::kDifferenceO:
    case ExprKind::kProduct:
    case ExprKind::kNaturalJoin:
      return std::string(FunctionName(kind)) + "(" + left->ToString() + ", " +
             right->ToString() + ")";
  }
  return "?";
}

std::string LsExpr::ToString() const {
  switch (kind) {
    case LsExprKind::kLiteral:
      return literal.ToString();
    case LsExprKind::kWhen:
      return "when(" + relation->ToString() + ")";
    case LsExprKind::kUnion:
      return "lunion(" + left->ToString() + ", " + right->ToString() + ")";
    case LsExprKind::kIntersect:
      return "lintersect(" + left->ToString() + ", " + right->ToString() +
             ")";
    case LsExprKind::kDifference:
      return "lminus(" + left->ToString() + ", " + right->ToString() + ")";
  }
  return "?";
}

ExprPtr Rel(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kRelationRef;
  e->relation = std::move(name);
  return e;
}

ExprPtr SelectIfE(ExprPtr operand, Predicate p, Quantifier q,
                  LsExprPtr window) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSelectIf;
  e->left = std::move(operand);
  e->predicate = std::move(p);
  e->quantifier = q;
  e->window = std::move(window);
  return e;
}

ExprPtr SelectWhenE(ExprPtr operand, Predicate p) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSelectWhen;
  e->left = std::move(operand);
  e->predicate = std::move(p);
  return e;
}

ExprPtr ProjectE(ExprPtr operand, std::vector<std::string> attrs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kProject;
  e->left = std::move(operand);
  e->attrs = std::move(attrs);
  return e;
}

ExprPtr TimeSliceE(ExprPtr operand, LsExprPtr window) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kTimeSlice;
  e->left = std::move(operand);
  e->window = std::move(window);
  return e;
}

ExprPtr DynSliceE(ExprPtr operand, std::string attr) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kDynSlice;
  e->left = std::move(operand);
  e->attr_a = std::move(attr);
  return e;
}

ExprPtr Binary(ExprKind kind, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr ThetaJoinE(ExprPtr l, ExprPtr r, std::string attr_a, CompareOp op,
                   std::string attr_b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kThetaJoin;
  e->left = std::move(l);
  e->right = std::move(r);
  e->attr_a = std::move(attr_a);
  e->op = op;
  e->attr_b = std::move(attr_b);
  return e;
}

ExprPtr NaturalJoinE(ExprPtr l, ExprPtr r) {
  return Binary(ExprKind::kNaturalJoin, std::move(l), std::move(r));
}

ExprPtr TimeJoinE(ExprPtr l, ExprPtr r, std::string attr) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kTimeJoin;
  e->left = std::move(l);
  e->right = std::move(r);
  e->attr_a = std::move(attr);
  return e;
}

ExprPtr AggregateE(ExprPtr operand, AggregateFn fn, std::string value_attr,
                   std::vector<std::string> group_by) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->left = std::move(operand);
  e->agg_fn = fn;
  e->attr_a = std::move(value_attr);
  e->attrs = std::move(group_by);
  return e;
}

LsExprPtr LsLiteral(Lifespan l) {
  auto e = std::make_shared<LsExpr>();
  e->kind = LsExprKind::kLiteral;
  e->literal = std::move(l);
  return e;
}

LsExprPtr WhenE(ExprPtr rel) {
  auto e = std::make_shared<LsExpr>();
  e->kind = LsExprKind::kWhen;
  e->relation = std::move(rel);
  return e;
}

LsExprPtr LsBinary(LsExprKind kind, LsExprPtr l, LsExprPtr r) {
  auto e = std::make_shared<LsExpr>();
  e->kind = kind;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  // Structural comparison via the canonical textual form.
  return a->ToString() == b->ToString();
}

bool LsExprEquals(const LsExprPtr& a, const LsExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->ToString() == b->ToString();
}

}  // namespace hrdm::query
