#ifndef HRDM_ALGEBRA_AGGREGATE_H_
#define HRDM_ALGEBRA_AGGREGATE_H_

/// \file aggregate.h
/// \brief Temporal grouping & aggregation: time-varying COUNT, SUM, MIN,
/// MAX and AVG whose results are themselves historical tuples.
///
/// The paper stops at the algebra of Section 4, but its model invites the
/// obvious analytical question — "how many employees were active in 1985?",
/// "average salary per department over time?". Because attribute values in
/// HRDM are *functions of time*, the natural semantics of an aggregate is
/// itself a function of time, evaluated per chronon:
///
///   `AGG(A)(r)(s) = f({ t.v(A)(s) | t ∈ r, s ∈ vls(t,A,R) })`
///
/// i.e. at every chronon `s`, the aggregate combines the model-level values
/// of the tuples *defined at s*. COUNT ranges over tuple lifespans instead
/// (`s ∈ t.l`): it counts the objects alive at `s`. Chronons where no input
/// contributes are simply outside the result's lifespan — consistent with
/// "undefined means the attribute does not exist", an empty relation
/// aggregates to the empty relation, never to a null or a zero row.
///
/// With GROUP-BY attributes `G1..Gk`, a tuple belongs to the group
/// `<g1..gk>` at chronon `s` iff `t.v(Gi)(s) = gi` for every `i` — group
/// membership is itself time-varying when a grouping attribute's value
/// changes over the tuple's lifespan. The result has one tuple per distinct
/// key vector: its lifespan is the set of chronons where the group is
/// inhabited, its group attributes are constant over that lifespan, and its
/// aggregate attribute is the per-chronon aggregate over the members.
///
/// Layer contract: this file is the single semantics implementation, shared
/// by the whole-relation `Aggregate` operator below, the streaming
/// `HashAggregateCursor` (query/plan.h) and — through both — the
/// materializing interpreter, so the three execution paths are
/// bit-identical by construction (property-tested in
/// tests/aggregate_test.cc). `GroupedAggregator` is deliberately
/// order-insensitive: per elementary interval the active values are folded
/// in sorted value order, so floating-point sums cannot depend on which
/// physical plan delivered the input tuples first.
///
/// Two grouping paths mirror the hash join's design (algebra/join.h):
///  * fast path — every grouping attribute is constant over the tuple's
///    lifespan (the paper's CD membership, guaranteed for key attributes):
///    one digest probe (`JoinKeyDigest`) files the whole tuple under its
///    group;
///  * per-chronon fallback — some grouping value varies: the tuple's
///    membership domain is split into maximal constant-key runs (cut at the
///    grouping values' segment boundaries, so the chronon-exact result
///    costs O(#segments), not O(#chronons)), each filed separately. Exact,
///    never approximate.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief The aggregate functions of the subsystem. COUNT ranges over tuple
/// lifespans; the others over one attribute's temporal value.
enum class AggregateFn : uint8_t {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

/// \brief Stable lower-case name ("count", "sum", "min", "max", "avg") —
/// also the HRQL keyword.
std::string_view AggregateFnName(AggregateFn fn);

/// \brief Parses an AggregateFnName back; error on unknown names.
Result<AggregateFn> AggregateFnFromName(std::string_view name);

/// \brief One aggregation request: the function, its input attribute
/// (empty for COUNT, which counts whole tuples), and the grouping
/// attributes (empty for a whole-relation aggregate).
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kCount;
  std::string value_attr;
  std::vector<std::string> group_by;
};

/// \brief Result scheme + precondition checks of an aggregation: the
/// grouping attributes (in spec order, definitions copied from the input)
/// followed by the aggregate attribute, named `count` / `<fn>_<attr>`.
/// Keyless (a derived relation with structural set semantics).
///
/// Errors: unknown attribute names, duplicate grouping attributes, a
/// value attribute on COUNT (or a missing one on the others), SUM/AVG over
/// a non-numeric domain, MIN/MAX over kBool (no order), or an aggregate
/// attribute name colliding with a grouping attribute.
///
/// Domains: COUNT → kInt over the input scheme lifespan; SUM → the input
/// attribute's domain; AVG → kDouble; MIN/MAX → the input attribute's
/// domain. Value-aggregate ALS is the input attribute's ALS.
Result<SchemePtr> AggregateScheme(const SchemePtr& in,
                                  const AggregateSpec& spec,
                                  std::string result_name = "aggregate_result");

/// \brief The shared grouping/aggregation kernel: fold materialized input
/// tuples one at a time, then finish into one output tuple per group.
///
/// State is per *group*, not per input tuple: a group holds its key vector,
/// the member chronon spans (COUNT events and the group lifespan), and the
/// contributed value segments — never whole input tuples.
class GroupedAggregator {
 public:
  /// \brief Validates `spec` against `in` (via AggregateScheme) and builds
  /// an empty aggregator.
  static Result<GroupedAggregator> Make(
      const SchemePtr& in, const AggregateSpec& spec,
      std::string result_name = "aggregate_result");

  /// \brief The output scheme (group attributes + aggregate attribute).
  const SchemePtr& scheme() const { return out_scheme_; }

  /// \brief Pre-sizes the group table (the optimizer's group estimate).
  void Reserve(size_t expected_groups);

  /// \brief Folds one input tuple into its group(s). `t` must be
  /// materialized (model-level) and bound to the input scheme; the caller
  /// is responsible for set semantics (folding a duplicate double-counts).
  Status Fold(const Tuple& t);

  /// \brief Folds a contiguous run of tuple handles in order — the tight
  /// per-batch loop of the batched HashAggregateCursor and the per-morsel
  /// kernel of its parallel fold (equivalent to Fold on each handle).
  Status FoldBatch(const TuplePtr* handles, size_t n);

  /// \brief Emits one output tuple per group, in first-touch order. Each
  /// group's aggregate is computed by an event sweep over its contribution
  /// segments, folding active values in sorted order per elementary
  /// interval (order-insensitive, so all execution paths agree bitwise).
  Result<std::vector<TuplePtr>> Finish() const;

  /// \brief An empty aggregator with this one's configuration (spec,
  /// schemes, indices) and none of its state — the per-morsel partial the
  /// parallel HashAggregateCursor folds into on each worker.
  GroupedAggregator Fork() const;

  /// \brief Merges a partial aggregator's state into this one: each of
  /// `other`'s groups is located (or first-touched) here and its member
  /// spans and contribution segments appended. Because Finish's sweep is
  /// order-insensitive, Fold-everything-here and Fold-into-partials-then-
  /// MergeFrom produce bitwise-identical group results; merging partials
  /// in morsel order also makes group first-touch order deterministic.
  /// `other` must be a Fork() of an aggregator with this configuration.
  void MergeFrom(const GroupedAggregator& other);

  /// \brief Groups built so far (PlanStats::agg_groups_built).
  size_t group_count() const { return groups_.size(); }

  /// \brief Tuples that took the per-chronon varying-group-key fallback
  /// (PlanStats::agg_fallback_tuples).
  size_t fallback_tuples() const { return fallback_tuples_; }

 private:
  /// One group's accumulated state.
  struct Group {
    std::vector<Value> key;
    /// Chronon spans of the members (the COUNT events; their union is the
    /// group lifespan).
    std::vector<Interval> member_spans;
    /// Value segments contributed by the members (value aggregates only).
    std::vector<Segment> contributions;
  };

  GroupedAggregator(SchemePtr out_scheme, AggregateFn fn,
                    std::optional<size_t> value_idx, DomainType value_type,
                    std::vector<size_t> group_idx);

  /// The group for `key`, created on first touch.
  Group* GroupFor(std::vector<Value> key);

  /// Files `span` (and the value function restricted to it) under `g`.
  void AddContribution(Group* g, const Lifespan& span,
                       const TemporalValue* value);

  SchemePtr out_scheme_;
  AggregateFn fn_;
  std::optional<size_t> value_idx_;  // input index; nullopt for COUNT
  /// Input value domain (kInt for COUNT): picks the exact incremental int
  /// sum vs the per-interval sorted double re-fold in the value sweep.
  DomainType value_type_ = DomainType::kInt;
  std::vector<size_t> group_idx_;    // input indices, spec order
  std::vector<Group> groups_;        // first-touch order
  /// Key digest (JoinKeyDigest fold) -> group indices (collision chain;
  /// exact key-vector equality decides membership, the digest only buckets).
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
  size_t fallback_tuples_ = 0;
};

/// \brief The whole-relation operator: `AGG[spec](r)` as defined above.
/// Input is materialized first (model-level values, applied once), exactly
/// like the other whole-relation operators.
Result<Relation> Aggregate(const Relation& r, const AggregateSpec& spec,
                           std::string result_name = "aggregate_result");

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_AGGREGATE_H_
