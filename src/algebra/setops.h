#ifndef HRDM_ALGEBRA_SETOPS_H_
#define HRDM_ALGEBRA_SETOPS_H_

/// \file setops.h
/// \brief Set-theoretic and object-based set operations (Section 4.1).
///
/// Standard operators (`Union`, `Intersect`, `Difference`,
/// `CartesianProduct`) treat historical relations as plain sets of tuples.
/// As the paper's Figure 11 shows, the standard union of two histories of
/// the same object produces two separate tuples — a counter-intuitive
/// result that motivates the *object-based* operators (`UnionO`,
/// `IntersectO`, `DifferenceO`), which merge *mergeable* tuples
/// (merge-compatible schemes, equal key values, no contradictions).
///
/// Result schemes follow the paper:
///  * `r1 ∪ r2`   on `<A1, K1, ALS1 ∪ ALS2, DOM1>`
///  * `r1 ∩ r2`   on `<A1, K1, ALS1 ∩ ALS2, DOM1>`
///  * `r1 − r2`   on `R1`
///  * `r1 × r2`   on `<A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`,
///    tuple lifespans unioned (Section 5 discusses the resulting
///    undefined/"null" regions; our partial functions represent them as
///    plain undefinedness).
///
/// Standard-operator results are sets (key uniqueness deliberately NOT
/// enforced; see Figure 11); object-based results restore the one-tuple-
/// per-object reading.

#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief The model-level view of a relation: every tuple materialized via
/// Tuple::Materialized (interpolation applied), exact duplicates collapsed.
/// All algebra operators work on materialized relations — the paper's
/// semantics are defined at the model level, where values are total
/// functions on `vls` (Figure 9).
Result<Relation> MaterializeRelation(const Relation& r);

/// \brief `r1 ∪ r2`. Requires union compatibility.
Result<Relation> Union(const Relation& r1, const Relation& r2);

/// \brief `r1 ∩ r2`. Requires union compatibility. Tuples present (as sets
/// of attribute assignments) in both.
Result<Relation> Intersect(const Relation& r1, const Relation& r2);

/// \brief `r1 − r2`. Requires union compatibility.
Result<Relation> Difference(const Relation& r1, const Relation& r2);

/// \brief `r1 × r2`. Requires disjoint attribute sets.
Result<Relation> CartesianProduct(const Relation& r1, const Relation& r2,
                                  std::string result_name = "product");

/// \brief Object-based union `r1 ∪ₒ r2`: mergeable tuples are merged,
/// unmatched tuples pass through. Requires merge compatibility.
Result<Relation> UnionO(const Relation& r1, const Relation& r2);

/// \brief Object-based intersection `r1 ∩ₒ r2`: for each mergeable pair,
/// a tuple with lifespan `t1.l ∩ t2.l` whose values are the pointwise
/// function intersections (defined where both agree). Requires merge
/// compatibility.
Result<Relation> IntersectO(const Relation& r1, const Relation& r2);

/// \brief Object-based difference `r1 −ₒ r2`: unmatched tuples of r1 pass
/// through; a tuple mergeable with some t2 survives on `t1.l − t2.l` with
/// values restricted accordingly. Requires merge compatibility.
Result<Relation> DifferenceO(const Relation& r1, const Relation& r2);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_SETOPS_H_
