#ifndef HRDM_ALGEBRA_SETOPS_H_
#define HRDM_ALGEBRA_SETOPS_H_

/// \file setops.h
/// \brief Set-theoretic and object-based set operations (Section 4.1).
///
/// Standard operators (`Union`, `Intersect`, `Difference`,
/// `CartesianProduct`) treat historical relations as plain sets of tuples.
/// As the paper's Figure 11 shows, the standard union of two histories of
/// the same object produces two separate tuples — a counter-intuitive
/// result that motivates the *object-based* operators (`UnionO`,
/// `IntersectO`, `DifferenceO`), which merge *mergeable* tuples
/// (merge-compatible schemes, equal key values, no contradictions).
///
/// Result schemes follow the paper:
///  * `r1 ∪ r2`   on `<A1, K1, ALS1 ∪ ALS2, DOM1>`
///  * `r1 ∩ r2`   on `<A1, K1, ALS1 ∩ ALS2, DOM1>`
///  * `r1 − r2`   on `R1`
///  * `r1 × r2`   on `<A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`,
///    tuple lifespans unioned (Section 5 discusses the resulting
///    undefined/"null" regions; our partial functions represent them as
///    plain undefinedness).
///
/// Standard-operator results are sets (key uniqueness deliberately NOT
/// enforced; see Figure 11); object-based results restore the one-tuple-
/// per-object reading.

#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief The model-level view of a relation: every tuple materialized via
/// Tuple::Materialized (interpolation applied), exact duplicates collapsed.
/// All algebra operators work on materialized relations — the paper's
/// semantics are defined at the model level, where values are total
/// functions on `vls` (Figure 9).
Result<Relation> MaterializeRelation(const Relation& r);

/// \brief `r1 ∪ r2`. Requires union compatibility.
Result<Relation> Union(const Relation& r1, const Relation& r2);

/// \brief `r1 ∩ r2`. Requires union compatibility. Tuples present (as sets
/// of attribute assignments) in both.
Result<Relation> Intersect(const Relation& r1, const Relation& r2);

/// \brief `r1 − r2`. Requires union compatibility.
Result<Relation> Difference(const Relation& r1, const Relation& r2);

/// \brief `r1 × r2`. Requires disjoint attribute sets.
Result<Relation> CartesianProduct(const Relation& r1, const Relation& r2,
                                  std::string result_name = "product");

/// \brief Object-based union `r1 ∪ₒ r2`: mergeable tuples are merged,
/// unmatched tuples pass through. Requires merge compatibility.
Result<Relation> UnionO(const Relation& r1, const Relation& r2);

/// \brief Object-based intersection `r1 ∩ₒ r2`: for each mergeable pair,
/// a tuple with lifespan `t1.l ∩ t2.l` whose values are the pointwise
/// function intersections (defined where both agree). Requires merge
/// compatibility.
Result<Relation> IntersectO(const Relation& r1, const Relation& r2);

/// \brief Object-based difference `r1 −ₒ r2`: unmatched tuples of r1 pass
/// through; a tuple mergeable with some t2 survives on `t1.l − t2.l` with
/// values restricted accordingly. Requires merge compatibility.
Result<Relation> DifferenceO(const Relation& r1, const Relation& r2);

// --- per-tuple kernels (shared by the whole-relation API above and the
// --- streaming cursors in query/plan.h) --------------------------------------

/// \brief The six set operators, as a value (used by the plan layer's
/// SetOpCursor to dispatch without AST knowledge).
enum class SetOpKind : uint8_t {
  kUnion,
  kIntersect,
  kDifference,
  kUnionO,
  kIntersectO,
  kDifferenceO,
};

/// \brief Result scheme of `kind` applied to operands on `s1`/`s2`,
/// including the union-/merge-compatibility checks — exactly the errors the
/// whole-relation operator would raise.
Result<SchemePtr> SetOpScheme(SetOpKind kind, const SchemePtr& s1,
                              const SchemePtr& s2);

/// \brief Dispatches to the corresponding whole-relation operator.
Result<Relation> ApplySetOp(SetOpKind kind, const Relation& r1,
                            const Relation& r2);

/// \brief Errors unless the attribute sets of `s1` and `s2` are disjoint
/// (the precondition of × and the joins). `op_label` names the operator in
/// the error message ("Cartesian product", "join", ...).
Status RequireDisjointAttributes(const RelationScheme& s1,
                                 const RelationScheme& s2,
                                 std::string_view op_label);

/// \brief Result scheme of `r1 × r2` (disjointness check included).
Result<SchemePtr> ProductScheme(const SchemePtr& s1, const SchemePtr& s2,
                                std::string result_name = "product");

/// \brief Cartesian-product kernel: the concatenated tuple `t1 × t2` on the
/// *union* of the operand lifespans (Section 4.1/5 — each side's values
/// stay on their own, now partial, domains; the paper's "null values" are
/// plain undefinedness here).
TuplePtr ProductTuple(const Tuple& t1, const Tuple& t2,
                      const SchemePtr& out_scheme);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_SETOPS_H_
