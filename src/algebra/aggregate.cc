#include "algebra/aggregate.h"

#include <algorithm>
#include <set>
#include <utility>

#include "algebra/join.h"
#include "algebra/setops.h"
#include "util/format.h"

namespace hrdm {

namespace {

/// Fold of the per-column JoinKeyDigest values into one group-key digest
/// (the hash join's combining step, so the fast path shares its collision
/// behavior: digests bucket, exact keys decide).
uint64_t KeyDigest(const std::vector<Value>& key) {
  uint64_t h = kJoinKeyDigestSeed;
  for (const Value& v : key) h = CombineJoinKeyDigest(h, JoinKeyDigest(v));
  return h;
}

/// Deterministic, order-insensitive sum of the active double values:
/// std::multiset iterates in value order, so the fold order is a function
/// of the *set* of active values, never of tuple arrival order.
double SortedDoubleSum(const std::multiset<Value>& active) {
  double sum = 0;
  for (const Value& v : active) sum += v.AsNumeric();
  return sum;
}

/// COUNT sweep: +1/-1 events at member-span boundaries; emits one segment
/// per elementary interval with a positive count. O(n log n) in spans.
Result<TemporalValue> CountSweep(const std::vector<Interval>& spans) {
  if (spans.empty()) return TemporalValue();
  struct Ev {
    TimePoint at;
    int64_t delta;
  };
  std::vector<Ev> events;
  events.reserve(spans.size() * 2);
  for (const Interval& iv : spans) {
    events.push_back({iv.begin, +1});
    events.push_back({iv.end + 1, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const Ev& a, const Ev& b) { return a.at < b.at; });
  std::vector<Segment> out;
  int64_t active = 0;
  size_t i = 0;
  while (i < events.size()) {
    const TimePoint t = events[i].at;
    while (i < events.size() && events[i].at == t) active += events[i++].delta;
    if (i == events.size()) break;  // all spans closed
    if (active > 0) {
      out.push_back({Interval(t, events[i].at - 1), Value::Int(active)});
    }
  }
  return TemporalValue::FromSegments(std::move(out));
}

/// Value-aggregate sweep: segment begin/end events maintain the multiset of
/// active values; per elementary interval the aggregate is computed from
/// that multiset alone. kInt sums are kept incrementally (exact, modular);
/// kDouble sums are re-folded in sorted order per interval so the result
/// never depends on input order.
Result<TemporalValue> ValueSweep(const std::vector<Segment>& contributions,
                                 AggregateFn fn, DomainType value_type) {
  if (contributions.empty()) return TemporalValue();
  struct Ev {
    TimePoint at;
    bool add;
    const Value* v;
  };
  std::vector<Ev> events;
  events.reserve(contributions.size() * 2);
  for (const Segment& s : contributions) {
    events.push_back({s.interval.begin, true, &s.value});
    events.push_back({s.interval.end + 1, false, &s.value});
  }
  std::sort(events.begin(), events.end(),
            [](const Ev& a, const Ev& b) { return a.at < b.at; });

  std::multiset<Value> active;
  uint64_t int_sum = 0;  // unsigned: exact +/- without signed overflow
  std::vector<Segment> out;
  size_t i = 0;
  while (i < events.size()) {
    const TimePoint t = events[i].at;
    while (i < events.size() && events[i].at == t) {
      const Ev& e = events[i++];
      if (e.add) {
        active.insert(*e.v);
        if (value_type == DomainType::kInt) {
          int_sum += static_cast<uint64_t>(e.v->AsInt());
        }
      } else {
        active.erase(active.find(*e.v));
        if (value_type == DomainType::kInt) {
          int_sum -= static_cast<uint64_t>(e.v->AsInt());
        }
      }
    }
    if (i == events.size()) break;  // all segments closed
    if (active.empty()) continue;   // the aggregate is undefined here
    const Interval iv(t, events[i].at - 1);
    Value v;
    switch (fn) {
      case AggregateFn::kMin:
        v = *active.begin();
        break;
      case AggregateFn::kMax:
        v = *active.rbegin();
        break;
      case AggregateFn::kSum:
        v = value_type == DomainType::kInt
                ? Value::Int(static_cast<int64_t>(int_sum))
                : Value::Double(SortedDoubleSum(active));
        break;
      case AggregateFn::kAvg: {
        const double sum =
            value_type == DomainType::kInt
                ? static_cast<double>(static_cast<int64_t>(int_sum))
                : SortedDoubleSum(active);
        v = Value::Double(sum / static_cast<double>(active.size()));
        break;
      }
      case AggregateFn::kCount:
        return Status::Internal("COUNT reached the value sweep");
    }
    out.push_back({iv, std::move(v)});
  }
  return TemporalValue::FromSegments(std::move(out));
}

}  // namespace

std::string_view AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kAvg:
      return "avg";
  }
  return "unknown";
}

Result<AggregateFn> AggregateFnFromName(std::string_view name) {
  if (name == "count") return AggregateFn::kCount;
  if (name == "sum") return AggregateFn::kSum;
  if (name == "min") return AggregateFn::kMin;
  if (name == "max") return AggregateFn::kMax;
  if (name == "avg") return AggregateFn::kAvg;
  return Status::InvalidArgument(
      StrPrintf("unknown aggregate function '%.*s'",
                static_cast<int>(name.size()), name.data()));
}

Result<SchemePtr> AggregateScheme(const SchemePtr& in,
                                  const AggregateSpec& spec,
                                  std::string result_name) {
  std::vector<AttributeDef> attrs;
  attrs.reserve(spec.group_by.size() + 1);
  for (size_t i = 0; i < spec.group_by.size(); ++i) {
    for (size_t j = i + 1; j < spec.group_by.size(); ++j) {
      if (spec.group_by[i] == spec.group_by[j]) {
        return Status::InvalidArgument(
            StrPrintf("duplicate grouping attribute '%s'",
                      spec.group_by[i].c_str()));
      }
    }
    HRDM_ASSIGN_OR_RETURN(size_t idx, in->RequireIndex(spec.group_by[i]));
    attrs.push_back(in->attribute(idx));
  }

  AttributeDef agg;
  agg.interpolation = InterpolationKind::kDiscrete;
  if (spec.fn == AggregateFn::kCount) {
    if (!spec.value_attr.empty()) {
      return Status::InvalidArgument(
          "count aggregates whole tuples and takes no attribute");
    }
    agg.name = "count";
    agg.type = DomainType::kInt;
    agg.lifespan = in->SchemeLifespan();
  } else {
    if (spec.value_attr.empty()) {
      return Status::InvalidArgument(
          StrPrintf("%.*s needs an attribute to aggregate",
                    static_cast<int>(AggregateFnName(spec.fn).size()),
                    AggregateFnName(spec.fn).data()));
    }
    HRDM_ASSIGN_OR_RETURN(size_t vidx, in->RequireIndex(spec.value_attr));
    const AttributeDef& vdef = in->attribute(vidx);
    const bool numeric =
        vdef.type == DomainType::kInt || vdef.type == DomainType::kDouble;
    if ((spec.fn == AggregateFn::kSum || spec.fn == AggregateFn::kAvg) &&
        !numeric) {
      return Status::InvalidArgument(
          StrPrintf("cannot %.*s non-numeric attribute '%s'",
                    static_cast<int>(AggregateFnName(spec.fn).size()),
                    AggregateFnName(spec.fn).data(), vdef.name.c_str()));
    }
    if ((spec.fn == AggregateFn::kMin || spec.fn == AggregateFn::kMax) &&
        vdef.type == DomainType::kBool) {
      return Status::InvalidArgument(
          StrPrintf("min/max over unordered bool attribute '%s'",
                    vdef.name.c_str()));
    }
    agg.name = std::string(AggregateFnName(spec.fn)) + "_" + vdef.name;
    agg.type =
        spec.fn == AggregateFn::kAvg ? DomainType::kDouble : vdef.type;
    agg.lifespan = vdef.lifespan;
  }
  for (const std::string& g : spec.group_by) {
    if (g == agg.name) {
      return Status::InvalidArgument(
          StrPrintf("aggregate attribute '%s' collides with a grouping "
                    "attribute",
                    agg.name.c_str()));
    }
  }
  attrs.push_back(std::move(agg));
  // Keyless: a derived relation under structural set semantics, like a
  // key-dropping projection.
  return RelationScheme::Make(std::move(result_name), std::move(attrs), {});
}

GroupedAggregator::GroupedAggregator(SchemePtr out_scheme, AggregateFn fn,
                                     std::optional<size_t> value_idx,
                                     DomainType value_type,
                                     std::vector<size_t> group_idx)
    : out_scheme_(std::move(out_scheme)),
      fn_(fn),
      value_idx_(value_idx),
      value_type_(value_type),
      group_idx_(std::move(group_idx)) {}

Result<GroupedAggregator> GroupedAggregator::Make(const SchemePtr& in,
                                                  const AggregateSpec& spec,
                                                  std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr out,
                        AggregateScheme(in, spec, std::move(result_name)));
  std::optional<size_t> value_idx;
  DomainType value_type = DomainType::kInt;
  if (spec.fn != AggregateFn::kCount) {
    HRDM_ASSIGN_OR_RETURN(size_t vidx, in->RequireIndex(spec.value_attr));
    value_idx = vidx;
    value_type = in->attribute(vidx).type;
  }
  std::vector<size_t> group_idx;
  group_idx.reserve(spec.group_by.size());
  for (const std::string& g : spec.group_by) {
    HRDM_ASSIGN_OR_RETURN(size_t gidx, in->RequireIndex(g));
    group_idx.push_back(gidx);
  }
  return GroupedAggregator(std::move(out), spec.fn, value_idx, value_type,
                           std::move(group_idx));
}

void GroupedAggregator::Reserve(size_t expected_groups) {
  // The estimate is advisory; cap it so a wild cardinality guess cannot
  // balloon the table.
  const size_t capped = std::min<size_t>(expected_groups, 1u << 20);
  groups_.reserve(capped);
  buckets_.reserve(capped);
}

GroupedAggregator::Group* GroupedAggregator::GroupFor(std::vector<Value> key) {
  std::vector<size_t>& bucket = buckets_[KeyDigest(key)];
  for (size_t idx : bucket) {
    if (groups_[idx].key == key) return &groups_[idx];
  }
  bucket.push_back(groups_.size());
  groups_.push_back(Group{std::move(key), {}, {}});
  return &groups_.back();
}

void GroupedAggregator::AddContribution(Group* g, const Lifespan& span,
                                        const TemporalValue* value) {
  for (const Interval& iv : span.intervals()) g->member_spans.push_back(iv);
  if (value != nullptr) {
    TemporalValue clipped = value->Restrict(span);
    for (const Segment& s : clipped.segments()) {
      g->contributions.push_back(s);
    }
  }
}

Status GroupedAggregator::FoldBatch(const TuplePtr* handles, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    HRDM_RETURN_IF_ERROR(Fold(*handles[i]));
  }
  return Status::OK();
}

Status GroupedAggregator::Fold(const Tuple& t) {
  // The membership domain: chronons where every grouping value is defined
  // (for no grouping, the whole tuple lifespan — COUNT counts objects
  // alive, value aggregates clip to the value's own domain below).
  Lifespan domain = t.lifespan();
  bool constant_key = true;
  for (size_t g : group_idx_) {
    const TemporalValue& v = t.value(g);
    domain = domain.Intersect(v.domain());
    if (!v.IsConstant()) constant_key = false;
  }
  if (domain.empty()) return Status::OK();
  const TemporalValue* value =
      value_idx_ ? &t.value(*value_idx_) : nullptr;

  if (constant_key) {
    // Fast path: the whole membership domain files under one key (the
    // JoinKeyDigest fast path of the hash join, reused for grouping).
    std::vector<Value> key;
    key.reserve(group_idx_.size());
    for (size_t g : group_idx_) key.push_back(t.value(g).ConstantValue());
    AddContribution(GroupFor(std::move(key)), domain, value);
    return Status::OK();
  }

  // Per-chronon fallback: some grouping value varies over the lifespan, so
  // membership is time-varying. The key vector is piecewise constant over
  // the refinement of the grouping values' segment boundaries, so the
  // domain is split there — chronon-exact results at O(#segments) cost,
  // not O(#chronons) — and maximal equal-key runs file separately.
  ++fallback_tuples_;
  std::vector<TimePoint> cuts;
  for (size_t g : group_idx_) {
    for (const Segment& s : t.value(g).segments()) {
      cuts.push_back(s.interval.begin);
      if (s.interval.end != kTimeMax) cuts.push_back(s.interval.end + 1);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Value> run_key;
  TimePoint run_begin = 0;
  TimePoint run_end = 0;
  bool open = false;
  auto close_run = [&]() {
    if (!open) return;
    AddContribution(GroupFor(run_key), Span(run_begin, run_end), value);
    open = false;
  };
  for (const Interval& iv : domain.intervals()) {
    TimePoint pb = iv.begin;
    auto cut = std::upper_bound(cuts.begin(), cuts.end(), pb);
    while (pb <= iv.end) {
      // The piece [pb, pe] crosses no grouping-segment boundary, so every
      // grouping value is constant on it: one evaluation at pb suffices.
      TimePoint pe = iv.end;
      if (cut != cuts.end() && *cut <= iv.end) pe = *(cut++) - 1;
      std::vector<Value> key;
      key.reserve(group_idx_.size());
      for (size_t g : group_idx_) key.push_back(t.value(g).ValueAt(pb));
      if (open && run_end + 1 == pb && key == run_key) {
        run_end = pe;
      } else {
        close_run();
        run_key = std::move(key);
        run_begin = pb;
        run_end = pe;
        open = true;
      }
      pb = pe + 1;
    }
  }
  close_run();
  return Status::OK();
}

GroupedAggregator GroupedAggregator::Fork() const {
  return GroupedAggregator(out_scheme_, fn_, value_idx_, value_type_,
                           group_idx_);
}

void GroupedAggregator::MergeFrom(const GroupedAggregator& other) {
  for (const Group& og : other.groups_) {
    Group* g = GroupFor(og.key);
    g->member_spans.insert(g->member_spans.end(), og.member_spans.begin(),
                           og.member_spans.end());
    g->contributions.insert(g->contributions.end(), og.contributions.begin(),
                            og.contributions.end());
  }
  fallback_tuples_ += other.fallback_tuples_;
}

Result<std::vector<TuplePtr>> GroupedAggregator::Finish() const {
  std::vector<TuplePtr> out;
  out.reserve(groups_.size());
  for (const Group& g : groups_) {
    // The group lifespan: chronons where the group is inhabited.
    const Lifespan span = Lifespan::FromIntervals(g.member_spans);
    if (span.empty()) continue;
    std::vector<TemporalValue> values;
    values.reserve(group_idx_.size() + 1);
    for (const Value& k : g.key) {
      HRDM_ASSIGN_OR_RETURN(TemporalValue constant,
                            TemporalValue::Constant(span, k));
      values.push_back(std::move(constant));
    }
    Result<TemporalValue> agg =
        fn_ == AggregateFn::kCount
            ? CountSweep(g.member_spans)
            : ValueSweep(g.contributions, fn_, value_type_);
    HRDM_RETURN_IF_ERROR(agg.status());
    values.push_back(std::move(*agg));
    out.push_back(std::make_shared<const Tuple>(
        Tuple::FromParts(out_scheme_, span, std::move(values))));
  }
  return out;
}

Result<Relation> Aggregate(const Relation& r, const AggregateSpec& spec,
                           std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(
      GroupedAggregator agg,
      GroupedAggregator::Make(r.scheme(), spec, std::move(result_name)));
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  for (const TuplePtr& t : m.tuple_ptrs()) {
    HRDM_RETURN_IF_ERROR(agg.Fold(*t));
  }
  HRDM_ASSIGN_OR_RETURN(std::vector<TuplePtr> tuples, agg.Finish());
  Relation out(agg.scheme());
  for (TuplePtr& t : tuples) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(t)));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
