#ifndef HRDM_ALGEBRA_WHEN_H_
#define HRDM_ALGEBRA_WHEN_H_

/// \file when.h
/// \brief WHEN (Section 4.5): the lifespan-sorted operator `Ω`.
///
/// "All of the operators except for WHEN are (unary or binary) operations
/// on historical relations producing historical relations. The unary
/// operator WHEN, denoted Ω, maps relations to lifespans ...
/// Ω(r) = LS(r)." The algebra is thus multi-sorted; the lifespan returned
/// by WHEN can parameterise TIME-SLICE or SELECT-IF ("when particular
/// conditions are satisfied").

#include "core/lifespan.h"
#include "core/relation.h"

namespace hrdm {

/// \brief `Ω(r) = LS(r)`: the set of times over which the relation is
/// defined.
inline Lifespan When(const Relation& r) { return r.LS(); }

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_WHEN_H_
