#ifndef HRDM_ALGEBRA_JOIN_H_
#define HRDM_ALGEBRA_JOIN_H_

/// \file join.h
/// \brief The JOIN family (Section 4.6): θ-JOIN, EQUIJOIN, NATURAL-JOIN and
/// TIME-JOIN.
///
/// All joins follow the paper's chosen semantics (Section 5): a joined
/// tuple is defined only over the chronons where the join condition
/// actually holds — equivalently, JOIN is the appropriate SELECT-WHEN of
/// the Cartesian product — "and thus no nulls result". The result scheme is
/// `R3 = <A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>`.
///
///  * `ThetaJoin(r1, A, θ, r2, B)`: the joined tuple's lifespan is
///    `{s | t_r1(A)(s) θ t_r2(B)(s)}` (evaluated on model-level values),
///    with every attribute restricted to it.
///  * `EquiJoin` — the θ = "=" case. (The paper also gives a "simplified"
///    equijoin whose lifespan is the bare `vls ∩ vls` with the A/B
///    functions intersected; since §4.6 states the equijoin "is just a
///    special case of the general θ-JOIN" and §5 equates JOIN with
///    SELECT-WHEN ∘ ×, we implement the θ-join reading — the two coincide
///    exactly when the matched functions agree throughout the vls
///    intersection.)
///  * `NaturalJoin(r1, r2)`: equality on every shared attribute name; the
///    shared columns appear once.
///  * `TimeJoin(r1, A, r2)` — `r1 [@A] r2` for a time-valued A: "a join of
///    dynamic TIME-SLICEs of both relations". The exact formula is garbled
///    in the surviving text; we reconstruct it per that sentence: for each
///    pair, both tuples are restricted to `L = image(t1(A))`, joined over
///    the common remaining lifespan `t1.l ∩ L ∩ t2.l`.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/relation.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm {

/// \brief `r1 JOIN r2 [A θ B]`. Requires disjoint attribute sets and
/// comparable domains for A and B.
Result<Relation> ThetaJoin(const Relation& r1, std::string_view attr_a,
                           CompareOp op, const Relation& r2,
                           std::string_view attr_b,
                           std::string result_name = "join_result");

/// \brief `r1 [A = B] r2`.
Result<Relation> EquiJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2, std::string_view attr_b,
                          std::string result_name = "equijoin_result");

/// \brief `r1 NATURAL-JOIN r2` over all shared attribute names (which may
/// be none — then the join degenerates to a product over the common
/// lifespan).
Result<Relation> NaturalJoin(const Relation& r1, const Relation& r2,
                             std::string result_name = "njoin_result");

/// \brief `r1 [@A] r2` for time-valued attribute A of r1. Requires
/// disjoint attribute sets.
Result<Relation> TimeJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2,
                          std::string result_name = "timejoin_result");

// --- scheme kernels (shared by the whole-relation API above and the
// --- plan layer in query/plan.h) ---------------------------------------------

/// \brief Result scheme + precondition checks of the θ-join (disjoint
/// attributes, both join attributes resolvable).
Result<SchemePtr> ThetaJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                  const SchemePtr& s2, std::string_view attr_b,
                                  std::string result_name = "join_result");

/// \brief Result scheme of the natural join (shared attributes appear once).
Result<SchemePtr> NaturalJoinScheme(const SchemePtr& s1, const SchemePtr& s2,
                                    std::string result_name = "njoin_result");

/// \brief Result scheme + precondition checks of the time-join (disjoint
/// attributes, `attr_a` time-valued).
Result<SchemePtr> TimeJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                 const SchemePtr& s2,
                                 std::string result_name = "timejoin_result");

// --- joined-tuple assembly kernel --------------------------------------------
//
// One implementation of the paper's joined-tuple semantics, shared by the
// whole-relation joins above and every physical join cursor in
// query/plan.h: given a pair (t1, t2) and the lifespan over which the join
// condition holds, the joined tuple is the concatenation of the operands'
// attributes (in result-scheme order, shared attributes once) with every
// value restricted to that lifespan — "and thus no nulls result".

/// \brief Precomputed attribute source maps from a join result scheme back
/// into the two operand schemes, plus the assembly step itself.
class JoinAssembly {
 public:
  /// \brief Maps each result attribute to its source column in `s1`
  /// (preferred, covers shared natural-join attributes) or `s2`.
  JoinAssembly(SchemePtr scheme, const RelationScheme& s1,
               const RelationScheme& s2);

  const SchemePtr& scheme() const { return scheme_; }

  /// \brief The joined tuple of (t1, t2) restricted to lifespan `l`
  /// (which must be the chronons where the join condition holds).
  Tuple Assemble(const Tuple& t1, const Tuple& t2, const Lifespan& l) const;

 private:
  SchemePtr scheme_;
  std::vector<size_t> left_src_;   // result attr -> index in t1, or npos
  std::vector<size_t> right_src_;  // result attr -> index in t2, or npos
};

// --- per-pair lifespan kernels -----------------------------------------------

/// \brief θ-JOIN: `{ s | t1(A)(s) θ t2(B)(s) }` — where both functions are
/// defined and the comparison holds. Comparison type errors propagate.
Result<Lifespan> ThetaJoinPairLifespan(const Tuple& t1, size_t attr_a,
                                       CompareOp op, const Tuple& t2,
                                       size_t attr_b);

/// \brief NATURAL-JOIN: the chronons of `t1.l ∩ t2.l` where every shared
/// attribute pair agrees; with no shared attributes, the common lifespan
/// (the degenerate-product case).
Lifespan NaturalJoinPairLifespan(
    const Tuple& t1, const Tuple& t2,
    const std::vector<std::pair<size_t, size_t>>& shared);

/// \brief TIME-JOIN: `image(t1(A)) ∩ t1.l ∩ t2.l` — the join of the dynamic
/// TIME-SLICEs of both sides. Errors if `attr_a` is not time-valued.
Result<Lifespan> TimeJoinPairLifespan(const Tuple& t1, size_t attr_a,
                                      const Tuple& t2);

/// \brief The attribute-name intersection of two schemes, as index pairs
/// `(index in s1, index in s2)` — the NATURAL-JOIN equality columns.
std::vector<std::pair<size_t, size_t>> SharedAttributes(
    const RelationScheme& s1, const RelationScheme& s2);

/// \brief Equality digest of a join value: any two values that can satisfy
/// `v = w` under `Compare` produce the same digest (kInt/kDouble are
/// digested through their common numeric view, so `5 = 5.0` collides as it
/// must). Digest equality does NOT imply value equality — callers always
/// re-check with the exact per-pair kernel. Absent values digest to a fixed
/// sentinel (they can never match, and the exact check drops them).
uint64_t JoinKeyDigest(const Value& v);

/// \brief FNV-1a seed/step for folding several per-column JoinKeyDigest
/// values into one key digest. One definition shared by the hash join's
/// build/probe digesting (query/plan.cc) and the aggregation group keys
/// (algebra/aggregate.cc), so the two sides of a probe — and grouping —
/// agree bucket-for-bucket by construction.
inline constexpr uint64_t kJoinKeyDigestSeed = 0xcbf29ce484222325ULL;
inline uint64_t CombineJoinKeyDigest(uint64_t h, uint64_t column_digest) {
  return (h ^ column_digest) * 0x100000001b3ULL;
}

/// \brief Time-invariant digest of one tuple's join-key columns:
/// `key_attrs` holds (left index, right index) pairs and `left_side` picks
/// which side `t` is on. A tuple digests only if every key column is a
/// constant function over its lifespan (the paper's CD membership);
/// nullopt otherwise — such tuples take the exact per-chronon fallback.
/// One definition shared by the hash join's build digesting, its probe
/// side, and the batch build loops of query/plan.cc.
std::optional<uint64_t> JoinKeysDigest(
    const Tuple& t, const std::vector<std::pair<size_t, size_t>>& key_attrs,
    bool left_side);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_JOIN_H_
