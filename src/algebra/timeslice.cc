#include "algebra/timeslice.h"

#include "algebra/setops.h"

namespace hrdm {

Result<Relation> TimeSlice(const Relation& r, const Lifespan& l) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const Tuple& t : m) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Restrict(l, r.scheme())));
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> TimeSliceAt(const Relation& r, TimePoint t) {
  return TimeSlice(r, Lifespan::Point(t));
}

Result<Relation> TimeSliceDynamic(const Relation& r, std::string_view attr) {
  HRDM_ASSIGN_OR_RETURN(size_t idx, r.scheme()->RequireIndex(attr));
  if (r.scheme()->attribute(idx).type != DomainType::kTime) {
    return Status::TypeError(
        "dynamic TIME-SLICE requires a time-valued attribute (DOM(A) in "
        "TT); " +
        std::string(attr) + " is " +
        std::string(DomainTypeName(r.scheme()->attribute(idx).type)));
  }
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const Tuple& t : m) {
    HRDM_ASSIGN_OR_RETURN(Lifespan image, t.value(idx).TimeImage());
    HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Restrict(image, r.scheme())));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
