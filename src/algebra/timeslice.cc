#include "algebra/timeslice.h"

#include "algebra/setops.h"

namespace hrdm {

std::optional<Tuple> TimeSliceTupleRaw(const Tuple& t, const Lifespan& l,
                                       const SchemePtr& out_scheme) {
  Tuple restricted = t.Restrict(l, out_scheme);
  if (restricted.lifespan().empty()) return std::nullopt;
  return restricted;
}

TuplePtr TimeSliceTuple(const TuplePtr& t, const Lifespan& l,
                        const SchemePtr& out_scheme) {
  std::optional<Tuple> restricted = TimeSliceTupleRaw(*t, l, out_scheme);
  if (!restricted) return TuplePtr();
  return std::make_shared<const Tuple>(*std::move(restricted));
}

Result<TuplePtr> DynSliceTuple(const TuplePtr& t, size_t attr_idx,
                               const SchemePtr& out_scheme) {
  HRDM_ASSIGN_OR_RETURN(Lifespan image, t->value(attr_idx).TimeImage());
  return TimeSliceTuple(t, image, out_scheme);
}

Result<size_t> DynSliceAttrIndex(const RelationScheme& scheme,
                                 std::string_view attr) {
  HRDM_ASSIGN_OR_RETURN(size_t idx, scheme.RequireIndex(attr));
  if (scheme.attribute(idx).type != DomainType::kTime) {
    return Status::TypeError(
        "dynamic TIME-SLICE requires a time-valued attribute (DOM(A) in "
        "TT); " +
        std::string(attr) + " is " +
        std::string(DomainTypeName(scheme.attribute(idx).type)));
  }
  return idx;
}

Result<Relation> TimeSlice(const Relation& r, const Lifespan& l) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const TuplePtr& t : m.tuple_ptrs()) {
    if (TuplePtr sliced = TimeSliceTuple(t, l, r.scheme())) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(sliced)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> TimeSliceAt(const Relation& r, TimePoint t) {
  return TimeSlice(r, Lifespan::Point(t));
}

Result<Relation> TimeSliceDynamic(const Relation& r, std::string_view attr) {
  HRDM_ASSIGN_OR_RETURN(size_t idx, DynSliceAttrIndex(*r.scheme(), attr));
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const TuplePtr& t : m.tuple_ptrs()) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr sliced, DynSliceTuple(t, idx, r.scheme()));
    if (sliced) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(sliced)));
    }
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
