#include "algebra/when.h"

// WHEN is fully defined in the header; this translation unit exists so the
// module has a .cc anchor for future non-inline additions.
