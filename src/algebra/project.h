#ifndef HRDM_ALGEBRA_PROJECT_H_
#define HRDM_ALGEBRA_PROJECT_H_

/// \file project.h
/// \brief PROJECT (Section 4.2): reduction along the attribute dimension.
///
/// "The project operator π when applied to a relation r removes from r all
/// but a specified set of attributes; as such it reduces a relation along
/// the attribute dimension. It does not change the values of any of the
/// remaining attributes, or the combinations of attribute values in the
/// tuples of the resulting relation."
///
/// Tuple lifespans are unchanged; only the attribute columns are dropped.
/// If the key is projected away the result is a keyless derived relation
/// and structurally identical tuples collapse (set semantics).

#include <string>
#include <vector>

#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief `π_X(r)` — keeps exactly the attributes named in `attrs`
/// (duplicates and unknown names are errors).
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attrs);

// --- per-tuple kernels (shared by the whole-relation API above and the
// --- streaming cursors in query/plan.h) --------------------------------------

/// \brief Source-attribute indices of `out_scheme`'s attributes within
/// `in_scheme`, in result-attribute order.
Result<std::vector<size_t>> ProjectSourceIndices(
    const RelationScheme& in_scheme, const RelationScheme& out_scheme);

/// \brief Projection kernel: `t` narrowed to `out_scheme` via `src` (from
/// ProjectSourceIndices). Lifespan unchanged, so never null.
TuplePtr ProjectTuple(const Tuple& t, const SchemePtr& out_scheme,
                      const std::vector<size_t>& src);

/// \brief Raw projection kernel: the narrowed tuple by value, so the batch
/// cursors in query/plan.h control its allocation (arena placement).
Tuple ProjectTupleRaw(const Tuple& t, const SchemePtr& out_scheme,
                      const std::vector<size_t>& src);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_PROJECT_H_
