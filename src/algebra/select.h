#ifndef HRDM_ALGEBRA_SELECT_H_
#define HRDM_ALGEBRA_SELECT_H_

/// \file select.h
/// \brief SELECT-IF and SELECT-WHEN (Section 4.3): reduction along the
/// value dimension.
///
/// Because tuples carry lifespans, selection comes in two flavors:
///
///  * `SELECT-IF(A θ a, Q, L)(r) = { t ∈ r | Q(s ∈ L ∩ t.l) [t(A)(s) θ a] }`
///    — if the criterion is met (under the existential or universal
///    quantifier over `L ∩ t.l`), the *whole* tuple is returned with its
///    lifespan unchanged: a complete object is or is not selected.
///
///  * `SELECT-WHEN(A θ a)(r)` — a hybrid reduction in both the value and
///    the temporal dimension: a selected tuple's new lifespan is exactly
///    the set of chronons WHEN the criterion is met, with values restricted
///    to those chronons. (The paper's example: the times when John earned
///    30K.)
///
/// Quantifier semantics follow the paper's formal definition literally:
/// with `Q = forall` and `L ∩ t.l = ∅` the condition is vacuously true and
/// the tuple is selected. Chronons where a referenced attribute value is
/// undefined do not satisfy the criterion (so they are fatal to `forall`
/// and useless to `exists`).

#include "algebra/predicate.h"
#include "core/lifespan.h"
#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief `SELECT-IF(p, q, window)(r)`. Pass `window = LS(r)` (or any
/// superset, conventionally "T") to quantify over entire tuple lifespans.
Result<Relation> SelectIf(const Relation& r, const Predicate& p, Quantifier q,
                          const Lifespan& window);

/// \brief `SELECT-IF(p, q, T)(r)` — the paper's L = T case, where
/// `s ∈ (L ∩ t.l)` is simply `s ∈ t.l`.
Result<Relation> SelectIf(const Relation& r, const Predicate& p, Quantifier q);

/// \brief `SELECT-WHEN(p)(r)`: tuples satisfying `p` somewhere, restricted
/// to exactly the chronons when they do.
Result<Relation> SelectWhen(const Relation& r, const Predicate& p);

// --- per-tuple kernels (shared by the whole-relation API above and the
// --- streaming cursors in query/plan.h) --------------------------------------

/// \brief SELECT-IF filter kernel: whether tuple `t` is selected. With
/// `window == nullptr` the quantifier ranges over the whole tuple lifespan
/// (the paper's `L = T` case — any window ⊇ LS(r) is equivalent).
/// `t` must be materialized.
Result<bool> SelectIfMatches(const Tuple& t, const Predicate& p, Quantifier q,
                             const Lifespan* window);

/// \brief SELECT-WHEN restriction kernel: `t` restricted to the chronons
/// where `p` holds, or null when that restriction is empty (the object is
/// never selected). `t` must be materialized.
Result<TuplePtr> SelectWhenTuple(const TuplePtr& t, const Predicate& p,
                                 const SchemePtr& out_scheme);

/// \brief SELECT-WHEN lifespan kernel: the chronons where `p` holds on `t`
/// (the restriction SelectWhenTuple applies). Split out so the batch
/// cursors (query/plan.h) can pass a tuple through unchanged when the
/// criterion holds over its whole lifespan, and choose the allocation of
/// the restricted copy otherwise. `t` must be materialized.
Result<Lifespan> SelectWhenHolds(const Tuple& t, const Predicate& p);

/// \brief Batch SELECT-IF kernel: moves the handles of `batch` that satisfy
/// the criterion into `out` (appending; `batch` is left holding moved-from
/// handles). The tight per-batch loop of SelectIfCursor.
Status SelectIfBatch(std::vector<TuplePtr>& batch, const Predicate& p,
                     Quantifier q, const Lifespan* window,
                     std::vector<TuplePtr>& out);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_SELECT_H_
