#include "algebra/project.h"

#include "algebra/setops.h"

namespace hrdm {

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attrs) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, r.scheme()->Project(attrs));
  // Precompute source indices in result-attribute order.
  std::vector<size_t> src;
  src.reserve(attrs.size());
  for (const AttributeDef& a : scheme->attributes()) {
    HRDM_ASSIGN_OR_RETURN(size_t idx, r.scheme()->RequireIndex(a.name));
    src.push_back(idx);
  }
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(scheme);
  for (const Tuple& t : m) {
    std::vector<TemporalValue> values;
    values.reserve(src.size());
    for (size_t idx : src) values.push_back(t.value(idx));
    HRDM_RETURN_IF_ERROR(out.InsertDedup(
        Tuple::FromParts(scheme, t.lifespan(), std::move(values))));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
