#include "algebra/project.h"

#include "algebra/setops.h"

namespace hrdm {

Result<std::vector<size_t>> ProjectSourceIndices(
    const RelationScheme& in_scheme, const RelationScheme& out_scheme) {
  std::vector<size_t> src;
  src.reserve(out_scheme.arity());
  for (const AttributeDef& a : out_scheme.attributes()) {
    HRDM_ASSIGN_OR_RETURN(size_t idx, in_scheme.RequireIndex(a.name));
    src.push_back(idx);
  }
  return src;
}

Tuple ProjectTupleRaw(const Tuple& t, const SchemePtr& out_scheme,
                      const std::vector<size_t>& src) {
  std::vector<TemporalValue> values;
  values.reserve(src.size());
  for (size_t idx : src) values.push_back(t.value(idx));
  return Tuple::FromParts(out_scheme, t.lifespan(), std::move(values));
}

TuplePtr ProjectTuple(const Tuple& t, const SchemePtr& out_scheme,
                      const std::vector<size_t>& src) {
  return std::make_shared<const Tuple>(ProjectTupleRaw(t, out_scheme, src));
}

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attrs) {
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme, r.scheme()->Project(attrs));
  HRDM_ASSIGN_OR_RETURN(std::vector<size_t> src,
                        ProjectSourceIndices(*r.scheme(), *scheme));
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(scheme);
  for (const Tuple& t : m) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(ProjectTuple(t, scheme, src)));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
