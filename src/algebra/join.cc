#include "algebra/join.h"

#include "algebra/setops.h"

#include <vector>

namespace hrdm {

namespace {

/// Builds the concatenated tuple (left values then right-only values, in
/// result-scheme order) restricted to lifespan `l`. `right_src[i]` maps
/// result attribute i to an index in t2 (or npos for left attributes).
Tuple ConcatRestricted(const SchemePtr& scheme, const Tuple& t1,
                       const Tuple& t2, const std::vector<size_t>& left_src,
                       const std::vector<size_t>& right_src,
                       const Lifespan& l) {
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<TemporalValue> values;
  values.reserve(scheme->arity());
  for (size_t i = 0; i < scheme->arity(); ++i) {
    const TemporalValue& src = left_src[i] != kNone ? t1.value(left_src[i])
                                                    : t2.value(right_src[i]);
    values.push_back(src.Restrict(l));
  }
  return Tuple::FromParts(scheme, l, std::move(values));
}

/// Computes the attribute source maps for a JoinScheme of r1 and r2.
void BuildSourceMaps(const SchemePtr& scheme, const RelationScheme& s1,
                     const RelationScheme& s2, std::vector<size_t>* left_src,
                     std::vector<size_t>* right_src) {
  constexpr size_t kNone = static_cast<size_t>(-1);
  left_src->assign(scheme->arity(), kNone);
  right_src->assign(scheme->arity(), kNone);
  for (size_t i = 0; i < scheme->arity(); ++i) {
    const std::string& name = scheme->attribute(i).name;
    if (auto idx = s1.IndexOf(name)) {
      (*left_src)[i] = *idx;
    } else if (auto idx2 = s2.IndexOf(name)) {
      (*right_src)[i] = *idx2;
    }
  }
}

}  // namespace

Result<SchemePtr> ThetaJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                  const SchemePtr& s2, std::string_view attr_b,
                                  std::string result_name) {
  HRDM_RETURN_IF_ERROR(RequireDisjointAttributes(*s1, *s2, "join"));
  HRDM_RETURN_IF_ERROR(s1->RequireIndex(attr_a).status());
  HRDM_RETURN_IF_ERROR(s2->RequireIndex(attr_b).status());
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<SchemePtr> NaturalJoinScheme(const SchemePtr& s1, const SchemePtr& s2,
                                    std::string result_name) {
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<SchemePtr> TimeJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                 const SchemePtr& s2,
                                 std::string result_name) {
  HRDM_RETURN_IF_ERROR(RequireDisjointAttributes(*s1, *s2, "join"));
  HRDM_ASSIGN_OR_RETURN(size_t ia, s1->RequireIndex(attr_a));
  if (s1->attribute(ia).type != DomainType::kTime) {
    return Status::TypeError(
        "TIME-JOIN requires a time-valued attribute (DOM(A) in TT); " +
        std::string(attr_a) + " is " +
        std::string(DomainTypeName(s1->attribute(ia).type)));
  }
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<Relation> ThetaJoin(const Relation& r1, std::string_view attr_a,
                           CompareOp op, const Relation& r2,
                           std::string_view attr_b, std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      ThetaJoinScheme(r1.scheme(), attr_a, r2.scheme(), attr_b,
                      std::move(result_name)));
  HRDM_ASSIGN_OR_RETURN(size_t ia, r1.scheme()->RequireIndex(attr_a));
  HRDM_ASSIGN_OR_RETURN(size_t ib, r2.scheme()->RequireIndex(attr_b));
  std::vector<size_t> left_src, right_src;
  BuildSourceMaps(scheme, *r1.scheme(), *r2.scheme(), &left_src, &right_src);

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    const TemporalValue& va = t1.value(ia);
    for (const Tuple& t2 : m2) {
      const TemporalValue& vb = t2.value(ib);
      // t.l = { s | t_r1(A)(s) θ t_r2(B)(s) } — where both are defined and
      // the comparison holds.
      HRDM_ASSIGN_OR_RETURN(Lifespan l, va.TimesWhereMatches(op, vb));
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(
          ConcatRestricted(scheme, t1, t2, left_src, right_src, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> EquiJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2, std::string_view attr_b,
                          std::string result_name) {
  return ThetaJoin(r1, attr_a, CompareOp::kEq, r2, attr_b,
                   std::move(result_name));
}

Result<Relation> NaturalJoin(const Relation& r1, const Relation& r2,
                             std::string result_name) {
  // Shared attribute names X (checked for equal domains by JoinScheme).
  std::vector<std::pair<size_t, size_t>> shared;  // (idx in r1, idx in r2)
  for (size_t j = 0; j < r2.scheme()->arity(); ++j) {
    if (auto i = r1.scheme()->IndexOf(r2.scheme()->attribute(j).name)) {
      shared.emplace_back(*i, j);
    }
  }
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      NaturalJoinScheme(r1.scheme(), r2.scheme(), std::move(result_name)));
  std::vector<size_t> left_src, right_src;
  BuildSourceMaps(scheme, *r1.scheme(), *r2.scheme(), &left_src, &right_src);

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    for (const Tuple& t2 : m2) {
      // Chronons where every shared attribute agrees (model level); with no
      // shared attributes, the common lifespan t1.l ∩ t2.l.
      Lifespan l = t1.lifespan().Intersect(t2.lifespan());
      for (const auto& [i, j] : shared) {
        if (l.empty()) break;
        l = l.Intersect(t1.value(i).AgreementWith(t2.value(j)));
      }
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(
          ConcatRestricted(scheme, t1, t2, left_src, right_src, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> TimeJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2, std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      TimeJoinScheme(r1.scheme(), attr_a, r2.scheme(),
                     std::move(result_name)));
  HRDM_ASSIGN_OR_RETURN(size_t ia, r1.scheme()->RequireIndex(attr_a));
  std::vector<size_t> left_src, right_src;
  BuildSourceMaps(scheme, *r1.scheme(), *r2.scheme(), &left_src, &right_src);

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    HRDM_ASSIGN_OR_RETURN(Lifespan image, t1.value(ia).TimeImage());
    for (const Tuple& t2 : m2) {
      // Join of the dynamic TIME-SLICEs: both sides restricted to the image
      // of t1(A), over their common lifespan.
      Lifespan l = image.Intersect(t1.lifespan()).Intersect(t2.lifespan());
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(
          ConcatRestricted(scheme, t1, t2, left_src, right_src, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
