#include "algebra/join.h"

#include <cstring>
#include <vector>

#include "algebra/setops.h"

namespace hrdm {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

}  // namespace

// --- JoinAssembly ------------------------------------------------------------

JoinAssembly::JoinAssembly(SchemePtr scheme, const RelationScheme& s1,
                           const RelationScheme& s2)
    : scheme_(std::move(scheme)) {
  left_src_.assign(scheme_->arity(), kNone);
  right_src_.assign(scheme_->arity(), kNone);
  for (size_t i = 0; i < scheme_->arity(); ++i) {
    const std::string& name = scheme_->attribute(i).name;
    if (auto idx = s1.IndexOf(name)) {
      left_src_[i] = *idx;
    } else if (auto idx2 = s2.IndexOf(name)) {
      right_src_[i] = *idx2;
    }
  }
}

Tuple JoinAssembly::Assemble(const Tuple& t1, const Tuple& t2,
                             const Lifespan& l) const {
  std::vector<TemporalValue> values;
  values.reserve(scheme_->arity());
  for (size_t i = 0; i < scheme_->arity(); ++i) {
    const TemporalValue& src = left_src_[i] != kNone
                                   ? t1.value(left_src_[i])
                                   : t2.value(right_src_[i]);
    values.push_back(src.Restrict(l));
  }
  return Tuple::FromParts(scheme_, l, std::move(values));
}

// --- per-pair lifespan kernels -----------------------------------------------

Result<Lifespan> ThetaJoinPairLifespan(const Tuple& t1, size_t attr_a,
                                       CompareOp op, const Tuple& t2,
                                       size_t attr_b) {
  // t.l = { s | t_r1(A)(s) θ t_r2(B)(s) } — where both are defined and the
  // comparison holds.
  return t1.value(attr_a).TimesWhereMatches(op, t2.value(attr_b));
}

Lifespan NaturalJoinPairLifespan(
    const Tuple& t1, const Tuple& t2,
    const std::vector<std::pair<size_t, size_t>>& shared) {
  // Chronons where every shared attribute agrees (model level); with no
  // shared attributes, the common lifespan t1.l ∩ t2.l.
  Lifespan l = t1.lifespan().Intersect(t2.lifespan());
  for (const auto& [i, j] : shared) {
    if (l.empty()) break;
    l = l.Intersect(t1.value(i).AgreementWith(t2.value(j)));
  }
  return l;
}

Result<Lifespan> TimeJoinPairLifespan(const Tuple& t1, size_t attr_a,
                                      const Tuple& t2) {
  // Join of the dynamic TIME-SLICEs: both sides restricted to the image of
  // t1(A), over their common lifespan.
  HRDM_ASSIGN_OR_RETURN(Lifespan image, t1.value(attr_a).TimeImage());
  return image.Intersect(t1.lifespan()).Intersect(t2.lifespan());
}

std::vector<std::pair<size_t, size_t>> SharedAttributes(
    const RelationScheme& s1, const RelationScheme& s2) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t j = 0; j < s2.arity(); ++j) {
    if (auto i = s1.IndexOf(s2.attribute(j).name)) {
      shared.emplace_back(*i, j);
    }
  }
  return shared;
}

uint64_t JoinKeyDigest(const Value& v) {
  if (v.absent()) return 0x9e3779b97f4a7c15ULL;
  // kInt and kDouble inter-compare numerically (Compare), so both digest
  // through the double view; +0.0/-0.0 compare equal and are normalized.
  // Digest collisions are harmless (the exact kernel re-checks), digest
  // *misses* between Compare-equal values would lose matches — hence the
  // shared numeric path.
  if (v.IsType(DomainType::kInt) || v.IsType(DomainType::kDouble)) {
    double d = v.AsNumeric();
    if (d == 0.0) d = 0.0;  // collapse -0.0
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits * 0xff51afd7ed558ccdULL ^ 0x2545f4914f6cdd1dULL;
  }
  return v.Hash();
}

// --- schemes -----------------------------------------------------------------

Result<SchemePtr> ThetaJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                  const SchemePtr& s2, std::string_view attr_b,
                                  std::string result_name) {
  HRDM_RETURN_IF_ERROR(RequireDisjointAttributes(*s1, *s2, "join"));
  HRDM_RETURN_IF_ERROR(s1->RequireIndex(attr_a).status());
  HRDM_RETURN_IF_ERROR(s2->RequireIndex(attr_b).status());
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<SchemePtr> NaturalJoinScheme(const SchemePtr& s1, const SchemePtr& s2,
                                    std::string result_name) {
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<SchemePtr> TimeJoinScheme(const SchemePtr& s1, std::string_view attr_a,
                                 const SchemePtr& s2,
                                 std::string result_name) {
  HRDM_RETURN_IF_ERROR(RequireDisjointAttributes(*s1, *s2, "join"));
  HRDM_ASSIGN_OR_RETURN(size_t ia, s1->RequireIndex(attr_a));
  if (s1->attribute(ia).type != DomainType::kTime) {
    return Status::TypeError(
        "TIME-JOIN requires a time-valued attribute (DOM(A) in TT); " +
        std::string(attr_a) + " is " +
        std::string(DomainTypeName(s1->attribute(ia).type)));
  }
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

// --- whole-relation joins ----------------------------------------------------

Result<Relation> ThetaJoin(const Relation& r1, std::string_view attr_a,
                           CompareOp op, const Relation& r2,
                           std::string_view attr_b, std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      ThetaJoinScheme(r1.scheme(), attr_a, r2.scheme(), attr_b,
                      std::move(result_name)));
  HRDM_ASSIGN_OR_RETURN(size_t ia, r1.scheme()->RequireIndex(attr_a));
  HRDM_ASSIGN_OR_RETURN(size_t ib, r2.scheme()->RequireIndex(attr_b));
  const JoinAssembly assembly(scheme, *r1.scheme(), *r2.scheme());

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    for (const Tuple& t2 : m2) {
      HRDM_ASSIGN_OR_RETURN(Lifespan l,
                            ThetaJoinPairLifespan(t1, ia, op, t2, ib));
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(assembly.Assemble(t1, t2, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> EquiJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2, std::string_view attr_b,
                          std::string result_name) {
  return ThetaJoin(r1, attr_a, CompareOp::kEq, r2, attr_b,
                   std::move(result_name));
}

Result<Relation> NaturalJoin(const Relation& r1, const Relation& r2,
                             std::string result_name) {
  // Shared attribute names X (checked for equal domains by JoinScheme).
  const std::vector<std::pair<size_t, size_t>> shared =
      SharedAttributes(*r1.scheme(), *r2.scheme());
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      NaturalJoinScheme(r1.scheme(), r2.scheme(), std::move(result_name)));
  const JoinAssembly assembly(scheme, *r1.scheme(), *r2.scheme());

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    for (const Tuple& t2 : m2) {
      Lifespan l = NaturalJoinPairLifespan(t1, t2, shared);
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(assembly.Assemble(t1, t2, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> TimeJoin(const Relation& r1, std::string_view attr_a,
                          const Relation& r2, std::string result_name) {
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      TimeJoinScheme(r1.scheme(), attr_a, r2.scheme(),
                     std::move(result_name)));
  HRDM_ASSIGN_OR_RETURN(size_t ia, r1.scheme()->RequireIndex(attr_a));
  const JoinAssembly assembly(scheme, *r1.scheme(), *r2.scheme());

  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    for (const Tuple& t2 : m2) {
      HRDM_ASSIGN_OR_RETURN(Lifespan l, TimeJoinPairLifespan(t1, ia, t2));
      if (l.empty()) continue;
      HRDM_RETURN_IF_ERROR(out.InsertDedup(assembly.Assemble(t1, t2, l)));
    }
  }
  out.set_materialized(true);
  return out;
}

std::optional<uint64_t> JoinKeysDigest(
    const Tuple& t, const std::vector<std::pair<size_t, size_t>>& key_attrs,
    bool left_side) {
  // Mixed digests combine per-column digests order-sensitively, so both
  // sides of a probe agree bucket-for-bucket by construction.
  uint64_t h = kJoinKeyDigestSeed;
  for (const auto& [la, ra] : key_attrs) {
    const TemporalValue& v = t.value(left_side ? la : ra);
    if (!v.IsConstant()) return std::nullopt;
    h = CombineJoinKeyDigest(h, JoinKeyDigest(v.ConstantValue()));
  }
  return h;
}

}  // namespace hrdm
