#include "algebra/setops.h"

#include <unordered_set>

namespace hrdm {

namespace {

Status RequireUnionCompatible(const Relation& r1, const Relation& r2) {
  if (!r1.scheme()->UnionCompatibleWith(*r2.scheme())) {
    return Status::IncompatibleSchemes(
        r1.scheme()->name() + " and " + r2.scheme()->name() +
        " are not union-compatible");
  }
  return Status::OK();
}

Status RequireMergeCompatible(const Relation& r1, const Relation& r2) {
  if (!r1.scheme()->MergeCompatibleWith(*r2.scheme())) {
    return Status::IncompatibleSchemes(
        r1.scheme()->name() + " and " + r2.scheme()->name() +
        " are not merge-compatible");
  }
  return Status::OK();
}

/// First tuple of `r` mergeable with `t` (same key vector and consistent),
/// or nullopt. With keyed schemes at most one tuple of `r` shares t's key.
std::optional<size_t> FindMergeable(const Relation& r, const Tuple& t) {
  if (!r.scheme()->key().empty()) {
    for (size_t idx : r.FindAllByKey(t.KeyValues())) {
      if (r.tuple(idx).MergeableWith(t)) return idx;
    }
    return std::nullopt;
  }
  for (size_t idx = 0; idx < r.size(); ++idx) {
    if (r.tuple(idx).MergeableWith(t)) return idx;
  }
  return std::nullopt;
}

}  // namespace

Status RequireDisjointAttributes(const RelationScheme& s1,
                                 const RelationScheme& s2,
                                 std::string_view op_label) {
  for (const AttributeDef& a : s2.attributes()) {
    if (s1.IndexOf(a.name).has_value()) {
      return Status::IncompatibleSchemes(
          std::string(op_label) +
          " requires disjoint attributes; both operands have " + a.name);
    }
  }
  return Status::OK();
}

TuplePtr ProductTuple(const Tuple& t1, const Tuple& t2,
                      const SchemePtr& out_scheme) {
  Lifespan l = t1.lifespan().Union(t2.lifespan());
  std::vector<TemporalValue> values;
  values.reserve(t1.arity() + t2.arity());
  for (size_t i = 0; i < t1.arity(); ++i) values.push_back(t1.value(i));
  for (size_t i = 0; i < t2.arity(); ++i) values.push_back(t2.value(i));
  return std::make_shared<const Tuple>(
      Tuple::FromParts(out_scheme, std::move(l), std::move(values)));
}

Result<Relation> MaterializeRelation(const Relation& r) {
  if (r.materialized()) return r;
  Relation out(r.scheme());
  for (const Tuple& t : r) {
    HRDM_ASSIGN_OR_RETURN(Tuple m, t.Materialized());
    HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(m)));
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> Union(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireUnionCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      RelationScheme::Combine("union_result", *r1.scheme(), *r2.scheme(),
                              RelationScheme::LifespanCombine::kUnion));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t : m1) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Rebind(scheme)));
  }
  for (const Tuple& t : m2) {
    HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Rebind(scheme)));
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> Intersect(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireUnionCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      RelationScheme::Combine("intersect_result", *r1.scheme(), *r2.scheme(),
                              RelationScheme::LifespanCombine::kIntersect));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t : m1) {
    if (m2.FindStructural(t).has_value()) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Rebind(scheme)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> Difference(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireUnionCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(r1.scheme());
  for (const TuplePtr& t : m1.tuple_ptrs()) {
    if (!m2.FindStructural(*t).has_value()) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> CartesianProduct(const Relation& r1, const Relation& r2,
                                  std::string result_name) {
  HRDM_RETURN_IF_ERROR(RequireDisjointAttributes(
      *r1.scheme(), *r2.scheme(), "Cartesian product"));
  HRDM_ASSIGN_OR_RETURN(SchemePtr scheme,
                        RelationScheme::JoinScheme(std::move(result_name),
                                                   *r1.scheme(),
                                                   *r2.scheme()));
  Relation out(scheme);
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  for (const Tuple& t1 : m1) {
    for (const Tuple& t2 : m2) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(ProductTuple(t1, t2, scheme)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> UnionO(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireMergeCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      RelationScheme::Combine("uniono_result", *r1.scheme(), *r2.scheme(),
                              RelationScheme::LifespanCombine::kUnion));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  std::unordered_set<size_t> matched_in_r2;
  for (const Tuple& t1 : m1) {
    auto partner = FindMergeable(m2, t1);
    if (partner.has_value()) {
      matched_in_r2.insert(*partner);
      HRDM_ASSIGN_OR_RETURN(Tuple merged,
                            t1.Merge(m2.tuple(*partner), scheme));
      HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(merged)));
    } else {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t1.Rebind(scheme)));
    }
  }
  for (size_t j = 0; j < m2.size(); ++j) {
    if (matched_in_r2.count(j)) continue;
    // Unmatched in r1 (the paper's definition has a typo "matched in r2").
    if (!FindMergeable(m1, m2.tuple(j)).has_value()) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(m2.tuple(j).Rebind(scheme)));
    }
  }
  out.set_materialized(true);
  return out;
}

Result<Relation> IntersectO(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireMergeCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(
      SchemePtr scheme,
      RelationScheme::Combine("intersecto_result", *r1.scheme(), *r2.scheme(),
                              RelationScheme::LifespanCombine::kIntersect));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(scheme);
  for (const Tuple& t1 : m1) {
    auto partner = FindMergeable(m2, t1);
    if (!partner.has_value()) continue;
    const Tuple& t2 = m2.tuple(*partner);
    Lifespan l = t1.lifespan().Intersect(t2.lifespan());
    if (l.empty()) continue;
    std::vector<TemporalValue> values;
    values.reserve(t1.arity());
    for (size_t i = 0; i < t1.arity(); ++i) {
      // Pointwise function intersection: defined where both sides agree.
      const Lifespan agree = t1.value(i).AgreementWith(t2.value(i));
      values.push_back(t1.value(i).Restrict(agree.Intersect(l)));
    }
    HRDM_RETURN_IF_ERROR(out.InsertDedup(
        Tuple::FromParts(scheme, std::move(l), std::move(values))));
  }
  out.set_materialized(true);
  return out;
}

Result<SchemePtr> SetOpScheme(SetOpKind kind, const SchemePtr& s1,
                              const SchemePtr& s2) {
  const bool object_based = kind == SetOpKind::kUnionO ||
                            kind == SetOpKind::kIntersectO ||
                            kind == SetOpKind::kDifferenceO;
  if (object_based) {
    if (!s1->MergeCompatibleWith(*s2)) {
      return Status::IncompatibleSchemes(s1->name() + " and " + s2->name() +
                                         " are not merge-compatible");
    }
  } else if (!s1->UnionCompatibleWith(*s2)) {
    return Status::IncompatibleSchemes(s1->name() + " and " + s2->name() +
                                       " are not union-compatible");
  }
  switch (kind) {
    case SetOpKind::kUnion:
      return RelationScheme::Combine("union_result", *s1, *s2,
                                     RelationScheme::LifespanCombine::kUnion);
    case SetOpKind::kIntersect:
      return RelationScheme::Combine(
          "intersect_result", *s1, *s2,
          RelationScheme::LifespanCombine::kIntersect);
    case SetOpKind::kDifference:
      return s1;
    case SetOpKind::kUnionO:
      return RelationScheme::Combine("uniono_result", *s1, *s2,
                                     RelationScheme::LifespanCombine::kUnion);
    case SetOpKind::kIntersectO:
      return RelationScheme::Combine(
          "intersecto_result", *s1, *s2,
          RelationScheme::LifespanCombine::kIntersect);
    case SetOpKind::kDifferenceO:
      return s1;
  }
  return Status::Internal("unhandled set-op kind");
}

Result<Relation> ApplySetOp(SetOpKind kind, const Relation& r1,
                            const Relation& r2) {
  switch (kind) {
    case SetOpKind::kUnion:
      return Union(r1, r2);
    case SetOpKind::kIntersect:
      return Intersect(r1, r2);
    case SetOpKind::kDifference:
      return Difference(r1, r2);
    case SetOpKind::kUnionO:
      return UnionO(r1, r2);
    case SetOpKind::kIntersectO:
      return IntersectO(r1, r2);
    case SetOpKind::kDifferenceO:
      return DifferenceO(r1, r2);
  }
  return Status::Internal("unhandled set-op kind");
}

Result<SchemePtr> ProductScheme(const SchemePtr& s1, const SchemePtr& s2,
                                std::string result_name) {
  HRDM_RETURN_IF_ERROR(
      RequireDisjointAttributes(*s1, *s2, "Cartesian product"));
  return RelationScheme::JoinScheme(std::move(result_name), *s1, *s2);
}

Result<Relation> DifferenceO(const Relation& r1, const Relation& r2) {
  HRDM_RETURN_IF_ERROR(RequireMergeCompatible(r1, r2));
  HRDM_ASSIGN_OR_RETURN(Relation m1, MaterializeRelation(r1));
  HRDM_ASSIGN_OR_RETURN(Relation m2, MaterializeRelation(r2));
  Relation out(r1.scheme());
  for (const Tuple& t1 : m1) {
    auto partner = FindMergeable(m2, t1);
    if (!partner.has_value()) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t1));
      continue;
    }
    const Tuple& t2 = m2.tuple(*partner);
    const Lifespan remaining = t1.lifespan().Difference(t2.lifespan());
    HRDM_RETURN_IF_ERROR(
        out.InsertDedup(t1.Restrict(remaining, r1.scheme())));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
