#ifndef HRDM_ALGEBRA_PREDICATE_H_
#define HRDM_ALGEBRA_PREDICATE_H_

/// \file predicate.h
/// \brief Selection criteria `A θ a` for SELECT-IF / SELECT-WHEN.
///
/// Section 4.3 of the paper: "The selection criterion, which we specify as
/// θ, is defined as a simple predicate over the attributes of the tuple ...
/// the predicate A θ a would select only those tuples whose value for
/// attribute A stood in relationship θ to the value a. (The value a could
/// represent another attribute value or a constant.)"
///
/// Conjunctions (the paper's `σ(NAME=john, SAL=30K)` example) are expressed
/// with `Predicate::And`, which intersects the satisfaction lifespans of
/// its conjuncts pointwise.
///
/// Predicates are evaluated against the tuple's *model-level* values (the
/// interpolated total functions on `vls`), so a stepwise Salary attribute
/// satisfies `Salary = 30000` between stored changes as well.

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/lifespan.h"
#include "core/tuple.h"
#include "core/value.h"
#include "util/status.h"

namespace hrdm {

/// \brief Existential or universal quantification over a set of chronons
/// (the paper's `Q(s ∈ S)` bounded quantifier of Section 4.3).
enum class Quantifier : uint8_t {
  kExists = 0,
  kForall = 1,
};

std::string_view QuantifierName(Quantifier q);

/// \brief Which view of a tuple's values a predicate evaluates against.
/// `kModel` interpolates each referenced value over its vls first (the
/// default — correct for raw stored tuples); `kStored` trusts the stored
/// segments as-is (used by the algebra after MaterializeRelation, where
/// re-interpolation would wrongly extend values of derived tuples such as
/// Cartesian products that are legitimately partial).
enum class ValueView : uint8_t {
  kModel = 0,
  kStored = 1,
};

/// \brief A simple (or conjunctive) selection criterion.
class Predicate {
 public:
  /// \brief `attr θ constant`.
  static Predicate AttrConst(std::string attr, CompareOp op, Value constant);

  /// \brief `attr θ attr2` (both attributes of the same relation).
  static Predicate AttrAttr(std::string attr, CompareOp op, std::string attr2);

  /// \brief Conjunction: holds at chronon s iff every conjunct holds at s.
  static Predicate And(std::vector<Predicate> conjuncts);

  /// \brief The set of chronons at which the tuple satisfies this
  /// predicate. Always a subset of the relevant value lifespans — a chronon
  /// where any referenced value is undefined does not satisfy the
  /// predicate (undefined "does not exist", Section 3).
  ///
  /// When `scope` is given, evaluation is restricted to it: every
  /// referenced value is clipped to `scope` before comparison and the
  /// result is a subset of `scope`. This is exactly `TimesWhere(t|_scope)`
  /// — same chronons, same comparisons attempted, same errors — without
  /// building the restricted tuple, which is what lets a chain of
  /// restriction operators evaluate its criteria against the accumulated
  /// effective lifespan and restrict the tuple once at the end.
  ///
  /// Errors on unknown attribute names or type-incompatible comparisons.
  Result<Lifespan> TimesWhere(const Tuple& t,
                              ValueView view = ValueView::kModel,
                              const Lifespan* scope = nullptr) const;

  /// \brief True if `t` satisfies the predicate at chronon `s`.
  Result<bool> HoldsAt(const Tuple& t, TimePoint s,
                       ValueView view = ValueView::kModel) const;

  /// \brief Attribute names referenced by the predicate.
  std::vector<std::string> ReferencedAttributes() const;

  /// \brief The sargable `attr = constant` conjuncts, in predicate order.
  /// Every returned binding must hold (at some chronon) for the whole
  /// predicate to hold there — the access-path chooser (query/optimizer.h)
  /// uses these to probe a value index instead of scanning.
  std::vector<std::pair<std::string, Value>> EqualityConstants() const;

  /// \brief e.g. `Salary >= 30000 AND Dept = "tools"`.
  std::string ToString() const;

 private:
  struct Simple {
    std::string attr;
    CompareOp op;
    std::variant<Value, std::string> rhs;  // constant or attribute name
  };

  Predicate() = default;

  /// Leaf predicates have exactly one entry; And-predicates have several.
  std::vector<Simple> conjuncts_;
};

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_PREDICATE_H_
