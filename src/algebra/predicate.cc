#include "algebra/predicate.h"

#include <algorithm>

namespace hrdm {

std::string_view QuantifierName(Quantifier q) {
  return q == Quantifier::kExists ? "exists" : "forall";
}

Predicate Predicate::AttrConst(std::string attr, CompareOp op,
                               Value constant) {
  Predicate p;
  p.conjuncts_.push_back(Simple{std::move(attr), op, std::move(constant)});
  return p;
}

Predicate Predicate::AttrAttr(std::string attr, CompareOp op,
                              std::string attr2) {
  Predicate p;
  p.conjuncts_.push_back(Simple{std::move(attr), op, std::move(attr2)});
  return p;
}

Predicate Predicate::And(std::vector<Predicate> conjuncts) {
  Predicate p;
  for (Predicate& c : conjuncts) {
    for (Simple& s : c.conjuncts_) {
      p.conjuncts_.push_back(std::move(s));
    }
  }
  return p;
}

Result<Lifespan> Predicate::TimesWhere(const Tuple& t,
                                       ValueView view,
                                       const Lifespan* scope) const {
  if (conjuncts_.empty()) {
    // The empty conjunction is true everywhere the tuple exists.
    return scope ? t.lifespan().Intersect(*scope) : t.lifespan();
  }
  auto value_of = [&t, view, scope](size_t i) -> Result<TemporalValue> {
    HRDM_ASSIGN_OR_RETURN(
        TemporalValue v,
        view == ValueView::kStored ? Result<TemporalValue>(t.value(i))
                                   : t.ModelValue(i));
    // Clip to the scope so the comparisons attempted (and hence the
    // errors raised) match evaluation against `t|_scope`. Restrict is the
    // identity when the scope already covers the value's domain.
    if (scope && !scope->ContainsAll(v.domain())) v = v.Restrict(*scope);
    return v;
  };
  Lifespan acc;
  bool first = true;
  for (const Simple& s : conjuncts_) {
    HRDM_ASSIGN_OR_RETURN(size_t li, t.scheme()->RequireIndex(s.attr));
    HRDM_ASSIGN_OR_RETURN(TemporalValue lhs, value_of(li));
    Lifespan here;
    if (std::holds_alternative<Value>(s.rhs)) {
      HRDM_ASSIGN_OR_RETURN(here, lhs.TimesWhere(s.op, std::get<Value>(s.rhs)));
    } else {
      HRDM_ASSIGN_OR_RETURN(size_t ri,
                            t.scheme()->RequireIndex(std::get<std::string>(s.rhs)));
      HRDM_ASSIGN_OR_RETURN(TemporalValue rhs, value_of(ri));
      HRDM_ASSIGN_OR_RETURN(here, lhs.TimesWhereMatches(s.op, rhs));
    }
    if (first) {
      acc = std::move(here);
      first = false;
    } else {
      acc = acc.Intersect(here);
    }
    if (acc.empty()) break;
  }
  return acc;
}

Result<bool> Predicate::HoldsAt(const Tuple& t, TimePoint s,
                                ValueView view) const {
  HRDM_ASSIGN_OR_RETURN(Lifespan where, TimesWhere(t, view));
  return where.Contains(s);
}

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::vector<std::string> out;
  for (const Simple& s : conjuncts_) {
    out.push_back(s.attr);
    if (std::holds_alternative<std::string>(s.rhs)) {
      out.push_back(std::get<std::string>(s.rhs));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<std::string, Value>> Predicate::EqualityConstants()
    const {
  std::vector<std::pair<std::string, Value>> out;
  for (const Simple& s : conjuncts_) {
    if (s.op == CompareOp::kEq && std::holds_alternative<Value>(s.rhs)) {
      out.emplace_back(s.attr, std::get<Value>(s.rhs));
    }
  }
  return out;
}

std::string Predicate::ToString() const {
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " AND ";
    const Simple& s = conjuncts_[i];
    out += s.attr;
    out.push_back(' ');
    out += CompareOpName(s.op);
    out.push_back(' ');
    if (std::holds_alternative<Value>(s.rhs)) {
      out += std::get<Value>(s.rhs).ToString();
    } else {
      out += std::get<std::string>(s.rhs);
    }
  }
  return out;
}

}  // namespace hrdm
