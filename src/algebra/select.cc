#include "algebra/select.h"

#include "algebra/setops.h"

namespace hrdm {

Result<bool> SelectIfMatches(const Tuple& t, const Predicate& p, Quantifier q,
                             const Lifespan* window) {
  // With no explicit window the scope is the whole tuple lifespan: any
  // window ⊇ LS(r) intersects down to `t.l`, so the per-tuple kernel never
  // needs the (blocking) relation lifespan.
  const Lifespan scope =
      window ? window->Intersect(t.lifespan()) : t.lifespan();
  HRDM_ASSIGN_OR_RETURN(Lifespan holds, p.TimesWhere(t, ValueView::kStored));
  if (q == Quantifier::kExists) {
    return holds.Overlaps(scope);
  }
  // forall: every chronon of the scope satisfies the criterion.
  // Vacuously true on an empty scope, per the formal definition.
  return holds.ContainsAll(scope);
}

Result<Lifespan> SelectWhenHolds(const Tuple& t, const Predicate& p) {
  return p.TimesWhere(t, ValueView::kStored);
}

Result<TuplePtr> SelectWhenTuple(const TuplePtr& t, const Predicate& p,
                                 const SchemePtr& out_scheme) {
  HRDM_ASSIGN_OR_RETURN(Lifespan holds, SelectWhenHolds(*t, p));
  // New lifespan: exactly the chronons when the criterion is met; values
  // restricted to match. Empty results are dropped (the object is never
  // selected).
  Tuple restricted = t->Restrict(holds, out_scheme);
  if (restricted.lifespan().empty()) return TuplePtr();
  return std::make_shared<const Tuple>(std::move(restricted));
}

Status SelectIfBatch(std::vector<TuplePtr>& batch, const Predicate& p,
                     Quantifier q, const Lifespan* window,
                     std::vector<TuplePtr>& out) {
  for (TuplePtr& t : batch) {
    HRDM_ASSIGN_OR_RETURN(bool selected, SelectIfMatches(*t, p, q, window));
    if (selected) out.push_back(std::move(t));
  }
  return Status::OK();
}

Result<Relation> SelectIf(const Relation& r, const Predicate& p, Quantifier q,
                          const Lifespan& window) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  out.set_materialized(true);
  for (const TuplePtr& t : m.tuple_ptrs()) {
    HRDM_ASSIGN_OR_RETURN(bool selected, SelectIfMatches(*t, p, q, &window));
    if (selected) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t));
    }
  }
  return out;
}

Result<Relation> SelectIf(const Relation& r, const Predicate& p,
                          Quantifier q) {
  return SelectIf(r, p, q, r.LS());
}

Result<Relation> SelectWhen(const Relation& r, const Predicate& p) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const TuplePtr& t : m.tuple_ptrs()) {
    HRDM_ASSIGN_OR_RETURN(TuplePtr selected,
                          SelectWhenTuple(t, p, r.scheme()));
    if (selected) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(std::move(selected)));
    }
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
