#include "algebra/select.h"

#include "algebra/setops.h"

namespace hrdm {

Result<Relation> SelectIf(const Relation& r, const Predicate& p, Quantifier q,
                          const Lifespan& window) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  out.set_materialized(true);
  for (const Tuple& t : m) {
    const Lifespan scope = window.Intersect(t.lifespan());
    HRDM_ASSIGN_OR_RETURN(Lifespan holds,
                          p.TimesWhere(t, ValueView::kStored));
    bool selected;
    if (q == Quantifier::kExists) {
      selected = holds.Overlaps(scope);
    } else {
      // forall: every chronon of the scope satisfies the criterion.
      // Vacuously true on an empty scope, per the formal definition.
      selected = holds.ContainsAll(scope);
    }
    if (selected) {
      HRDM_RETURN_IF_ERROR(out.InsertDedup(t));
    }
  }
  return out;
}

Result<Relation> SelectIf(const Relation& r, const Predicate& p,
                          Quantifier q) {
  return SelectIf(r, p, q, r.LS());
}

Result<Relation> SelectWhen(const Relation& r, const Predicate& p) {
  HRDM_ASSIGN_OR_RETURN(Relation m, MaterializeRelation(r));
  Relation out(r.scheme());
  for (const Tuple& t : m) {
    HRDM_ASSIGN_OR_RETURN(Lifespan holds,
                          p.TimesWhere(t, ValueView::kStored));
    // New lifespan: exactly the chronons when the criterion is met; values
    // restricted to match. Empty results are dropped (the object is never
    // selected).
    HRDM_RETURN_IF_ERROR(out.InsertDedup(t.Restrict(holds, r.scheme())));
  }
  out.set_materialized(true);
  return out;
}

}  // namespace hrdm
