#ifndef HRDM_ALGEBRA_TIMESLICE_H_
#define HRDM_ALGEBRA_TIMESLICE_H_

/// \file timeslice.h
/// \brief TIME-SLICE (Section 4.4): reduction along the temporal dimension.
///
/// The third unary operator of the 3-D model (Figure 10). Two forms:
///
///  * static `T_L(r)`: every tuple is restricted to the lifespan parameter
///    `L` — "t.l = L ∩ t'.l ∧ t.v = t'.v|_{t.l}".
///
///  * dynamic `T_@A(r)`: for a *time-valued* attribute A (DOM(A) ⊆ TT),
///    each tuple is restricted to the *image* of its own value of A — "for
///    L, the image of t(A), t.l = L ∧ t = t'|_L". The sliced lifespan is
///    data-dependent, per tuple. (The paper's formal text sets `t.l` to the
///    image L itself; chronons of L outside the original lifespan carry no
///    values, and a tuple whose image misses its lifespan entirely would be
///    an empty shell — we keep `t.l = L ∩ t'.l`, which coincides with the
///    paper whenever the image refers to times the tuple actually lived
///    through, and drop empty results.)

#include <optional>
#include <string_view>

#include "core/lifespan.h"
#include "core/relation.h"
#include "util/status.h"

namespace hrdm {

/// \brief Static time-slice `T_L(r)`.
Result<Relation> TimeSlice(const Relation& r, const Lifespan& l);

/// \brief Snapshot convenience: `T_{[t,t]}(r)`.
Result<Relation> TimeSliceAt(const Relation& r, TimePoint t);

/// \brief Dynamic time-slice `T_@A(r)`. Errors if `attr` is unknown or not
/// time-valued (DomainType::kTime).
Result<Relation> TimeSliceDynamic(const Relation& r, std::string_view attr);

// --- per-tuple kernels (shared by the whole-relation API above and the
// --- streaming cursors in query/plan.h) --------------------------------------

/// \brief Static slice kernel: `t|_l` rebound to `out_scheme`, or null when
/// the restricted lifespan is empty. `t` must be materialized.
TuplePtr TimeSliceTuple(const TuplePtr& t, const Lifespan& l,
                        const SchemePtr& out_scheme);

/// \brief Static slice raw kernel: the restricted tuple by value (nullopt
/// when its lifespan is empty), so the batch cursors in query/plan.h can
/// place it in arena storage instead of an individual heap node.
std::optional<Tuple> TimeSliceTupleRaw(const Tuple& t, const Lifespan& l,
                                       const SchemePtr& out_scheme);

/// \brief Dynamic slice kernel: `t` restricted to the image of its own
/// value of attribute `attr_idx` (pre-resolved and checked time-valued by
/// the caller), or null when empty. `t` must be materialized.
Result<TuplePtr> DynSliceTuple(const TuplePtr& t, size_t attr_idx,
                               const SchemePtr& out_scheme);

/// \brief Resolves and type-checks the dynamic-slice attribute.
Result<size_t> DynSliceAttrIndex(const RelationScheme& scheme,
                                 std::string_view attr);

}  // namespace hrdm

#endif  // HRDM_ALGEBRA_TIMESLICE_H_
