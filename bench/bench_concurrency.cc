// Reader-session latency under sustained DML (src/session/session.h over
// src/storage/storage_engine.h).
//
// Shape to check: opening a session is one shared_ptr pin (no engine
// mutex), so read latency should be flat as writer threads are added —
// writers serialize on the engine mutex + WAL, readers never queue behind
// them. Each measured read op is: open a session against the engine, run
// one HRQL query through the pinned version, close the session. We sweep
// reader counts {1, 2, 4} against writer counts {0, 1, 2} and report p50 /
// p99 / max read latency plus aggregate read and write throughput per
// cell. The writer workload is a steady stream of logged temporal
// assignments (FsyncPolicy::kBatched, as a durable deployment would run).
//
// What to look for: p50/p99 at W writers staying within noise of the
// 0-writer column (snapshot isolation means no reader/writer contention),
// and write throughput independent of reader count. The correctness side
// of the same story is tests/concurrency_fuzz_test.cc; here we measure.
//
// Like the other bench_* binaries this is a self-contained harness (no
// google-benchmark): it emits machine-readable BENCH_concurrency.json.
// Scratch space: $HRDM_BENCH_DIR, else $TMPDIR, else /tmp.

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "query/executor.h"
#include "session/session.h"
#include "storage/storage_engine.h"
#include "util/file.h"
#include "util/random.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;
using session::Session;
using storage::FsyncPolicy;
using storage::StorageEngine;

constexpr TimePoint kHorizon = 1000;
constexpr int kObjects = 2000;
constexpr double kCellSeconds = 0.8;  // measured window per grid cell

/// A fresh scratch directory under $HRDM_BENCH_DIR / $TMPDIR / /tmp.
std::string MakeScratchDir() {
  const char* base = std::getenv("HRDM_BENCH_DIR");
  if (base == nullptr || *base == '\0') base = std::getenv("TMPDIR");
  if (base == nullptr || *base == '\0') base = "/tmp";
  std::string tmpl = std::string(base) + "/hrdm_bench_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return std::string(buf.data());
}

void RemoveScratchDir(const std::string& dir) {
  auto entries = util::ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)util::RemoveFileIfExists(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

std::string KeyOf(int i) { return "obj" + std::to_string(i); }

/// Seeds the engine with `kObjects` stepwise-salary objects plus both
/// index kinds, so the read query exercises the full pinned surface.
void Populate(StorageEngine& engine, uint64_t seed) {
  Rng rng(seed);
  const Lifespan full = Span(0, kHorizon - 1);
  if (!engine
           .CreateRelation(
               "emp",
               {{"Id", DomainType::kString, full,
                 InterpolationKind::kDiscrete},
                {"Salary", DomainType::kInt, full,
                 InterpolationKind::kStepwise}},
               {"Id"})
           .ok()) {
    std::abort();
  }
  auto scheme = *engine.db().catalog().Get("emp");
  for (int i = 0; i < kObjects; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon / 2);
    const TimePoint e = rng.Uniform(b, kHorizon - 1);
    Tuple::Builder tb(scheme, Span(b, e));
    tb.SetConstant("Id", Value::String(KeyOf(i)));
    tb.SetAt("Salary", b, Value::Int(rng.Uniform(30, 200) * 1000));
    if (!engine.Insert("emp", *std::move(tb).Build()).ok()) std::abort();
  }
  if (!engine.CreateLifespanIndex("emp").ok()) std::abort();
  if (!engine.CreateValueIndex("emp", "Salary").ok()) std::abort();
}

struct CellResult {
  int readers = 0;
  int writers = 0;
  size_t reads = 0;
  size_t commits = 0;
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

double PercentileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_us.size() - 1)));
  return sorted_us[idx];
}

/// One grid cell: `readers` session-per-query reader threads against
/// `writers` sustained-DML threads for ~kCellSeconds.
CellResult RunCell(StorageEngine& engine, int readers, int writers,
                   const std::string& hrql) {
  CellResult out;
  out.readers = readers;
  out.writers = writers;

  std::atomic<bool> stop{false};
  std::atomic<size_t> commits{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(readers));  // microseconds, one vector per reader
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers + writers));

  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000u + static_cast<uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        const int id = static_cast<int>(rng.Uniform(0, kObjects - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        const TimePoint e =
            std::min<TimePoint>(kHorizon - 1, b + rng.Uniform(0, 20));
        if (engine
                .Assign("emp", {Value::String(KeyOf(id))}, "Salary",
                        Span(b, e), Value::Int(rng.Uniform(30, 200) * 1000))
                .ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto start = Clock::now();
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::vector<double>& mine = latencies[static_cast<size_t>(r)];
      mine.reserve(1 << 14);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        Session s = Session::Open(engine);
        auto result = s.Run(hrql);
        const std::chrono::duration<double, std::micro> dt =
            Clock::now() - t0;
        if (!result.ok()) std::abort();
        mine.push_back(dt.count());
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(kCellSeconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const std::vector<double>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  out.reads = all.size();
  out.commits = commits.load();
  out.p50_us = PercentileUs(all, 0.50);
  out.p99_us = PercentileUs(all, 0.99);
  out.max_us = all.empty() ? 0 : all.back();
  return out;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;

  const std::string dir = MakeScratchDir();
  StorageEngine::Options options;
  options.fsync = FsyncPolicy::kBatched;
  auto opened = StorageEngine::Open(dir, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  StorageEngine engine = std::move(opened).value();
  Populate(engine, /*seed=*/1);

  const std::string hrql = "timeslice(emp, {[100, 140]})";
  const std::vector<int> reader_counts = {1, 2, 4};
  const std::vector<int> writer_counts = {0, 1, 2};
  const unsigned hw = std::thread::hardware_concurrency();

  std::string json = "{\n  \"benchmark\": \"concurrency\",\n";
  {
    char meta[320];
    std::snprintf(meta, sizeof(meta),
                  "  \"hardware_concurrency\": %u,\n"
                  "  \"objects\": %d,\n"
                  "  \"hrql\": \"%s\",\n"
                  "  \"fsync\": \"batched\",\n"
                  "  \"cells\": [\n",
                  hw, kObjects, hrql.c_str());
    json += meta;
  }
  std::printf("hardware_concurrency: %u\n", hw);

  bool first = true;
  for (int readers : reader_counts) {
    for (int writers : writer_counts) {
      const CellResult c = RunCell(engine, readers, writers, hrql);
      const double reads_per_sec =
          c.seconds > 0 ? static_cast<double>(c.reads) / c.seconds : 0;
      const double commits_per_sec =
          c.seconds > 0 ? static_cast<double>(c.commits) / c.seconds : 0;
      std::printf(
          "%dR x %dW | read p50 %8.1f us | p99 %8.1f us | max %9.1f us | "
          "%8.0f reads/s | %7.0f commits/s\n",
          readers, writers, c.p50_us, c.p99_us, c.max_us, reads_per_sec,
          commits_per_sec);
      if (!first) json += ",\n";
      first = false;
      char buf[400];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"readers\": %d, \"writers\": %d, \"read_p50_us\": %.1f, "
          "\"read_p99_us\": %.1f, \"read_max_us\": %.1f, "
          "\"reads_per_sec\": %.0f, \"commits_per_sec\": %.0f, "
          "\"reads\": %zu, \"commits\": %zu}",
          c.readers, c.writers, c.p50_us, c.p99_us, c.max_us, reads_per_sec,
          commits_per_sec, c.reads, c.commits);
      json += buf;
    }
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_concurrency.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_concurrency.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_concurrency.json\n");

  RemoveScratchDir(dir);
  return 0;
}
