// Experiment E1: streaming (cursor pipeline) vs materializing (recursive
// interpreter) execution of the same HRQL trees.
//
// Shape to check: deep unary pipelines — the shape the optimizer's
// push-down rules produce — stream end-to-end with zero intermediate
// relations, so the cursor path should win by avoiding per-stage
// InsertDedup hashing and relation construction; blocking shapes (set ops)
// should be roughly even, since both paths run the same whole-relation
// kernels.
//
// Unlike the other benches this is a self-contained harness (no
// google-benchmark): it emits machine-readable BENCH_executor.json
// (ops/sec and peak intermediate tuple counts per path) so later PRs can
// track the perf trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;

storage::Database MakeDb(size_t tuples, uint64_t seed = 1) {
  Rng rng(seed);
  storage::Database db;
  for (int i = 0; i < 2; ++i) {
    workload::RandomRelationConfig config;
    config.name = "r" + std::to_string(i);
    config.num_tuples = tuples;
    config.num_value_attrs = 3;
    config.horizon = 200;
    config.value_change_period = 10;
    config.key_space = tuples * 3 / 2;
    auto rel = *workload::MakeRandomRelation(&rng, config);
    (void)db.CreateRelation(rel.scheme());
    for (const Tuple& t : rel) {
      (void)db.Insert(config.name, t);
    }
  }
  return db;
}

struct PathResult {
  double ops_per_sec = 0;
  size_t result_tuples = 0;
  size_t peak_intermediate = 0;
  size_t total_intermediate = 0;  // materializing only
  size_t tuples_scanned = 0;      // streaming only
};

struct Workload {
  std::string name;
  std::string hrql;
  size_t tuples;
  int iterations;
  PathResult materializing;
  PathResult streaming;
  double speedup = 0;
};

PathResult RunMaterializing(const query::ExprPtr& expr,
                            const storage::Database& db, int iterations) {
  PathResult out;
  // Warm-up + stats from a single instrumented run.
  query::EvalStats stats;
  auto warm = query::EvalMaterializing(expr, db, &stats);
  if (!warm.ok()) {
    std::fprintf(stderr, "materializing eval failed: %s\n",
                 warm.status().ToString().c_str());
    return out;
  }
  out.result_tuples = warm->size();
  out.peak_intermediate = stats.peak_live_tuples;
  out.total_intermediate = stats.intermediate_tuples;
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto r = query::EvalMaterializing(expr, db);
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

PathResult RunStreaming(const query::ExprPtr& expr,
                        const storage::Database& db, int iterations) {
  PathResult out;
  const query::Resolver resolver = query::DatabaseResolver(db);
  {
    auto plan = query::Plan::Lower(expr, resolver);
    if (!plan.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   plan.status().ToString().c_str());
      return out;
    }
    auto warm = plan->Drain();
    if (!warm.ok()) {
      std::fprintf(stderr, "streaming eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
    out.peak_intermediate = plan->stats().peak_buffered;
    out.tuples_scanned = plan->stats().tuples_scanned;
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto r = query::Eval(expr, resolver);
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

void AppendPathJson(std::string* json, const char* key, const PathResult& p,
                    bool streaming) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"ops_per_sec\": %.2f, \"result_tuples\": "
                "%zu, \"peak_intermediate_tuples\": %zu, ",
                key, p.ops_per_sec, p.result_tuples, p.peak_intermediate);
  *json += buf;
  if (streaming) {
    std::snprintf(buf, sizeof(buf), "\"tuples_scanned\": %zu}",
                  p.tuples_scanned);
  } else {
    std::snprintf(buf, sizeof(buf), "\"total_intermediate_tuples\": %zu}",
                  p.total_intermediate);
  }
  *json += buf;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;

  std::vector<Workload> workloads = {
      // The acceptance shape: a deep unary pipeline the optimizer produces
      // via push-down. Streams end-to-end.
      {"deep_unary_pipeline",
       "project(select_when(timeslice(r0, {[20,160]}), A0 >= 30), Id, A0)",
       4000, 30, {}, {}, 0},
      {"deep_unary_pipeline_small",
       "project(select_when(timeslice(r0, {[20,160]}), A0 >= 30), Id, A0)",
       500, 200, {}, {}, 0},
      // Five-operator chain with a dynamic slice.
      {"five_stage_chain",
       "project(select_if(select_when(timeslice(r0, {[0,180]}), A1 >= 10), "
       "A2 < 95, exists), Id, A2)",
       2000, 30, {}, {}, 0},
      // Pure filter (SELECT-IF passes whole tuples through by pointer).
      {"select_if_only", "select_if(r0, A0 >= 50, exists)", 4000, 30, {}, {},
       0},
      // Blocking shape: both paths run the same whole-relation kernel.
      {"union_blocking", "union(r0, r1)", 2000, 20, {}, {}, 0},
  };

  std::string json = "{\n  \"benchmark\": \"executor\",\n  \"workloads\": [\n";
  bool first = true;
  for (Workload& w : workloads) {
    auto db = MakeDb(w.tuples);
    auto expr = query::ParseExpr(w.hrql);
    if (!expr.ok()) {
      std::fprintf(stderr, "parse failed for %s: %s\n", w.name.c_str(),
                   expr.status().ToString().c_str());
      return 1;
    }
    w.materializing = RunMaterializing(*expr, db, w.iterations);
    w.streaming = RunStreaming(*expr, db, w.iterations);
    w.speedup = w.materializing.ops_per_sec > 0
                    ? w.streaming.ops_per_sec / w.materializing.ops_per_sec
                    : 0;

    std::printf(
        "%-26s %6zu tuples | mat %8.1f ops/s (peak %6zu interm) | "
        "stream %8.1f ops/s (peak %3zu interm) | %.2fx\n",
        w.name.c_str(), w.tuples, w.materializing.ops_per_sec,
        w.materializing.peak_intermediate, w.streaming.ops_per_sec,
        w.streaming.peak_intermediate, w.speedup);

    if (!first) json += ",\n";
    first = false;
    json += "    {\n      \"name\": \"" + w.name + "\",\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "      \"tuples\": %zu,\n      \"iterations\": %d,\n",
                  w.tuples, w.iterations);
    json += buf;
    AppendPathJson(&json, "materializing", w.materializing, false);
    json += ",\n";
    AppendPathJson(&json, "streaming", w.streaming, true);
    std::snprintf(buf, sizeof(buf), ",\n      \"speedup\": %.3f\n    }",
                  w.speedup);
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_executor.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_executor.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_executor.json\n");
  return 0;
}
