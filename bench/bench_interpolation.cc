// Experiment F9 (Figure 9): representation level vs model level.
//
// Shape to check (paper): the representation level stores functions
// "more succinctly using intervals and allowing for value interpolation";
// the model-level total function costs time/space proportional to the
// target lifespan it must cover. We sweep stored-sample density and target
// width for the three interpolation functions.

#include <benchmark/benchmark.h>

#include "core/interpolation.h"
#include "util/random.h"

namespace hrdm {
namespace {

/// Sparse samples every `period` chronons over [0, horizon).
TemporalValue SparseSamples(TimePoint horizon, TimePoint period,
                            DomainType type, uint64_t seed) {
  Rng rng(seed);
  std::vector<Segment> segs;
  for (TimePoint t = 0; t < horizon; t += period) {
    Value v = type == DomainType::kDouble
                  ? Value::Double(rng.NextDouble() * 100)
                  : Value::Int(rng.Uniform(0, 99));
    segs.push_back(Segment{Interval::At(t), std::move(v)});
  }
  return *TemporalValue::FromSegments(std::move(segs));
}

void BM_StepwiseMaterialize(benchmark::State& state) {
  const TimePoint horizon = state.range(0);
  const TimePoint period = state.range(1);
  TemporalValue stored = SparseSamples(horizon, period, DomainType::kInt, 1);
  const Lifespan target = Span(0, horizon - 1);
  size_t model_segments = 0;
  for (auto _ : state) {
    auto model = Interpolate(stored, target, InterpolationKind::kStepwise);
    model_segments = model->segments().size();
    benchmark::DoNotOptimize(model);
  }
  state.counters["stored_segments"] =
      static_cast<double>(stored.segments().size());
  state.counters["model_segments"] = static_cast<double>(model_segments);
}
BENCHMARK(BM_StepwiseMaterialize)
    ->ArgsProduct({{1000, 10000}, {2, 16, 128}});

void BM_LinearMaterialize(benchmark::State& state) {
  const TimePoint horizon = state.range(0);
  const TimePoint period = state.range(1);
  TemporalValue stored =
      SparseSamples(horizon, period, DomainType::kDouble, 2);
  const Lifespan target = Span(0, horizon - 1);
  size_t model_segments = 0;
  for (auto _ : state) {
    auto model = Interpolate(stored, target, InterpolationKind::kLinear);
    model_segments = model->segments().size();
    benchmark::DoNotOptimize(model);
  }
  // Linear materialization is per-chronon in the gaps: the succinctness of
  // the representation level is exactly what this counter loses.
  state.counters["stored_segments"] =
      static_cast<double>(stored.segments().size());
  state.counters["model_segments"] = static_cast<double>(model_segments);
}
BENCHMARK(BM_LinearMaterialize)
    ->ArgsProduct({{1000, 4000}, {4, 16, 128}});

void BM_DiscreteMaterialize(benchmark::State& state) {
  const TimePoint horizon = state.range(0);
  TemporalValue stored = SparseSamples(horizon, 8, DomainType::kInt, 3);
  const Lifespan target = Span(0, horizon - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Interpolate(stored, target, InterpolationKind::kDiscrete));
  }
}
BENCHMARK(BM_DiscreteMaterialize)->Arg(1000)->Arg(10000);

void BM_PointLookupStoredVsModel(benchmark::State& state) {
  // Querying one chronon: the representation level answers via binary
  // search + interpolation on demand, no materialization needed.
  const TimePoint horizon = 10000;
  TemporalValue stored = SparseSamples(horizon, 16, DomainType::kInt, 4);
  TimePoint probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stored.ValueAt(probe));
    probe = (probe + 97) % horizon;
  }
}
BENCHMARK(BM_PointLookupStoredVsModel);

void BM_RestrictNarrowWindow(benchmark::State& state) {
  // Model-level cost is bounded by the *target*, not the stored horizon:
  // a narrow window over a huge stored history stays cheap.
  TemporalValue stored = SparseSamples(100000, 16, DomainType::kInt, 5);
  const Lifespan target = Span(50000, 50000 + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Interpolate(stored, target, InterpolationKind::kStepwise));
  }
}
BENCHMARK(BM_RestrictNarrowWindow)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
