// Temporal aggregation benchmark (algebra/aggregate.h + the streaming
// HashAggregateCursor of query/plan.h).
//
// Shape to check: grouped and ungrouped time-varying aggregates over a
// 20k-tuple personnel-style relation. The streaming path must hold only
// per-group state plus the dedup handles (PlanStats::peak_buffered stays
// O(input), never O(input × operators)) and must not be slower than the
// materializing interpreter, which re-materializes the whole input
// relation per operator. The differential suite (tests/aggregate_test.cc)
// asserts both paths return identical relations; here we measure.
//
// Like bench_executor/bench_join/bench_scan this is a self-contained
// harness (no google-benchmark): it emits machine-readable
// BENCH_aggregate.json (per-path ops/sec, result tuples, groups built,
// per-chronon fallback activations) so later PRs can track the perf
// trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/random.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kTuples = 20000;
constexpr TimePoint kHorizon = 5000;
constexpr TimePoint kLifespanWidth = 200;
constexpr int kDepartments = 32;
constexpr double kDeptChangeProbability = 0.2;  // fallback-path tuples

/// Builds `emp(Id*, Salary, Dept)`: ~kLifespanWidth-chronon lifespans
/// spread over the horizon, stepwise salaries, and a Dept that changes
/// mid-lifespan for ~20% of employees (exercising the per-chronon
/// varying-group-key fallback).
storage::Database MakeAggDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  auto scheme = *RelationScheme::Make(
      "emp",
      {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"Id"});
  (void)db.CreateRelation(scheme);
  for (size_t i = 0; i < kTuples; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon - kLifespanWidth - 1);
    const TimePoint e = b + rng.Uniform(20, kLifespanWidth - 1);
    Tuple::Builder tb(scheme, Span(b, e));
    std::string id = "t";  // two-step concat: GCC 12 -Wrestrict false positive
    id += std::to_string(i);
    tb.SetConstant("Id", Value::String(std::move(id)));
    // A salary that steps once mid-lifespan.
    const TimePoint mid = b + (e - b) / 2;
    std::vector<Segment> salary;
    salary.push_back(
        {Interval(b, mid), Value::Int(rng.Uniform(30, 200) * 1000)});
    if (mid + 1 <= e) {
      salary.push_back(
          {Interval(mid + 1, e), Value::Int(rng.Uniform(30, 200) * 1000)});
    }
    tb.Set("Salary", *TemporalValue::FromSegments(std::move(salary)));
    const std::string d0 =
        "dept" + std::to_string(rng.Uniform(0, kDepartments - 1));
    if (rng.Chance(kDeptChangeProbability) && mid + 1 <= e) {
      const std::string d1 =
          "dept" + std::to_string(rng.Uniform(0, kDepartments - 1));
      tb.Set("Dept", *TemporalValue::FromSegments(
                         {{Interval(b, mid), Value::String(d0)},
                          {Interval(mid + 1, e), Value::String(d1)}}));
    } else {
      tb.SetConstant("Dept", Value::String(d0));
    }
    (void)db.Insert("emp", *std::move(tb).Build());
  }
  return db;
}

struct PathResult {
  double ops_per_sec = 0;
  size_t result_tuples = 0;
  size_t groups = 0;
  size_t fallback_tuples = 0;
  size_t peak_buffered = 0;
};

/// Runs `hrql` through the streaming plan `iterations` times.
PathResult RunStreaming(const storage::Database& db, const std::string& hrql,
                        int iterations) {
  PathResult out;
  auto expr = query::ParseExpr(hrql);
  if (!expr.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 expr.status().ToString().c_str());
    return out;
  }
  const query::Resolver resolver = query::DatabaseResolver(db);
  const query::PlanOptions options = query::DatabasePlanOptions(db);
  {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   plan.status().ToString().c_str());
      return out;
    }
    auto warm = plan->Drain();
    if (!warm.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
    out.groups = plan->stats().agg_groups_built;
    out.fallback_tuples = plan->stats().agg_fallback_tuples;
    out.peak_buffered = plan->stats().peak_buffered;
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    auto r = plan->Drain();
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

/// Runs `hrql` through the materializing interpreter `iterations` times.
PathResult RunMaterializing(const storage::Database& db,
                            const std::string& hrql, int iterations) {
  PathResult out;
  auto expr = query::ParseExpr(hrql);
  if (!expr.ok()) return out;
  {
    auto warm = query::EvalMaterializing(*expr, db);
    if (!warm.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto r = query::EvalMaterializing(*expr, db);
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;

  struct Workload {
    std::string name;
    std::string hrql;
    int iterations;
  };
  std::vector<Workload> workloads = {
      // Ungrouped: one historical tuple; the COUNT sweep is O(n log n).
      {"count_ungrouped_20k", "aggregate(emp, count)", 20},
      {"avg_salary_ungrouped_20k", "aggregate(emp, avg Salary)", 10},
      // Grouped: 32 departments, ~20% varying-dept fallback tuples.
      {"count_by_dept_20k", "aggregate(emp, count by Dept)", 10},
      {"sum_salary_by_dept_20k", "aggregate(emp, sum Salary by Dept)", 10},
      // Aggregation after restriction: the pipeline feeds the group table.
      {"count_by_dept_sliced_20k",
       "aggregate(timeslice(emp, {[2000, 2999]}), count by Dept)", 20},
  };

  auto db = MakeAggDb(/*seed=*/1);

  std::string json =
      "{\n  \"benchmark\": \"aggregate\",\n  \"tuples\": 20000,\n"
      "  \"workloads\": [\n";
  bool first = true;
  for (const Workload& w : workloads) {
    const PathResult streaming = RunStreaming(db, w.hrql, w.iterations);
    const PathResult materializing =
        RunMaterializing(db, w.hrql, w.iterations);
    const double ratio = materializing.ops_per_sec > 0
                             ? streaming.ops_per_sec / materializing.ops_per_sec
                             : 0;

    std::printf(
        "%-26s | streaming %8.2f ops/s (%5zu groups, %5zu fallback, peak "
        "%6zu) | materializing %8.2f ops/s | %.2fx\n",
        w.name.c_str(), streaming.ops_per_sec, streaming.groups,
        streaming.fallback_tuples, streaming.peak_buffered,
        materializing.ops_per_sec, ratio);

    if (!first) json += ",\n";
    first = false;
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\n      \"name\": \"%s\",\n      \"hrql\": \"%s\",\n"
        "      \"streaming\": {\"ops_per_sec\": %.2f, \"result_tuples\": "
        "%zu, \"groups\": %zu, \"fallback_tuples\": %zu, \"peak_buffered\": "
        "%zu},\n"
        "      \"materializing\": {\"ops_per_sec\": %.2f, \"result_tuples\": "
        "%zu},\n"
        "      \"streaming_vs_materializing\": %.3f\n    }",
        w.name.c_str(), w.hrql.c_str(), streaming.ops_per_sec,
        streaming.result_tuples, streaming.groups, streaming.fallback_tuples,
        streaming.peak_buffered, materializing.ops_per_sec,
        materializing.result_tuples, ratio);
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_aggregate.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_aggregate.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_aggregate.json\n");
  return 0;
}
