// Experiment F10 (Figure 10): the three dimensions of the historical data
// model, one unary reduction operator per axis:
//   SELECT    — value dimension
//   PROJECT   — attribute dimension
//   TIME-SLICE — temporal dimension
//
// Shape to check: all three scale linearly in the instance; each touches a
// different axis (project cost tracks arity, slice cost tracks history
// volume, select cost tracks predicate evaluation over histories).

#include <benchmark/benchmark.h>

#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/timeslice.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

Relation MakeWide(int tuples, int attrs, uint64_t seed = 1) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.num_tuples = static_cast<size_t>(tuples);
  config.num_value_attrs = static_cast<size_t>(attrs);
  return *workload::MakeRandomRelation(&rng, config);
}

void BM_AxisSelect(benchmark::State& state) {
  Relation r = MakeWide(static_cast<int>(state.range(0)), 4);
  Predicate p = Predicate::AttrConst("A0", CompareOp::kLe, Value::Int(50));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectIf(r, p, Quantifier::kExists));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AxisSelect)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_AxisProject(benchmark::State& state) {
  Relation r = MakeWide(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Project(r, {"Id", "A0"}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AxisProject)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_AxisTimeSlice(benchmark::State& state) {
  Relation r = MakeWide(static_cast<int>(state.range(0)), 4);
  const Lifespan window = Span(10, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeSlice(r, window));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AxisTimeSlice)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_ProjectArity(benchmark::State& state) {
  // The attribute axis: cost tracks how many columns are retained.
  Relation r = MakeWide(500, 8);
  std::vector<std::string> attrs = {"Id"};
  for (int a = 0; a < state.range(0); ++a) {
    attrs.push_back("A" + std::to_string(a));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Project(r, attrs));
  }
}
BENCHMARK(BM_ProjectArity)->Arg(1)->Arg(4)->Arg(8);

void BM_ComposedThreeAxes(benchmark::State& state) {
  // One query cutting all three dimensions, Figure 10's cube carving.
  Relation r = MakeWide(static_cast<int>(state.range(0)), 4);
  Predicate p = Predicate::AttrConst("A1", CompareOp::kGe, Value::Int(25));
  const Lifespan window = Span(5, 45);
  for (auto _ : state) {
    auto sliced = TimeSlice(r, window);
    auto selected = SelectWhen(*sliced, p);
    benchmark::DoNotOptimize(Project(*selected, {"Id", "A1"}));
  }
}
BENCHMARK(BM_ComposedThreeAxes)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
