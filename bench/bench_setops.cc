// Experiment F11 + C1 (Figure 11, Section 4.1): standard vs. object-based
// set operations, sweeping how many objects the operands share.
//
// Shape to check (paper): the standard union leaves ~2 tuples per shared
// object (counter-intuitive duplicates); the object-based union merges them
// back to 1, at the cost of the mergeability scan.

#include <benchmark/benchmark.h>

#include "algebra/setops.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

std::pair<Relation, Relation> MakePair(int tuples, double overlap,
                                       uint64_t seed) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.num_tuples = static_cast<size_t>(tuples);
  config.num_value_attrs = 2;
  auto pair = workload::MakeMergeablePair(&rng, config, overlap);
  return *pair;
}

void BM_StandardUnion(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)),
                           state.range(1) / 100.0, 1);
  size_t result_size = 0;
  for (auto _ : state) {
    auto u = Union(r1, r2);
    result_size = u->size();
    benchmark::DoNotOptimize(u);
  }
  state.counters["result_tuples"] = static_cast<double>(result_size);
}
BENCHMARK(BM_StandardUnion)
    ->ArgsProduct({{100, 400}, {0, 50, 100}});

void BM_ObjectUnion(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)),
                           state.range(1) / 100.0, 1);
  size_t result_size = 0;
  for (auto _ : state) {
    auto u = UnionO(r1, r2);
    result_size = u->size();
    benchmark::DoNotOptimize(u);
  }
  state.counters["result_tuples"] = static_cast<double>(result_size);
}
BENCHMARK(BM_ObjectUnion)
    ->ArgsProduct({{100, 400}, {0, 50, 100}});

void BM_StandardIntersect(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)), 0.5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(r1, r2));
  }
}
BENCHMARK(BM_StandardIntersect)->Arg(100)->Arg(400);

void BM_ObjectIntersect(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)), 0.5, 2);
  size_t result_size = 0;
  for (auto _ : state) {
    auto i = IntersectO(r1, r2);
    result_size = i->size();
    benchmark::DoNotOptimize(i);
  }
  state.counters["result_tuples"] = static_cast<double>(result_size);
}
BENCHMARK(BM_ObjectIntersect)->Arg(100)->Arg(400);

void BM_StandardDifference(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)), 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Difference(r1, r2));
  }
}
BENCHMARK(BM_StandardDifference)->Arg(100)->Arg(400);

void BM_ObjectDifference(benchmark::State& state) {
  auto [r1, r2] = MakePair(static_cast<int>(state.range(0)), 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DifferenceO(r1, r2));
  }
}
BENCHMARK(BM_ObjectDifference)->Arg(100)->Arg(400);

void BM_CartesianProduct(benchmark::State& state) {
  Rng rng(4);
  workload::RandomRelationConfig c1;
  c1.name = "pa";
  c1.num_tuples = static_cast<size_t>(state.range(0));
  c1.num_value_attrs = 1;
  c1.key_prefix = "x";
  auto r1 = *workload::MakeRandomRelation(&rng, c1);
  // Rename attributes for disjointness.
  auto scheme2 = *RelationScheme::Make(
      "pb",
      {{"Id2", DomainType::kString, Span(0, 59),
        InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, Span(0, 59), InterpolationKind::kStepwise}},
      {"Id2"});
  Relation r2(scheme2);
  auto src = *workload::MakeRandomRelation(&rng, c1);
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    (void)r2.Insert(Tuple::FromParts(scheme2, t.lifespan(), vals));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CartesianProduct(r1, r2));
  }
}
BENCHMARK(BM_CartesianProduct)->Arg(30)->Arg(100);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
