// Experiment F6 (Figure 6): evolving schemes via attribute lifespans.
//
// Shape to check (paper, Section 2): assigning lifespans to attributes
// makes schema evolution an O(schema) catalog operation plus a rebind of
// the stored instance; queries over any epoch remain answerable because
// old history survives under the old attribute lifespan.

#include <benchmark/benchmark.h>

#include "algebra/select.h"
#include "storage/database.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

storage::Database MakeStocksDb(int tickers, uint64_t seed = 1) {
  Rng rng(seed);
  workload::StockMarketConfig config;
  config.num_tickers = static_cast<size_t>(tickers);
  auto rel = *workload::MakeStockMarket(&rng, config);
  storage::Database db;
  (void)db.CreateRelation(rel.scheme());
  for (const Tuple& t : rel) {
    (void)db.Insert("stocks", t);
  }
  return db;
}

void BM_CloseAttribute(benchmark::State& state) {
  const int tickers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeStocksDb(tickers);
    state.ResumeTiming();
    // "it became too expensive to collect and so it was dropped".
    benchmark::DoNotOptimize(db.CloseAttribute("stocks", "DailyVolume", 60));
  }
}
BENCHMARK(BM_CloseAttribute)->Arg(50)->Arg(200)->Arg(800);

void BM_ReopenAttribute(benchmark::State& state) {
  const int tickers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeStocksDb(tickers);
    (void)db.CloseAttribute("stocks", "DailyVolume", 60);
    state.ResumeTiming();
    // "a cheap outside source ... was discovered and so the schema was
    // expanded to once again incorporate this attribute".
    benchmark::DoNotOptimize(
        db.ReopenAttribute("stocks", "DailyVolume", Span(150, 199)));
  }
}
BENCHMARK(BM_ReopenAttribute)->Arg(50)->Arg(200)->Arg(800);

void BM_AddAttribute(benchmark::State& state) {
  const int tickers = static_cast<int>(state.range(0));
  int epoch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeStocksDb(tickers);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db.AddAttribute(
        "stocks",
        {"Extra" + std::to_string(epoch++), DomainType::kInt, Span(0, 199),
         InterpolationKind::kStepwise}));
  }
}
BENCHMARK(BM_AddAttribute)->Arg(50)->Arg(200);

void BM_QueryAcrossEvolvedEpochs(benchmark::State& state) {
  // Old history stays queryable after evolution: count tickers with high
  // recorded volume *inside the first epoch* after the attribute was
  // dropped and re-added.
  storage::Database db = MakeStocksDb(static_cast<int>(state.range(0)));
  (void)db.CloseAttribute("stocks", "DailyVolume", 60);
  (void)db.ReopenAttribute("stocks", "DailyVolume", Span(150, 199));
  const Relation& rel = **db.Get("stocks");
  Predicate p = Predicate::AttrConst("DailyVolume", CompareOp::kGe,
                                     Value::Int(500000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectIf(rel, p, Quantifier::kExists, Span(0, 59)));
  }
}
BENCHMARK(BM_QueryAcrossEvolvedEpochs)->Arg(100)->Arg(400);

void BM_EvolutionEpochSweep(benchmark::State& state) {
  // Repeated close/reopen cycles: attribute lifespans accumulate
  // fragments; catalog cost should stay proportional to the schema, with
  // the rebind cost proportional to the instance.
  const int epochs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    storage::Database db = MakeStocksDb(100);
    state.ResumeTiming();
    for (int e = 0; e < epochs; ++e) {
      const TimePoint at = 20 + e * 10;
      benchmark::DoNotOptimize(db.CloseAttribute("stocks", "DailyVolume", at));
      benchmark::DoNotOptimize(
          db.ReopenAttribute("stocks", "DailyVolume", Span(at + 5, at + 9)));
    }
  }
}
BENCHMARK(BM_EvolutionEpochSweep)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
