// Experiment C2 (Section 4.3): SELECT-IF vs SELECT-WHEN across selectivity,
// quantifier and window width.
//
// Shape to check: SELECT-IF only filters (cost ≈ predicate evaluation);
// SELECT-WHEN additionally rewrites lifespans and restricts every value
// (cost grows with the surviving history volume).

#include <benchmark/benchmark.h>

#include "algebra/select.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

Relation MakeEmp(int tuples, uint64_t seed = 1) {
  Rng rng(seed);
  workload::PersonnelConfig config;
  config.num_employees = static_cast<size_t>(tuples);
  return *workload::MakePersonnel(&rng, config);
}

/// Salary threshold controlling selectivity (salaries start at 30K–200K and
/// drift upward).
Predicate SalaryAtLeast(int64_t threshold) {
  return Predicate::AttrConst("Salary", CompareOp::kGe,
                              Value::Int(threshold));
}

void BM_SelectIfExists(benchmark::State& state) {
  Relation emp = MakeEmp(static_cast<int>(state.range(0)));
  Predicate p = SalaryAtLeast(state.range(1) * 1000);
  size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectIf(emp, p, Quantifier::kExists);
    selected = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["selected"] = static_cast<double>(selected);
}
BENCHMARK(BM_SelectIfExists)
    ->ArgsProduct({{200, 1000}, {50, 150, 250}});

void BM_SelectIfForall(benchmark::State& state) {
  Relation emp = MakeEmp(static_cast<int>(state.range(0)));
  Predicate p = SalaryAtLeast(state.range(1) * 1000);
  size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectIf(emp, p, Quantifier::kForall);
    selected = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["selected"] = static_cast<double>(selected);
}
BENCHMARK(BM_SelectIfForall)
    ->ArgsProduct({{200, 1000}, {50, 150, 250}});

void BM_SelectWhen(benchmark::State& state) {
  Relation emp = MakeEmp(static_cast<int>(state.range(0)));
  Predicate p = SalaryAtLeast(state.range(1) * 1000);
  size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectWhen(emp, p);
    selected = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["selected"] = static_cast<double>(selected);
}
BENCHMARK(BM_SelectWhen)
    ->ArgsProduct({{200, 1000}, {50, 150, 250}});

void BM_SelectIfWindowed(benchmark::State& state) {
  Relation emp = MakeEmp(500);
  Predicate p = SalaryAtLeast(100000);
  const Lifespan window = Span(0, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectIf(emp, p, Quantifier::kExists, window));
  }
}
BENCHMARK(BM_SelectIfWindowed)->Arg(9)->Arg(49)->Arg(99);

void BM_SelectWhenConjunction(benchmark::State& state) {
  Relation emp = MakeEmp(500);
  Predicate p = Predicate::And(
      {SalaryAtLeast(80000),
       Predicate::AttrConst("Dept", CompareOp::kEq,
                            Value::String("dept0"))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectWhen(emp, p));
  }
}
BENCHMARK(BM_SelectWhenConjunction);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
