// Morsel-parallel execution benchmark (util/thread_pool.h + the parallel
// operators of query/plan.h).
//
// Shape to check: the three parallel-eligible operator families — the scan
// leaves' interpolation pass, the hash equi-join's build partitioning +
// parallel probe, and the aggregate fold — at 1/2/4/8 requested workers
// over inputs comfortably above kParallelMinTuples (so the optimizer's
// ChooseParallelism actually grants the workers). The 1-thread run is the
// exact legacy serial path; every other run must produce the same result
// cardinality, and its speedup is reported relative to it.
//
// Speedups scale with the machine: `hardware_concurrency` is recorded in
// the JSON metadata precisely so a 1-core container's ~1.0x ratios are not
// mistaken for a regression — on an N-core runner the scan/join/aggregate
// workloads are embarrassingly parallel per morsel and approach min(N,
// threads)x. The differential suite (tests/parallel_differential_test.cc)
// asserts result identity; here we measure.
//
// Like bench_executor/bench_join/bench_scan/bench_aggregate this is a
// self-contained harness (no google-benchmark): it emits machine-readable
// BENCH_parallel.json (per-workload, per-thread-count ops/sec with
// speedup-vs-serial ratios, morsel counts) so later PRs can track the perf
// trajectory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/random.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr TimePoint kHorizon = 5000;
constexpr TimePoint kLifespanWidth = 200;

/// `emp(Id*, Salary, Dept)` — 20k tuples, stepwise salaries, 32
/// departments (~20% changing mid-lifespan): the scan + aggregate input.
/// Stored representation-level, so every scan pays the interpolation pass
/// the parallel scan splits into morsels.
storage::Database MakeEmpDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  auto scheme = *RelationScheme::Make(
      "emp",
      {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"Id"});
  (void)db.CreateRelation(scheme);
  for (size_t i = 0; i < 20000; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon - kLifespanWidth - 1);
    const TimePoint e = b + rng.Uniform(20, kLifespanWidth - 1);
    Tuple::Builder tb(scheme, Span(b, e));
    std::string id = "t";  // two-step concat: GCC 12 -Wrestrict false positive
    id += std::to_string(i);
    tb.SetConstant("Id", Value::String(std::move(id)));
    const TimePoint mid = b + (e - b) / 2;
    std::vector<Segment> salary;
    salary.push_back(
        {Interval(b, mid), Value::Int(rng.Uniform(30, 200) * 1000)});
    if (mid + 1 <= e) {
      salary.push_back(
          {Interval(mid + 1, e), Value::Int(rng.Uniform(30, 200) * 1000)});
    }
    tb.Set("Salary", *TemporalValue::FromSegments(std::move(salary)));
    std::string dept = "dept";
    dept += std::to_string(rng.Uniform(0, 31));
    if (rng.Chance(0.2) && mid + 1 <= e) {
      std::string dept2 = "dept";
      dept2 += std::to_string(rng.Uniform(0, 31));
      tb.Set("Dept", *TemporalValue::FromSegments(
                         {{Interval(b, mid), Value::String(std::move(dept))},
                          {Interval(mid + 1, e),
                           Value::String(std::move(dept2))}}));
    } else {
      tb.SetConstant("Dept", Value::String(std::move(dept)));
    }
    (void)db.Insert("emp", *std::move(tb).Build());
  }
  return db;
}

/// `lft(LId*, LV, Ref)` × `rgt(RId*, RV)` — 12k × 8k equi-join partners
/// over a 4000-value space (selective matches), ~10% varying LV/RV for the
/// digest-fallback paths.
storage::Database MakeJoinDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  auto ls = *RelationScheme::Make(
      "lft",
      {{"LId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"LV", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Ref", DomainType::kTime, full, InterpolationKind::kDiscrete}},
      {"LId"});
  auto rs = *RelationScheme::Make(
      "rgt",
      {{"RId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"RV", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"RId"});
  (void)db.CreateRelation(ls);
  (void)db.CreateRelation(rs);
  auto fill = [&](const char* rel, const SchemePtr& scheme, const char* key,
                  const char* val, size_t n, bool with_ref) {
    for (size_t i = 0; i < n; ++i) {
      const TimePoint b = rng.Uniform(0, kHorizon - kLifespanWidth - 1);
      const TimePoint e = b + rng.Uniform(20, kLifespanWidth - 1);
      Tuple::Builder tb(scheme, Span(b, e));
      std::string id(key);
      id += std::to_string(i);
      tb.SetConstant(scheme->attribute(0).name, Value::String(std::move(id)));
      if (rng.Chance(0.1)) {
        const TimePoint mid = b + (e - b) / 2;
        std::vector<Segment> segs;
        segs.push_back({Interval(b, mid), Value::Int(rng.Uniform(0, 3999))});
        if (mid + 1 <= e) {
          segs.push_back(
              {Interval(mid + 1, e), Value::Int(rng.Uniform(0, 3999))});
        }
        tb.Set(val, *TemporalValue::FromSegments(std::move(segs)));
      } else {
        tb.SetConstant(val, Value::Int(rng.Uniform(0, 3999)));
      }
      if (with_ref) {
        tb.SetConstant("Ref", Value::Time(rng.Uniform(b, e)));
      }
      (void)db.Insert(rel, *std::move(tb).Build());
    }
  };
  fill("lft", ls, "l", "LV", 12000, true);
  fill("rgt", rs, "r", "RV", 8000, false);
  return db;
}

struct ThreadResult {
  double ops_per_sec = 0;
  size_t result_tuples = 0;
  size_t effective_parallelism = 0;
  size_t morsels = 0;
};

/// Runs `hrql` with PlanOptions::parallelism = `threads`, `iterations`
/// timed drains after a warm-up that records result size and morsel stats.
ThreadResult RunAtThreads(const storage::Database& db, const std::string& hrql,
                          size_t threads, int iterations) {
  ThreadResult out;
  auto expr = query::ParseExpr(hrql);
  if (!expr.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 expr.status().ToString().c_str());
    return out;
  }
  const query::Resolver resolver = query::DatabaseResolver(db);
  query::PlanOptions options;
  options.parallelism = threads;
  {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   plan.status().ToString().c_str());
      return out;
    }
    auto warm = plan->Drain();
    if (!warm.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
    out.effective_parallelism = plan->stats().parallelism;
    out.morsels = plan->stats().morsels_dispatched;
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    auto r = plan->Drain();
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  struct Workload {
    std::string name;
    std::string hrql;
    const storage::Database* db;
    int iterations;
  };

  auto emp_db = MakeEmpDb(/*seed=*/1);
  auto join_db = MakeJoinDb(/*seed=*/2);

  std::vector<Workload> workloads = {
      // Scan: 20k-tuple interpolation pass, split into ~10 morsels.
      {"scan_20k", "emp", &emp_db, 8},
      // Scan feeding a streaming restriction (the parallel leaf under a
      // serial consumer).
      {"scan_filter_20k", "select_when(emp, Salary <= 100000)", &emp_db, 8},
      // Hash equi-join: 8k build + 12k probe, parallel partition + probe.
      {"hash_join_12k_8k", "join(lft, rgt, LV = RV)", &join_db, 4},
      // Aggregate fold: 20k tuples into 32 groups (~20% fallback).
      {"sum_by_dept_20k", "aggregate(emp, sum Salary by Dept)", &emp_db, 4},
      {"count_by_dept_20k", "aggregate(emp, count by Dept)", &emp_db, 4},
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const char* env_threads = std::getenv("HRDM_THREADS");

  std::string json = "{\n  \"benchmark\": \"parallel\",\n";
  {
    char meta[256];
    std::snprintf(meta, sizeof(meta),
                  "  \"hardware_concurrency\": %u,\n"
                  "  \"hrdm_threads_env\": \"%s\",\n"
                  "  \"thread_counts\": [1, 2, 4, 8],\n"
                  "  \"workloads\": [\n",
                  hw, env_threads != nullptr ? env_threads : "");
    json += meta;
  }
  std::printf("hardware_concurrency: %u\n", hw);

  bool first_workload = true;
  for (const Workload& w : workloads) {
    double serial_ops = 0;
    if (!first_workload) json += ",\n";
    first_workload = false;
    json += "    {\n      \"name\": \"" + w.name + "\",\n      \"hrql\": \"" +
            w.hrql + "\",\n      \"threads\": [\n";
    bool first_threads = true;
    for (size_t threads : thread_counts) {
      const ThreadResult r = RunAtThreads(*w.db, w.hrql, threads,
                                          w.iterations);
      if (threads == 1) serial_ops = r.ops_per_sec;
      const double speedup =
          serial_ops > 0 ? r.ops_per_sec / serial_ops : 0;
      std::printf(
          "%-20s @ %zu thr | %8.2f ops/s | speedup %5.2fx | eff. par %zu | "
          "%4zu morsels | %7zu tuples\n",
          w.name.c_str(), threads, r.ops_per_sec, speedup,
          r.effective_parallelism, r.morsels, r.result_tuples);
      if (!first_threads) json += ",\n";
      first_threads = false;
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "        {\"threads\": %zu, \"ops_per_sec\": %.2f, "
          "\"speedup_vs_serial\": %.3f, \"effective_parallelism\": %zu, "
          "\"morsels_dispatched\": %zu, \"result_tuples\": %zu}",
          threads, r.ops_per_sec, speedup, r.effective_parallelism, r.morsels,
          r.result_tuples);
      json += buf;
    }
    json += "\n      ]\n    }";
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}
