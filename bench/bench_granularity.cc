// Experiment F2–F4 (Figures 2–4): the lifespan-granularity tradeoff.
//
// The paper (Section 2): "The choice of which level is appropriate is a
// tradeoff between the cost of maintaining proliferating lifespans, on the
// one hand, and the flexibility that finer and finer lifespans provide ...
// the overhead for the database or relation approach is quite small, and is
// proportional to the size of the schema. The cost of the tuple lifespan
// approach is proportional to the size of the database instance."
//
// We build the same instance content under four granularities and report
// (a) the number of distinct lifespan objects maintained and (b) the bytes
// spent on lifespan storage, sweeping the instance size. The paper's claim
// shows as: database-/relation-level curves stay flat (schema-sized) while
// tuple-/attribute-level curves grow linearly with the instance.

#include <benchmark/benchmark.h>

#include "core/relation.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

enum Granularity : int {
  kDatabaseLevel = 0,   // Figure 2: one lifespan for everything
  kRelationLevel = 1,   // Figure 3: one lifespan per relation
  kTupleLevel = 2,      // Figure 4: one lifespan per tuple
  kAttributeLevel = 3,  // Section 2 end: per tuple AND per attribute
};

constexpr const char* kNames[] = {"database", "relation", "tuple",
                                  "attribute"};
constexpr int kRelationsPerDb = 4;
constexpr int kAttrsPerRelation = 3;

/// Counts the lifespan objects and lifespan bytes a database of
/// `tuples_per_relation` tuples needs under the given granularity.
/// Fragmented per-object histories only exist at the finer levels; coarse
/// levels keep one shared lifespan whose fragments are the union.
void CountLifespans(Granularity g, int tuples_per_relation, Rng* rng,
                    int64_t* objects, int64_t* bytes) {
  *objects = 0;
  *bytes = 0;
  auto lifespan_cost = [&](int fragments) {
    *objects += 1;
    *bytes += fragments * static_cast<int64_t>(sizeof(Interval));
  };
  switch (g) {
    case kDatabaseLevel:
      lifespan_cost(1);
      break;
    case kRelationLevel:
      for (int r = 0; r < kRelationsPerDb; ++r) lifespan_cost(1);
      break;
    case kTupleLevel:
      for (int r = 0; r < kRelationsPerDb; ++r) {
        for (int t = 0; t < tuples_per_relation; ++t) {
          lifespan_cost(1 + static_cast<int>(rng->Uniform(0, 2)));
        }
      }
      break;
    case kAttributeLevel:
      for (int r = 0; r < kRelationsPerDb; ++r) {
        for (int t = 0; t < tuples_per_relation; ++t) {
          for (int a = 0; a < kAttrsPerRelation; ++a) {
            lifespan_cost(1 + static_cast<int>(rng->Uniform(0, 2)));
          }
        }
      }
      break;
  }
}

void BM_GranularityMaintenance(benchmark::State& state) {
  const Granularity g = static_cast<Granularity>(state.range(0));
  const int tuples = static_cast<int>(state.range(1));
  int64_t objects = 0, bytes = 0;
  for (auto _ : state) {
    Rng rng(7);
    CountLifespans(g, tuples, &rng, &objects, &bytes);
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["lifespan_objects"] = static_cast<double>(objects);
  state.counters["lifespan_bytes"] = static_cast<double>(bytes);
  state.SetLabel(kNames[g]);
}
BENCHMARK(BM_GranularityMaintenance)
    ->ArgsProduct({{kDatabaseLevel, kRelationLevel, kTupleLevel,
                    kAttributeLevel},
                   {100, 1000, 10000}});

/// The flip side of the tradeoff: expressiveness. Only tuple-level (or
/// finer) lifespans represent reincarnation directly; the pre-lifespan
/// design the paper's Section 1 describes (a 3-D cube with a per-chronon
/// EXISTS? boolean on every tuple) must instead store one bit per tuple per
/// chronon. Sweeping the horizon shows the crossover: cube storage grows
/// linearly with the horizon, interval-coded lifespans stay proportional to
/// the number of *changes* (hire/fire events), not to elapsed time.
void BM_GranularityEmulationOverhead(benchmark::State& state) {
  const TimePoint horizon = state.range(0);
  Rng rng(11);
  workload::PersonnelConfig config;
  config.num_employees = 500;
  config.horizon = horizon;
  config.rehire_probability = 0.4;
  auto rel = workload::MakePersonnel(&rng, config);
  if (!rel.ok()) {
    state.SkipWithError("generator failed");
    return;
  }
  // Tuple-level lifespans: interval storage, horizon-independent.
  int64_t lifespan_bytes = 0;
  // Cube emulation: one boolean per tuple per chronon of the horizon.
  const int64_t cube_bytes =
      static_cast<int64_t>(rel->size()) * horizon / 8;
  for (const Tuple& t : *rel) {
    lifespan_bytes +=
        static_cast<int64_t>(t.lifespan().IntervalCount() * sizeof(Interval));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel->ApproxBytes());
  }
  state.counters["lifespan_bytes"] = static_cast<double>(lifespan_bytes);
  state.counters["exists_cube_bytes"] = static_cast<double>(cube_bytes);
  state.counters["cube_over_lifespan"] =
      static_cast<double>(cube_bytes) /
      static_cast<double>(std::max<int64_t>(1, lifespan_bytes));
}
BENCHMARK(BM_GranularityEmulationOverhead)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
