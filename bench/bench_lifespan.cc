// Kernel benchmark: Lifespan set operations vs. fragmentation.
// Everything in the algebra reduces to these sweeps, so their scaling
// bounds every other experiment.

#include <benchmark/benchmark.h>

#include "core/lifespan.h"
#include "util/random.h"

namespace hrdm {
namespace {

Lifespan MakeFragmented(Rng* rng, int fragments, TimePoint gap = 10) {
  std::vector<Interval> ivs;
  TimePoint t = 0;
  for (int i = 0; i < fragments; ++i) {
    TimePoint len = 1 + rng->Uniform(0, 8);
    ivs.push_back(Interval(t, t + len));
    t += len + 1 + rng->Uniform(1, gap);
  }
  return Lifespan::FromIntervals(std::move(ivs));
}

void BM_LifespanUnion(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  Lifespan a = MakeFragmented(&rng, n);
  Lifespan b = MakeFragmented(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LifespanUnion)->Range(4, 4096)->Complexity(benchmark::oN);

void BM_LifespanIntersect(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  Lifespan a = MakeFragmented(&rng, n);
  Lifespan b = MakeFragmented(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LifespanIntersect)->Range(4, 4096)->Complexity(benchmark::oN);

void BM_LifespanDifference(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  Lifespan a = MakeFragmented(&rng, n);
  Lifespan b = MakeFragmented(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Difference(b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LifespanDifference)->Range(4, 4096)->Complexity(benchmark::oN);

void BM_LifespanContains(benchmark::State& state) {
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  Lifespan a = MakeFragmented(&rng, n);
  TimePoint probe = a.Max() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Contains(probe));
    probe = (probe + 37) % a.Max();
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LifespanContains)->Range(4, 4096)->Complexity(benchmark::oLogN);

void BM_LifespanCanonicalize(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  std::vector<Interval> raw;
  for (int i = 0; i < n; ++i) {
    TimePoint b = rng.Uniform(0, n * 4);
    raw.push_back(Interval(b, b + rng.Uniform(0, 12)));
  }
  for (auto _ : state) {
    auto copy = raw;
    benchmark::DoNotOptimize(Lifespan::FromIntervals(std::move(copy)));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LifespanCanonicalize)
    ->Range(4, 4096)
    ->Complexity(benchmark::oNLogN);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
