// Experiment C5 (Sections 4.6 and 5): the JOIN family, and the
// JOIN vs SELECT-WHEN∘× plan comparison.
//
// Shape to check (paper): the direct join evaluates the θ condition pair-
// wise and only materializes matching lifespans ("no nulls result"); the
// equivalent ×-then-SELECT-WHEN plan materializes |r1|·|r2| wide tuples
// first and must win nowhere. Both produce identical answers (see
// join_test.cc); here we measure the cost gap.

#include <benchmark/benchmark.h>

#include "algebra/join.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

/// Two relations with disjoint attribute names whose A0/B0 values match
/// with probability controlled by the value range.
std::pair<Relation, Relation> MakeJoinPair(int tuples, uint64_t seed) {
  Rng rng(seed);
  workload::RandomRelationConfig c;
  c.name = "ja";
  c.num_tuples = static_cast<size_t>(tuples);
  c.num_value_attrs = 1;
  c.key_prefix = "x";
  Relation r1 = *workload::MakeRandomRelation(&rng, c);
  auto scheme2 = *RelationScheme::Make(
      "jb",
      {{"Id2", DomainType::kString, Span(0, 59),
        InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, Span(0, 59), InterpolationKind::kStepwise}},
      {"Id2"});
  Relation r2(scheme2);
  Relation src = *workload::MakeRandomRelation(&rng, c);
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    (void)r2.Insert(Tuple::FromParts(scheme2, t.lifespan(), vals));
  }
  return {std::move(r1), std::move(r2)};
}

void BM_EquiJoin(benchmark::State& state) {
  auto [r1, r2] = MakeJoinPair(static_cast<int>(state.range(0)), 1);
  size_t matches = 0;
  for (auto _ : state) {
    auto j = EquiJoin(r1, "A0", r2, "B0");
    matches = j->size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_EquiJoin)->Arg(30)->Arg(100)->Arg(300);

void BM_ThetaJoinLe(benchmark::State& state) {
  auto [r1, r2] = MakeJoinPair(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThetaJoin(r1, "A0", CompareOp::kLe, r2, "B0"));
  }
}
BENCHMARK(BM_ThetaJoinLe)->Arg(30)->Arg(100)->Arg(300);

void BM_JoinDirect(benchmark::State& state) {
  // The direct plan of the JOIN ≡ SELECT-WHEN ∘ × equivalence.
  auto [r1, r2] = MakeJoinPair(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EquiJoin(r1, "A0", r2, "B0"));
  }
}
BENCHMARK(BM_JoinDirect)->Arg(30)->Arg(100);

void BM_JoinViaProductSelectWhen(benchmark::State& state) {
  // The naive plan: materialize ×, then SELECT-WHEN.
  auto [r1, r2] = MakeJoinPair(static_cast<int>(state.range(0)), 3);
  Predicate p = Predicate::AttrAttr("A0", CompareOp::kEq, "B0");
  for (auto _ : state) {
    auto product = CartesianProduct(r1, r2);
    benchmark::DoNotOptimize(SelectWhen(*product, p));
  }
}
BENCHMARK(BM_JoinViaProductSelectWhen)->Arg(30)->Arg(100);

void BM_NaturalJoin(benchmark::State& state) {
  // Shared attribute D: classic emp/dept shape.
  Rng rng(4);
  const Lifespan full = Span(0, 59);
  auto emp_scheme = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"D", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"Name"});
  auto dept_scheme = *RelationScheme::Make(
      "dept",
      {{"D", DomainType::kInt, full, InterpolationKind::kDiscrete},
       {"Mgr", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"D"});
  Relation emp(emp_scheme), dept(dept_scheme);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    Tuple::Builder b(emp_scheme, Span(rng.Uniform(0, 30), 59));
    b.SetConstant("Name", Value::String("e" + std::to_string(i)));
    b.SetConstant("D", Value::Int(rng.Uniform(0, 19)));
    (void)emp.Insert(*std::move(b).Build());
  }
  for (int i = 0; i < 20; ++i) {
    Tuple::Builder b(dept_scheme, full);
    b.SetConstant("D", Value::Int(i));
    b.SetConstant("Mgr", Value::String(rng.Identifier(6)));
    (void)dept.Insert(*std::move(b).Build());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaturalJoin(emp, dept));
  }
}
BENCHMARK(BM_NaturalJoin)->Arg(100)->Arg(400);

void BM_TimeJoin(benchmark::State& state) {
  Rng rng(5);
  workload::RandomRelationConfig c;
  c.name = "audit";
  c.num_tuples = static_cast<size_t>(state.range(0));
  c.num_value_attrs = 0;
  c.with_time_attribute = true;
  c.key_prefix = "a";
  Relation audit = *workload::MakeRandomRelation(&rng, c);
  auto scheme2 = *RelationScheme::Make(
      "hist",
      {{"HId", DomainType::kString, Span(0, 59),
        InterpolationKind::kDiscrete},
       {"V", DomainType::kInt, Span(0, 59), InterpolationKind::kStepwise}},
      {"HId"});
  Relation hist(scheme2);
  for (int i = 0; i < 50; ++i) {
    Tuple::Builder b(scheme2, Span(0, 59));
    b.SetConstant("HId", Value::String("h" + std::to_string(i)));
    b.SetConstant("V", Value::Int(rng.Uniform(0, 99)));
    (void)hist.Insert(*std::move(b).Build());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeJoin(audit, "Ref", hist));
  }
}
BENCHMARK(BM_TimeJoin)->Arg(50)->Arg(200);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
