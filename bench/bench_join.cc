// Experiment C5 (Sections 4.6 and 5): physical join strategies.
//
// Shape to check: on selective equi-joins the hash strategy must beat the
// product (nested-loop) strategy by avoiding the |r1|·|r2| pair space —
// ≥5× at the larger sizes — while PlanStats confirms it buffers only its
// build side; the TIME-JOIN merge strategy must beat nested loop by
// frontier pruning. All strategies return identical answers (the
// differential suite asserts that; here we measure the cost gap).
//
// Like bench_executor this is a self-contained harness (no
// google-benchmark): it emits machine-readable BENCH_join.json in the same
// shape as BENCH_executor.json (per-path ops/sec, result tuples, peak
// intermediate tuples) so later PRs can track the perf trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/random.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;
using query::JoinStrategy;

constexpr TimePoint kHorizon = 200;

/// Builds `lft(LId*, LV, Ref)` and `rgt(RId*, RV)` with `tuples` rows each.
/// LV/RV are constant ints drawn from [0, value_space): the expected number
/// of equi-matching pairs is |l|·|r| / value_space, so value_space IS the
/// selectivity knob. Ref is a time value for the TIME-JOIN workloads.
storage::Database MakeJoinDb(size_t tuples, int64_t value_space,
                             uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  auto lft = *RelationScheme::Make(
      "lft",
      {{"LId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"LV", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Ref", DomainType::kTime, full, InterpolationKind::kStepwise}},
      {"LId"});
  auto rgt = *RelationScheme::Make(
      "rgt",
      {{"RId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"RV", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"RId"});
  (void)db.CreateRelation(lft);
  (void)db.CreateRelation(rgt);
  for (size_t i = 0; i < tuples; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon - 40);
    const TimePoint e = b + rng.Uniform(10, 39);
    {
      Tuple::Builder tb(lft, Span(b, e));
      tb.SetConstant("LId", Value::String("l" + std::to_string(i)));
      tb.SetConstant("LV", Value::Int(rng.Uniform(0, value_space - 1)));
      tb.SetConstant("Ref", Value::Time(rng.Uniform(0, kHorizon - 1)));
      (void)db.Insert("lft", *std::move(tb).Build());
    }
    {
      Tuple::Builder tb(rgt, Span(b, e));
      tb.SetConstant("RId", Value::String("r" + std::to_string(i)));
      tb.SetConstant("RV", Value::Int(rng.Uniform(0, value_space - 1)));
      (void)db.Insert("rgt", *std::move(tb).Build());
    }
  }
  return db;
}

struct PathResult {
  double ops_per_sec = 0;
  size_t result_tuples = 0;
  size_t peak_intermediate = 0;
  size_t pairs_tested = 0;
};

/// Runs `hrql` under a forced strategy `iterations` times.
PathResult RunStrategy(const storage::Database& db, const std::string& hrql,
                       JoinStrategy strategy, int iterations) {
  PathResult out;
  auto expr = query::ParseExpr(hrql);
  if (!expr.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 expr.status().ToString().c_str());
    return out;
  }
  const query::Resolver resolver = query::DatabaseResolver(db);
  query::PlanOptions options;
  options.force_join_strategy = strategy;
  {
    // Warm-up + stats from one instrumented run.
    auto plan = query::Plan::Lower(*expr, resolver, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   plan.status().ToString().c_str());
      return out;
    }
    auto warm = plan->Drain();
    if (!warm.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
    out.peak_intermediate = plan->stats().peak_buffered;
    out.pairs_tested = plan->stats().join_pairs_tested;
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    auto r = plan->Drain();
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

struct Workload {
  std::string name;
  std::string hrql;
  size_t tuples;
  int64_t value_space;       // selectivity knob (0 = n/a)
  JoinStrategy optimized;    // what the chooser picks for this shape
  int product_iterations;    // the O(n²) baseline gets fewer
  int optimized_iterations;
  PathResult product;
  PathResult strategy;
  double speedup = 0;
};

void AppendPathJson(std::string* json, const char* key, const PathResult& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"ops_per_sec\": %.2f, \"result_tuples\": "
                "%zu, \"peak_intermediate_tuples\": %zu, "
                "\"pairs_tested\": %zu}",
                key, p.ops_per_sec, p.result_tuples, p.peak_intermediate,
                p.pairs_tested);
  *json += buf;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;
  using query::JoinStrategy;

  std::vector<Workload> workloads = {
      // Selectivity sweep at a fixed size: the hash win grows as the value
      // space widens (fewer matching pairs for the same pair space).
      {"equijoin_dense_1k", "join(lft, rgt, LV = RV)", 1000, 8,
       JoinStrategy::kHash, 3, 3, {}, {}, 0},
      {"equijoin_mid_1k", "join(lft, rgt, LV = RV)", 1000, 128,
       JoinStrategy::kHash, 3, 10, {}, {}, 0},
      {"equijoin_selective_1k", "join(lft, rgt, LV = RV)", 1000, 2048,
       JoinStrategy::kHash, 3, 20, {}, {}, 0},
      // Size sweep at high selectivity: the acceptance shape.
      {"equijoin_selective_3k", "join(lft, rgt, LV = RV)", 3000, 8192,
       JoinStrategy::kHash, 1, 10, {}, {}, 0},
      {"equijoin_selective_10k", "join(lft, rgt, LV = RV)", 10000, 32768,
       JoinStrategy::kHash, 1, 5, {}, {}, 0},
      // TIME-JOIN: merge frontier vs nested loop.
      {"timejoin_1k", "timejoin(lft, rgt, Ref)", 1000, 64,
       JoinStrategy::kMerge, 3, 3, {}, {}, 0},
      {"timejoin_3k", "timejoin(lft, rgt, Ref)", 3000, 64,
       JoinStrategy::kMerge, 1, 2, {}, {}, 0},
  };

  std::string json = "{\n  \"benchmark\": \"join\",\n  \"workloads\": [\n";
  bool first = true;
  for (Workload& w : workloads) {
    auto db = MakeJoinDb(w.tuples, w.value_space, /*seed=*/1);
    w.product = RunStrategy(db, w.hrql, JoinStrategy::kNestedLoop,
                            w.product_iterations);
    w.strategy = RunStrategy(db, w.hrql, w.optimized,
                             w.optimized_iterations);
    w.speedup = w.product.ops_per_sec > 0
                    ? w.strategy.ops_per_sec / w.product.ops_per_sec
                    : 0;

    std::printf(
        "%-24s %6zu x %-6zu | product %9.2f ops/s (%10zu pairs) | "
        "%-5s %9.2f ops/s (%9zu pairs, peak %6zu) | %.2fx\n",
        w.name.c_str(), w.tuples, w.tuples, w.product.ops_per_sec,
        w.product.pairs_tested,
        std::string(query::JoinStrategyName(w.optimized)).c_str(),
        w.strategy.ops_per_sec, w.strategy.pairs_tested,
        w.strategy.peak_intermediate, w.speedup);

    if (!first) json += ",\n";
    first = false;
    json += "    {\n      \"name\": \"" + w.name + "\",\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "      \"tuples\": %zu,\n      \"value_space\": %lld,\n"
                  "      \"strategy\": \"%s\",\n",
                  w.tuples, static_cast<long long>(w.value_space),
                  std::string(query::JoinStrategyName(w.optimized)).c_str());
    json += buf;
    AppendPathJson(&json, "product", w.product);
    json += ",\n";
    AppendPathJson(&json, "optimized", w.strategy);
    std::snprintf(buf, sizeof(buf), ",\n      \"speedup\": %.3f\n    }",
                  w.speedup);
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_join.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_join.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_join.json\n");
  return 0;
}
