// Access-path benchmark (entry-point restrictions, Sections 4.3–4.4).
//
// Shape to check: on selective point queries (SELECT-IF / SELECT-WHEN with
// an equality criterion) and narrow TIME-SLICE windows over a 100k-tuple
// relation, the storage indexes (storage/index.h) must beat the full
// ScanCursor by ≥5× — the index probe hands the plan a small candidate set
// and only those tuples are interpolated and tested, while the full scan
// pays O(|r|) materializations per query. The differential fuzz suite
// asserts both paths return identical relations; here we measure the gap.
//
// Like bench_executor/bench_join this is a self-contained harness (no
// google-benchmark): it emits machine-readable BENCH_scan.json in the same
// shape (per-path ops/sec, result tuples, tuples scanned, index
// candidates) so later PRs can track the perf trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/random.h"

namespace hrdm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kTuples = 100000;
constexpr TimePoint kHorizon = 100000;
constexpr int64_t kValueSpace = 1000;  // ~0.1% selectivity per point probe
constexpr TimePoint kLifespanWidth = 100;

/// Builds `r(Id*, V)` with `kTuples` rows: V constant ints from
/// [0, kValueSpace) — a point probe expects |r| / kValueSpace matches —
/// and ~kLifespanWidth-chronon lifespans spread over the horizon, so a
/// kLifespanWidth-wide TIME-SLICE window touches ~0.2% of the tuples.
/// Both index kinds are built; the optimizer picks per query.
storage::Database MakeScanDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  auto scheme = *RelationScheme::Make(
      "r", {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
            {"V", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"Id"});
  (void)db.CreateRelation(scheme);
  for (size_t i = 0; i < kTuples; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon - kLifespanWidth - 1);
    Tuple::Builder tb(scheme, Span(b, b + rng.Uniform(10, kLifespanWidth - 1)));
    std::string id = "t";  // two-step concat: GCC 12 -Wrestrict false positive
    id += std::to_string(i);
    tb.SetConstant("Id", Value::String(std::move(id)));
    tb.SetConstant("V", Value::Int(rng.Uniform(0, kValueSpace - 1)));
    (void)db.Insert("r", *std::move(tb).Build());
  }
  (void)db.CreateLifespanIndex("r");
  (void)db.CreateValueIndex("r", "V");
  return db;
}

struct PathResult {
  double ops_per_sec = 0;
  size_t result_tuples = 0;
  size_t tuples_scanned = 0;
  size_t index_candidates = 0;
  std::string path;  // what PlanStats says actually ran
};

/// Runs `hrql` `iterations` times; `force` pins the access path (nullopt =
/// let ChooseAccessPath decide, the production configuration).
PathResult RunPath(const storage::Database& db, const std::string& hrql,
                   std::optional<query::AccessPath> force, int iterations) {
  PathResult out;
  auto expr = query::ParseExpr(hrql);
  if (!expr.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 expr.status().ToString().c_str());
    return out;
  }
  const query::Resolver resolver = query::DatabaseResolver(db);
  query::PlanOptions options = query::DatabasePlanOptions(db);
  options.force_access_path = force;
  {
    // Warm-up + stats from one instrumented run.
    auto plan = query::Plan::Lower(*expr, resolver, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   plan.status().ToString().c_str());
      return out;
    }
    auto warm = plan->Drain();
    if (!warm.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   warm.status().ToString().c_str());
      return out;
    }
    out.result_tuples = warm->size();
    out.tuples_scanned = plan->stats().tuples_scanned;
    out.index_candidates = plan->stats().index_candidates;
    const auto& stats = plan->stats();
    out.path = stats.scans_value_index > 0      ? "value_index"
               : stats.scans_lifespan_index > 0 ? "lifespan_index"
                                                : "full_scan";
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto plan = query::Plan::Lower(*expr, resolver, options);
    auto r = plan->Drain();
    if (!r.ok() || r->size() != out.result_tuples) std::abort();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  out.ops_per_sec = iterations / elapsed.count();
  return out;
}

struct Workload {
  std::string name;
  std::string hrql;
  int scan_iterations;   // the O(|r|) baseline gets fewer
  int index_iterations;
  PathResult scan;
  PathResult indexed;
  double speedup = 0;
};

void AppendPathJson(std::string* json, const char* key, const PathResult& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"ops_per_sec\": %.2f, \"result_tuples\": "
                "%zu, \"tuples_scanned\": %zu, \"index_candidates\": %zu, "
                "\"path\": \"%s\"}",
                key, p.ops_per_sec, p.result_tuples, p.tuples_scanned,
                p.index_candidates, p.path.c_str());
  *json += buf;
}

}  // namespace
}  // namespace hrdm

int main() {
  using namespace hrdm;
  using query::AccessPath;

  char slice[64];
  std::snprintf(slice, sizeof(slice), "timeslice(r, {[%d, %d]})", 50000,
                50000 + static_cast<int>(kLifespanWidth) - 1);
  char windowed[96];
  std::snprintf(windowed, sizeof(windowed),
                "select_if(r, V = 123, exists, {[%d, %d]})", 50000,
                50000 + static_cast<int>(kLifespanWidth) - 1);

  std::vector<Workload> workloads = {
      // Selective point queries → value index.
      {"select_if_point_100k", "select_if(r, V = 123, exists)", 3, 500,
       {}, {}, 0},
      {"select_when_point_100k", "select_when(r, V = 123)", 3, 500,
       {}, {}, 0},
      // Narrow slice window → lifespan interval index.
      {"timeslice_narrow_100k", slice, 3, 200, {}, {}, 0},
      // Windowed existential SELECT-IF: value index preferred, lifespan
      // eligible — the chooser takes the equality probe.
      {"select_if_windowed_100k", windowed, 3, 500, {}, {}, 0},
  };

  auto db = MakeScanDb(/*seed=*/1);

  std::string json = "{\n  \"benchmark\": \"scan\",\n  \"tuples\": 100000,\n"
                     "  \"workloads\": [\n";
  bool first = true;
  for (Workload& w : workloads) {
    w.scan = RunPath(db, w.hrql, AccessPath::kFullScan, w.scan_iterations);
    w.indexed = RunPath(db, w.hrql, std::nullopt, w.index_iterations);
    w.speedup = w.scan.ops_per_sec > 0
                    ? w.indexed.ops_per_sec / w.scan.ops_per_sec
                    : 0;

    std::printf(
        "%-26s | full scan %8.2f ops/s (%6zu scanned) | %-14s %9.2f ops/s "
        "(%5zu candidates) | %.1fx\n",
        w.name.c_str(), w.scan.ops_per_sec, w.scan.tuples_scanned,
        w.indexed.path.c_str(), w.indexed.ops_per_sec,
        w.indexed.index_candidates, w.speedup);

    if (!first) json += ",\n";
    first = false;
    json += "    {\n      \"name\": \"" + w.name + "\",\n";
    json += "      \"hrql\": \"" + w.hrql + "\",\n";
    AppendPathJson(&json, "full_scan", w.scan);
    json += ",\n";
    AppendPathJson(&json, "optimized", w.indexed);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\n      \"speedup\": %.3f\n    }",
                  w.speedup);
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_scan.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_scan.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_scan.json\n");
  return 0;
}
