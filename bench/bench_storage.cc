// Durable-storage benchmark: snapshot encode/decode, change-log replay,
// and — the headline for the WAL work — sustained durable-insert
// throughput through StorageEngine under each fsync policy, plus recovery
// (reopen + replay) latency over the log the inserts produced.
//
// The fsync ladder is the point: `off` measures the pure engine + WAL
// framing cost, `batched` adds an fsync every batch_bytes, `always` pays
// one fsync per record (classic commit durability). On a tmpfs
// (TMPDIR=/dev/shm, as the CI crash-recovery job runs it) the ladder
// collapses, which is itself useful: it isolates the software overhead
// from the disk.
//
// Like bench_executor/bench_parallel this is a self-contained harness (no
// google-benchmark): it prints a table and emits machine-readable
// BENCH_storage.json. Scratch space: $HRDM_BENCH_DIR, else $TMPDIR, else
// /tmp.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "storage/changelog.h"
#include "storage/database.h"
#include "storage/serializer.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "util/file.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::storage {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A fresh scratch directory under $HRDM_BENCH_DIR / $TMPDIR / /tmp.
std::string MakeScratchDir() {
  const char* base = std::getenv("HRDM_BENCH_DIR");
  if (base == nullptr || *base == '\0') base = std::getenv("TMPDIR");
  if (base == nullptr || *base == '\0') base = "/tmp";
  std::string tmpl = std::string(base) + "/hrdm_bench_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return std::string(buf.data());
}

void RemoveScratchDir(const std::string& dir) {
  auto entries = util::ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)util::RemoveFileIfExists(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

Database MakeDb(int employees, uint64_t seed = 1) {
  Rng rng(seed);
  workload::PersonnelConfig config;
  config.num_employees = static_cast<size_t>(employees);
  auto rel = *workload::MakePersonnel(&rng, config);
  Database db;
  (void)db.CreateRelation(rel.scheme());
  for (const Tuple& t : rel) {
    (void)db.Insert("emp", t);
  }
  return db;
}

struct SnapshotResult {
  int employees = 0;
  size_t bytes = 0;
  double encode_mb_s = 0;
  double decode_mb_s = 0;
};

SnapshotResult BenchSnapshot(int employees, int iterations) {
  SnapshotResult out;
  out.employees = employees;
  Database db = MakeDb(employees);
  const std::string image = db.EncodeSnapshot();
  out.bytes = image.size();
  {
    const auto start = Clock::now();
    for (int i = 0; i < iterations; ++i) {
      std::string buf = db.EncodeSnapshot();
      if (buf.size() != out.bytes) std::abort();
    }
    out.encode_mb_s =
        (static_cast<double>(out.bytes) * iterations / (1 << 20)) /
        SecondsSince(start);
  }
  {
    const auto start = Clock::now();
    for (int i = 0; i < iterations; ++i) {
      auto decoded = Database::DecodeSnapshot(image);
      if (!decoded.ok()) std::abort();
    }
    out.decode_mb_s =
        (static_cast<double>(out.bytes) * iterations / (1 << 20)) /
        SecondsSince(start);
  }
  return out;
}

struct ReplayResult {
  size_t records = 0;
  double records_per_sec = 0;
};

ReplayResult BenchReplay(int employees, int iterations) {
  LoggedDatabase ldb;
  (void)ldb.CreateRelation(
      "emp",
      {{"Name", DomainType::kString, Span(0, 99),
        InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, Span(0, 99),
        InterpolationKind::kStepwise}},
      {"Name"});
  auto scheme = *ldb.db().catalog().Get("emp");
  for (int i = 0; i < employees; ++i) {
    Tuple::Builder b(scheme, Span(0, 99));
    b.SetConstant("Name", Value::String("e" + std::to_string(i)));
    (void)ldb.Insert("emp", *std::move(b).Build());
    (void)ldb.Assign("emp", {Value::String("e" + std::to_string(i))},
                     "Salary", Span(0, 49), Value::Int(i));
  }
  ReplayResult out;
  out.records = ldb.log().size();
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    Database replayed;
    if (!ldb.log().Replay(&replayed).ok()) std::abort();
  }
  out.records_per_sec =
      static_cast<double>(out.records) * iterations / SecondsSince(start);
  return out;
}

struct DurableInsertResult {
  std::string fsync;
  int inserts = 0;
  double inserts_per_sec = 0;
  size_t wal_bytes = 0;
  double recover_ms = 0;
  double checkpoint_ms = 0;
};

/// `n` engine inserts (each one WAL append + policy fsync), then a timed
/// recovery (Open = read + replay the log) and a timed checkpoint.
DurableInsertResult BenchDurableInserts(FsyncPolicy policy, int n) {
  DurableInsertResult out;
  out.fsync = std::string(FsyncPolicyName(policy));
  out.inserts = n;
  const std::string dir = MakeScratchDir();
  StorageEngine::Options options;
  options.fsync = policy;
  std::string wal_path;
  {
    auto engine = StorageEngine::Open(dir, options);
    if (!engine.ok()) std::abort();
    const Lifespan full = Span(0, 999);
    if (!engine
             ->CreateRelation("emp",
                              {{"Name", DomainType::kString, full,
                                InterpolationKind::kDiscrete},
                               {"Salary", DomainType::kInt, full,
                                InterpolationKind::kStepwise}},
                              {"Name"})
             .ok()) {
      std::abort();
    }
    auto scheme = *engine->db().catalog().Get("emp");
    // Build the tuples up front so the timed loop is engine + WAL only.
    std::vector<Tuple> tuples;
    tuples.reserve(n);
    Rng rng(7);
    for (int i = 0; i < n; ++i) {
      Tuple::Builder b(scheme, Span(i % 500, 500 + i % 500));
      b.SetConstant("Name", Value::String("e" + std::to_string(i)));
      b.SetAt("Salary", i % 500, Value::Int(rng.Uniform(30, 200) * 1000));
      tuples.push_back(*std::move(b).Build());
    }
    const auto start = Clock::now();
    for (Tuple& t : tuples) {
      if (!engine->Insert("emp", std::move(t)).ok()) std::abort();
    }
    out.inserts_per_sec = n / SecondsSince(start);
    wal_path = engine->wal_path();
    auto size = util::AppendFile::Open(wal_path);
    if (size.ok()) out.wal_bytes = size->Size().ValueOr(0);
  }
  {
    const auto start = Clock::now();
    auto engine = StorageEngine::Open(dir, options);
    if (!engine.ok() || engine->wal_records() != static_cast<uint64_t>(n) + 1) {
      std::abort();
    }
    out.recover_ms = SecondsSince(start) * 1000;
    const auto cp_start = Clock::now();
    if (!engine->Checkpoint().ok()) std::abort();
    out.checkpoint_ms = SecondsSince(cp_start) * 1000;
  }
  RemoveScratchDir(dir);
  return out;
}

}  // namespace
}  // namespace hrdm::storage

int main() {
  using namespace hrdm::storage;

  std::string json = "{\n  \"benchmark\": \"storage\",\n  \"snapshot\": [\n";

  bool first = true;
  for (int employees : {100, 1000, 5000}) {
    const SnapshotResult r = BenchSnapshot(employees, employees <= 1000 ? 50 : 10);
    std::printf(
        "snapshot %5d emp | %8zu bytes | encode %7.1f MB/s | decode %7.1f "
        "MB/s\n",
        r.employees, r.bytes, r.encode_mb_s, r.decode_mb_s);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s    {\"employees\": %d, \"bytes\": %zu, "
                  "\"encode_mb_s\": %.1f, \"decode_mb_s\": %.1f}",
                  first ? "" : ",\n", r.employees, r.bytes, r.encode_mb_s,
                  r.decode_mb_s);
    json += row;
    first = false;
  }
  json += "\n  ],\n";

  {
    const ReplayResult r = BenchReplay(1000, 20);
    std::printf("changelog replay  | %8zu records | %10.0f records/s\n",
                r.records, r.records_per_sec);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "  \"replay\": {\"records\": %zu, \"records_per_sec\": "
                  "%.0f},\n",
                  r.records, r.records_per_sec);
    json += row;
  }

  json += "  \"durable_insert\": [\n";
  first = true;
  struct Config {
    FsyncPolicy policy;
    int inserts;
  };
  // One fsync per record is orders of magnitude slower on real disks:
  // smaller n keeps the run bounded while still amortizing startup.
  const Config configs[] = {{FsyncPolicy::kOff, 20000},
                            {FsyncPolicy::kBatched, 20000},
                            {FsyncPolicy::kAlways, 2000}};
  for (const Config& c : configs) {
    const DurableInsertResult r = BenchDurableInserts(c.policy, c.inserts);
    std::printf(
        "durable insert (fsync=%-7s) | %6d inserts | %9.0f inserts/s | "
        "wal %8zu B | recover %7.1f ms | checkpoint %6.1f ms\n",
        r.fsync.c_str(), r.inserts, r.inserts_per_sec, r.wal_bytes,
        r.recover_ms, r.checkpoint_ms);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s    {\"fsync\": \"%s\", \"inserts\": %d, "
                  "\"inserts_per_sec\": %.0f, \"wal_bytes\": %zu, "
                  "\"recover_ms\": %.1f, \"checkpoint_ms\": %.1f}",
                  first ? "" : ",\n", r.fsync.c_str(), r.inserts,
                  r.inserts_per_sec, r.wal_bytes, r.recover_ms,
                  r.checkpoint_ms);
    json += row;
    first = false;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_storage.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_storage.json\n");
  }
  return 0;
}
