// Storage-substrate benchmark: serialization, snapshot load, temporal DML
// and change-log replay throughput.

#include <benchmark/benchmark.h>

#include "storage/changelog.h"
#include "storage/database.h"
#include "storage/serializer.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::storage {
namespace {

Database MakeDb(int employees, uint64_t seed = 1) {
  Rng rng(seed);
  workload::PersonnelConfig config;
  config.num_employees = static_cast<size_t>(employees);
  auto rel = *workload::MakePersonnel(&rng, config);
  Database db;
  (void)db.CreateRelation(rel.scheme());
  for (const Tuple& t : rel) {
    (void)db.Insert("emp", t);
  }
  return db;
}

void BM_EncodeSnapshot(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string buf = db.EncodeSnapshot();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_EncodeSnapshot)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DecodeSnapshot(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)));
  const std::string buf = db.EncodeSnapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Database::DecodeSnapshot(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(buf.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeSnapshot)->Arg(100)->Arg(1000)->Arg(5000);

void BM_InsertThroughput(benchmark::State& state) {
  Rng rng(2);
  workload::PersonnelConfig config;
  config.num_employees = 2000;
  auto rel = *workload::MakePersonnel(&rng, config);
  for (auto _ : state) {
    Database db;
    (void)db.CreateRelation(rel.scheme());
    for (const Tuple& t : rel) {
      benchmark::DoNotOptimize(db.Insert("emp", t));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(rel.size()) *
                          state.iterations());
}
BENCHMARK(BM_InsertThroughput);

void BM_AssignThroughput(benchmark::State& state) {
  Database db = MakeDb(500, 3);
  const Relation& rel = **db.Get("emp");
  std::vector<std::vector<Value>> keys;
  for (const Tuple& t : rel) keys.push_back(t.KeyValues());
  Rng rng(4);
  size_t i = 0;
  for (auto _ : state) {
    const auto& key = keys[i++ % keys.size()];
    const Relation& cur = **db.Get("emp");
    auto idx = cur.FindByKey(key);
    const Lifespan& l = cur.tuple(*idx).lifespan();
    const TimePoint at = l.Min();
    benchmark::DoNotOptimize(db.Assign("emp", key, "Salary",
                                       Lifespan::Point(at),
                                       Value::Int(rng.Uniform(1, 999))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssignThroughput);

void BM_KeyLookup(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 5);
  const Relation& rel = **db.Get("emp");
  std::vector<std::vector<Value>> keys;
  for (const Tuple& t : rel) keys.push_back(t.KeyValues());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.FindByKey(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_KeyLookup)->Arg(100)->Arg(10000);

void BM_ChangeLogReplay(benchmark::State& state) {
  // Build a log of n inserts + updates, then measure replay.
  const int n = static_cast<int>(state.range(0));
  LoggedDatabase ldb;
  (void)ldb.CreateRelation(
      "emp",
      {{"Name", DomainType::kString, Span(0, 99),
        InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, Span(0, 99),
        InterpolationKind::kStepwise}},
      {"Name"});
  auto scheme = *ldb.db().catalog().Get("emp");
  for (int i = 0; i < n; ++i) {
    Tuple::Builder b(scheme, Span(0, 99));
    b.SetConstant("Name", Value::String("e" + std::to_string(i)));
    (void)ldb.Insert("emp", *std::move(b).Build());
    (void)ldb.Assign("emp", {Value::String("e" + std::to_string(i))},
                     "Salary", Span(0, 49), Value::Int(i));
  }
  for (auto _ : state) {
    Database replayed;
    benchmark::DoNotOptimize(ldb.log().Replay(&replayed));
  }
  state.SetItemsProcessed(static_cast<int64_t>(ldb.log().size()) *
                          state.iterations());
}
BENCHMARK(BM_ChangeLogReplay)->Arg(100)->Arg(1000);

void BM_Reincarnate(benchmark::State& state) {
  Database db = MakeDb(200, 6);
  const Relation& rel = **db.Get("emp");
  std::vector<std::vector<Value>> keys;
  for (const Tuple& t : rel) keys.push_back(t.KeyValues());
  size_t i = 0;
  TimePoint epoch = 100;
  for (auto _ : state) {
    const auto& key = keys[i++ % keys.size()];
    benchmark::DoNotOptimize(
        db.Reincarnate("emp", key, Span(epoch, epoch + 4)));
    if (i % keys.size() == 0) epoch += 10;
  }
}
BENCHMARK(BM_Reincarnate);

}  // namespace
}  // namespace hrdm::storage

BENCHMARK_MAIN();
