// Experiment C7 (Section 5): the algebraic identities as an optimizer.
//
// Shape to check: the rewrites (slice push-down, select fusion,
// distribution over union) cut evaluation time by shrinking intermediate
// results, while answers stay identical (verified in optimizer_test.cc).

#include <benchmark/benchmark.h>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

storage::Database MakeDb(int tuples, uint64_t seed = 1) {
  Rng rng(seed);
  storage::Database db;
  for (int i = 0; i < 2; ++i) {
    workload::RandomRelationConfig config;
    config.name = "r" + std::to_string(i);
    config.num_tuples = static_cast<size_t>(tuples);
    config.num_value_attrs = 2;
    config.horizon = 200;
    config.key_space = static_cast<size_t>(tuples * 3 / 2);
    auto rel = *workload::MakeRandomRelation(&rng, config);
    (void)db.CreateRelation(rel.scheme());
    for (const Tuple& t : rel) {
      (void)db.Insert(config.name, t);
    }
  }
  return db;
}

const char* kQueries[] = {
    // Narrow slice over a stack of selects: push-down pays.
    "timeslice(select_when(select_when(r0, A0 <= 80), A1 >= 5), {[0,19]})",
    // Slice over union distributes, then fuses with nested slices.
    "timeslice(timeslice(union(r0, r1), {[0,99]}), {[40,60]})",
    // Windowed select-if over set ops.
    "select_if(union(r0, r1), A0 <= 40, exists, {[0,49]})",
    // Projection stack.
    "project(project(r0, Id, A0, A1), Id)",
};

void BM_EvalRaw(benchmark::State& state) {
  storage::Database db = MakeDb(static_cast<int>(state.range(1)));
  auto expr = *query::ParseExpr(kQueries[state.range(0)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::Eval(expr, db));
  }
  state.SetLabel(kQueries[state.range(0)]);
}
BENCHMARK(BM_EvalRaw)->ArgsProduct({{0, 1, 2, 3}, {200, 800}});

void BM_EvalOptimized(benchmark::State& state) {
  storage::Database db = MakeDb(static_cast<int>(state.range(1)));
  auto expr = *query::ParseExpr(kQueries[state.range(0)]);
  query::ExprPtr optimized = query::Optimize(expr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::Eval(optimized, db));
  }
  state.SetLabel(optimized->ToString());
}
BENCHMARK(BM_EvalOptimized)->ArgsProduct({{0, 1, 2, 3}, {200, 800}});

void BM_OptimizeItself(benchmark::State& state) {
  // Rewriting cost: microseconds, amortized over any real execution.
  auto expr = *query::ParseExpr(kQueries[state.range(0)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::Optimize(expr));
  }
}
BENCHMARK(BM_OptimizeItself)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::ParseExpr(kQueries[state.range(0)]));
  }
}
BENCHMARK(BM_ParseQuery)->Arg(0)->Arg(1);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
