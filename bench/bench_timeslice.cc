// Experiment C3 (Section 4.4): static vs dynamic TIME-SLICE.
//
// Shape to check: static slice cost scales with window width × relation
// size; the dynamic slice additionally computes each tuple's image from its
// time-valued attribute, so it tracks the TT attribute's segment count.

#include <benchmark/benchmark.h>

#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

Relation MakeAudit(int tuples, uint64_t seed = 1) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.name = "audit";
  config.num_tuples = static_cast<size_t>(tuples);
  config.num_value_attrs = 2;
  config.with_time_attribute = true;
  return *workload::MakeRandomRelation(&rng, config);
}

void BM_StaticTimeSliceWidth(benchmark::State& state) {
  Relation r = MakeAudit(500);
  const Lifespan window = Span(0, state.range(0));
  size_t survivors = 0;
  for (auto _ : state) {
    auto sliced = TimeSlice(r, window);
    survivors = sliced->size();
    benchmark::DoNotOptimize(sliced);
  }
  state.counters["survivors"] = static_cast<double>(survivors);
}
BENCHMARK(BM_StaticTimeSliceWidth)->Arg(1)->Arg(9)->Arg(29)->Arg(59);

void BM_StaticTimeSliceScale(benchmark::State& state) {
  Relation r = MakeAudit(static_cast<int>(state.range(0)));
  const Lifespan window = Span(10, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeSlice(r, window));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StaticTimeSliceScale)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_SnapshotSlice(benchmark::State& state) {
  Relation r = MakeAudit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeSliceAt(r, 30));
  }
}
BENCHMARK(BM_SnapshotSlice)->Arg(500)->Arg(2000);

void BM_DynamicTimeSlice(benchmark::State& state) {
  Relation r = MakeAudit(static_cast<int>(state.range(0)));
  size_t survivors = 0;
  for (auto _ : state) {
    auto sliced = TimeSliceDynamic(r, "Ref");
    survivors = sliced->size();
    benchmark::DoNotOptimize(sliced);
  }
  state.counters["survivors"] = static_cast<double>(survivors);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicTimeSlice)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_FragmentedWindowSlice(benchmark::State& state) {
  // Fragmentation of the window (not just width) drives the sweep cost.
  Relation r = MakeAudit(500);
  std::vector<Interval> ivs;
  for (int i = 0; i < state.range(0); ++i) {
    ivs.push_back(Interval(i * 4, i * 4 + 1));
  }
  const Lifespan window = Lifespan::FromIntervals(std::move(ivs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeSlice(r, window));
  }
}
BENCHMARK(BM_FragmentedWindowSlice)->Arg(1)->Arg(4)->Arg(15);

void BM_When(benchmark::State& state) {
  Relation r = MakeAudit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(When(r));
  }
}
BENCHMARK(BM_When)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
