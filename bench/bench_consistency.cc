// Experiment C6 (Section 5): the consistent-extension overhead.
//
// HRDM on T = {now} must behave like the classical relational model; here
// we measure what that generality costs: each classical operator is run
// (a) natively on the classical baseline (src/classic) and (b) through the
// historical operator on the lifted relation. Shape to check: a modest
// constant factor, flat across operators.

#include <benchmark/benchmark.h>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "classic/classic.h"
#include "util/random.h"

namespace hrdm {
namespace {

using classic::Column;
using classic::Row;
using classic::SnapshotRelation;

constexpr TimePoint kNow = 0;

SnapshotRelation MakeClassic(const std::string& prefix, int rows,
                             uint64_t seed) {
  Rng rng(seed);
  SnapshotRelation s({Column{prefix + "Id", DomainType::kString},
                      Column{prefix + "X", DomainType::kInt},
                      Column{prefix + "Y", DomainType::kInt}});
  for (int i = 0; i < rows; ++i) {
    s.InsertRow({Value::String(prefix + std::to_string(i)),
                 Value::Int(rng.Uniform(0, 49)),
                 Value::Int(rng.Uniform(0, 49))});
  }
  return s;
}

void BM_ClassicSelect(benchmark::State& state) {
  SnapshotRelation s = MakeClassic("a", static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classic::Select(s, "aX", CompareOp::kLe, Value::Int(25)));
  }
}
BENCHMARK(BM_ClassicSelect)->Arg(100)->Arg(1000);

void BM_HistoricalSelectOnNow(benchmark::State& state) {
  SnapshotRelation s = MakeClassic("a", static_cast<int>(state.range(0)), 1);
  Relation lifted = *classic::Lift(s, kNow, {"aId"});
  Predicate p = Predicate::AttrConst("aX", CompareOp::kLe, Value::Int(25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectIf(lifted, p, Quantifier::kExists));
  }
}
BENCHMARK(BM_HistoricalSelectOnNow)->Arg(100)->Arg(1000);

void BM_ClassicProject(benchmark::State& state) {
  SnapshotRelation s = MakeClassic("a", static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classic::Project(s, {"aId", "aX"}));
  }
}
BENCHMARK(BM_ClassicProject)->Arg(100)->Arg(1000);

void BM_HistoricalProjectOnNow(benchmark::State& state) {
  SnapshotRelation s = MakeClassic("a", static_cast<int>(state.range(0)), 2);
  Relation lifted = *classic::Lift(s, kNow, {"aId"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Project(lifted, {"aId", "aX"}));
  }
}
BENCHMARK(BM_HistoricalProjectOnNow)->Arg(100)->Arg(1000);

void BM_ClassicUnion(benchmark::State& state) {
  SnapshotRelation a = MakeClassic("a", static_cast<int>(state.range(0)), 3);
  SnapshotRelation b = MakeClassic("a", static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classic::Union(a, b));
  }
}
BENCHMARK(BM_ClassicUnion)->Arg(100)->Arg(500);

void BM_HistoricalUnionOnNow(benchmark::State& state) {
  SnapshotRelation a = MakeClassic("a", static_cast<int>(state.range(0)), 3);
  SnapshotRelation b = MakeClassic("a", static_cast<int>(state.range(0)), 4);
  Relation la = *classic::Lift(a, kNow, {"aId"});
  Relation lb = *classic::Lift(b, kNow, {"aId"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(la, lb));
  }
}
BENCHMARK(BM_HistoricalUnionOnNow)->Arg(100)->Arg(500);

void BM_ClassicThetaJoin(benchmark::State& state) {
  SnapshotRelation a = MakeClassic("a", static_cast<int>(state.range(0)), 5);
  SnapshotRelation b = MakeClassic("b", static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classic::ThetaJoin(a, "aX", CompareOp::kEq, b, "bX"));
  }
}
BENCHMARK(BM_ClassicThetaJoin)->Arg(50)->Arg(200);

void BM_HistoricalThetaJoinOnNow(benchmark::State& state) {
  SnapshotRelation a = MakeClassic("a", static_cast<int>(state.range(0)), 5);
  SnapshotRelation b = MakeClassic("b", static_cast<int>(state.range(0)), 6);
  Relation la = *classic::Lift(a, kNow, {"aId"});
  Relation lb = *classic::Lift(b, kNow, {"bId"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThetaJoin(la, "aX", CompareOp::kEq, lb, "bX"));
  }
}
BENCHMARK(BM_HistoricalThetaJoinOnNow)->Arg(50)->Arg(200);

void BM_SnapshotMapping(benchmark::State& state) {
  // Cost of crossing between the models (Lift / Snapshot themselves).
  SnapshotRelation s = MakeClassic("a", static_cast<int>(state.range(0)), 7);
  Relation lifted = *classic::Lift(s, kNow, {"aId"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(classic::Snapshot(lifted, kNow));
  }
}
BENCHMARK(BM_SnapshotMapping)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hrdm

BENCHMARK_MAIN();
