// Stock-market example: evolving schemes via attribute lifespans (Figure 6)
// and interpolation (Figure 9).
//
// The paper's story: Daily-Trading-Volume was recorded over [t1,t2], then
// "it became too expensive to collect and so it was dropped from the
// schema. Subsequently, at time t3 ... the schema was expanded to once
// again incorporate this attribute." Price is sampled sparsely and
// linearly interpolated at the model level.
//
//   $ ./example_stockmarket

#include <cstdio>

#include "query/executor.h"
#include "storage/database.h"
#include "util/pretty.h"

using namespace hrdm;

namespace {

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::hrdm::Status _s = (expr);                               \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (false)

int RealMain() {
  storage::Database db;
  const Lifespan days = Span(0, 29);  // one month of trading days

  CHECK_OK(db.CreateRelation(
      "stocks",
      {{"Ticker", DomainType::kString, days, InterpolationKind::kDiscrete},
       {"Price", DomainType::kDouble, days, InterpolationKind::kLinear},
       {"Volume", DomainType::kInt, days, InterpolationKind::kStepwise}},
      {"Ticker"}));
  auto scheme = *db.catalog().Get("stocks");

  {
    Tuple::Builder b(scheme, days);
    b.SetConstant("Ticker", Value::String("HRDM"));
    // Sparse price samples: days 0, 10, 20 — linear interpolation will
    // answer for every day in between (Figure 9's interpolation function).
    b.SetAt("Price", 0, Value::Double(100.0));
    b.SetAt("Price", 10, Value::Double(150.0));
    b.SetAt("Price", 20, Value::Double(120.0));
    b.SetAt("Volume", 0, Value::Int(5000));
    b.SetAt("Volume", 7, Value::Int(9000));
    auto t = std::move(b).Build();
    CHECK_OK(t.status());
    CHECK_OK(db.Insert("stocks", *std::move(t)));
  }

  const Relation& stocks = **db.Get("stocks");
  std::printf("%s\n", RenderHistory(stocks).c_str());

  // Model-level price on un-sampled days (linear interpolation):
  const Tuple& hrdm_t = stocks.tuple(0);
  const size_t price_idx = *scheme->IndexOf("Price");
  for (TimePoint day : {5, 15, 25}) {
    auto v = hrdm_t.ModelValueAt(price_idx, day);
    CHECK_OK(v.status());
    std::printf("interpolated price on day %lld: %s\n",
                static_cast<long long>(day), v->ToString().c_str());
  }

  // --- Figure 6: the Volume attribute is dropped, then re-adopted -----------
  std::printf("\n-- dropping Volume from the scheme at day 10 --\n");
  CHECK_OK(db.CloseAttribute("stocks", "Volume", 10));
  std::printf("scheme now: %s\n",
              (*db.catalog().Get("stocks"))->ToString().c_str());

  std::printf("-- re-adopting Volume from day 20 (cheap outside source) --\n");
  CHECK_OK(db.ReopenAttribute("stocks", "Volume", Span(20, 29)));
  std::printf("scheme now: %s\n\n",
              (*db.catalog().Get("stocks"))->ToString().c_str());

  // New volume data arrives in the second epoch.
  CHECK_OK(db.Assign("stocks", {Value::String("HRDM")}, "Volume",
                     Span(20, 29), Value::Int(12000)));

  const Relation& evolved = **db.Get("stocks");
  std::printf("%s\n", RenderHistory(evolved).c_str());

  // Queries against each epoch. During the gap [10,19] Volume simply does
  // not exist — the select finds nothing there, with no NULL anywhere.
  auto heavy_epoch1 = query::Run(
      "timeslice(select_when(stocks, Volume >= 8000), {[0,9]})", db);
  CHECK_OK(heavy_epoch1.status());
  std::printf("heavy-volume days in epoch 1:\n%s\n",
              RenderHistory(*heavy_epoch1).c_str());

  auto gap_query = query::Run(
      "timeslice(select_when(stocks, Volume >= 0), {[10,19]})", db);
  CHECK_OK(gap_query.status());
  std::printf("volume-based selection inside the gap: %zu tuples (attribute "
              "did not exist then)\n",
              gap_query->size());

  auto epoch2 = query::Run(
      "timeslice(select_when(stocks, Volume >= 8000), {[20,29]})", db);
  CHECK_OK(epoch2.status());
  std::printf("\nheavy-volume days in epoch 2:\n%s\n",
              RenderHistory(*epoch2).c_str());
  return 0;
}

}  // namespace

int main() { return RealMain(); }
