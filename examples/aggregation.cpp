// Temporal aggregation walkthrough: grouped, time-varying aggregates over
// a generated personnel history, driven end-to-end through the HRQL shell
// path (parse → optimize → streaming plan → drain) via query::Run, plus
// one manually lowered plan to show the aggregate's EXPLAIN counters.
//
//   $ ./build/example_aggregation

#include <cstdio>
#include <string>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "util/pretty.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace hrdm;

namespace {

void RunAndPrint(const storage::Database& db, const std::string& hrql) {
  std::printf("hrdm> %s\n", hrql.c_str());
  auto result = query::Run(hrql, db);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu tuples)\n\n", RenderHistory(*result).c_str(),
              result->size());
}

}  // namespace

int main() {
  // The paper's personnel story: hires, fires, re-hires (reincarnation),
  // stepwise salary and department histories.
  Rng rng(7);
  storage::Database db;
  workload::PersonnelConfig config;
  config.num_employees = 25;
  auto emp = *workload::MakePersonnel(&rng, config);
  (void)db.CreateRelation(emp.scheme());
  for (const Tuple& t : emp) (void)db.Insert("emp", t);

  std::printf("== Head count over time (one historical tuple) ==\n");
  RunAndPrint(db, "aggregate(emp, count)");

  std::printf("== Head count per department ==\n");
  RunAndPrint(db, "aggregate(emp, count by Dept)");

  std::printf("== Average salary per department (a timeline per group) ==\n");
  RunAndPrint(db, "aggregate(emp, avg Salary by Dept)");

  std::printf("== Composed: top-earning departments, mid-history only ==\n");
  RunAndPrint(db,
              "aggregate(timeslice(select_when(emp, Salary >= 120000), "
              "{[30, 70]}), count by Dept)");

  // The same query, lowered by hand, to inspect the aggregate cursor's
  // PlanStats — the EXPLAIN view of the streaming execution.
  const std::string hrql = "aggregate(emp, count by Dept)";
  auto expr = query::ParseExpr(hrql);
  auto plan = query::Plan::Lower(*expr, query::DatabaseResolver(db),
                                 query::DatabasePlanOptions(db));
  if (plan.ok()) {
    auto out = plan->Drain();
    const query::PlanStats& s = plan->stats();
    std::printf("== EXPLAIN %s ==\n", hrql.c_str());
    std::printf("tuples_scanned       = %zu\n", s.tuples_scanned);
    std::printf("agg_groups_estimated = %zu\n", s.agg_groups_estimated);
    std::printf("agg_groups_built     = %zu\n", s.agg_groups_built);
    std::printf("agg_fallback_tuples  = %zu  (dept changed mid-lifespan)\n",
                s.agg_fallback_tuples);
    std::printf("peak_buffered        = %zu\n", s.peak_buffered);
    std::printf("tuples_returned      = %zu\n", s.tuples_returned);
  }
  return 0;
}
