// Quickstart: the HRDM public API in one file.
//
// Builds a tiny employee history, runs every family of algebra operator on
// it, and prints the results. Follow along with Sections 3–4 of the paper.
//
//   $ ./example_quickstart

#include <cstdio>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "util/pretty.h"

using namespace hrdm;  // examples only; library code never does this

namespace {

void Print(const char* title, const std::string& body) {
  std::printf("== %s ==\n%s\n", title, body.c_str());
}

int RealMain() {
  // --- 1. A scheme R = <A, K, ALS, DOM> (Section 3) ------------------------
  // Attribute lifespans (ALS) say when each attribute exists in the scheme;
  // the key (Name) must be constant-valued and span the scheme lifespan.
  const Lifespan decade = Span(0, 9);  // chronons 0..9, e.g. years
  auto scheme_or = RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, decade, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, decade, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, decade, InterpolationKind::kStepwise}},
      {"Name"});
  if (!scheme_or.ok()) {
    std::fprintf(stderr, "%s\n", scheme_or.status().ToString().c_str());
    return 1;
  }
  SchemePtr scheme = *scheme_or;

  // --- 2. Tuples t = <v, l> with lifespans ---------------------------------
  Relation emp(scheme);
  {
    // John: hired at 0, fired at 3, re-hired at 6 (reincarnation!).
    Tuple::Builder b(scheme, Lifespan::FromIntervals(
                                 {Interval(0, 3), Interval(6, 9)}));
    b.SetConstant("Name", Value::String("john"));
    // Stepwise salary: stored change points; the model level fills gaps.
    b.SetAt("Salary", 0, Value::Int(20000));
    b.SetAt("Salary", 7, Value::Int(30000));
    b.SetAt("Dept", 0, Value::String("tools"));
    b.SetAt("Dept", 6, Value::String("toys"));
    auto t = std::move(b).Build();
    if (!t.ok() || !emp.Insert(std::move(t).value()).ok()) return 1;
  }
  {
    Tuple::Builder b(scheme, Span(2, 9));
    b.SetConstant("Name", Value::String("mary"));
    b.SetConstant("Salary", Value::Int(30000));
    b.SetConstant("Dept", Value::String("toys"));
    auto t = std::move(b).Build();
    if (!t.ok() || !emp.Insert(std::move(t).value()).ok()) return 1;
  }

  Print("full history (Figure 8 style)", RenderHistory(emp));
  Print("snapshot at t=7 (one slice of the Figure 10 cube)",
        RenderSnapshot(emp, 7));

  // --- 3. The algebra (Section 4) ------------------------------------------
  // SELECT-IF: whole objects whose salary ever reached 30K.
  auto rich_ever = SelectIf(
      emp, Predicate::AttrConst("Salary", CompareOp::kGe, Value::Int(30000)),
      Quantifier::kExists);
  Print("SELECT-IF(Salary >= 30000, exists)", RenderHistory(*rich_ever));

  // SELECT-WHEN: the paper's example — WHEN did john earn 30K?
  auto john_30k = SelectWhen(
      emp, Predicate::And(
               {Predicate::AttrConst("Name", CompareOp::kEq,
                                     Value::String("john")),
                Predicate::AttrConst("Salary", CompareOp::kEq,
                                     Value::Int(30000))}));
  Print("SELECT-WHEN(Name=john AND Salary=30000)", RenderHistory(*john_30k));
  std::printf("WHEN is that? %s\n\n", When(*john_30k).ToString().c_str());

  // TIME-SLICE: restrict the whole relation to [2,5].
  auto early = TimeSlice(emp, Span(2, 5));
  Print("TIME-SLICE [2,5]", RenderHistory(*early));

  // PROJECT: drop the salary column.
  auto names = Project(emp, {"Name", "Dept"});
  Print("PROJECT(Name, Dept)", RenderHistory(*names));

  // JOIN: who shared a department with whom, and when? (Rename one side to
  // keep attribute sets disjoint, as the paper's θ-join requires.)
  auto other_scheme = *RelationScheme::Make(
      "emp2",
      {{"Name2", DomainType::kString, decade, InterpolationKind::kDiscrete},
       {"Dept2", DomainType::kString, decade, InterpolationKind::kStepwise}},
      {"Name2"});
  Relation emp2(other_scheme);
  for (const Tuple& t : emp) {
    Tuple::Builder b(other_scheme, t.lifespan());
    b.Set("Name2", t.value(0));
    b.Set("Dept2", t.value(2));
    auto t2 = std::move(b).Build();
    if (!t2.ok() || !emp2.Insert(std::move(t2).value()).ok()) return 1;
  }
  auto colleagues = ThetaJoin(emp, "Dept", CompareOp::kEq, emp2, "Dept2");
  auto strict = SelectWhen(*colleagues, Predicate::AttrAttr(
                                            "Name", CompareOp::kNe, "Name2"));
  Print("colleagues over time (θ-join + select)", RenderHistory(*strict));

  return 0;
}

}  // namespace

int main() { return RealMain(); }
