// Personnel example: the paper's Section 1 motivation end-to-end.
//
// "employees can be hired, fired, and subsequently re-hired" — this example
// drives the storage engine through an employee's full life-cycle (birth,
// temporal updates, death, reincarnation), enforces the "salary must never
// decrease" constraint of Section 5, and answers history questions with
// the algebra and HRQL.
//
//   $ ./example_personnel

#include <cstdio>

#include "algebra/when.h"
#include "constraints/constraints.h"
#include "query/executor.h"
#include "query/parser.h"
#include "storage/database.h"
#include "util/pretty.h"

using namespace hrdm;

namespace {

#define CHECK_OK(expr)                                          \
  do {                                                          \
    ::hrdm::Status _s = (expr);                                 \
    if (!_s.ok()) {                                             \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,       \
                   __LINE__, _s.ToString().c_str());            \
      return 1;                                                 \
    }                                                           \
  } while (false)

int RealMain() {
  storage::Database db;
  const Lifespan horizon = Span(2000, 2026);  // chronons are years here

  CHECK_OK(db.CreateRelation(
      "emp",
      {{"Name", DomainType::kString, horizon, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, horizon, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, horizon,
        InterpolationKind::kStepwise}},
      {"Name"}));

  // --- Birth: john is hired in 2001 ---------------------------------------
  auto scheme = *db.catalog().Get("emp");
  {
    Tuple::Builder b(scheme, Span(2001, 2026));
    b.SetConstant("Name", Value::String("john"));
    b.SetAt("Salary", 2001, Value::Int(40000));
    b.SetAt("Dept", 2001, Value::String("tools"));
    auto t = std::move(b).Build();
    CHECK_OK(t.status());
    CHECK_OK(db.Insert("emp", *std::move(t)));
  }
  // Raises and a transfer, written as temporal updates.
  const std::vector<Value> john = {Value::String("john")};
  CHECK_OK(db.Assign("emp", john, "Salary", Span(2004, 2026),
                     Value::Int(55000)));
  CHECK_OK(db.Assign("emp", john, "Dept", Span(2005, 2026),
                     Value::String("toys")));

  // --- Death: fired in 2008 -------------------------------------------------
  CHECK_OK(db.EndLifespan("emp", john, 2008));

  // --- Reincarnation: re-hired 2015, history resumes ------------------------
  CHECK_OK(db.Reincarnate("emp", john, Span(2015, 2026)));
  CHECK_OK(db.Assign("emp", john, "Salary", Span(2015, 2026),
                     Value::Int(70000)));
  CHECK_OK(db.Assign("emp", john, "Dept", Span(2015, 2026),
                     Value::String("tools")));

  // A colleague for contrast.
  {
    Tuple::Builder b(scheme, Span(2003, 2026));
    b.SetConstant("Name", Value::String("mary"));
    b.SetAt("Salary", 2003, Value::Int(60000));
    b.SetAt("Salary", 2010, Value::Int(90000));
    b.SetAt("Dept", 2003, Value::String("tools"));
    auto t = std::move(b).Build();
    CHECK_OK(t.status());
    CHECK_OK(db.Insert("emp", *std::move(t)));
  }

  const Relation& emp = **db.Get("emp");
  std::printf("%s\n", RenderHistory(emp).c_str());

  // The lifespan records the firing gap — the paper's "death is not
  // necessarily terminal".
  const Tuple& john_t = emp.tuple(*emp.FindByKey(john));
  std::printf("john's lifespan: %s\n\n",
              john_t.lifespan().ToString().c_str());

  // --- Integrity: salary never decreases (Section 5) ------------------------
  auto violations = CheckMonotone(emp, "Salary", /*non_decreasing=*/true);
  CHECK_OK(violations.status());
  std::printf("salary-never-decreases violations: %zu\n",
              violations->size());
  for (const Violation& v : *violations) {
    std::printf("  %s\n", v.description.c_str());
  }

  // --- Queries ---------------------------------------------------------------
  // When did john work in tools? (HRQL, multi-sorted: WHEN returns a
  // lifespan.)
  auto tools_times = query::EvalLifespan(
      *query::ParseLsExpr(
          R"(when(select_when(emp, Name = "john" and Dept = "tools")))"),
      db);
  CHECK_OK(tools_times.status());
  std::printf("\njohn in tools WHEN: %s\n",
              tools_times->ToString().c_str());

  // Who was employed in 2012 (while john was gone)?
  auto in_2012 = query::Run("timeslice(emp, {[2012]})", db);
  CHECK_OK(in_2012.status());
  std::printf("\n%s\n", RenderSnapshot(*in_2012, 2012).c_str());

  // Who ever earned at least 65000, and over which periods?
  auto high = query::Run("select_when(emp, Salary >= 65000)", db);
  CHECK_OK(high.status());
  std::printf("%s\n", RenderHistory(*high).c_str());

  // --- Persistence -------------------------------------------------------------
  CHECK_OK(db.Save("/tmp/personnel_snapshot.bin"));
  auto reloaded = storage::Database::Load("/tmp/personnel_snapshot.bin");
  CHECK_OK(reloaded.status());
  std::printf("snapshot round-trip ok: %s\n",
              (*reloaded->Get("emp"))->EqualsAsSet(emp) ? "yes" : "NO");
  std::remove("/tmp/personnel_snapshot.bin");
  return 0;
}

}  // namespace

int main() { return RealMain(); }
