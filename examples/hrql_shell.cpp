// HRQL shell: an interactive (or piped) query interpreter over a generated
// personnel database — the paper's algebra as a command line.
//
//   $ ./example_hrql_shell                      # interactive
//   $ echo 'select_when(emp, Salary >= 100000)' | ./example_hrql_shell
//
// Commands:
//   <hrql expression>   evaluate (relation- or lifespan-sorted)
//   \schema             print every relation scheme
//   \snapshot REL T     print the classical table of REL at chronon T
//   \optimize EXPR      show the rewritten form of a query
//   \quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "util/pretty.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace hrdm;

namespace {

storage::Database MakeDemoDb() {
  Rng rng(7);
  storage::Database db;
  workload::PersonnelConfig emp_config;
  emp_config.num_employees = 25;
  auto emp = *workload::MakePersonnel(&rng, emp_config);
  (void)db.CreateRelation(emp.scheme());
  for (const Tuple& t : emp) (void)db.Insert("emp", t);

  workload::StockMarketConfig stock_config;
  stock_config.num_tickers = 10;
  auto stocks = *workload::MakeStockMarket(&rng, stock_config);
  (void)db.CreateRelation(stocks.scheme());
  for (const Tuple& t : stocks) (void)db.Insert("stocks", t);
  return db;
}

void HandleCommand(const std::string& line, const storage::Database& db) {
  if (line == "\\schema") {
    for (const std::string& name : db.RelationNames()) {
      std::printf("%s\n", (*db.Get(name))->scheme()->ToString().c_str());
    }
    return;
  }
  if (line.rfind("\\snapshot ", 0) == 0) {
    std::istringstream in(line.substr(10));
    std::string rel;
    long long t = 0;
    in >> rel >> t;
    auto r = db.Get(rel);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", RenderSnapshot(**r, t).c_str());
    return;
  }
  if (line.rfind("\\optimize ", 0) == 0) {
    auto expr = query::ParseExpr(line.substr(10));
    if (!expr.ok()) {
      std::printf("error: %s\n", expr.status().ToString().c_str());
      return;
    }
    query::OptimizerStats stats;
    auto optimized = query::Optimize(*expr, &stats);
    std::printf("%s\n(%d rewrites in %d passes)\n",
                optimized->ToString().c_str(), stats.rules_applied,
                stats.passes);
    return;
  }
  // A query: try the relation sort first, then the lifespan sort.
  auto parsed = query::ParseQuery(line);
  if (!parsed.ok()) {
    std::printf("error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  if (std::holds_alternative<query::ExprPtr>(*parsed)) {
    auto result = query::Eval(std::get<query::ExprPtr>(*parsed), db);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s(%zu tuples)\n", RenderHistory(*result).c_str(),
                result->size());
  } else {
    auto result =
        query::EvalLifespan(std::get<query::LsExprPtr>(*parsed), db);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", result->ToString().c_str());
  }
}

}  // namespace

int main() {
  storage::Database db = MakeDemoDb();
  std::printf(
      "HRDM shell. Relations: emp, stocks. Try:\n"
      "  select_when(emp, Salary >= 150000)\n"
      "  when(select_when(emp, Dept = \"dept0\"))\n"
      "  timeslice(stocks, {[0,9]})\n"
      "  aggregate(emp, avg Salary by Dept)\n"
      "  \\schema   \\snapshot emp 50   \\optimize <expr>   \\quit\n\n");
  std::string line;
  while (std::printf("hrdm> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    HandleCommand(line, db);
  }
  return 0;
}
