// Enrollment example: temporal referential integrity (Section 1).
//
// "a student can only take a course at time t if both the student and the
// course exist in the database at time t" — this example builds a
// student/course/enrollment database, shows the FK checker accepting a
// valid instance and pinpointing an injected temporal violation, and uses
// TIME-JOIN-style queries over the history.
//
//   $ ./example_enrollment

#include <cstdio>

#include "query/executor.h"
#include "query/parser.h"
#include "storage/database.h"
#include "util/pretty.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace hrdm;

namespace {

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::hrdm::Status _s = (expr);                               \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _s.ToString().c_str());          \
      return 1;                                               \
    }                                                         \
  } while (false)

int RealMain() {
  // Generate a consistent university database (temporal RI holds by
  // construction).
  Rng rng(2026);
  workload::EnrollmentConfig config;
  config.num_students = 8;
  config.num_courses = 3;
  config.num_enrollments = 10;
  config.horizon = 20;
  auto db_or = workload::MakeEnrollment(&rng, config);
  CHECK_OK(db_or.status());
  storage::Database db = std::move(db_or).value();

  std::printf("%s\n", RenderHistory(**db.Get("student")).c_str());
  std::printf("%s\n", RenderHistory(**db.Get("course")).c_str());
  std::printf("%s\n", RenderHistory(**db.Get("enroll")).c_str());

  // --- Integrity over the temporal dimension -------------------------------
  auto clean = db.CheckIntegrity();
  CHECK_OK(clean.status());
  std::printf("integrity violations in the generated db: %zu\n\n",
              clean->size());

  // Inject a violation: an enrollment for a student who exists, but not
  // over the whole enrollment period.
  auto enroll_scheme = *db.catalog().Get("enroll");
  const Relation& students = **db.Get("student");
  const Tuple& victim = students.tuple(0);
  const std::string sid = victim.KeyValues()[0].AsString();
  const TimePoint after_death = victim.lifespan().Max() + 1;
  if (after_death + 2 < config.horizon) {
    Tuple::Builder b(enroll_scheme,
                     Span(victim.lifespan().Max(), after_death + 2));
    b.SetConstant("EId", Value::String("e_bad"));
    b.SetConstant("SId", Value::String(sid));
    b.SetConstant("CId", Value::String("c0"));
    auto t = std::move(b).Build();
    CHECK_OK(t.status());
    CHECK_OK(db.Insert("enroll", *std::move(t)));

    auto dirty = db.CheckIntegrity();
    CHECK_OK(dirty.status());
    std::printf("after injecting e_bad (enrollment outliving student %s):\n",
                sid.c_str());
    for (const Violation& v : *dirty) {
      std::printf("  %s\n", v.description.c_str());
    }
    std::printf("\n");
  }

  // --- History questions ------------------------------------------------------
  // Which enrollments were active at chronon 10?
  auto active = query::Run("timeslice(enroll, {[10]})", db);
  CHECK_OK(active.status());
  std::printf("enrollments active at t10: %zu\n", active->size());

  // Natural join of enrollments with students over their shared SId: pairs
  // are defined exactly when the enrollment's SId value matches the
  // student's key — i.e. only while both exist (no nulls, Section 5).
  auto joined = query::Run("natjoin(enroll, student)", db);
  CHECK_OK(joined.status());
  std::printf("enrollment–student join: %zu history pairs\n",
              joined->size());

  // When was any course being taken by anyone? (WHEN over the enroll
  // relation — the lifespan sort of the multi-sorted algebra.)
  auto when_any = query::EvalLifespan(*query::ParseLsExpr("when(enroll)"),
                                      db);
  CHECK_OK(when_any.status());
  std::printf("some enrollment existed during: %s\n",
              when_any->ToString().c_str());
  return 0;
}

}  // namespace

int main() { return RealMain(); }
