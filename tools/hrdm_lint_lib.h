#ifndef HRDM_TOOLS_HRDM_LINT_LIB_H_
#define HRDM_TOOLS_HRDM_LINT_LIB_H_

/// \file hrdm_lint_lib.h
/// \brief The architecture linter's engine (the CI lint gate).
///
/// `hrdm_lint` enforces, at "compile time" for the repository itself, the
/// conventions that the engine's correctness rests on but that no compiler
/// flag checks. It is deliberately dependency-free — a lightweight lexical
/// pass over `src/**` and `tests/**` in the same spirit as
/// `tools/hrql_check.cc` — so it builds and runs everywhere the library
/// does, with no clang tooling required. The checks:
///
///  * **layer-dag** — `#include` edges may only point downward through the
///    layer DAG (`util`/`core` ← `classic`/`constraints`/`algebra` ←
///    `storage` ← `query` ← `session`/`workload`; `tests` sit on top), no
///    cycles at file granularity, and no test code reachable from `src/`.
///  * **closed-enum-default** — a `switch` over a *closed* enum
///    (`ExprKind`, `LsExprKind`, `OpKind`, `AggregateFn`, `JoinStrategy`,
///    `AccessPath`, `SetOpKind`, `FsyncPolicy`) must not carry a
///    `default:` arm, so `-Wswitch` flags every new variant at every
///    dispatch site the day it is added.
///  * **banned-construct** — naked `new`/`delete` (ownership goes through
///    `std::make_unique`/`std::make_shared`; justified leaks go on the
///    allowlist), `std::rand`/`srand`/`std::random_device` (all fuzz must
///    route through the seed-reproducible `tests/test_seeds.h` harness),
///    `fprintf(stderr, ...)` outside `bench/`+`tools/` (library code
///    reports through `util::Status`), and blocking calls (locks, sleeps,
///    file I/O) inside worker-pool task lambdas (`Submit`/
///    `ParallelMorsels` bodies must stay pure leaf kernels — that
///    invariant is why the shared pool cannot deadlock).
///  * **doc-parity** — every `PlanStats` counter field must be mentioned
///    in `docs/ARCHITECTURE.md` (the EXPLAIN surface is documentation;
///    an undocumented counter is a doc bug, exactly like an undocumented
///    HRQL operator under `hrql_check`).
///  * **style** — no tabs, no trailing whitespace, no CRLF, every file
///    ends in exactly one newline (the locally-enforceable slice of the
///    `.clang-format` contract, with zero tool dependencies).
///
/// Findings can be suppressed through an allowlist (one entry per line:
/// `check|path|line-substring|reason`); entries that suppress nothing are
/// themselves findings, so the allowlist can never rot.
///
/// The engine operates on in-memory (path, content) pairs so
/// `tests/lint_test.cc` can drive every check over fixture snippets; the
/// CLI wrapper (`tools/hrdm_lint.cc`) walks the real tree.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hrdm::lint {

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/query/plan.cc"
  std::string content;  // full file text
};

struct Finding {
  std::string path;
  size_t line = 0;  // 1-based; 0 = whole file
  std::string check;
  std::string message;
  std::string line_text;  // the offending line (allowlist match target)
};

/// One allowlist entry: `check|path|line-substring|reason`. An empty
/// line-substring matches any line of the file.
struct AllowEntry {
  std::string check;
  std::string path;
  std::string pattern;
  std::string reason;
  bool used = false;
};

struct Options {
  /// Content of docs/ARCHITECTURE.md; empty disables the doc-parity check.
  std::string architecture_md;
  /// Content of src/query/plan.h (PlanStats source); empty disables
  /// doc-parity.
  std::string plan_header;
  /// Allowlist file text (see AllowEntry); empty = no suppressions.
  std::string allowlist;
};

namespace internal {

inline size_t LineOf(std::string_view text, size_t pos) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

inline std::string LineTextAt(std::string_view text, size_t pos) {
  size_t b = text.rfind('\n', pos);
  b = (b == std::string_view::npos) ? 0 : b + 1;
  size_t e = text.find('\n', pos);
  if (e == std::string_view::npos) e = text.size();
  std::string out(text.substr(b, e - b));
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return out;
}

/// Returns `content` with comments and string/char literals blanked out
/// (newlines preserved, so positions keep their line numbers). Handles
/// //, /*...*/, "..." with escapes, '...' and R"delim(...)delim".
inline std::string StripCommentsAndLiterals(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  const size_t n = content.size();
  size_t i = 0;
  auto blank = [&out](char c) { out.push_back(c == '\n' ? '\n' : ' '); };
  while (i < n) {
    const char c = content[i];
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') blank(content[i++]);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      blank(content[i++]);
      blank(content[i++]);
      while (i < n && !(content[i] == '*' && i + 1 < n &&
                        content[i + 1] == '/')) {
        blank(content[i++]);
      }
      if (i < n) {
        blank(content[i++]);
        blank(content[i++]);
      }
      continue;
    }
    if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
        (i == 0 || (std::isalnum(static_cast<unsigned char>(content[i - 1])) ==
                        0 &&
                    content[i - 1] != '_'))) {
      size_t d = i + 2;
      while (d < n && content[d] != '(') ++d;
      const std::string close =
          ")" + std::string(content.substr(i + 2, d - (i + 2))) + "\"";
      const size_t end = content.find(close, d);
      const size_t stop = (end == std::string_view::npos)
                              ? n
                              : end + close.size();
      while (i < stop) blank(content[i++]);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      blank(content[i++]);
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) blank(content[i++]);
        blank(content[i++]);
      }
      if (i < n) blank(content[i++]);
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `text[pos..pos+word)` equals `word` at identifier boundaries.
inline bool WordAt(std::string_view text, size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

/// Position just past the brace/paren that matches the opener at `open`
/// (which must index a `(` or `{`), or npos when unbalanced.
inline size_t MatchSpan(std::string_view text, size_t open) {
  const char o = text[open];
  const char c = o == '(' ? ')' : '}';
  size_t depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == o) ++depth;
    if (text[i] == c && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Layer of a repo path: the directory under src/ ("util", "query", ...),
/// "tests" for tests/, or "" for paths outside the layered tree.
inline std::string LayerOf(std::string_view path) {
  if (path.rfind("tests/", 0) == 0) return "tests";
  if (path.rfind("src/", 0) != 0) return "";
  const std::string_view rest = path.substr(4);
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

/// The layer DAG: which layers each layer's includes may point at.
/// `util` and `core` form the joint bottom (util/pretty.h renders core
/// relations); `classic`, `constraints` and `algebra` sit directly on it;
/// `storage` consumes `algebra` (join digests for value indexes) and
/// `constraints`; `query` consumes `storage` down; `session` (reader
/// sessions over pinned versions) consumes `query` down; `session` and
/// `workload` are joint tops of `src/`; `tests` may reach everything.
inline const std::map<std::string, std::set<std::string>>& LayerDag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      {"util", {"util", "core"}},
      {"core", {"core", "util"}},
      {"classic", {"classic", "core", "util"}},
      {"constraints", {"constraints", "core", "util"}},
      {"algebra", {"algebra", "core", "util"}},
      {"storage", {"storage", "algebra", "constraints", "core", "util"}},
      {"query", {"query", "storage", "algebra", "constraints", "core",
                 "util"}},
      {"session", {"session", "query", "storage", "algebra", "constraints",
                   "core", "util"}},
      {"workload", {"workload", "query", "storage", "algebra", "constraints",
                    "core", "util"}},
      {"tests", {"tests", "workload", "session", "query", "storage",
                 "algebra", "constraints", "classic", "core", "util"}},
  };
  return dag;
}

/// Enums whose variant sets are closed: every switch must enumerate them
/// so `-Wswitch` turns a new variant into a warning at every dispatch
/// site. Kept in sync with the header that declares each enum.
inline const std::set<std::string>& ClosedEnums() {
  static const std::set<std::string> enums = {
      "ExprKind",     // query/ast.h    — relation-sorted AST nodes
      "LsExprKind",   // query/ast.h    — lifespan-sorted AST nodes
      "OpKind",       // storage/changelog.h — changelog/WAL record kinds
      "AggregateFn",  // algebra/aggregate.h
      "JoinStrategy", // query/optimizer.h
      "AccessPath",   // query/optimizer.h
      "SetOpKind",    // algebra/setops.h
      "FsyncPolicy",  // storage/wal.h
  };
  return enums;
}

struct IncludeRef {
  std::string target;  // resolved repo-relative path ("" if unresolvable)
  std::string raw;     // the literal include text
  size_t line = 0;
};

/// Quoted includes of one file (raw content, parsed line-wise so literal
/// stripping cannot blank the quoted path and commented-out includes are
/// ignored), resolved repo-relative: `"query/plan.h"` → `src/query/plan.h`;
/// a bare name in a tests/ file (`"test_seeds.h"`) → `tests/test_seeds.h`.
inline std::vector<IncludeRef> QuotedIncludes(std::string_view path,
                                              std::string_view raw_content) {
  std::vector<IncludeRef> out;
  size_t line = 0;
  size_t cursor = 0;
  while (cursor <= raw_content.size()) {
    const size_t nl = raw_content.find('\n', cursor);
    const std::string_view lv = raw_content.substr(
        cursor, (nl == std::string_view::npos ? raw_content.size() : nl) -
                    cursor);
    cursor = nl == std::string_view::npos ? raw_content.size() + 1 : nl + 1;
    ++line;
    size_t pos = lv.find_first_not_of(" \t");
    if (pos == std::string_view::npos || lv[pos] != '#') continue;
    pos = lv.find_first_not_of(" \t", pos + 1);
    if (pos == std::string_view::npos ||
        lv.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = lv.find('"', pos + 7);
    if (pos == std::string_view::npos) continue;
    const size_t end = lv.find('"', pos + 1);
    if (end == std::string_view::npos) continue;
    const std::string inc(lv.substr(pos + 1, end - pos - 1));
    std::string resolved;
    const std::string layer = LayerOf("src/" + inc);
    if (!layer.empty() && LayerDag().count(layer) > 0) {
      resolved = "src/" + inc;  // the src include root (-Isrc)
    } else if (inc.rfind("tests/", 0) == 0) {
      resolved = inc;
    } else if (inc.rfind("tools/", 0) == 0) {
      resolved = inc;
    } else if (inc.find('/') == std::string_view::npos &&
               LayerOf(path) == "tests") {
      resolved = "tests/" + inc;  // sibling include inside tests/
    }
    out.push_back({std::move(resolved), inc, line});
  }
  return out;
}

}  // namespace internal

// --- the checks --------------------------------------------------------------

/// layer-dag: include direction, test-code isolation, include cycles.
inline void CheckLayerDag(const std::vector<SourceFile>& files,
                          std::vector<Finding>* findings) {
  using internal::LayerDag;
  using internal::LayerOf;
  // Directional rules + graph for the cycle pass.
  std::map<std::string, std::vector<std::string>> graph;
  for (const SourceFile& f : files) {
    const std::string layer = LayerOf(f.path);
    if (layer.empty()) continue;
    const auto rules = LayerDag().find(layer);
    if (rules == LayerDag().end()) {
      findings->push_back({f.path, 0, "layer-dag",
                           "directory '" + layer +
                               "' is not part of the layer DAG (extend "
                               "LayerDag() deliberately)",
                           ""});
      continue;
    }
    for (const internal::IncludeRef& inc :
         internal::QuotedIncludes(f.path, f.content)) {
      if (inc.target.empty()) continue;  // not a layered include
      const std::string target_layer = LayerOf(inc.target);
      if (target_layer.empty()) continue;
      const std::string text = "#include \"" + inc.raw + "\"";
      if (layer != "tests" && target_layer == "tests") {
        findings->push_back({f.path, inc.line, "layer-dag",
                             "src/ must not include test code (" + inc.raw +
                                 ")",
                             text});
        continue;
      }
      if (rules->second.count(target_layer) == 0) {
        findings->push_back(
            {f.path, inc.line, "layer-dag",
             "layer '" + layer + "' must not include layer '" + target_layer +
                 "' (" + inc.raw + "); allowed: util/core <- classic|"
                 "constraints|algebra <- storage <- query <- workload <- "
                 "tests",
             text});
        continue;
      }
      graph[f.path].push_back(inc.target);
    }
  }
  // File-granularity cycle detection (DFS, three colors). The layer rules
  // allow util <-> core as a *layer* pair; an actual header cycle between
  // files is still an error.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  struct Dfs {
    std::map<std::string, std::vector<std::string>>& graph;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& reported;
    std::vector<Finding>* findings;
    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      for (const std::string& next : graph[node]) {
        if (color[next] == 2) continue;
        if (color[next] == 1) {
          auto it = std::find(stack.begin(), stack.end(), next);
          std::string chain;
          for (; it != stack.end(); ++it) chain += *it + " -> ";
          chain += next;
          if (reported.insert(chain).second) {
            findings->push_back({node, 0, "layer-dag",
                                 "include cycle: " + chain, ""});
          }
          continue;
        }
        Visit(next);
      }
      stack.pop_back();
      color[node] = 2;
    }
  };
  Dfs dfs{graph, color, stack, reported, findings};
  for (const auto& [node, _] : graph) {
    if (color[node] == 0) dfs.Visit(node);
  }
}

/// closed-enum-default: no `default:` arm in a switch whose case labels
/// name a closed enum.
inline void CheckClosedEnumDefault(
    const std::vector<SourceFile>& files,
    const std::map<std::string, std::string>& stripped,
    std::vector<Finding>* findings) {
  using internal::MatchSpan;
  using internal::WordAt;
  for (const SourceFile& f : files) {
    const std::string& code = stripped.at(f.path);
    // Collect every switch body span [open, close).
    struct Span {
      size_t open;
      size_t close;
    };
    std::vector<Span> spans;
    for (size_t pos = 0; (pos = code.find("switch", pos)) != std::string::npos;
         pos += 6) {
      if (!WordAt(code, pos, "switch")) continue;
      size_t p = pos + 6;
      while (p < code.size() && std::isspace(static_cast<unsigned char>(
                                    code[p])) != 0) {
        ++p;
      }
      if (p >= code.size() || code[p] != '(') continue;
      const size_t cond_end = MatchSpan(code, p);
      if (cond_end == std::string::npos) continue;
      size_t body = cond_end;
      while (body < code.size() && std::isspace(static_cast<unsigned char>(
                                       code[body])) != 0) {
        ++body;
      }
      if (body >= code.size() || code[body] != '{') continue;
      const size_t body_end = MatchSpan(code, body);
      if (body_end == std::string::npos) continue;
      spans.push_back({body, body_end});
    }
    for (const Span& s : spans) {
      // The region owned by this switch = its body minus nested switch
      // bodies (case labels of an inner switch belong to the inner one).
      auto owned = [&spans, &s](size_t pos) {
        for (const Span& inner : spans) {
          if (inner.open > s.open && inner.close <= s.close &&
              pos >= inner.open && pos < inner.close) {
            return false;
          }
        }
        return true;
      };
      std::set<std::string> closed_hits;
      size_t default_pos = std::string::npos;
      for (size_t pos = s.open; pos < s.close; ++pos) {
        if (!owned(pos)) continue;
        if (WordAt(code, pos, "case")) {
          // Label text runs to the first ':' that is not part of '::'.
          size_t e = pos + 4;
          while (e < s.close) {
            if (code[e] == ':' && (e + 1 >= code.size() ||
                                   code[e + 1] != ':') &&
                code[e - 1] != ':') {
              break;
            }
            ++e;
          }
          const std::string label = code.substr(pos + 4, e - pos - 4);
          // Split on '::', test each qualifier component.
          size_t b = 0;
          while (b < label.size()) {
            size_t q = label.find("::", b);
            if (q == std::string::npos) q = label.size();
            std::string part = label.substr(b, q - b);
            part.erase(std::remove_if(part.begin(), part.end(),
                                      [](char c) {
                                        return std::isspace(
                                                   static_cast<unsigned char>(
                                                       c)) != 0;
                                      }),
                       part.end());
            if (internal::ClosedEnums().count(part) > 0) {
              closed_hits.insert(part);
            }
            b = q + 2;
          }
          pos = e;
          continue;
        }
        if (WordAt(code, pos, "default")) {
          size_t e = pos + 7;
          while (e < code.size() && std::isspace(static_cast<unsigned char>(
                                        code[e])) != 0) {
            ++e;
          }
          if (e < code.size() && code[e] == ':' &&
              (e + 1 >= code.size() || code[e + 1] != ':')) {
            default_pos = pos;
          }
        }
      }
      if (!closed_hits.empty() && default_pos != std::string::npos) {
        std::string enums;
        for (const std::string& e : closed_hits) {
          enums += (enums.empty() ? "" : ", ") + e;
        }
        findings->push_back(
            {f.path, internal::LineOf(code, default_pos),
             "closed-enum-default",
             "switch over closed enum " + enums +
                 " carries a default: arm — enumerate every variant so "
                 "-Wswitch flags new ones (or allowlist with justification)",
             internal::LineTextAt(f.content, default_pos)});
      }
    }
  }
}

/// banned-construct: naked new/delete, non-harness RNG, stderr printf in
/// library code, blocking calls inside worker-pool task lambdas.
inline void CheckBannedConstructs(
    const std::vector<SourceFile>& files,
    const std::map<std::string, std::string>& stripped,
    std::vector<Finding>* findings) {
  using internal::LineOf;
  using internal::LineTextAt;
  using internal::MatchSpan;
  using internal::WordAt;
  for (const SourceFile& f : files) {
    const std::string& code = stripped.at(f.path);
    const bool in_tests = f.path.rfind("tests/", 0) == 0;
    auto add = [&](size_t pos, const std::string& message) {
      findings->push_back({f.path, LineOf(code, pos), "banned-construct",
                           message, LineTextAt(f.content, pos)});
    };
    for (size_t pos = 0; pos < code.size(); ++pos) {
      if (WordAt(code, pos, "new")) {
        // `new X(...)` — ownership must go through std::make_unique /
        // std::make_shared (allowlist deliberate leaks / private ctors).
        size_t e = pos + 3;
        while (e < code.size() && std::isspace(static_cast<unsigned char>(
                                      code[e])) != 0) {
          ++e;
        }
        if (e < code.size() &&
            (internal::IsIdentChar(code[e]) || code[e] == '(')) {
          add(pos,
              "naked new — use std::make_unique/std::make_shared (or "
              "allowlist with justification)");
        }
      }
      if (WordAt(code, pos, "delete")) {
        // Skip `= delete` (deleted functions) and `delete` in comments
        // (already stripped).
        size_t b = pos;
        while (b > 0 && std::isspace(static_cast<unsigned char>(
                            code[b - 1])) != 0) {
          --b;
        }
        if (b == 0 || code[b - 1] != '=') {
          add(pos, "naked delete — owning raw pointers are banned");
        }
      }
      if (WordAt(code, pos, "srand") || code.compare(pos, 10, "std::rand(") ==
                                            0 ||
          code.compare(pos, 18, "std::random_device") == 0 ||
          (WordAt(code, pos, "rand") && pos + 4 < code.size() &&
           code[pos + 4] == '(')) {
        if (pos == 0 || code.compare(pos - 1, 2, ":r") != 0 ||
            code.compare(pos, 5, "rand(") != 0) {
          // (std::rand( is reported once, at the std:: token)
          add(pos,
              in_tests
                  ? "unseeded/global RNG in tests — all randomness must go "
                    "through tests/test_seeds.h (seed-reproducible fuzz)"
                  : "global RNG — use util/random.h (seedable, "
                    "deterministic)");
        }
      }
      if (code.compare(pos, 7, "fprintf") == 0 && !in_tests) {
        size_t e = pos + 7;
        while (e < code.size() && (std::isspace(static_cast<unsigned char>(
                                       code[e])) != 0 ||
                                   code[e] == '(')) {
          ++e;
        }
        if (code.compare(e, 6, "stderr") == 0) {
          add(pos,
              "fprintf(stderr, ...) in library code — report through "
              "util::Status; stderr printing belongs in bench/ and tools/");
        }
      }
    }
    // Worker-pool task bodies must be pure leaf kernels: no locks, no
    // sleeps, no file I/O. This is the "workers never wait" invariant
    // that makes the shared pool deadlock-free (util/thread_pool.h).
    if (!in_tests) {
      static const char* const kBlocking[] = {
          "sleep_for",  "sleep(",     "usleep",    "lock_guard",
          "unique_lock", "scoped_lock", "MutexLock", ".lock()",
          "fsync",      "fopen",      "ifstream",  "ofstream",
          "std::cout",  "std::cerr",  "Submit(",
      };
      for (const char* entry : {"Submit", "ParallelMorsels"}) {
        for (size_t pos = 0;
             (pos = code.find(entry, pos)) != std::string::npos;
             pos += std::string(entry).size()) {
          if (pos > 0 && internal::IsIdentChar(code[pos - 1])) continue;
          size_t p = pos + std::string(entry).size();
          if (p >= code.size() || code[p] != '(') continue;
          const size_t end = MatchSpan(code, p);
          if (end == std::string::npos) continue;
          // Definitions (parameter lists) contain no lambda bodies; call
          // sites carry the task lambda inside the argument span.
          const std::string_view span(code.data() + p, end - p);
          if (span.find('{') == std::string_view::npos) continue;
          for (const char* banned : kBlocking) {
            const size_t hit = span.find(banned);
            if (hit != std::string_view::npos) {
              add(p + hit,
                  std::string("blocking call '") + banned +
                      "' inside a worker-pool task lambda — tasks must be "
                      "pure leaf kernels (util/thread_pool.h invariant)");
            }
          }
        }
      }
    }
  }
}

/// doc-parity: every PlanStats counter field appears in ARCHITECTURE.md.
inline void CheckDocParity(const Options& options,
                           std::vector<Finding>* findings) {
  if (options.plan_header.empty() || options.architecture_md.empty()) return;
  const std::string code =
      internal::StripCommentsAndLiterals(options.plan_header);
  const size_t decl = code.find("struct PlanStats");
  if (decl == std::string::npos) {
    findings->push_back({"src/query/plan.h", 0, "doc-parity",
                         "struct PlanStats not found", ""});
    return;
  }
  const size_t open = code.find('{', decl);
  if (open == std::string::npos) return;
  const size_t close = internal::MatchSpan(code, open);
  if (close == std::string::npos) return;
  // Field declarations: `type name = init;` or `type name;` with no '('
  // before the ';' (which would make it a member function).
  std::vector<std::pair<std::string, size_t>> fields;
  size_t line_start = open;
  for (size_t i = open + 1; i < close - 1; ++i) {
    if (code[i] != ';') continue;
    const size_t stmt_begin = line_start + 1;
    const std::string stmt = code.substr(stmt_begin, i - stmt_begin);
    line_start = i;
    if (stmt.find('(') != std::string::npos) continue;
    if (stmt.find('}') != std::string::npos) continue;
    // The field name is the last identifier before '=' (or before ';').
    const size_t eq = stmt.find('=');
    const std::string head = eq == std::string::npos ? stmt
                                                     : stmt.substr(0, eq);
    size_t e = head.size();
    while (e > 0 && !internal::IsIdentChar(head[e - 1])) --e;
    size_t b = e;
    while (b > 0 && internal::IsIdentChar(head[b - 1])) --b;
    if (b == e) continue;
    const std::string name = head.substr(b, e - b);
    if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;
    fields.emplace_back(name, internal::LineOf(code, stmt_begin + b));
  }
  for (const auto& [name, line] : fields) {
    if (options.architecture_md.find(name) == std::string::npos) {
      findings->push_back(
          {"src/query/plan.h", line, "doc-parity",
           "PlanStats counter '" + name +
               "' is not mentioned in docs/ARCHITECTURE.md — the EXPLAIN "
               "surface must stay documented",
           name});
    }
  }
}

/// style: tabs, trailing whitespace, CRLF, final newline.
inline void CheckStyle(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings) {
  for (const SourceFile& f : files) {
    const std::string& text = f.content;
    size_t line = 1;
    size_t line_begin = 0;
    auto flush_line = [&](size_t end) {
      std::string_view lv(text.data() + line_begin, end - line_begin);
      if (!lv.empty() && lv.back() == '\r') {
        findings->push_back({f.path, line, "style", "CRLF line ending",
                             std::string(lv)});
        lv.remove_suffix(1);
      }
      if (lv.find('\t') != std::string_view::npos) {
        findings->push_back({f.path, line, "style", "tab character",
                             std::string(lv)});
      }
      if (!lv.empty() && (lv.back() == ' ' || lv.back() == '\t')) {
        findings->push_back({f.path, line, "style", "trailing whitespace",
                             std::string(lv)});
      }
    };
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') {
        flush_line(i);
        ++line;
        line_begin = i + 1;
      }
    }
    if (line_begin < text.size()) {
      flush_line(text.size());
      findings->push_back({f.path, line, "style",
                           "file does not end with a newline", ""});
    }
    if (text.size() >= 2 && text[text.size() - 1] == '\n' &&
        text[text.size() - 2] == '\n') {
      findings->push_back({f.path, line, "style",
                           "file ends with more than one blank line", ""});
    }
  }
}

// --- allowlist + driver -------------------------------------------------------

inline std::vector<AllowEntry> ParseAllowlist(std::string_view text,
                                              std::vector<Finding>* findings) {
  std::vector<AllowEntry> entries;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string line(
        text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) -
                             pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts;
    size_t b = 0;
    while (true) {
      const size_t bar = line.find('|', b);
      parts.push_back(line.substr(b, bar == std::string::npos
                                         ? std::string::npos
                                         : bar - b));
      if (bar == std::string::npos) break;
      b = bar + 1;
    }
    if (parts.size() != 4 || parts[3].empty()) {
      findings->push_back(
          {"tools/lint_allowlist.txt", line_no, "allowlist",
           "malformed entry (want check|path|line-substring|reason): " + line,
           line});
      continue;
    }
    entries.push_back({parts[0], parts[1], parts[2], parts[3], false});
  }
  return entries;
}

/// Runs every check over `files`, applies the allowlist, reports unused
/// allowlist entries, and returns the surviving findings sorted by
/// (path, line).
inline std::vector<Finding> Run(const std::vector<SourceFile>& files,
                                const Options& options) {
  std::vector<Finding> findings;
  std::vector<AllowEntry> allow =
      ParseAllowlist(options.allowlist, &findings);

  std::map<std::string, std::string> stripped;
  for (const SourceFile& f : files) {
    stripped[f.path] = internal::StripCommentsAndLiterals(f.content);
  }

  std::vector<Finding> raw;
  CheckLayerDag(files, &raw);
  CheckClosedEnumDefault(files, stripped, &raw);
  CheckBannedConstructs(files, stripped, &raw);
  CheckDocParity(options, &raw);
  CheckStyle(files, &raw);

  for (Finding& f : raw) {
    bool suppressed = false;
    for (AllowEntry& entry : allow) {
      if (entry.check == f.check && entry.path == f.path &&
          (entry.pattern.empty() ||
           f.line_text.find(entry.pattern) != std::string::npos)) {
        entry.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) findings.push_back(std::move(f));
  }
  for (const AllowEntry& entry : allow) {
    if (!entry.used) {
      findings.push_back(
          {"tools/lint_allowlist.txt", 0, "allowlist",
           "unused allowlist entry (" + entry.check + "|" + entry.path + "|" +
               entry.pattern + ") — remove it so suppressions cannot rot",
           ""});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace hrdm::lint

#endif  // HRDM_TOOLS_HRDM_LINT_LIB_H_
