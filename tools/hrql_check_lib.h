#ifndef HRDM_TOOLS_HRQL_CHECK_LIB_H_
#define HRDM_TOOLS_HRQL_CHECK_LIB_H_

/// \file hrql_check_lib.h
/// \brief The documentation checker's engine (the CI docs gate).
///
/// For every markdown file given it verifies
///  1. **hrql-snippet** — every statement inside a ```hrql fenced code
///     block parses (relation-sorted expressions via ParseExpr,
///     lifespan-sorted via ParseLsExpr), so the language reference
///     (docs/HRQL.md) can never drift from the grammar the parser
///     actually accepts;
///  2. **relative-link** — every relative markdown link `[text](path)`
///     resolves to an existing file or directory (external
///     http(s)/mailto links and pure #anchors are skipped), so
///     README/docs cross-references can never go stale;
///  3. **operator-coverage** — for the language reference itself (files
///     named HRQL.md): every operator of the language has at least one
///     example inside a ```hrql snippet — a newly shipped operator
///     cannot land undocumented, and a removed example is flagged
///     immediately.
///
/// Inside ```hrql blocks, each non-empty line is one statement; lines
/// starting with `--` are comments.
///
/// Like tools/hrdm_lint_lib.h, the engine operates on in-memory
/// (path, content) pairs with an injectable existence probe, so
/// tests/hrql_check_test.cc can drive every check over fixture documents
/// without touching the filesystem; the CLI wrapper (tools/hrql_check.cc)
/// reads the real files and probes the real tree.

#include <cctype>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "query/parser.h"

namespace hrdm::doccheck {

/// One markdown document: repo-relative path + full text.
struct DocFile {
  std::string path;
  std::string content;
};

struct Failure {
  std::string file;
  size_t line = 0;  // 1-based; 0 = whole file
  std::string message;
};

struct Options {
  /// Existence probe for relative-link targets (already resolved against
  /// the document's directory). Defaults to std::filesystem::exists;
  /// tests inject a closed set of "existing" paths instead.
  std::function<bool(const std::string&)> path_exists;
};

/// Every operator keyword of the language (kept in sync with the parser's
/// keyword set; parser_test.cc and this engine together pin the surface).
/// The language reference must show each at least once.
inline const std::vector<std::string>& OperatorKeywords() {
  static const std::vector<std::string> kOperators = {
      // relation-sorted
      "select_if", "select_when", "project", "timeslice", "dynslice",
      "union", "intersect", "minus", "ounion", "ointersect", "ominus",
      "product", "join", "natjoin", "timejoin", "aggregate",
      // lifespan-sorted
      "when", "lunion", "lintersect", "lminus",
  };
  return kOperators;
}

namespace internal {

inline std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

inline std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t nl = std::min(content.find('\n', pos), content.size());
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

/// Lower-cased identifier words of one snippet statement (the operator
/// keywords appear as identifiers at call-head positions).
inline void CollectIdentifiers(const std::string& statement,
                               std::set<std::string>* words) {
  std::string word;
  for (const char c : statement) {
    const bool ident = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_';
    if (ident) {
      word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      continue;
    }
    if (!word.empty()) words->insert(word);
    word.clear();
  }
  if (!word.empty()) words->insert(word);
}

inline void CheckHrqlSnippets(const std::string& path,
                              const std::vector<std::string>& lines,
                              std::vector<Failure>* failures) {
  bool in_hrql = false;
  std::set<std::string> snippet_words;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string t = Trim(lines[i]);
    if (!in_hrql) {
      if (t == "```hrql") in_hrql = true;
      continue;
    }
    if (t.rfind("```", 0) == 0) {
      in_hrql = false;
      continue;
    }
    if (t.empty() || t.rfind("--", 0) == 0) continue;
    auto expr = hrdm::query::ParseExpr(t);
    if (!expr.ok()) {
      auto ls = hrdm::query::ParseLsExpr(t);
      if (!ls.ok()) {
        failures->push_back(
            {path, i + 1,
             "hrql snippet does not parse: " + expr.status().ToString()});
        continue;
      }
    }
    CollectIdentifiers(t, &snippet_words);
  }
  // Operator coverage: the language reference must demonstrate every
  // operator with at least one parsed snippet.
  const std::string name = std::filesystem::path(path).filename().string();
  if (name == "HRQL.md") {
    for (const std::string& op : OperatorKeywords()) {
      if (snippet_words.count(op) == 0) {
        failures->push_back(
            {path, 0,
             "operator '" + op + "' has no example in any ```hrql snippet"});
      }
    }
  }
}

/// Extracts link targets `[...](target)` from one line. Markdown images and
/// reference-style links are out of scope (the docs do not use them).
inline std::vector<std::string> LinkTargets(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = line.find("](", pos)) != std::string::npos) {
    const size_t start = pos + 2;
    const size_t end = line.find(')', start);
    if (end == std::string::npos) break;
    out.push_back(line.substr(start, end - start));
    pos = end + 1;
  }
  return out;
}

inline void CheckRelativeLinks(
    const std::string& path, const std::vector<std::string>& lines,
    const std::function<bool(const std::string&)>& path_exists,
    std::vector<Failure>* failures) {
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  bool in_code = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    // Fenced code blocks may contain `](` sequences that are not links.
    if (Trim(lines[i]).rfind("```", 0) == 0) {
      in_code = !in_code;
      continue;
    }
    if (in_code) continue;
    for (const std::string& raw : LinkTargets(lines[i])) {
      std::string target = raw;
      if (target.empty() || target[0] == '#') continue;  // intra-doc anchor
      if (target.rfind("http://", 0) == 0 ||
          target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      const size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      if (target.empty()) continue;
      const std::filesystem::path resolved = dir / target;
      if (!path_exists(resolved.string())) {
        failures->push_back(
            {path, i + 1, "broken relative link: " + raw + " (resolved to " +
                              resolved.string() + ")"});
      }
    }
  }
}

}  // namespace internal

/// All failures of one document under every check.
inline std::vector<Failure> CheckFile(const DocFile& doc,
                                      const Options& options = Options()) {
  const std::function<bool(const std::string&)> exists =
      options.path_exists != nullptr
          ? options.path_exists
          : [](const std::string& p) { return std::filesystem::exists(p); };
  std::vector<Failure> failures;
  const std::vector<std::string> lines = internal::SplitLines(doc.content);
  internal::CheckHrqlSnippets(doc.path, lines, &failures);
  internal::CheckRelativeLinks(doc.path, lines, exists, &failures);
  return failures;
}

/// All failures across a document set, in input order.
inline std::vector<Failure> Run(const std::vector<DocFile>& docs,
                                const Options& options = Options()) {
  std::vector<Failure> failures;
  for (const DocFile& doc : docs) {
    std::vector<Failure> one = CheckFile(doc, options);
    failures.insert(failures.end(), one.begin(), one.end());
  }
  return failures;
}

}  // namespace hrdm::doccheck

#endif  // HRDM_TOOLS_HRQL_CHECK_LIB_H_
