// Architecture linter (the CI lint gate):
//
//   hrdm_lint [REPO_ROOT]
//
// Walks `src/**` and `tests/**` (every .h/.cc file) under REPO_ROOT
// (default: the current directory), loads `tools/lint_allowlist.txt`,
// `docs/ARCHITECTURE.md` and `src/query/plan.h`, and runs every check in
// tools/hrdm_lint_lib.h: layer-DAG include direction + cycles, closed-enum
// switch discipline, banned constructs, PlanStats/doc parity, and
// whitespace hygiene. Exit status is the number of findings (capped at
// 255), so CI fails on any violation. See the library header for the
// check catalog and docs/ARCHITECTURE.md "Static analysis & invariants"
// for the rationale.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/hrdm_lint_lib.h"

namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [REPO_ROOT]\n", argv[0]);
    return 64;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::current_path();

  std::vector<hrdm::lint::SourceFile> files;
  for (const char* dir : {"src", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "hrdm_lint: missing directory %s\n",
                   base.string().c_str());
      return 64;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      files.push_back({rel, ReadFile(entry.path())});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const hrdm::lint::SourceFile& a,
               const hrdm::lint::SourceFile& b) { return a.path < b.path; });

  hrdm::lint::Options options;
  options.allowlist = ReadFile(root / "tools" / "lint_allowlist.txt");
  options.architecture_md = ReadFile(root / "docs" / "ARCHITECTURE.md");
  options.plan_header = ReadFile(root / "src" / "query" / "plan.h");

  const std::vector<hrdm::lint::Finding> findings =
      hrdm::lint::Run(files, options);
  for (const hrdm::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                 f.check.c_str(), f.message.c_str());
  }
  std::printf("hrdm_lint: %zu file(s), %zu finding(s)\n", files.size(),
              findings.size());
  return findings.size() > 255 ? 255 : static_cast<int>(findings.size());
}
