// Documentation checker CLI (the CI docs job):
//
//   hrql_check FILE.md [FILE.md ...]
//
// Thin wrapper over the engine in tools/hrql_check_lib.h (hrql snippet
// parsing, relative-link resolution, HRQL.md operator coverage — see the
// header comment there for the check definitions). This file only reads
// the documents and reports: exit status is the number of failures.
// tests/hrql_check_test.cc drives the same engine over fixtures.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/hrql_check_lib.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE.md [FILE.md ...]\n", argv[0]);
    return 64;
  }
  std::vector<hrdm::doccheck::Failure> failures;
  std::vector<hrdm::doccheck::DocFile> docs;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      failures.push_back({path, 0, "cannot open file"});
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    docs.push_back({path, content.str()});
  }
  {
    std::vector<hrdm::doccheck::Failure> found = hrdm::doccheck::Run(docs);
    failures.insert(failures.end(), found.begin(), found.end());
  }
  for (const hrdm::doccheck::Failure& f : failures) {
    std::fprintf(stderr, "%s:%zu: %s\n", f.file.c_str(), f.line,
                 f.message.c_str());
  }
  std::printf("hrql_check: %zu file(s), %zu failure(s)\n", docs.size(),
              failures.size());
  return failures.size() > 255 ? 255 : static_cast<int>(failures.size());
}
