// Documentation checker (the CI docs job):
//
//   hrql_check FILE.md [FILE.md ...]
//
// For every markdown file given it verifies
//  1. every statement inside a ```hrql fenced code block parses — relation-
//     sorted expressions via ParseExpr, lifespan-sorted via ParseLsExpr —
//     so the language reference (docs/HRQL.md) can never drift from the
//     grammar the parser actually accepts;
//  2. every relative markdown link `[text](path)` resolves to an existing
//     file or directory (external http(s)/mailto links and pure #anchors
//     are skipped) so README/docs cross-references can never go stale;
//  3. for the language reference itself (files named HRQL.md): every
//     operator of the language has at least one example inside a ```hrql
//     snippet — a newly shipped operator cannot land undocumented, and a
//     removed example is flagged immediately.
//
// Inside ```hrql blocks, each non-empty line is one statement; lines
// starting with `--` are comments. Exit status is the number of failures.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "query/parser.h"

namespace {

namespace fs = std::filesystem;

struct Failure {
  std::string file;
  size_t line;
  std::string message;
};

/// Every operator keyword of the language (kept in sync with the parser's
/// keyword set; parser_test.cc and this tool together pin the surface).
/// The language reference must show each at least once.
const char* const kOperatorKeywords[] = {
    // relation-sorted
    "select_if", "select_when", "project", "timeslice", "dynslice",
    "union", "intersect", "minus", "ounion", "ointersect", "ominus",
    "product", "join", "natjoin", "timejoin", "aggregate",
    // lifespan-sorted
    "when", "lunion", "lintersect", "lminus",
};

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Lower-cased identifier words of one snippet statement (the operator
/// keywords appear as identifiers at call-head positions).
void CollectIdentifiers(const std::string& statement,
                        std::set<std::string>* words) {
  std::string word;
  for (const char c : statement) {
    const bool ident = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_';
    if (ident) {
      word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      continue;
    }
    if (!word.empty()) words->insert(word);
    word.clear();
  }
  if (!word.empty()) words->insert(word);
}

void CheckHrqlSnippets(const std::string& path,
                       const std::vector<std::string>& lines,
                       std::vector<Failure>* failures) {
  bool in_hrql = false;
  std::set<std::string> snippet_words;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string t = Trim(lines[i]);
    if (!in_hrql) {
      if (t == "```hrql") in_hrql = true;
      continue;
    }
    if (t.rfind("```", 0) == 0) {
      in_hrql = false;
      continue;
    }
    if (t.empty() || t.rfind("--", 0) == 0) continue;
    auto expr = hrdm::query::ParseExpr(t);
    if (!expr.ok()) {
      auto ls = hrdm::query::ParseLsExpr(t);
      if (!ls.ok()) {
        failures->push_back(
            {path, i + 1,
             "hrql snippet does not parse: " + expr.status().ToString()});
        continue;
      }
    }
    CollectIdentifiers(t, &snippet_words);
  }
  // Operator coverage: the language reference must demonstrate every
  // operator with at least one parsed snippet.
  const std::string name = fs::path(path).filename().string();
  if (name == "HRQL.md") {
    for (const char* op : kOperatorKeywords) {
      if (snippet_words.count(op) == 0) {
        failures->push_back(
            {path, 0,
             std::string("operator '") + op +
                 "' has no example in any ```hrql snippet"});
      }
    }
  }
}

/// Extracts link targets `[...](target)` from one line. Markdown images and
/// reference-style links are out of scope (the docs do not use them).
std::vector<std::string> LinkTargets(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = line.find("](", pos)) != std::string::npos) {
    const size_t start = pos + 2;
    const size_t end = line.find(')', start);
    if (end == std::string::npos) break;
    out.push_back(line.substr(start, end - start));
    pos = end + 1;
  }
  return out;
}

void CheckRelativeLinks(const std::string& path,
                        const std::vector<std::string>& lines,
                        std::vector<Failure>* failures) {
  const fs::path dir = fs::path(path).parent_path();
  bool in_code = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    // Fenced code blocks may contain `](` sequences that are not links.
    if (Trim(lines[i]).rfind("```", 0) == 0) {
      in_code = !in_code;
      continue;
    }
    if (in_code) continue;
    for (const std::string& raw : LinkTargets(lines[i])) {
      std::string target = raw;
      if (target.empty() || target[0] == '#') continue;  // intra-doc anchor
      if (target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      const size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      if (target.empty()) continue;
      const fs::path resolved = dir / target;
      if (!fs::exists(resolved)) {
        failures->push_back(
            {path, i + 1, "broken relative link: " + raw + " (resolved to " +
                              resolved.string() + ")"});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE.md [FILE.md ...]\n", argv[0]);
    return 64;
  }
  std::vector<Failure> failures;
  size_t snippets_files = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      failures.push_back({path, 0, "cannot open file"});
      continue;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ++snippets_files;
    CheckHrqlSnippets(path, lines, &failures);
    CheckRelativeLinks(path, lines, &failures);
  }
  for (const Failure& f : failures) {
    std::fprintf(stderr, "%s:%zu: %s\n", f.file.c_str(), f.line,
                 f.message.c_str());
  }
  std::printf("hrql_check: %zu file(s), %zu failure(s)\n", snippets_files,
              failures.size());
  return failures.size() > 255 ? 255 : static_cast<int>(failures.size());
}
