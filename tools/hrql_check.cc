// Documentation checker (the CI docs job):
//
//   hrql_check FILE.md [FILE.md ...]
//
// For every markdown file given it verifies
//  1. every statement inside a ```hrql fenced code block parses — relation-
//     sorted expressions via ParseExpr, lifespan-sorted via ParseLsExpr —
//     so the language reference (docs/HRQL.md) can never drift from the
//     grammar the parser actually accepts;
//  2. every relative markdown link `[text](path)` resolves to an existing
//     file or directory (external http(s)/mailto links and pure #anchors
//     are skipped) so README/docs cross-references can never go stale.
//
// Inside ```hrql blocks, each non-empty line is one statement; lines
// starting with `--` are comments. Exit status is the number of failures.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "query/parser.h"

namespace {

namespace fs = std::filesystem;

struct Failure {
  std::string file;
  size_t line;
  std::string message;
};

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

void CheckHrqlSnippets(const std::string& path,
                       const std::vector<std::string>& lines,
                       std::vector<Failure>* failures) {
  bool in_hrql = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string t = Trim(lines[i]);
    if (!in_hrql) {
      if (t == "```hrql") in_hrql = true;
      continue;
    }
    if (t.rfind("```", 0) == 0) {
      in_hrql = false;
      continue;
    }
    if (t.empty() || t.rfind("--", 0) == 0) continue;
    auto expr = hrdm::query::ParseExpr(t);
    if (expr.ok()) continue;
    auto ls = hrdm::query::ParseLsExpr(t);
    if (ls.ok()) continue;
    failures->push_back(
        {path, i + 1,
         "hrql snippet does not parse: " + expr.status().ToString()});
  }
}

/// Extracts link targets `[...](target)` from one line. Markdown images and
/// reference-style links are out of scope (the docs do not use them).
std::vector<std::string> LinkTargets(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = line.find("](", pos)) != std::string::npos) {
    const size_t start = pos + 2;
    const size_t end = line.find(')', start);
    if (end == std::string::npos) break;
    out.push_back(line.substr(start, end - start));
    pos = end + 1;
  }
  return out;
}

void CheckRelativeLinks(const std::string& path,
                        const std::vector<std::string>& lines,
                        std::vector<Failure>* failures) {
  const fs::path dir = fs::path(path).parent_path();
  bool in_code = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    // Fenced code blocks may contain `](` sequences that are not links.
    if (Trim(lines[i]).rfind("```", 0) == 0) {
      in_code = !in_code;
      continue;
    }
    if (in_code) continue;
    for (const std::string& raw : LinkTargets(lines[i])) {
      std::string target = raw;
      if (target.empty() || target[0] == '#') continue;  // intra-doc anchor
      if (target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      const size_t anchor = target.find('#');
      if (anchor != std::string::npos) target = target.substr(0, anchor);
      if (target.empty()) continue;
      const fs::path resolved = dir / target;
      if (!fs::exists(resolved)) {
        failures->push_back(
            {path, i + 1, "broken relative link: " + raw + " (resolved to " +
                              resolved.string() + ")"});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE.md [FILE.md ...]\n", argv[0]);
    return 64;
  }
  std::vector<Failure> failures;
  size_t snippets_files = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      failures.push_back({path, 0, "cannot open file"});
      continue;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ++snippets_files;
    CheckHrqlSnippets(path, lines, &failures);
    CheckRelativeLinks(path, lines, &failures);
  }
  for (const Failure& f : failures) {
    std::fprintf(stderr, "%s:%zu: %s\n", f.file.c_str(), f.line,
                 f.message.c_str());
  }
  std::printf("hrql_check: %zu file(s), %zu failure(s)\n", snippets_files,
              failures.size());
  return failures.size() > 255 ? 255 : static_cast<int>(failures.size());
}
