#!/usr/bin/env bash
# Local mirror of the CI `lint` job (.github/workflows/ci.yml).
#
# Always runs the dependency-free architecture linter (tools/hrdm_lint.cc)
# and, when the clang toolchain is installed, the clang-tidy and
# clang-format passes over the same compilation database CI uses. Missing
# tools are skipped with a notice so the script is useful on minimal
# containers — hrdm_lint needs nothing beyond the C++ compiler that builds
# the library.
#
# Usage: tools/lint.sh [BUILD_DIR]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
failed=0

echo "== hrdm_lint (architecture linter) =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target hrdm_lint >/dev/null
"$BUILD_DIR/hrdm_lint" . || failed=1

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The compilation database comes from CMAKE_EXPORT_COMPILE_COMMANDS.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "^$PWD/(src|tools)/.*" || failed=1
  else
    git ls-files 'src/*.cc' 'tools/*.cc' |
      xargs clang-tidy -quiet -p "$BUILD_DIR" || failed=1
  fi
else
  echo "clang-tidy not installed — skipped (runs in CI)"
fi

echo "== clang-format =="
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.h' '*.cc' |
    xargs clang-format --dry-run -Werror || failed=1
else
  echo "clang-format not installed — skipped (runs in CI; hrdm_lint"
  echo "hard-gates the whitespace slice: tabs, CRLF, trailing space)"
fi

echo "== clang build with -Werror=thread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR-clang" -S . \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety" >/dev/null
  cmake --build "$BUILD_DIR-clang" -j || failed=1
else
  echo "clang++ not installed — skipped (runs in CI; the annotations in"
  echo "util/thread_annotations.h compile to no-ops under gcc)"
fi

exit "$failed"
