// Randomized DML integration test ("fuzz-lite"): long random sequences of
// storage-engine operations must (a) never crash, (b) keep every relation
// well-formed after every batch, and (c) leave the write-ahead log
// replayable into a byte-identical database — the crash-recovery
// guarantee.

#include <gtest/gtest.h>

#include "constraints/constraints.h"
#include "storage/changelog.h"
#include "test_seeds.h"
#include "util/random.h"

namespace hrdm::storage {
namespace {

constexpr TimePoint kHorizon = 120;
constexpr char kSeedEnv[] = "HRDM_DML_FUZZ_SEEDS";

class DmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DmlFuzzTest, RandomOperationSequences) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam());
  LoggedDatabase ldb;
  const Lifespan full = Span(0, kHorizon - 1);
  ASSERT_TRUE(
      ldb.CreateRelation(
             "obj",
             {{"Id", DomainType::kString, full,
               InterpolationKind::kDiscrete},
              {"X", DomainType::kInt, full, InterpolationKind::kStepwise},
              {"Y", DomainType::kString, full,
               InterpolationKind::kStepwise}},
             {"Id"})
          .ok());
  auto key_of = [](int i) {
    return std::vector<Value>{Value::String("o" + std::to_string(i))};
  };

  int inserted = 0;
  int applied_ops = 0;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    Status s;
    switch (op) {
      case 0:
      case 1: {  // insert a fresh object
        auto scheme = *ldb.db().catalog().Get("obj");
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        const TimePoint e = rng.Uniform(b, kHorizon - 1);
        Tuple::Builder builder(scheme, Span(b, e));
        builder.SetConstant("Id",
                            Value::String("o" + std::to_string(inserted)));
        builder.SetAt("X", b, Value::Int(rng.Uniform(0, 99)));
        auto t = std::move(builder).Build();
        ASSERT_TRUE(t.ok()) << t.status().ToString();
        s = ldb.Insert("obj", *std::move(t));
        if (s.ok()) ++inserted;
        break;
      }
      case 2:
      case 3: {  // assign over a random span (may legitimately fail)
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 1);
        const TimePoint e =
            std::min<TimePoint>(kHorizon - 1, b + rng.Uniform(0, 20));
        s = ldb.Assign("obj", key_of(target),
                       rng.Chance(0.5) ? "X" : "Y", Span(b, e),
                       rng.Chance(0.5)
                           ? Value::Int(rng.Uniform(0, 99))
                           : Value::String(rng.Identifier(4)));
        break;
      }
      case 4: {  // end a lifespan
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        s = ldb.EndLifespan("obj", key_of(target),
                            rng.Uniform(1, kHorizon - 1));
        break;
      }
      case 5: {  // reincarnate
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        s = ldb.Reincarnate("obj", key_of(target),
                            Span(b, rng.Uniform(b, kHorizon - 1)));
        break;
      }
      case 6: {  // close + reopen a non-key attribute (schema evolution)
        s = ldb.CloseAttribute("obj", "Y", rng.Uniform(1, kHorizon - 1));
        if (s.ok()) {
          const TimePoint b = rng.Uniform(0, kHorizon - 2);
          s = ldb.ReopenAttribute("obj", "Y",
                                  Span(b, rng.Uniform(b, kHorizon - 1)));
        }
        break;
      }
      case 7: {  // add a new attribute occasionally
        if (rng.Chance(0.9)) continue;
        s = ldb.AddAttribute(
            "obj", {"Z" + std::to_string(step), DomainType::kInt, full,
                    InterpolationKind::kStepwise});
        break;
      }
      default: {  // point assign
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        s = ldb.Assign("obj", key_of(target), "X",
                       Lifespan::Point(rng.Uniform(0, kHorizon - 1)),
                       Value::Int(rng.Uniform(0, 99)));
        break;
      }
    }
    // Mutations either succeed or fail with a *clean* status; a value-level
    // type error or internal error would indicate a bug.
    if (!s.ok()) {
      EXPECT_NE(s.code(), StatusCode::kInternal) << s.ToString();
      EXPECT_NE(s.code(), StatusCode::kCorruption) << s.ToString();
    } else {
      ++applied_ops;
    }

    if (step % 80 == 79) {
      // Periodic invariant audit.
      auto rel = ldb.db().Get("obj");
      ASSERT_TRUE(rel.ok());
      auto violations = CheckRelationWellFormed(**rel);
      ASSERT_TRUE(violations.ok());
      EXPECT_TRUE(violations->empty())
          << "step " << step << ": " << violations->front().description;
    }
  }
  ASSERT_GT(applied_ops, 50);  // the sequence actually exercised the engine

  // Crash-recovery equivalence: replaying the log reproduces the database
  // byte-for-byte.
  Database replayed;
  ASSERT_TRUE(ldb.log().Replay(&replayed).ok());
  EXPECT_EQ(replayed.EncodeSnapshot(), ldb.db().EncodeSnapshot());

  // And the snapshot itself round-trips.
  auto decoded = Database::DecodeSnapshot(ldb.db().EncodeSnapshot());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->EncodeSnapshot(), ldb.db().EncodeSnapshot());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DmlFuzzTest,
    ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
        kSeedEnv, {1u, 2u, 3u, 4u, 5u, 99u, 777u, 31415u})));

}  // namespace
}  // namespace hrdm::storage
