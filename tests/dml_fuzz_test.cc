// Randomized DML integration test ("fuzz-lite"): long random sequences of
// storage-engine operations must (a) never crash, (b) keep every relation
// well-formed after every batch, (c) leave the write-ahead log replayable
// into a byte-identical database — the crash-recovery guarantee — and
// (d) keep every access-path index (storage/index.h) exact: index-scan
// plans must return tuple-for-tuple the same relations as full-scan plans
// after any mutation history (the IndexDifferentialFuzzTest suite runs
// that differential over 100 independent random sequences).

#include <gtest/gtest.h>

#include "constraints/constraints.h"
#include "query/executor.h"
#include "query/plan.h"
#include "storage/changelog.h"
#include "test_seeds.h"
#include "util/random.h"

namespace hrdm::storage {
namespace {

constexpr TimePoint kHorizon = 120;
constexpr char kSeedEnv[] = "HRDM_DML_FUZZ_SEEDS";
constexpr char kIndexSeedEnv[] = "HRDM_INDEX_FUZZ_SEEDS";

/// Evaluates `expr` against `db` with every access path forced in turn and
/// asserts the answers are identical as sets. The full scan is the
/// reference; value/lifespan probes that are not eligible for `expr` fall
/// back to the scan, so forcing both is always safe.
void ExpectIndexScanParity(const Database& db, const query::ExprPtr& expr) {
  auto eval = [&db, &expr](std::optional<query::AccessPath> force)
      -> Result<Relation> {
    query::PlanOptions options = query::DatabasePlanOptions(db);
    options.force_access_path = force;
    HRDM_ASSIGN_OR_RETURN(
        query::Plan plan,
        query::Plan::Lower(expr, query::DatabaseResolver(db), options));
    return plan.Drain();
  };
  auto full = eval(query::AccessPath::kFullScan);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (query::AccessPath path :
       {query::AccessPath::kValueIndex, query::AccessPath::kLifespanIndex}) {
    auto indexed = eval(path);
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    EXPECT_TRUE(full->EqualsAsSet(*indexed))
        << expr->ToString() << " diverges under "
        << query::AccessPathName(path) << "\nfull scan:\n"
        << full->ToString() << "\nindex scan:\n"
        << indexed->ToString();
  }
}

/// A batch of index-vs-scan differential probes: point equalities on both
/// the int and string indexed attributes (hit and miss values) and a
/// random TIME-SLICE / windowed SELECT-IF window.
void CheckIndexDifferential(const Database& db, Rng* rng) {
  const TimePoint b = rng->Uniform(0, kHorizon - 1);
  const Lifespan window = Span(b, std::min<TimePoint>(kHorizon - 1,
                                                      b + rng->Uniform(0, 30)));
  const auto x_pred = Predicate::AttrConst("X", CompareOp::kEq,
                                           Value::Int(rng->Uniform(0, 99)));
  const auto y_pred = Predicate::AttrConst(
      "Y", CompareOp::kEq,
      rng->Chance(0.5) ? Value::String(rng->Identifier(4))
                       : Value::String("miss"));
  const query::ExprPtr queries[] = {
      query::SelectIfE(query::Rel("obj"), x_pred, Quantifier::kExists),
      query::SelectWhenE(query::Rel("obj"), x_pred),
      query::SelectIfE(query::Rel("obj"), y_pred, Quantifier::kExists),
      query::TimeSliceE(query::Rel("obj"), query::LsLiteral(window)),
      query::SelectIfE(query::Rel("obj"), x_pred, Quantifier::kExists,
                       query::LsLiteral(window)),
  };
  for (const query::ExprPtr& q : queries) {
    ExpectIndexScanParity(db, q);
  }
}

class DmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DmlFuzzTest, RandomOperationSequences) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam());
  LoggedDatabase ldb;
  const Lifespan full = Span(0, kHorizon - 1);
  ASSERT_TRUE(
      ldb.CreateRelation(
             "obj",
             {{"Id", DomainType::kString, full,
               InterpolationKind::kDiscrete},
              {"X", DomainType::kInt, full, InterpolationKind::kStepwise},
              {"Y", DomainType::kString, full,
               InterpolationKind::kStepwise}},
             {"Id"})
          .ok());
  // Index everything indexable: every mutation below must keep the indexes
  // exact (checked in the periodic audit). Index DDL goes through the
  // logged path too — replay rebuilds registrations and index data, while
  // the snapshot image compared below stays registration-free, so the
  // byte-equality assertion is unaffected.
  ASSERT_TRUE(ldb.CreateLifespanIndex("obj").ok());
  ASSERT_TRUE(ldb.CreateValueIndex("obj", "X").ok());
  ASSERT_TRUE(ldb.CreateValueIndex("obj", "Y").ok());
  auto key_of = [](int i) {
    return std::vector<Value>{Value::String("o" + std::to_string(i))};
  };

  int inserted = 0;
  int applied_ops = 0;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    Status s;
    switch (op) {
      case 0:
      case 1: {  // insert a fresh object
        auto scheme = *ldb.db().catalog().Get("obj");
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        const TimePoint e = rng.Uniform(b, kHorizon - 1);
        Tuple::Builder builder(scheme, Span(b, e));
        builder.SetConstant("Id",
                            Value::String("o" + std::to_string(inserted)));
        builder.SetAt("X", b, Value::Int(rng.Uniform(0, 99)));
        auto t = std::move(builder).Build();
        ASSERT_TRUE(t.ok()) << t.status().ToString();
        s = ldb.Insert("obj", *std::move(t));
        if (s.ok()) ++inserted;
        break;
      }
      case 2:
      case 3: {  // assign over a random span (may legitimately fail)
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 1);
        const TimePoint e =
            std::min<TimePoint>(kHorizon - 1, b + rng.Uniform(0, 20));
        s = ldb.Assign("obj", key_of(target),
                       rng.Chance(0.5) ? "X" : "Y", Span(b, e),
                       rng.Chance(0.5)
                           ? Value::Int(rng.Uniform(0, 99))
                           : Value::String(rng.Identifier(4)));
        break;
      }
      case 4: {  // end a lifespan
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        s = ldb.EndLifespan("obj", key_of(target),
                            rng.Uniform(1, kHorizon - 1));
        break;
      }
      case 5: {  // reincarnate
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        s = ldb.Reincarnate("obj", key_of(target),
                            Span(b, rng.Uniform(b, kHorizon - 1)));
        break;
      }
      case 6: {  // close + reopen a non-key attribute (schema evolution)
        s = ldb.CloseAttribute("obj", "Y", rng.Uniform(1, kHorizon - 1));
        if (s.ok()) {
          const TimePoint b = rng.Uniform(0, kHorizon - 2);
          s = ldb.ReopenAttribute("obj", "Y",
                                  Span(b, rng.Uniform(b, kHorizon - 1)));
        }
        break;
      }
      case 7: {  // add a new attribute occasionally
        if (rng.Chance(0.9)) continue;
        s = ldb.AddAttribute(
            "obj", {"Z" + std::to_string(step), DomainType::kInt, full,
                    InterpolationKind::kStepwise});
        break;
      }
      default: {  // point assign
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        s = ldb.Assign("obj", key_of(target), "X",
                       Lifespan::Point(rng.Uniform(0, kHorizon - 1)),
                       Value::Int(rng.Uniform(0, 99)));
        break;
      }
    }
    // Mutations either succeed or fail with a *clean* status; a value-level
    // type error or internal error would indicate a bug.
    if (!s.ok()) {
      EXPECT_NE(s.code(), StatusCode::kInternal) << s.ToString();
      EXPECT_NE(s.code(), StatusCode::kCorruption) << s.ToString();
    } else {
      ++applied_ops;
    }

    if (step % 80 == 79) {
      // Periodic invariant audit.
      auto rel = ldb.db().Get("obj");
      ASSERT_TRUE(rel.ok());
      auto violations = CheckRelationWellFormed(**rel);
      ASSERT_TRUE(violations.ok());
      EXPECT_TRUE(violations->empty())
          << "step " << step << ": " << violations->front().description;
      CheckIndexDifferential(ldb.db(), &rng);
    }
  }
  ASSERT_GT(applied_ops, 50);  // the sequence actually exercised the engine

  // Crash-recovery equivalence: replaying the log reproduces the database
  // byte-for-byte.
  Database replayed;
  ASSERT_TRUE(ldb.log().Replay(&replayed).ok());
  EXPECT_EQ(replayed.EncodeSnapshot(), ldb.db().EncodeSnapshot());

  // And the snapshot itself round-trips.
  auto decoded = Database::DecodeSnapshot(ldb.db().EncodeSnapshot());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->EncodeSnapshot(), ldb.db().EncodeSnapshot());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DmlFuzzTest,
    ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
        kSeedEnv, {1u, 2u, 3u, 4u, 5u, 99u, 777u, 31415u})));

// --- index-vs-scan differential fuzz -----------------------------------------
//
// Shorter sequences, many more of them: 100 independent random DML
// histories (insert / assign / reassignment inside a lifespan / death /
// reincarnation / schema evolution), each asserting after every batch that
// index-backed plans return exactly the full-scan answer. Edge cases the
// mix is tuned to hit: reincarnation (fragmented lifespans in the interval
// index), value reassignment (constant tuples migrating to the varying
// list), and lifespans truncated to empty (tuple removal).

class IndexDifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexDifferentialFuzzTest, IndexScansMatchFullScans) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kIndexSeedEnv, GetParam()));
  Rng rng(GetParam());
  Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  ASSERT_TRUE(db.CreateRelation(
                    "obj",
                    {{"Id", DomainType::kString, full,
                      InterpolationKind::kDiscrete},
                     {"X", DomainType::kInt, full,
                      InterpolationKind::kStepwise},
                     {"Y", DomainType::kString, full,
                      InterpolationKind::kStepwise}},
                    {"Id"})
                  .ok());
  ASSERT_TRUE(db.CreateLifespanIndex("obj").ok());
  ASSERT_TRUE(db.CreateValueIndex("obj", "X").ok());
  ASSERT_TRUE(db.CreateValueIndex("obj", "Y").ok());
  auto key_of = [](int i) {
    return std::vector<Value>{Value::String("o" + std::to_string(i))};
  };

  int inserted = 0;
  for (int step = 0; step < 120; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    Status s;
    switch (op) {
      case 0:
      case 1:
      case 2: {  // birth
        auto scheme = *db.catalog().Get("obj");
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        Tuple::Builder builder(scheme, Span(b, rng.Uniform(b, kHorizon - 1)));
        builder.SetConstant("Id",
                            Value::String("o" + std::to_string(inserted)));
        // Y is left unset at birth (its ALS may have been evolved away from
        // this chronon); Y values arrive via Assign.
        builder.SetAt("X", b, Value::Int(rng.Uniform(0, 99)));
        auto t = std::move(builder).Build();
        ASSERT_TRUE(t.ok()) << t.status().ToString();
        s = db.Insert("obj", *std::move(t));
        if (s.ok()) ++inserted;
        break;
      }
      case 3:
      case 4: {  // reassignment inside a lifespan (may legitimately fail)
        if (inserted == 0) continue;
        const int target = static_cast<int>(rng.Uniform(0, inserted - 1));
        const TimePoint b = rng.Uniform(0, kHorizon - 1);
        const bool int_attr = rng.Chance(0.5);
        s = db.Assign("obj", key_of(target), int_attr ? "X" : "Y",
                      Span(b, std::min<TimePoint>(kHorizon - 1,
                                                  b + rng.Uniform(0, 15))),
                      int_attr ? Value::Int(rng.Uniform(0, 99))
                               : Value::String(rng.Identifier(4)));
        break;
      }
      case 5:
      case 6: {  // death (often truncating to nothing: removal)
        if (inserted == 0) continue;
        s = db.EndLifespan("obj",
                           key_of(static_cast<int>(rng.Uniform(0, inserted - 1))),
                           rng.Uniform(1, kHorizon - 1));
        break;
      }
      case 7: {  // reincarnation (fragmented lifespans)
        if (inserted == 0) continue;
        const TimePoint b = rng.Uniform(0, kHorizon - 2);
        s = db.Reincarnate("obj",
                           key_of(static_cast<int>(rng.Uniform(0, inserted - 1))),
                           Span(b, rng.Uniform(b, kHorizon - 1)));
        break;
      }
      default: {  // occasional schema evolution (forces index rebuilds)
        if (rng.Chance(0.8)) continue;
        s = db.CloseAttribute("obj", "Y", rng.Uniform(1, kHorizon - 1));
        if (s.ok()) {
          const TimePoint b = rng.Uniform(0, kHorizon - 2);
          s = db.ReopenAttribute("obj", "Y",
                                 Span(b, rng.Uniform(b, kHorizon - 1)));
        }
        break;
      }
    }
    if (!s.ok()) {
      EXPECT_NE(s.code(), StatusCode::kInternal) << s.ToString();
      EXPECT_NE(s.code(), StatusCode::kCorruption) << s.ToString();
    }
    if (step % 30 == 29) {
      CheckIndexDifferential(db, &rng);
    }
  }
  CheckIndexDifferential(db, &rng);
}

/// 100 independent sequences by default (the differential acceptance bar);
/// override with HRDM_INDEX_FUZZ_SEEDS=<comma-separated> to replay one.
std::vector<uint64_t> IndexFuzzSeeds() {
  std::vector<uint64_t> defaults;
  for (uint64_t s = 1; s <= 100; ++s) defaults.push_back(s);
  return hrdm::testing::SeedsFromEnv(kIndexSeedEnv, std::move(defaults));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferentialFuzzTest,
                         ::testing::ValuesIn(IndexFuzzSeeds()));

}  // namespace
}  // namespace hrdm::storage
