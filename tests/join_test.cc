// Tests for the JOIN family (Section 4.6), including the paper's central
// equivalence JOIN ≡ SELECT-WHEN ∘ × (Section 5) and natural-join
// commutativity.

#include "algebra/join.h"

#include <gtest/gtest.h>

#include "algebra/select.h"
#include "algebra/setops.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr EmpScheme() {
  static SchemePtr s = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Dept", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  return s;
}

SchemePtr DeptScheme() {
  static SchemePtr s = *RelationScheme::Make(
      "dept",
      {{"DName", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Mgr", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"DName"});
  return s;
}

/// john works in tools [0,9], toys [10,19]; mary in toys [5,14].
/// tools is managed by ann [0,19]; toys by bob [0,9], carol [10,19].
struct JoinFixture {
  Relation emp{EmpScheme()};
  Relation dept{DeptScheme()};

  JoinFixture() {
    {
      Tuple::Builder b(EmpScheme(), Span(0, 19));
      b.SetConstant("Name", Value::String("john"));
      b.Set("Dept", *TemporalValue::FromSegments(
                        {{Interval(0, 9), Value::String("tools")},
                         {Interval(10, 19), Value::String("toys")}}));
      EXPECT_TRUE(emp.Insert(*std::move(b).Build()).ok());
    }
    {
      Tuple::Builder b(EmpScheme(), Span(5, 14));
      b.SetConstant("Name", Value::String("mary"));
      b.SetConstant("Dept", Value::String("toys"));
      EXPECT_TRUE(emp.Insert(*std::move(b).Build()).ok());
    }
    {
      Tuple::Builder b(DeptScheme(), Span(0, 19));
      b.SetConstant("DName", Value::String("tools"));
      b.SetConstant("Mgr", Value::String("ann"));
      EXPECT_TRUE(dept.Insert(*std::move(b).Build()).ok());
    }
    {
      Tuple::Builder b(DeptScheme(), Span(0, 19));
      b.SetConstant("DName", Value::String("toys"));
      b.Set("Mgr", *TemporalValue::FromSegments(
                       {{Interval(0, 9), Value::String("bob")},
                        {Interval(10, 19), Value::String("carol")}}));
      EXPECT_TRUE(dept.Insert(*std::move(b).Build()).ok());
    }
  }
};

TEST(JoinTest, EquiJoinOverAgreementTimes) {
  JoinFixture f;
  auto j = EquiJoin(f.emp, "Dept", f.dept, "DName");
  ASSERT_TRUE(j.ok());
  // john–tools on [0,9], john–toys on [10,19], mary–toys on [5,14].
  ASSERT_EQ(j->size(), 3u);
  bool seen_john_tools = false, seen_john_toys = false, seen_mary = false;
  for (const Tuple& t : *j) {
    const Value name = t.value(*t.scheme()->IndexOf("Name")).ConstantValue();
    const auto dn = *t.value("DName");
    if (name == Value::String("john") &&
        dn.ConstantValue() == Value::String("tools")) {
      seen_john_tools = true;
      EXPECT_EQ(t.lifespan().ToString(), "{[0,9]}");
      // No nulls: every attribute is defined on the joined lifespan only.
      EXPECT_TRUE((*t.value("Mgr")).ValueAt(15).absent());
      EXPECT_EQ((*t.value("Mgr")).ValueAt(5), Value::String("ann"));
    }
    if (name == Value::String("john") &&
        dn.ConstantValue() == Value::String("toys")) {
      seen_john_toys = true;
      EXPECT_EQ(t.lifespan().ToString(), "{[10,19]}");
      EXPECT_EQ((*t.value("Mgr")).ValueAt(12), Value::String("carol"));
    }
    if (name == Value::String("mary")) {
      seen_mary = true;
      EXPECT_EQ(t.lifespan().ToString(), "{[5,14]}");
    }
  }
  EXPECT_TRUE(seen_john_tools && seen_john_toys && seen_mary);
}

TEST(JoinTest, ThetaJoinWithInequality) {
  // Join employees to departments whose name differs from the employee's
  // dept — the complement pairing.
  JoinFixture f;
  auto j = ThetaJoin(f.emp, "Dept", CompareOp::kNe, f.dept, "DName");
  ASSERT_TRUE(j.ok());
  for (const Tuple& t : *j) {
    // At every chronon of the result lifespan the two attributes differ.
    const auto dept_v = *t.value("Dept");
    const auto dname_v = *t.value("DName");
    for (TimePoint s : t.lifespan()) {
      EXPECT_NE(dept_v.ValueAt(s), dname_v.ValueAt(s));
    }
  }
}

TEST(JoinTest, JoinEqualsSelectWhenOfProduct) {
  // Section 5: "the JOIN operations ... be equivalent to the appropriate
  // SELECT-WHEN of the Cartesian product, and thus no nulls result".
  JoinFixture f;
  auto join_path = EquiJoin(f.emp, "Dept", f.dept, "DName");
  ASSERT_TRUE(join_path.ok());
  auto product = CartesianProduct(f.emp, f.dept);
  ASSERT_TRUE(product.ok());
  auto select_path = SelectWhen(
      *product, Predicate::AttrAttr("Dept", CompareOp::kEq, "DName"));
  ASSERT_TRUE(select_path.ok());
  EXPECT_TRUE(join_path->EqualsAsSet(*select_path));
}

TEST(JoinTest, NaturalJoinSharedAttributesOnce) {
  // Rename Dept/DName into a shared attribute and natural-join.
  auto emp2_scheme = *RelationScheme::Make(
      "emp2",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"D", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  auto dept2_scheme = *RelationScheme::Make(
      "dept2",
      {{"D", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Mgr", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"D"});
  Relation emp2(emp2_scheme), dept2(dept2_scheme);
  {
    Tuple::Builder b(emp2_scheme, Span(0, 9));
    b.SetConstant("Name", Value::String("john"));
    b.SetConstant("D", Value::String("tools"));
    ASSERT_TRUE(emp2.Insert(*std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(dept2_scheme, Span(5, 19));
    b.SetConstant("D", Value::String("tools"));
    b.SetConstant("Mgr", Value::String("ann"));
    ASSERT_TRUE(dept2.Insert(*std::move(b).Build()).ok());
  }
  auto j = NaturalJoin(emp2, dept2);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->size(), 1u);
  EXPECT_EQ(j->scheme()->arity(), 3u);  // Name, D, Mgr
  EXPECT_EQ(j->tuple(0).lifespan().ToString(), "{[5,9]}");

  // Commutativity (Section 5): attribute order differs but content matches.
  auto ji = NaturalJoin(dept2, emp2);
  ASSERT_TRUE(ji.ok());
  ASSERT_EQ(ji->size(), 1u);
  EXPECT_EQ(ji->tuple(0).lifespan(), j->tuple(0).lifespan());
  for (const std::string attr : {"Name", "D", "Mgr"}) {
    EXPECT_EQ(*j->tuple(0).value(attr), *ji->tuple(0).value(attr)) << attr;
  }
}

TEST(JoinTest, NaturalJoinNoSharedAttrsIsCommonLifespanProduct) {
  JoinFixture f;
  auto j = NaturalJoin(f.emp, f.dept);
  ASSERT_TRUE(j.ok());
  // Every emp tuple pairs with every dept tuple over the lifespan overlap.
  EXPECT_EQ(j->size(), 4u);
}

TEST(JoinTest, TimeJoinSlicesBySourceImage) {
  // audit(Id, Ref) where Ref is time-valued; join against dept history:
  // "what was the state of the referenced department at the referenced
  // times".
  auto audit_scheme = *RelationScheme::Make(
      "audit",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Ref", DomainType::kTime, kFull, InterpolationKind::kDiscrete}},
      {"Id"});
  Relation audit(audit_scheme);
  {
    Tuple::Builder b(audit_scheme, Span(0, 19));
    b.SetConstant("Id", Value::String("a1"));
    b.Set("Ref", *TemporalValue::Constant(Span(0, 19), Value::Time(7)));
    ASSERT_TRUE(audit.Insert(*std::move(b).Build()).ok());
  }
  JoinFixture f;
  auto j = TimeJoin(audit, "Ref", f.dept);
  ASSERT_TRUE(j.ok());
  // Image of Ref = {7}; both dept tuples live at 7.
  ASSERT_EQ(j->size(), 2u);
  for (const Tuple& t : *j) {
    EXPECT_EQ(t.lifespan().ToString(), "{[7]}");
  }
}

TEST(JoinTest, TimeJoinRequiresTimeAttribute) {
  JoinFixture f;
  auto bad = TimeJoin(f.emp, "Dept", f.dept);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(JoinTest, JoinRequiresDisjointAttributes) {
  JoinFixture f;
  auto bad = ThetaJoin(f.emp, "Name", CompareOp::kEq, f.emp, "Name");
  EXPECT_FALSE(bad.ok());
}

// Property: JOIN ≡ SELECT-WHEN ∘ × on random workloads.
class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, JoinSelectWhenProductEquivalence) {
  Rng rng(GetParam());
  workload::RandomRelationConfig c1;
  c1.name = "ra";
  c1.num_tuples = 8;
  c1.num_value_attrs = 1;
  c1.key_prefix = "x";
  workload::RandomRelationConfig c2 = c1;
  c2.name = "rb";
  c2.key_prefix = "y";
  auto r1 = *workload::MakeRandomRelation(&rng, c1);
  auto r2 = *workload::MakeRandomRelation(&rng, c2);
  // Rename rb's attributes to keep the products disjoint.
  auto rb_scheme = *RelationScheme::Make(
      "rb2",
      {{"Id2", DomainType::kString, Span(0, c2.horizon - 1),
        InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, Span(0, c2.horizon - 1),
        InterpolationKind::kStepwise}},
      {"Id2"});
  Relation rb(rb_scheme);
  for (const Tuple& t : r2) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    ASSERT_TRUE(
        rb.Insert(Tuple::FromParts(rb_scheme, t.lifespan(), vals)).ok());
  }

  auto joined = ThetaJoin(r1, "A0", CompareOp::kLe, rb, "B0");
  ASSERT_TRUE(joined.ok());
  auto product = CartesianProduct(r1, rb);
  ASSERT_TRUE(product.ok());
  auto filtered =
      SelectWhen(*product, Predicate::AttrAttr("A0", CompareOp::kLe, "B0"));
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(joined->EqualsAsSet(*filtered));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(3u, 19u, 101u, 5555u));

}  // namespace
}  // namespace hrdm
