// Tests for TIME-SLICE (static and dynamic, Section 4.4) and WHEN (§4.5).

#include "algebra/timeslice.h"

#include <gtest/gtest.h>

#include "algebra/when.h"

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr AuditScheme() {
  static SchemePtr s = *RelationScheme::Make(
      "audit",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"X", DomainType::kInt, kFull, InterpolationKind::kStepwise},
       {"Ref", DomainType::kTime, kFull, InterpolationKind::kDiscrete}},
      {"Id"});
  return s;
}

Relation AuditRelation() {
  Relation r(AuditScheme());
  {
    // Tuple a: alive [0,20], Ref points at chronons 5 and 6.
    Tuple::Builder b(AuditScheme(), Span(0, 20));
    b.SetConstant("Id", Value::String("a"));
    b.SetConstant("X", Value::Int(1));
    b.Set("Ref", *TemporalValue::FromSegments(
                     {{Interval(0, 10), Value::Time(5)},
                      {Interval(11, 20), Value::Time(6)}}));
    EXPECT_TRUE(r.Insert(*std::move(b).Build()).ok());
  }
  {
    // Tuple b: alive [10,40], Ref points far outside its own lifespan.
    Tuple::Builder b(AuditScheme(), Span(10, 40));
    b.SetConstant("Id", Value::String("b"));
    b.SetConstant("X", Value::Int(2));
    b.Set("Ref", *TemporalValue::Constant(Span(10, 40), Value::Time(90)));
    EXPECT_TRUE(r.Insert(*std::move(b).Build()).ok());
  }
  return r;
}

TEST(TimeSliceTest, StaticRestrictsEveryTuple) {
  Relation r = AuditRelation();
  auto sliced = TimeSlice(r, Span(15, 30));
  ASSERT_TRUE(sliced.ok());
  ASSERT_EQ(sliced->size(), 2u);
  auto a = sliced->FindByKey({Value::String("a")});
  auto b = sliced->FindByKey({Value::String("b")});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(sliced->tuple(*a).lifespan().ToString(), "{[15,20]}");
  EXPECT_EQ(sliced->tuple(*b).lifespan().ToString(), "{[15,30]}");
}

TEST(TimeSliceTest, StaticDropsTuplesOutsideWindow) {
  Relation r = AuditRelation();
  auto sliced = TimeSlice(r, Span(25, 30));
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->size(), 1u);  // only b lives through [25,30]
}

TEST(TimeSliceTest, EmptyWindowYieldsEmptyRelation) {
  Relation r = AuditRelation();
  auto sliced = TimeSlice(r, Lifespan::Empty());
  ASSERT_TRUE(sliced.ok());
  EXPECT_TRUE(sliced->empty());
}

TEST(TimeSliceTest, FragmentedWindow) {
  Relation r = AuditRelation();
  auto sliced = TimeSlice(
      r, Lifespan::FromIntervals({Interval(0, 2), Interval(18, 19)}));
  ASSERT_TRUE(sliced.ok());
  auto a = sliced->FindByKey({Value::String("a")});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(sliced->tuple(*a).lifespan().ToString(), "{[0,2],[18,19]}");
}

TEST(TimeSliceTest, SnapshotAtChronon) {
  Relation r = AuditRelation();
  auto at = TimeSliceAt(r, 12);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->size(), 2u);
  for (const Tuple& t : *at) {
    EXPECT_EQ(t.lifespan().ToString(), "{[12]}");
  }
}

TEST(TimeSliceTest, DynamicUsesPerTupleImage) {
  Relation r = AuditRelation();
  auto sliced = TimeSliceDynamic(r, "Ref");
  ASSERT_TRUE(sliced.ok());
  // a's Ref image is {5,6} ⊆ its lifespan → survives on {[5,6]}.
  // b's Ref image is {90}, outside its lifespan → empty, dropped.
  ASSERT_EQ(sliced->size(), 1u);
  EXPECT_EQ(sliced->tuple(0).KeyValues()[0], Value::String("a"));
  EXPECT_EQ(sliced->tuple(0).lifespan().ToString(), "{[5,6]}");
}

TEST(TimeSliceTest, DynamicRequiresTimeValuedAttribute) {
  Relation r = AuditRelation();
  auto bad = TimeSliceDynamic(r, "X");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  auto missing = TimeSliceDynamic(r, "Nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(WhenTest, WhenIsRelationLifespan) {
  Relation r = AuditRelation();
  EXPECT_EQ(When(r).ToString(), "{[0,40]}");
  // WHEN's output feeds TIME-SLICE (the multi-sorted composition, §4.5).
  auto sliced = TimeSlice(r, When(r));
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->size(), r.size());
}

TEST(WhenTest, EmptyRelationNever) {
  Relation r(AuditScheme());
  EXPECT_TRUE(When(r).empty());  // the "never" of Section 5
}

TEST(TimeSliceTest, SliceByWhenIsIdentityAtModelLevel) {
  // T_{Ω(r)}(r) keeps every tuple intact (lifespans ⊆ LS(r)).
  Relation r = AuditRelation();
  auto sliced = *TimeSlice(r, When(r));
  ASSERT_EQ(sliced.size(), r.size());
  for (const Tuple& t : r) {
    auto idx = sliced.FindByKey(t.KeyValues());
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(sliced.tuple(*idx).lifespan(), t.lifespan());
  }
}

}  // namespace
}  // namespace hrdm
