// WAL file-format tests: frame round-trips, and the crash-semantics
// contract of storage/wal.h driven byte-by-byte — truncating a valid log
// at EVERY byte offset and flipping every bit position must recover
// exactly the complete, CRC-valid prefix of records: never a crash, never
// a phantom (a record that was not appended), never a partial record.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "storage_test_util.h"
#include "util/file.h"

namespace hrdm::storage {
namespace {

using hrdm::storage::testing::TempDir;

/// A varied record set: empty, tiny, binary (NUL and 0xFF bytes), and one
/// larger than a typical frame header read.
std::vector<std::string> SampleRecords() {
  std::string binary;
  for (int i = 0; i < 64; ++i) binary.push_back(static_cast<char>(i * 37));
  return {
      "alpha", std::string(), "b", binary, std::string(300, 'x'),
      std::string("trailing"),
  };
}

/// header + frames of `records`, exactly what WalWriter produces.
std::string EncodeWalBytes(const std::vector<std::string>& records) {
  std::string bytes(kWalHeader, kWalHeaderSize);
  for (const std::string& r : records) bytes += FrameWalRecord(r);
  return bytes;
}

/// Byte offset of the end of each frame (frame_end[k] = offset just past
/// record k).
std::vector<size_t> FrameEnds(const std::vector<std::string>& records) {
  std::vector<size_t> ends;
  size_t pos = kWalHeaderSize;
  for (const std::string& r : records) {
    pos += kWalFrameOverhead + r.size();
    ends.push_back(pos);
  }
  return ends;
}

Status WriteBytes(const std::string& path, std::string_view data) {
  return util::AtomicWriteFile(path, data, /*durable=*/false);
}

TEST(WalTest, WriterReaderRoundTrip) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  const std::vector<std::string> records = SampleRecords();
  {
    WalWriter::Options options;
    options.fsync = FsyncPolicy::kOff;
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& r : records) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
    EXPECT_EQ(writer->appended_records(), records.size());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->clean);
  EXPECT_EQ(contents->records, records);
  EXPECT_EQ(contents->valid_bytes, EncodeWalBytes(records).size());
}

TEST(WalTest, MissingFileIsEmptyLog) {
  TempDir dir("wal");
  auto contents = ReadWal(dir.path() + "/nope.log");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_TRUE(contents->clean);
}

TEST(WalTest, BadMagicIsCorruption) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  ASSERT_TRUE(WriteBytes(path, "NOTAWAL!\x01\x02\x03").ok());
  auto contents = ReadWal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kCorruption);
  // Same verdict for a short file that is not a header prefix.
  ASSERT_TRUE(WriteBytes(path, "XYZ").ok());
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
}

// The headline torn-write property: for every truncation point L in
// [0, file size], reading the first L bytes yields exactly the records
// whose frames fit entirely within L — the longest durable prefix.
TEST(WalTest, TruncationAtEveryByteOffsetRecoversExactPrefix) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  const std::vector<std::string> records = SampleRecords();
  const std::string bytes = EncodeWalBytes(records);
  const std::vector<size_t> ends = FrameEnds(records);

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                 std::to_string(bytes.size()) + " bytes");
    ASSERT_TRUE(WriteBytes(path, std::string_view(bytes).substr(0, cut)).ok());
    auto contents = ReadWal(path);
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();

    // Expected: every record whose frame end is within the cut.
    size_t expect_n = 0;
    while (expect_n < ends.size() && ends[expect_n] <= cut) ++expect_n;
    ASSERT_EQ(contents->records.size(), expect_n);
    for (size_t i = 0; i < expect_n; ++i) {
      EXPECT_EQ(contents->records[i], records[i]) << "record " << i;
    }
    // clean iff the cut is exactly a frame boundary (or the full header).
    const size_t expect_valid =
        cut < kWalHeaderSize ? 0
                             : (expect_n == 0 ? kWalHeaderSize
                                              : ends[expect_n - 1]);
    EXPECT_EQ(contents->valid_bytes, expect_valid);
    EXPECT_EQ(contents->clean, cut == expect_valid || cut == 0);
  }
}

// Single-bit flips: CRC-32C detects every 1-bit error, so a flip anywhere
// in frame k's bytes (length word, CRC word or payload) must cut the log
// at k — and leave records 0..k-1 untouched. Flips in the header are
// Corruption (wrong magic), not silent acceptance.
TEST(WalTest, BitFlipAtEveryPositionNeverYieldsPhantoms) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  const std::vector<std::string> records = SampleRecords();
  const std::string bytes = EncodeWalBytes(records);
  const std::vector<size_t> ends = FrameEnds(records);

  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    // One flip per byte keeps the quadratic loop affordable; the flipped
    // bit position still varies with the offset.
    const char mask = static_cast<char>(1u << (offset % 8));
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ mask);
    ASSERT_TRUE(WriteBytes(path, mutated).ok());
    SCOPED_TRACE("bit flip at offset " + std::to_string(offset));

    auto contents = ReadWal(path);
    if (offset < kWalHeaderSize) {
      ASSERT_FALSE(contents.ok());
      EXPECT_EQ(contents.status().code(), StatusCode::kCorruption);
      continue;
    }
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    // The frame containing the flipped byte.
    size_t k = 0;
    while (ends[k] <= offset) ++k;
    ASSERT_EQ(contents->records.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(contents->records[i], records[i]) << "record " << i;
    }
    EXPECT_FALSE(contents->clean);
  }
}

// Reopening a torn log truncates the tail so appends continue from the
// last durable record — the recovery path StorageEngine::Open relies on.
TEST(WalTest, ReopenAfterTornTailTruncatesAndResumes) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  const std::vector<std::string> records = SampleRecords();
  const std::string bytes = EncodeWalBytes(records);
  const std::vector<size_t> ends = FrameEnds(records);

  // Tear mid-way through record 3's payload.
  const size_t cut = ends[2] + kWalFrameOverhead + 1;
  ASSERT_TRUE(WriteBytes(path, std::string_view(bytes).substr(0, cut)).ok());

  WalWriter::Options options;
  options.fsync = FsyncPolicy::kOff;
  {
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append("resumed").ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->clean);
  ASSERT_EQ(contents->records.size(), 4u);
  EXPECT_EQ(contents->records[0], records[0]);
  EXPECT_EQ(contents->records[1], records[1]);
  EXPECT_EQ(contents->records[2], records[2]);
  EXPECT_EQ(contents->records[3], "resumed");
}

// A header torn to fewer than 8 bytes is rewritten from scratch on reopen.
TEST(WalTest, ReopenAfterTornHeaderStartsFresh) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  ASSERT_TRUE(WriteBytes(path, std::string_view(kWalHeader, 3)).ok());
  WalWriter::Options options;
  options.fsync = FsyncPolicy::kOff;
  {
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append("first").ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->clean);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], "first");
}

TEST(WalTest, BatchedPolicySyncsOnBudgetAndOnDemand) {
  TempDir dir("wal");
  const std::string path = dir.path() + "/wal-0000000000.log";
  WalWriter::Options options;
  options.fsync = FsyncPolicy::kBatched;
  options.batch_bytes = 64;  // tiny budget: forces periodic syncs
  auto writer = WalWriter::Open(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer->Append("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer->Sync().ok());
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 50u);
  EXPECT_TRUE(contents->clean);
}

TEST(WalTest, ParseFsyncPolicyRoundTrips) {
  for (FsyncPolicy p :
       {FsyncPolicy::kOff, FsyncPolicy::kBatched, FsyncPolicy::kAlways}) {
    auto parsed = ParseFsyncPolicy(FsyncPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  auto bad = ParseFsyncPolicy("sometimes");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hrdm::storage
