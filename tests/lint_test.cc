// Tests for the architecture linter's engine (tools/hrdm_lint_lib.h):
// one passing and one failing fixture per check class, plus the allowlist
// suppression and anti-rot paths. The fixtures are in-memory (path,
// content) pairs, so these tests pin the engine's behavior without
// touching the real tree — the CLI wrapper (tools/hrdm_lint.cc) is the
// same engine over the real files.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/hrdm_lint_lib.h"

namespace hrdm::lint {
namespace {

std::vector<Finding> RunFiles(const std::vector<SourceFile>& files,
                              const Options& options = Options()) {
  return Run(files, options);
}

/// Findings of one check, as "path:message" strings for readable failures.
std::vector<std::string> Of(const std::vector<Finding>& findings,
                            const std::string& check) {
  std::vector<std::string> out;
  for (const Finding& f : findings) {
    if (f.check == check) out.push_back(f.path + ": " + f.message);
  }
  return out;
}

bool Mentions(const std::vector<std::string>& messages,
              const std::string& needle) {
  for (const std::string& m : messages) {
    if (m.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// A minimal well-formed file: no style findings, no banned constructs.
SourceFile Clean(const std::string& path, const std::string& body) {
  return {path, body};
}

// --- layer-dag ---------------------------------------------------------------

TEST(LintLayerDagTest, DownwardIncludesPass) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc",
            "#include \"storage/database.h\"\n#include \"util/status.h\"\n"),
      Clean("src/storage/database.h", "#include \"core/relation.h\"\n"),
      Clean("src/util/status.h", "int x;\n"),
      Clean("src/core/relation.h", "#include \"util/status.h\"\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "layer-dag").empty());
}

TEST(LintLayerDagTest, UpwardIncludeFails) {
  const std::vector<SourceFile> files = {
      Clean("src/storage/database.h", "#include \"query/plan.h\"\n"),
  };
  const auto found = Of(RunFiles(files), "layer-dag");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "'storage' must not include layer 'query'"));
}

TEST(LintLayerDagTest, SessionMayIncludeQueryDown) {
  const std::vector<SourceFile> files = {
      Clean("src/session/session.h",
            "#include \"query/executor.h\"\n"
            "#include \"storage/database.h\"\n"
            "#include \"util/status.h\"\n"),
      Clean("src/query/executor.h", "#include \"storage/database.h\"\n"),
      Clean("src/storage/database.h", "#include \"util/status.h\"\n"),
      Clean("src/util/status.h", "int x;\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "layer-dag").empty());
}

TEST(LintLayerDagTest, LowerLayersMustNotIncludeSession) {
  // session sits above query: neither query nor storage may reach up
  // into it.
  const std::vector<SourceFile> files = {
      Clean("src/query/executor.cc", "#include \"session/session.h\"\n"),
      Clean("src/storage/database.cc", "#include \"session/session.h\"\n"),
  };
  const auto found = Of(RunFiles(files), "layer-dag");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_TRUE(Mentions(found, "'query' must not include layer 'session'"));
  EXPECT_TRUE(Mentions(found, "'storage' must not include layer 'session'"));
}

TEST(LintLayerDagTest, SrcIncludingTestCodeFails) {
  const std::vector<SourceFile> files = {
      Clean("src/util/random.cc", "#include \"tests/test_seeds.h\"\n"),
  };
  const auto found = Of(RunFiles(files), "layer-dag");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "must not include test code"));
}

TEST(LintLayerDagTest, TestsMayIncludeEverything) {
  const std::vector<SourceFile> files = {
      Clean("tests/plan_test.cc",
            "#include \"query/plan.h\"\n#include \"test_seeds.h\"\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "layer-dag").empty());
}

TEST(LintLayerDagTest, FileCycleWithinAllowedLayersFails) {
  // util <-> core is an allowed *layer* pair, but an actual header cycle
  // between files is still an error.
  const std::vector<SourceFile> files = {
      Clean("src/util/pretty.h", "#include \"core/relation.h\"\n"),
      Clean("src/core/relation.h", "#include \"util/pretty.h\"\n"),
  };
  const auto found = Of(RunFiles(files), "layer-dag");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "include cycle"));
}

TEST(LintLayerDagTest, CommentedOutIncludeIgnored) {
  const std::vector<SourceFile> files = {
      Clean("src/storage/database.h", "// #include \"query/plan.h\"\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "layer-dag").empty());
}

// --- closed-enum-default -----------------------------------------------------

TEST(LintClosedEnumTest, DefaultArmOverClosedEnumFails) {
  const std::vector<SourceFile> files = {
      Clean("src/query/executor.cc",
            "void F(ExprKind k) {\n"
            "  switch (k) {\n"
            "    case ExprKind::kUnion:\n"
            "      break;\n"
            "    default:\n"
            "      break;\n"
            "  }\n"
            "}\n"),
  };
  const auto found = Of(RunFiles(files), "closed-enum-default");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "ExprKind"));
}

TEST(LintClosedEnumTest, ExhaustiveSwitchPasses) {
  const std::vector<SourceFile> files = {
      Clean("src/query/executor.cc",
            "void F(LsExprKind k) {\n"
            "  switch (k) {\n"
            "    case LsExprKind::kLiteral:\n"
            "    case LsExprKind::kWhen:\n"
            "      break;\n"
            "  }\n"
            "}\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "closed-enum-default").empty());
}

TEST(LintClosedEnumTest, OpenEnumMayKeepDefault) {
  const std::vector<SourceFile> files = {
      Clean("src/util/format.cc",
            "void F(SomeOpenEnum k) {\n"
            "  switch (k) {\n"
            "    case SomeOpenEnum::kA:\n"
            "      break;\n"
            "    default:\n"
            "      break;\n"
            "  }\n"
            "}\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "closed-enum-default").empty());
}

TEST(LintClosedEnumTest, NestedSwitchDefaultBelongsToInnerSwitch) {
  // The outer switch is over a closed enum and carries no default; the
  // inner one is over an open enum and may keep its default arm.
  const std::vector<SourceFile> files = {
      Clean("src/query/executor.cc",
            "void F(ExprKind k, int open) {\n"
            "  switch (k) {\n"
            "    case ExprKind::kUnion:\n"
            "      switch (open) {\n"
            "        default:\n"
            "          break;\n"
            "      }\n"
            "      break;\n"
            "  }\n"
            "}\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "closed-enum-default").empty());
}

// --- banned-construct --------------------------------------------------------

TEST(LintBannedTest, NakedNewFails) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc", "void F() { auto* p = new int(3); }\n"),
  };
  const auto found = Of(RunFiles(files), "banned-construct");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "naked new"));
}

TEST(LintBannedTest, MakeUniquePasses) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc",
            "void F() { auto p = std::make_unique<int>(3); }\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "banned-construct").empty());
}

TEST(LintBannedTest, DeletedFunctionIsNotNakedDelete) {
  const std::vector<SourceFile> files = {
      Clean("src/util/mutex.h",
            "struct M { M(const M&) = delete; };\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "banned-construct").empty());
}

TEST(LintBannedTest, NakedDeleteFails) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc", "void F(int* p) { delete p; }\n"),
  };
  const auto found = Of(RunFiles(files), "banned-construct");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "naked delete"));
}

TEST(LintBannedTest, GlobalRngInTestsFails) {
  const std::vector<SourceFile> files = {
      Clean("tests/foo_test.cc", "int F() { return std::rand(); }\n"),
  };
  const auto found = Of(RunFiles(files), "banned-construct");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "tests/test_seeds.h"));
}

TEST(LintBannedTest, StderrPrintfInLibraryFails) {
  const std::vector<SourceFile> files = {
      Clean("src/storage/wal.cc",
            "void F() { fprintf(stderr, \"boom\"); }\n"),
  };
  const auto found = Of(RunFiles(files), "banned-construct");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "fprintf(stderr"));
}

TEST(LintBannedTest, StderrPrintfInTestsPasses) {
  const std::vector<SourceFile> files = {
      Clean("tests/foo_test.cc",
            "void F() { fprintf(stderr, \"debug\"); }\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "banned-construct").empty());
}

TEST(LintBannedTest, BlockingCallInsideWorkerTaskFails) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc",
            "void F(util::ThreadPool& pool) {\n"
            "  pool.Submit([](size_t) { std::this_thread::sleep_for(d); });\n"
            "}\n"),
  };
  const auto found = Of(RunFiles(files), "banned-construct");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "pure leaf kernels"));
}

TEST(LintBannedTest, PureLeafKernelTaskPasses) {
  const std::vector<SourceFile> files = {
      Clean("src/query/plan.cc",
            "void F(util::ThreadPool& pool) {\n"
            "  pool.Submit([](size_t id) { counters[id] += 1; });\n"
            "}\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "banned-construct").empty());
}

TEST(LintBannedTest, SubmitDeclarationIsNotATaskBody) {
  // A declaration has no lambda body inside the argument span, so the
  // blocking-call scan must not fire on parameter lists.
  const std::vector<SourceFile> files = {
      Clean("src/util/thread_pool.h",
            "std::future<void> Submit(std::function<void(size_t)> fn);\n"),
  };
  EXPECT_TRUE(Of(RunFiles(files), "banned-construct").empty());
}

// --- doc-parity --------------------------------------------------------------

TEST(LintDocParityTest, UndocumentedCounterFails) {
  Options options;
  options.plan_header =
      "struct PlanStats {\n"
      "  uint64_t scans_full = 0;\n"
      "  uint64_t morsels_dispatched = 0;\n"
      "  void Reset();\n"
      "};\n";
  options.architecture_md = "Counters: `scans_full` only.\n";
  const auto found = Of(RunFiles({}, options), "doc-parity");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "morsels_dispatched"));
}

TEST(LintDocParityTest, FullyDocumentedCountersPass) {
  Options options;
  options.plan_header =
      "struct PlanStats {\n"
      "  uint64_t scans_full = 0;\n"
      "  uint64_t morsels_dispatched = 0;\n"
      "};\n";
  options.architecture_md =
      "Counters: `scans_full`, `morsels_dispatched`.\n";
  EXPECT_TRUE(Of(RunFiles({}, options), "doc-parity").empty());
}

// --- style -------------------------------------------------------------------

TEST(LintStyleTest, TrailingWhitespaceAndTabsFail) {
  const std::vector<SourceFile> files = {
      {"src/util/status.h", "int x; \n\tint y;\n"},
  };
  const auto found = Of(RunFiles(files), "style");
  EXPECT_TRUE(Mentions(found, "trailing whitespace"));
  EXPECT_TRUE(Mentions(found, "tab character"));
}

TEST(LintStyleTest, MissingFinalNewlineFails) {
  const std::vector<SourceFile> files = {
      {"src/util/status.h", "int x;"},
  };
  EXPECT_TRUE(
      Mentions(Of(RunFiles(files), "style"), "does not end with a newline"));
}

TEST(LintStyleTest, CrlfFails) {
  const std::vector<SourceFile> files = {
      {"src/util/status.h", "int x;\r\n"},
  };
  EXPECT_TRUE(Mentions(Of(RunFiles(files), "style"), "CRLF"));
}

TEST(LintStyleTest, CleanFilePasses) {
  const std::vector<SourceFile> files = {
      {"src/util/status.h", "int x;\nint y;\n"},
  };
  EXPECT_TRUE(Of(RunFiles(files), "style").empty());
}

// --- allowlist ---------------------------------------------------------------

TEST(LintAllowlistTest, MatchingEntrySuppressesFinding) {
  Options options;
  options.allowlist =
      "# justified leak\n"
      "banned-construct|src/util/pool.cc|new Pool|intentional leak\n";
  const std::vector<SourceFile> files = {
      Clean("src/util/pool.cc", "Pool* p = new Pool(0);\n"),
  };
  const auto findings = RunFiles(files, options);
  EXPECT_TRUE(Of(findings, "banned-construct").empty());
  EXPECT_TRUE(Of(findings, "allowlist").empty());  // entry was used
}

TEST(LintAllowlistTest, UnusedEntryIsItselfAFinding) {
  Options options;
  options.allowlist =
      "banned-construct|src/util/pool.cc|new Pool|no longer present\n";
  const auto found = Of(RunFiles({}, options), "allowlist");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "unused allowlist entry"));
}

TEST(LintAllowlistTest, MalformedEntryIsAFinding) {
  Options options;
  options.allowlist = "banned-construct|missing-fields\n";
  const auto found = Of(RunFiles({}, options), "allowlist");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(Mentions(found, "malformed entry"));
}

TEST(LintAllowlistTest, EntryScopedToOtherPathDoesNotSuppress) {
  Options options;
  options.allowlist =
      "banned-construct|src/util/other.cc|new Pool|wrong file\n";
  const std::vector<SourceFile> files = {
      Clean("src/util/pool.cc", "Pool* p = new Pool(0);\n"),
  };
  const auto findings = RunFiles(files, options);
  EXPECT_EQ(Of(findings, "banned-construct").size(), 1u);
  // ...and the entry is unused, which is reported too.
  EXPECT_EQ(Of(findings, "allowlist").size(), 1u);
}

// --- driver ------------------------------------------------------------------

TEST(LintRunTest, FindingsSortedByPathAndLine) {
  const std::vector<SourceFile> files = {
      {"src/util/b.h", "int x;"},
      {"src/util/a.h", "int y;"},
  };
  const auto findings = RunFiles(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "src/util/a.h");
  EXPECT_EQ(findings[1].path, "src/util/b.h");
}

}  // namespace
}  // namespace hrdm::lint
